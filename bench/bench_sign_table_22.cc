// T3 — paper slides 70-78: the 2^2 factorial design worked example.
// Part 1 reproduces the paper's memory-size x cache-size MIPS table and
// solves the nonlinear regression model y = q0 + qA xA + qB xB + qAB xA xB,
// expecting exactly y = 40 + 20 xA + 10 xB + 5 xA xB. Part 2 runs a
// *measured* 2^2 design on the cache simulator (cache size x memory
// latency) and solves it the same way — the sign-table method applied to
// live data.

#include <cstdio>

#include "bench_util.h"
#include "doe/allocation.h"
#include "doe/effects.h"
#include "hwsim/scan.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("T3", "exact algebra + one simulated 2^2 design",
                          argc, argv);
  ctx.PrintHeader("2^2 design: sign table method of calculating effects");

  // ---- Part 1: the paper's own numbers (slide 72). ----
  doe::SignTable table = doe::SignTable::FullFactorial(2);
  std::printf("Sign table (A = memory size, B = cache size):\n%s\n",
              table.ToTable({0b01, 0b10, 0b11}).c_str());
  std::vector<double> mips = {15.0, 45.0, 25.0, 75.0};
  doe::EffectModel model = doe::EstimateEffects(table, mips);
  std::printf("Responses y = (15, 45, 25, 75) MIPS\n");
  std::printf("%s\n", model.ToString().c_str());
  std::printf(
      "paper: y = 40 + 20 xA + 10 xB + 5 xA xB — mean 40, memory effect "
      "20, cache effect 10, interaction 5\n\n");
  bool exact = model.mean() == 40.0 && model.Coefficient(0b01) == 20.0 &&
               model.Coefficient(0b10) == 10.0 &&
               model.Coefficient(0b11) == 5.0;
  std::printf("exact reproduction: %s\n\n", exact ? "YES" : "NO");

  doe::VariationAllocation allocation = doe::AllocateVariation(table, mips);
  std::printf("Allocation of variation:\n%s\n",
              allocation.ToTable().c_str());

  // ---- Part 2: a measured 2^2 on the cache simulator. ----
  std::printf(
      "Measured 2^2 on the cache simulator: A = L2 size (512KB vs 8MB), "
      "B = memory latency (100ns vs 300ns), response = scan ns/iter\n\n");
  std::vector<double> measured;
  for (size_t run = 0; run < 4; ++run) {
    bool big_l2 = table.FactorSign(run, 0) > 0;
    bool slow_memory = table.FactorSign(run, 1) > 0;
    hwsim::MachineProfile machine = hwsim::MachineByName("Sun Ultra");
    machine.caches[1].size_bytes =
        big_l2 ? 8 * 1024 * 1024 : 512 * 1024;
    machine.memory_latency_ns = slow_memory ? 300.0 : 100.0;
    hwsim::ScanSpec spec;
    spec.num_elements = 1 << 18;
    measured.push_back(
        hwsim::SimulateScanMax(machine, spec).TotalNsPerIter());
    std::printf("  run %zu: L2=%s, mem=%s -> %.1f ns/iter\n", run + 1,
                big_l2 ? "8MB" : "512KB", slow_memory ? "300ns" : "100ns",
                measured.back());
  }
  doe::EffectModel measured_model = doe::EstimateEffects(table, measured);
  std::printf("\n%s\n", measured_model.ToString().c_str());
  doe::VariationAllocation measured_allocation =
      doe::AllocateVariation(table, measured);
  std::printf("%s\n", measured_allocation.ToTable().c_str());
  std::printf(
      "(a cold sequential scan never revisits data, so memory latency, "
      "not cache size, explains nearly all variation — exactly what the "
      "allocation shows)\n");

  ctx.Finish();
  return exact ? 0 : 1;
}
