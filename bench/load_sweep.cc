#include "load_sweep.h"

#include "common/string_util.h"
#include "report/gnuplot.h"
#include "report/svg.h"

namespace perfeval {
namespace bench {

const double kSweepPercentiles[kSweepNumPercentiles] = {50.0, 90.0, 99.0,
                                                        99.9};
const char* const kSweepPercentileNames[kSweepNumPercentiles] = {
    "p50", "p90", "p99", "p99.9"};

LoadCell SummarizeLoadRun(double offered_qps, const serve::LoadResult& run,
                          uint64_t ci_seed, int resamples) {
  LoadCell cell;
  cell.offered_qps = offered_qps;
  cell.achieved_qph = run.qph;
  cell.errors = run.errors;
  for (int i = 0; i < kSweepNumPercentiles; ++i) {
    cell.percentiles[i].ms =
        run.client_latency.ValueAtPercentile(kSweepPercentiles[i]) / 1e6;
    stats::ConfidenceInterval ci = run.client_latency.PercentileCI(
        kSweepPercentiles[i], kSweepConfidence,
        ci_seed + static_cast<uint64_t>(i), resamples);
    ci.mean /= 1e6;
    ci.lower /= 1e6;
    ci.upper /= 1e6;
    cell.percentiles[i].ci = ci;
  }
  return cell;
}

std::string LoadCellJson(const LoadCell& cell) {
  std::string percentiles = "{";
  for (int i = 0; i < kSweepNumPercentiles; ++i) {
    percentiles += StrFormat(
        "%s\"%s\": {\"ms\": %.4f, \"ci_lower_ms\": %.4f, "
        "\"ci_upper_ms\": %.4f, \"confidence\": %.2f}",
        i == 0 ? "" : ", ", kSweepPercentileNames[i], cell.percentiles[i].ms,
        cell.percentiles[i].ci.lower, cell.percentiles[i].ci.upper,
        kSweepConfidence);
  }
  percentiles += "}";
  return StrFormat(
      "{\"offered_qps\": %.2f, \"achieved_qph\": %.0f, \"errors\": %lld, "
      "\"percentiles\": %s}",
      cell.offered_qps, cell.achieved_qph,
      static_cast<long long>(cell.errors), percentiles.c_str());
}

LoadSweepResult RunLoadSweep(serve::QueryService* service,
                             const LoadSweepOptions& options) {
  LoadSweepResult result;

  // Capacity calibration: closed loop, zero think time.
  serve::LoadOptions closed_options;
  closed_options.mode = serve::LoadMode::kClosed;
  closed_options.requests = options.requests;
  closed_options.clients = options.capacity_clients;
  closed_options.run_seed = options.run_seed;
  closed_options.query_mix = options.query_mix;
  serve::LoadGenerator closed_gen(service, closed_options);
  if (options.warmup) {
    (void)closed_gen.Run();  // warm the buffer pool, unmeasured.
  }
  result.closed_run = closed_gen.Run();
  result.capacity_qps = result.closed_run.achieved_qps;
  result.closed_cell =
      SummarizeLoadRun(result.capacity_qps, result.closed_run,
                       options.run_seed * 1979, options.resamples);

  // Open-loop Poisson sweep at fractions of capacity.
  result.p50_series = core::Series{"p50", {}, {}, {}};
  result.p99_series = core::Series{"p99", {}, {}, {}};
  for (size_t i = 0; i < options.fractions.size(); ++i) {
    double offered = result.capacity_qps * options.fractions[i];
    serve::LoadOptions open_options;
    open_options.mode = serve::LoadMode::kOpen;
    open_options.requests = options.requests;
    open_options.offered_qps = offered;
    open_options.run_seed = options.run_seed + 1 + static_cast<uint64_t>(i);
    open_options.query_mix = options.query_mix;
    serve::LoadGenerator open_gen(service, open_options);
    serve::LoadResult run = open_gen.Run();
    LoadCell cell = SummarizeLoadRun(
        offered, run, options.run_seed * 977 + static_cast<uint64_t>(i),
        options.resamples);
    result.cells.push_back(cell);
    result.p50_series.AppendWithError(offered, cell.percentiles[0].ms,
                                      cell.percentiles[0].ci.HalfWidth());
    result.p99_series.AppendWithError(offered, cell.percentiles[2].ms,
                                      cell.percentiles[2].ci.HalfWidth());
  }
  return result;
}

report::TextTable SweepTable(const std::vector<LoadCell>& cells) {
  report::TextTable table;
  table.SetHeader({"offered q/s", "achieved qph", "p50 (ms)", "p90 (ms)",
                   "p99 (ms)", "p99.9 (ms)"});
  for (const LoadCell& cell : cells) {
    table.AddRow(
        {StrFormat("%.1f", cell.offered_qps),
         StrFormat("%.0f", cell.achieved_qph),
         StrFormat("%.2f [%.2f,%.2f]", cell.percentiles[0].ms,
                   cell.percentiles[0].ci.lower, cell.percentiles[0].ci.upper),
         StrFormat("%.2f", cell.percentiles[1].ms),
         StrFormat("%.2f [%.2f,%.2f]", cell.percentiles[2].ms,
                   cell.percentiles[2].ci.lower, cell.percentiles[2].ci.upper),
         StrFormat("%.2f", cell.percentiles[3].ms)});
  }
  return table;
}

std::string SweepJson(const std::vector<LoadCell>& cells, int indent) {
  std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = "[\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    out += pad + "  " + LoadCellJson(cells[i]) +
           (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out += pad + "]";
  return out;
}

Status WriteThroughputLatencyChart(const LoadSweepResult& sweep,
                                   const std::string& title,
                                   const std::string& stem) {
  report::ChartSpec chart;
  chart.title = title;
  chart.x_label = "Offered load (queries/s)";
  chart.y_label = "Client latency (ms)";
  chart.style = report::ChartStyle::kErrorBars;
  chart.series = {sweep.p50_series, sweep.p99_series};
  Status status = report::WriteChart(chart, stem);
  if (!status.ok()) {
    return status;
  }
  return report::WriteSvgChart(chart, stem);
}

}  // namespace bench
}  // namespace perfeval
