// Shared offered-load-sweep machinery for the serving benches (A8's
// single-node service, A10's sharded front-end): closed-loop capacity
// calibration, an open-loop Poisson sweep at fractions of that capacity,
// percentile summaries with bootstrap CIs, JSON cell emission, and the
// throughput–latency chart. Factored here so both benches measure and
// report identically — a capacity or percentile difference between A8 and
// A10 is then a system difference, never a harness difference.

#ifndef PERFEVAL_BENCH_LOAD_SWEEP_H_
#define PERFEVAL_BENCH_LOAD_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/metrics.h"
#include "report/table_format.h"
#include "serve/loadgen.h"
#include "serve/service.h"
#include "stats/confidence.h"

namespace perfeval {
namespace bench {

/// The percentiles every serving bench reports, and their labels.
inline constexpr double kSweepConfidence = 0.95;
inline constexpr int kSweepNumPercentiles = 4;
extern const double kSweepPercentiles[kSweepNumPercentiles];
extern const char* const kSweepPercentileNames[kSweepNumPercentiles];

struct LatencyPercentile {
  double ms = 0.0;
  stats::ConfidenceInterval ci;  ///< bootstrap CI, in ms.
};

/// One measured cell of an offered-load sweep.
struct LoadCell {
  double offered_qps = 0.0;
  double achieved_qph = 0.0;
  int64_t errors = 0;
  LatencyPercentile percentiles[kSweepNumPercentiles];
};

/// Summarizes one load-generator run into a cell: client-observed
/// percentiles with deterministic bootstrap CIs.
LoadCell SummarizeLoadRun(double offered_qps, const serve::LoadResult& run,
                          uint64_t ci_seed, int resamples);

/// {"offered_qps": ..., "achieved_qph": ..., "errors": ...,
///  "percentiles": {"p50": {...}, ...}} — one JSON object per cell.
std::string LoadCellJson(const LoadCell& cell);

struct LoadSweepOptions {
  /// Requests per cell (calibration run and each sweep cell).
  int requests = 400;
  /// Closed-loop client population of the capacity calibration (one per
  /// service worker is the convention: zero think time, full pipeline).
  int capacity_clients = 4;
  /// Open-loop offered load, as fractions of the calibrated capacity.
  std::vector<double> fractions = {0.3, 0.5, 0.7, 0.85, 1.0};
  uint64_t run_seed = 42;
  int resamples = 1000;
  /// TPC-H query numbers sampled per request; all 22 when empty.
  std::vector<int> query_mix;
  /// Run one unmeasured closed-loop pass first (buffer-pool warmup).
  bool warmup = true;
};

struct LoadSweepResult {
  /// Closed-loop capacity: achieved q/s with `capacity_clients` clients
  /// and zero think time.
  double capacity_qps = 0.0;
  /// The measured calibration run (A8's coordinated-omission comparison
  /// reuses it as the closed-loop cell).
  serve::LoadResult closed_run;
  LoadCell closed_cell;
  /// One open-loop cell per fraction, in `fractions` order.
  std::vector<LoadCell> cells;
  /// p50/p99 vs offered q/s with CI half-width error bars, chart-ready.
  core::Series p50_series;
  core::Series p99_series;
};

/// Calibrates capacity closed-loop, then sweeps open-loop Poisson load at
/// the configured fractions. Deterministic in (options, service state).
LoadSweepResult RunLoadSweep(serve::QueryService* service,
                             const LoadSweepOptions& options);

/// The sweep rendered as the standard text table (offered/achieved/
/// percentile columns, CI brackets on p50 and p99).
report::TextTable SweepTable(const std::vector<LoadCell>& cells);

/// The sweep cells as a JSON array literal, one cell per line, indented by
/// `indent` spaces.
std::string SweepJson(const std::vector<LoadCell>& cells, int indent);

/// Writes the throughput–latency curve (p50 + p99 with error bars) as
/// gnuplot script and SVG at `stem`.{gnu,svg}. Extra series (e.g. one p99
/// curve per shard count) can be appended by the caller before writing —
/// this helper covers the common one-sweep case.
Status WriteThroughputLatencyChart(const LoadSweepResult& sweep,
                                   const std::string& title,
                                   const std::string& stem);

}  // namespace bench
}  // namespace perfeval

#endif  // PERFEVAL_BENCH_LOAD_SWEEP_H_
