// A11 — the cost-based optimizer under the paper's evaluation discipline:
// don't trust a model, measure it (slides 28-29, 96-105). Three parts on
// the bundled engine's TPC-H instance:
//
//   1. Calibration: measured TRACE join-operator times vs the CostModel's
//      predictions per algorithm, and a FitLinear re-fit of the hash
//      join's per-probe-row constant — measured-vs-default constants with
//      the fit's r^2, the evidence behind the model's numbers.
//   2. Estimated vs actual: every TPC-H plan is estimated (EstimatePlan)
//      and run with TRACE; estimates and OpTraces zip positionally, and
//      the per-operator Q-error distribution (median/p90/max of
//      max(est,act)/min(est,act)) quantifies the estimator per operator
//      kind — the DoE view of where estimates are trustworthy.
//   3. Who wins: optimizer-picked plans vs the best hand-picked plan
//      (rule-built join order under each global algorithm) — a
//      selectivity sweep locating the crossover where plan choice starts
//      to matter, and the 22-query table with bootstrap ratio CIs
//      counting how often the optimizer lands within 1.1x of the best
//      hand-picked plan.
//
// Everything lands in BENCH_optimizer.json plus plot-ready CSV+gnuplot;
// `--smoke` shrinks the scale factor and run counts to a ctest-able pass.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/metrics.h"
#include "db/database.h"
#include "db/plan.h"
#include "opt/cost_model.h"
#include "opt/estimator.h"
#include "opt/optimizer.h"
#include "report/gnuplot.h"
#include "report/table_format.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "stats/regression.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace {

std::shared_ptr<db::Table> MakeKeyed(size_t rows, int64_t key_range,
                                     uint64_t seed) {
  Pcg32 rng(seed);
  auto table = std::make_shared<db::Table>(db::Schema(
      {{"k", db::DataType::kInt64}, {"v", db::DataType::kInt64}}));
  table->ReserveRows(rows);
  for (size_t i = 0; i < rows; ++i) {
    table->column(0).AppendInt64(rng.NextInRange(0, key_range));
    table->column(1).AppendInt64(static_cast<int64_t>(i));
  }
  table->FinishBulkLoad();
  return table;
}

/// Wall time of the first join operator in the TRACE, the same
/// "use the engine's own timings" discipline as A2.
double JoinWallNs(const db::QueryResult& result) {
  for (const db::OpTrace& trace : result.profile.traces()) {
    if (trace.op.rfind("HashJoin(", 0) == 0 ||
        trace.op.rfind("MergeJoin", 0) == 0) {
      return static_cast<double>(trace.wall_ns);
    }
  }
  return static_cast<double>(result.server.real_ns);
}

/// Hot server-side wall-time samples of a whole plan.
std::vector<double> PlanSamples(db::Database& database,
                                const db::PlanPtr& plan, int runs) {
  (void)database.Run(plan);  // warm-up.
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    samples.push_back(
        static_cast<double>(database.Run(plan).server.real_ns));
  }
  return samples;
}

std::string CiJson(const stats::ConfidenceInterval& ci) {
  return StrFormat("{\"mean\": %.4f, \"lower\": %.4f, \"upper\": %.4f}",
                   ci.mean, ci.lower, ci.upper);
}

double QError(double estimated, double actual) {
  double e = std::max(estimated, 1.0);
  double a = std::max(actual, 1.0);
  return e > a ? e / a : a / e;
}

struct QErrorAccum {
  std::vector<double> rows;
  std::vector<double> cost;
};

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A11",
      "hot runs: 1 warm-up, median of `runs`; join-operator TRACE time "
      "for calibration, server wall time for the plan duels; estimates "
      "zip positionally with OpTraces",
      argc, argv);
  bool smoke = ctx.Smoke();
  ctx.properties().SetDefault("scaleFactor", smoke ? "0.002" : "0.02");
  ctx.properties().SetDefault("runs", smoke ? "3" : "5");
  ctx.PrintHeader(
      "cost-based optimizer: calibration, per-operator Q-error, "
      "optimizer vs best hand-picked plan");
  if (smoke) {
    std::printf("[smoke mode: tiny scale factor, few runs]\n\n");
  }
  double sf = ctx.properties().GetDouble("scaleFactor", 0.02);
  int runs = static_cast<int>(ctx.properties().GetInt("runs", 5));

  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  Status knobs = ctx.ApplyDbKnobs(&database);
  if (!knobs.ok()) {
    std::fprintf(stderr, "%s\n", knobs.ToString().c_str());
    return 2;
  }
  opt::CostModel model = opt::CostModel::Default();
  opt::StatsCatalog stats_catalog(database);
  opt::CardinalityEstimator estimator(stats_catalog, model, database);

  // ---- Part 1: cost-model calibration against measured TRACE times. ----
  const db::JoinAlgo kAlgos[] = {db::JoinAlgo::kLegacy, db::JoinAlgo::kHash,
                                 db::JoinAlgo::kRadix, db::JoinAlgo::kMerge};
  size_t cal_build = smoke ? 8192 : 65536;
  size_t cal_probe = cal_build * 4;
  db::Database cal_db;
  int64_t range = static_cast<int64_t>(cal_build) * 2;
  cal_db.RegisterTable("build", MakeKeyed(cal_build, range, 21));
  cal_db.RegisterTable("probe", MakeKeyed(cal_probe, range, 22));
  db::PlanPtr cal_plan =
      db::HashJoin(db::Scan("probe"), db::Scan("build"), "k", "k");
  double cal_out =
      static_cast<double>(cal_db.Run(cal_plan).table->num_rows());

  report::TextTable cal_table;
  cal_table.SetHeader({"algo", "measured join (ms)", "model (ms)",
                       "measured/model"});
  std::string cal_json;
  for (size_t ai = 0; ai < 4; ++ai) {
    db::JoinAlgo algo = kAlgos[ai];
    cal_db.set_join_algo(algo);
    (void)cal_db.Run(cal_plan);
    std::vector<double> samples;
    for (int r = 0; r < runs; ++r) {
      samples.push_back(JoinWallNs(cal_db.Run(cal_plan)));
    }
    double measured = stats::Median(samples);
    double predicted =
        model.JoinCost(algo, static_cast<double>(cal_probe),
                       static_cast<double>(cal_build), cal_out);
    cal_table.AddRow({db::JoinAlgoName(algo),
                      StrFormat("%.2f", measured / 1e6),
                      StrFormat("%.2f", predicted / 1e6),
                      StrFormat("%.2f", measured / predicted)});
    cal_json += StrFormat(
        "    %s{\"algo\": \"%s\", \"measured_ns\": %.0f, "
        "\"model_ns\": %.0f}",
        ai == 0 ? "" : ",\n", db::JoinAlgoName(algo), measured, predicted);
  }
  cal_db.set_join_algo(db::JoinAlgo::kRadix);

  // Re-fit the hash join's per-probe-row constant: join time vs probe
  // rows at fixed build side is a line whose slope the model names
  // hash_probe_ns + join_output_ns.
  std::vector<double> fit_x;
  std::vector<double> fit_y;
  cal_db.set_join_algo(db::JoinAlgo::kHash);
  for (size_t probe = cal_build; probe <= cal_probe; probe *= 2) {
    db::Database fit_db;
    fit_db.set_join_algo(db::JoinAlgo::kHash);
    fit_db.RegisterTable("build", MakeKeyed(cal_build, range, 21));
    fit_db.RegisterTable("probe", MakeKeyed(probe, range, 23));
    db::PlanPtr plan =
        db::HashJoin(db::Scan("probe"), db::Scan("build"), "k", "k");
    (void)fit_db.Run(plan);
    std::vector<double> samples;
    for (int r = 0; r < runs; ++r) {
      samples.push_back(JoinWallNs(fit_db.Run(plan)));
    }
    fit_x.push_back(static_cast<double>(probe));
    fit_y.push_back(stats::Median(samples));
  }
  cal_db.set_join_algo(db::JoinAlgo::kRadix);
  stats::LinearFit fit = stats::FitLinear(fit_x, fit_y);
  double model_slope = model.hash_probe_ns + model.join_output_ns;
  std::printf("%s\n", cal_table.ToString().c_str());
  std::printf(
      "hash-join probe slope: measured %.1f ns/row [%.1f, %.1f] "
      "(r^2 %.3f) vs model %.1f ns/row (hash_probe + join_output)\n"
      "absolute constants drift with the host; the DP only needs the "
      "*ordering* to hold, which parts 1 and 3 check.\n\n",
      fit.slope, fit.slope_ci.lower, fit.slope_ci.upper, fit.r_squared,
      model_slope);

  // ---- Part 2: per-operator Q-error over all 22 TPC-H plans. ----
  std::map<std::string, QErrorAccum> by_op;
  int estimated_nodes = 0;
  for (int q = 1; q <= 22; ++q) {
    db::PlanPtr plan = workload::GetTpchQuery(q).Build(database);
    std::vector<opt::NodeEstimate> estimates;
    estimator.EstimatePlan(*plan, &estimates);
    db::QueryResult result = database.Run(plan);
    const std::vector<db::OpTrace>& traces = result.profile.traces();
    if (estimates.size() != traces.size()) {
      std::fprintf(stderr,
                   "Q%d: %zu estimates vs %zu traces — zip broken\n", q,
                   estimates.size(), traces.size());
      return 2;
    }
    for (size_t i = 0; i < estimates.size(); ++i) {
      QErrorAccum& accum = by_op[estimates[i].op];
      accum.rows.push_back(
          QError(estimates[i].rows_out,
                 static_cast<double>(traces[i].rows_out)));
      if (estimates[i].cost_ns > 0.0 && traces[i].wall_ns > 0) {
        accum.cost.push_back(
            QError(estimates[i].cost_ns,
                   static_cast<double>(traces[i].wall_ns)));
      }
      ++estimated_nodes;
    }
  }
  report::TextTable q_table;
  q_table.SetHeader({"operator", "nodes", "rows q-err p50", "p90", "max",
                     "cost q-err p50"});
  std::string qerr_json;
  bool first = true;
  for (auto& [op, accum] : by_op) {
    std::vector<double> rows = accum.rows;
    std::sort(rows.begin(), rows.end());
    double p50 = stats::Median(rows);
    double p90 = rows[static_cast<size_t>(0.9 * (rows.size() - 1))];
    double mx = rows.back();
    double cost_p50 =
        accum.cost.empty() ? 0.0 : stats::Median(accum.cost);
    q_table.AddRow({op, std::to_string(rows.size()),
                    StrFormat("%.2f", p50), StrFormat("%.2f", p90),
                    StrFormat("%.1f", mx),
                    accum.cost.empty() ? "-" : StrFormat("%.1f", cost_p50)});
    qerr_json += StrFormat(
        "    %s{\"op\": \"%s\", \"nodes\": %zu, \"rows_q50\": %.3f, "
        "\"rows_q90\": %.3f, \"rows_max\": %.3f, \"cost_q50\": %.3f}",
        first ? "" : ",\n", op.c_str(), rows.size(), p50, p90, mx,
        cost_p50);
    first = false;
  }
  std::printf("per-operator Q-error over the 22 TPC-H plans (%d nodes)\n%s\n",
              estimated_nodes, q_table.ToString().c_str());
  std::printf(
      "expected shape: scans are near-exact (stats are exact counts), "
      "filters ride the histograms, errors compound multiplicatively "
      "through join stacks — the classic estimation cascade.\n\n");

  // ---- Part 3a: selectivity sweep — where plan choice starts to pay. ----
  const db::Schema& lineitem = database.GetTable("lineitem").schema();
  core::Series best_series{"best hand-picked", {}, {}, {}};
  core::Series opt_series{"optimizer", {}, {}, {}};
  report::TextTable sweep_table;
  sweep_table.SetHeader({"l_quantity <", "selectivity", "best hand (ms)",
                         "best algo", "optimizer (ms)", "opt/best",
                         "95% CI"});
  std::string sweep_json;
  uint64_t ci_seed = 100;
  const int64_t kThresholds[] = {3, 10, 25, 50};
  double lineitem_rows =
      static_cast<double>(database.GetTable("lineitem").num_rows());
  first = true;
  for (int64_t threshold : kThresholds) {
    db::ExprPtr pred =
        db::Lt(db::Col(lineitem, "l_quantity"), db::LitInt(threshold));
    db::PlanPtr rule_plan = db::Aggregate(
        db::HashJoin(
            db::HashJoin(db::FilterScan("lineitem", {}, pred),
                         db::Scan("orders"), "l_orderkey", "o_orderkey"),
            db::Scan("customer"), "o_custkey", "c_custkey"),
        {"c_mktsegment"},
        {{db::AggOp::kSum, db::Col(lineitem, "l_extendedprice"),
          "revenue"}});
    double selectivity =
        static_cast<double>(
            database
                .Run(db::FilterScan("lineitem", {"l_orderkey"}, pred))
                .table->num_rows()) /
        lineitem_rows;

    std::vector<double> best_samples;
    double best_median = 0.0;
    const char* best_algo = "";
    for (db::JoinAlgo algo : kAlgos) {
      database.set_join_algo(algo);
      std::vector<double> samples = PlanSamples(database, rule_plan, runs);
      double median = stats::Median(samples);
      if (best_samples.empty() || median < best_median) {
        best_samples = samples;
        best_median = median;
        best_algo = db::JoinAlgoName(algo);
      }
    }
    database.set_join_algo(db::JoinAlgo::kRadix);
    db::PlanPtr opt_plan = opt::Optimize(rule_plan, database).plan;
    std::vector<double> opt_samples = PlanSamples(database, opt_plan, runs);
    double opt_median = stats::Median(opt_samples);
    stats::ConfidenceInterval ratio =
        stats::BootstrapRatioCI(opt_samples, best_samples, 0.95, ci_seed++);
    sweep_table.AddRow(
        {StrFormat("%lld", (long long)threshold),
         StrFormat("%.3f", selectivity),
         StrFormat("%.2f", best_median / 1e6), best_algo,
         StrFormat("%.2f", opt_median / 1e6),
         StrFormat("%.2fx", opt_median / best_median),
         StrFormat("[%.2f, %.2f]", ratio.lower, ratio.upper)});
    best_series.Append(selectivity, best_median / 1e6);
    opt_series.Append(selectivity, opt_median / 1e6);
    sweep_json += StrFormat(
        "    %s{\"threshold\": %lld, \"selectivity\": %.4f, "
        "\"best_algo\": \"%s\", \"best_ns\": %.0f, \"opt_ns\": %.0f, "
        "\"best_over_opt\": %s}",
        first ? "" : ",\n", (long long)threshold, selectivity, best_algo,
        best_median, opt_median, CiJson(ratio).c_str());
    first = false;
  }
  std::printf("selectivity sweep (3-way join, hand-picked order)\n%s\n",
              sweep_table.ToString().c_str());

  report::ChartSpec sweep_chart;
  sweep_chart.title = "Optimizer vs best hand-picked plan";
  sweep_chart.x_label = "filter selectivity";
  sweep_chart.y_label = "server wall time (ms)";
  sweep_chart.logscale_y = true;
  sweep_chart.series = {best_series, opt_series};
  std::string sweep_stem = ctx.ResultPath("a11_selectivity");
  if (!report::WriteChart(sweep_chart, sweep_stem).ok()) {
    return 1;
  }
  ctx.AddOutput(sweep_stem + ".csv");

  // ---- Part 3b: the 22-query who-wins table. ----
  report::TextTable tpch_table;
  tpch_table.SetHeader({"query", "best hand (ms)", "best algo",
                        "optimizer (ms)", "opt/best", "95% CI",
                        "within 1.1x"});
  std::string tpch_json;
  int within = 0;
  first = true;
  for (int q = 1; q <= 22; ++q) {
    db::PlanPtr rule_plan = workload::GetTpchQuery(q).Build(database);
    std::vector<double> best_samples;
    double best_median = 0.0;
    const char* best_algo = "";
    for (db::JoinAlgo algo : kAlgos) {
      database.set_join_algo(algo);
      std::vector<double> samples = PlanSamples(database, rule_plan, runs);
      double median = stats::Median(samples);
      if (best_samples.empty() || median < best_median) {
        best_samples = samples;
        best_median = median;
        best_algo = db::JoinAlgoName(algo);
      }
    }
    database.set_join_algo(db::JoinAlgo::kRadix);
    db::PlanPtr opt_plan = opt::Optimize(rule_plan, database).plan;
    std::vector<double> opt_samples = PlanSamples(database, opt_plan, runs);
    double opt_median = stats::Median(opt_samples);
    double ratio_pt = opt_median / best_median;
    stats::ConfidenceInterval ratio =
        stats::BootstrapRatioCI(opt_samples, best_samples, 0.95, ci_seed++);
    bool ok = ratio_pt <= 1.1;
    within += ok ? 1 : 0;
    tpch_table.AddRow({StrFormat("Q%d", q),
                       StrFormat("%.2f", best_median / 1e6), best_algo,
                       StrFormat("%.2f", opt_median / 1e6),
                       StrFormat("%.2fx", ratio_pt),
                       StrFormat("[%.2f, %.2f]", ratio.lower, ratio.upper),
                       ok ? "yes" : "NO"});
    tpch_json += StrFormat(
        "    %s{\"query\": %d, \"best_algo\": \"%s\", \"best_ns\": %.0f, "
        "\"opt_ns\": %.0f, \"opt_over_best\": %.3f, "
        "\"best_over_opt_ci\": %s}",
        first ? "" : ",\n", q, best_algo, best_median, opt_median,
        ratio_pt, CiJson(ratio).c_str());
    first = false;
  }
  std::printf("TPC-H who-wins, optimizer vs best hand-picked\n%s\n",
              tpch_table.ToString().c_str());
  std::printf(
      "optimizer within 1.1x of the best hand-picked plan on %d/22 "
      "queries\n"
      "(the hand-picked side gets the best of %d global algorithms per "
      "query — an oracle no single static configuration achieves)\n\n",
      within, 4);

  std::string json = "{\n";
  json += "  \"experiment\": \"A11\",\n";
  json += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += StrFormat("  \"scale_factor\": %.4f,\n", sf);
  json += StrFormat("  \"runs\": %d,\n", runs);
  json += "  \"calibration\": [\n" + cal_json + "\n  ],\n";
  json += StrFormat(
      "  \"hash_probe_slope\": {\"measured_ns_per_row\": %.2f, "
      "\"lower\": %.2f, \"upper\": %.2f, \"r_squared\": %.4f, "
      "\"model_ns_per_row\": %.2f},\n",
      fit.slope, fit.slope_ci.lower, fit.slope_ci.upper, fit.r_squared,
      model_slope);
  json += "  \"qerror_per_operator\": [\n" + qerr_json + "\n  ],\n";
  json += "  \"selectivity_sweep\": [\n" + sweep_json + "\n  ],\n";
  json += "  \"tpch_crossover\": [\n" + tpch_json + "\n  ],\n";
  json += StrFormat("  \"within_1_1x\": %d,\n", within);
  json += "  \"queries\": 22\n";
  json += "}\n";

  std::string json_path = ctx.ResultPath("BENCH_optimizer.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  ctx.AddOutput(json_path);
  ctx.AddNote(StrFormat(
      "optimizer within 1.1x of best hand-picked on %d/22 TPC-H queries; "
      "hash-probe slope measured %.1f vs model %.1f ns/row",
      within, fit.slope, model_slope));
  ctx.Finish();
  return 0;
}
