// T7 — paper slides 56-66: how many experiments each classical design
// needs. Reproduces the slide-56 scenario (5 parameters, 10-40 values
// each: a full factorial needs ~10^5+ runs) and tabulates simple /
// full-factorial / 2^k / 2^(k-p) sizes.
//
// Note: slide 63 prints the full-factorial count as "1 + prod(ni)"; the
// correct count (Jain, ch. 16) is prod(ni) — we implement the latter and
// record the discrepancy in EXPERIMENTS.md.

#include <cstdio>

#include "bench_util.h"
#include "doe/design.h"
#include "report/table_format.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("T7", "combinatorial counting, no measurement",
                          argc, argv);
  ctx.PrintHeader("experiment counts of classical designs");

  // Slide 56's scenario.
  std::vector<size_t> levels = {10, 20, 30, 40, 25};
  std::printf("Scenario (slide 56): 5 parameters with 10..40 values\n");
  std::printf("  full factorial: %lld runs\n",
              static_cast<long long>(doe::FullFactorialRuns(levels)));
  std::printf("  simple (one-at-a-time): %lld runs\n",
              static_cast<long long>(doe::SimpleDesignRuns(levels)));
  std::printf("  2^k  (2 levels per factor): %lld runs\n",
              static_cast<long long>(doe::TwoLevelRuns(5)));
  std::printf("  2^(5-2) fraction: %lld runs\n\n",
              static_cast<long long>(doe::FractionalRuns(5, 2)));

  report::TextTable table;
  table.SetHeader({"k factors", "simple (3 levels)", "full 3^k", "2^k",
                   "2^(k-1)", "2^(k-2)"});
  for (size_t k = 2; k <= 7; ++k) {
    std::vector<size_t> three_levels(k, 3);
    table.AddRow(
        {std::to_string(k),
         std::to_string(doe::SimpleDesignRuns(three_levels)),
         std::to_string(doe::FullFactorialRuns(three_levels)),
         std::to_string(doe::TwoLevelRuns(k)),
         std::to_string(k >= 2 ? doe::FractionalRuns(k, 1) : 0),
         k >= 3 ? std::to_string(doe::FractionalRuns(k, 2)) : "-"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper's recommended two-stage approach: run a 2^k or 2^(k-p) "
      "design first, evaluate factor importance, then refine the\n"
      "important factors' levels (slides 59, 110-113).\n");

  ctx.Finish();
  return 0;
}
