// T8 — paper slide 142: "Plot random quantities without confidence
// intervals ... overlapping confidence intervals sometimes mean the two
// quantities are statistically indifferent."
// Two scenarios on live measurements of the database engine:
//  (a) two genuinely different configurations -> disjoint CIs, a winner;
//  (b) the same configuration measured twice under noise -> overlapping
//      CIs, verdict "statistically indifferent".

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "db/database.h"
#include "report/table_format.h"
#include "stats/compare.h"
#include "workload/micro.h"

namespace perfeval {
namespace {

/// Measures one filtered scan `repetitions` times (hot), returning
/// user-CPU samples in ms with deterministic pseudo-noise added to model
/// run-to-run variation at a controlled magnitude.
std::vector<double> MeasureScans(db::Database& database,
                                 const db::PlanPtr& plan, int repetitions,
                                 double noise_ms, uint64_t seed) {
  Pcg32 rng(seed);
  (void)database.Run(plan);  // warm-up.
  std::vector<double> samples;
  for (int i = 0; i < repetitions; ++i) {
    double ms = database.Run(plan).ServerUserMs();
    samples.push_back(ms + std::fabs(rng.NextGaussian()) * noise_ms);
  }
  return samples;
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("T8", "hot runs, 10 measured repetitions per side",
                          argc, argv);
  ctx.properties().SetDefault("rows", "400000");
  ctx.PrintHeader("confidence-interval overlap and verdicts");

  workload::MicroTableSpec spec;
  spec.name = "micro";
  spec.num_rows =
      static_cast<size_t>(ctx.properties().GetInt("rows", 400000));
  spec.columns.push_back({"v", workload::Distribution::kUniform, 0,
                          1'000'000, 1.0, 0.0});
  db::Database database;
  database.RegisterTable("micro", workload::GenerateMicroTable(spec));
  const db::Schema& schema = database.GetTable("micro").schema();

  // (a) Cheap vs expensive plan: selectivity 10% vs 90% of a scan.
  db::PlanPtr cheap = db::FilterScan(
      "micro", {"v"},
      workload::PredicateForSelectivity(database.GetTable("micro"), "v",
                                        0.1));
  db::PlanPtr expensive = db::Filter(
      db::FilterScan("micro", {"v"},
                     workload::PredicateForSelectivity(
                         database.GetTable("micro"), "v", 0.9)),
      db::Ge(db::Col(schema, "v"), db::LitInt(0)));

  std::vector<double> mine = MeasureScans(database, cheap, 10, 0.02, 1);
  std::vector<double> yours =
      MeasureScans(database, expensive, 10, 0.02, 2);
  stats::Comparison different = stats::CompareUnpaired(mine, yours, 0.95);
  std::printf("(a) different plans:\n    %s\n\n",
              different.ToString().c_str());

  // (b) The same plan measured twice with noise comparable to the
  // difference: no legitimate winner.
  std::vector<double> run1 = MeasureScans(database, cheap, 10, 0.8, 3);
  std::vector<double> run2 = MeasureScans(database, cheap, 10, 0.8, 4);
  stats::Comparison same = stats::CompareUnpaired(run1, run2, 0.95);
  std::printf("(b) same plan, noisy runs:\n    %s\n\n",
              same.ToString().c_str());

  stats::ConfidenceInterval ci1 = stats::MeanConfidenceInterval(run1, 0.95);
  stats::ConfidenceInterval ci2 = stats::MeanConfidenceInterval(run2, 0.95);
  std::printf("    MINE:  %s\n    YOURS: %s\n    intervals overlap: %s\n\n",
              ci1.ToString().c_str(), ci2.ToString().c_str(),
              ci1.Overlaps(ci2) ? "YES" : "NO");
  std::printf(
      "paper: overlapping confidence intervals sometimes mean the two "
      "quantities are statistically indifferent — claiming \"MINE is "
      "better\" from (b) would be a pictorial game.\n");

  bool shape = different.verdict == stats::Verdict::kAIsBetter &&
               same.verdict == stats::Verdict::kIndifferent;
  ctx.Finish();
  return shape ? 0 : 1;
}
