// A6 — the scheduler's contract, demonstrated: running the same experiment
// with jobs=1 and jobs=4, under all three run orders, produces bit-identical
// results. The workload is a synthetic virtual-time response (a function of
// the design point plus noise drawn from the trial's own seeded RNG stream),
// i.e. the kind of simulation-bound trial IsolationPolicy::kConcurrent is
// for — its response cannot be perturbed by a neighbouring worker, so any
// difference between schedules would be a scheduler bug, not interference.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "report/csv.h"
#include "report/table_format.h"
#include "sched/scheduler.h"

namespace perfeval {
namespace {

/// Virtual-time response: base cost from the configuration plus seeded
/// noise — deterministic per (experiment, point, replication).
core::Measurement SyntheticTrial(const doe::DesignPoint& point,
                                 const core::TrialSpec& spec) {
  Pcg32 rng(spec.seed);
  double base_ms = 20.0 + 40.0 * static_cast<double>(point.levels[0]) +
                   15.0 * static_cast<double>(point.levels[1]) +
                   5.0 * static_cast<double>(point.levels[2]);
  double noise_ms = rng.NextGaussian() * 2.0;
  core::Measurement m;
  m.simulated_stall_ns =
      static_cast<int64_t>((base_ms + noise_ms) * 1e6);
  return m;
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A6", "synthetic virtual-time trials, 5 replications, mean",
      argc, argv);
  ctx.PrintHeader(
      "scheduler determinism: jobs=1 vs jobs=4 under all run orders");

  doe::Design design = doe::TwoLevelFullFactorial(
      {doe::Factor::TwoLevel("A", "lo", "hi"),
       doe::Factor::TwoLevel("B", "lo", "hi"),
       doe::Factor::TwoLevel("C", "lo", "hi")});
  core::RunProtocol protocol;
  protocol.warmup_runs = 0;
  protocol.measured_runs = 5;
  protocol.aggregation = core::Aggregation::kMean;

  // The serial reference: 1 job, design order.
  sched::Options reference_options;
  reference_options.experiment_id = "A6";
  reference_options.jobs = 1;
  reference_options.isolation = core::IsolationPolicy::kConcurrent;
  sched::Scheduler reference(reference_options);
  Result<core::ExperimentResult> reference_result =
      reference.Run(design, protocol, core::ResponseMetric::kObservedRealMs,
                    SyntheticTrial);
  if (!reference_result.ok()) {
    std::fprintf(stderr, "reference run failed: %s\n",
                 reference_result.status().ToString().c_str());
    return 1;
  }
  std::vector<double> reference_y = reference_result->AggregatedResponses();

  report::TextTable table;
  table.SetHeader({"schedule", "max |delta| (ms)", "bit-identical"});
  report::CsvWriter csv({"jobs", "order", "max_abs_delta", "identical"});
  bool all_identical = true;
  for (core::RunOrder order :
       {core::RunOrder::kDesignOrder, core::RunOrder::kRandomized,
        core::RunOrder::kInterleaved}) {
    for (int jobs : {1, 4}) {
      sched::Options options;
      options.experiment_id = "A6";
      options.jobs = jobs;
      options.order = order;
      options.isolation = core::IsolationPolicy::kConcurrent;
      options.seed = 42;
      sched::Scheduler scheduler(options);
      Result<core::ExperimentResult> result = scheduler.Run(
          design, protocol, core::ResponseMetric::kObservedRealMs,
          SyntheticTrial);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::vector<double> y = result->AggregatedResponses();
      double max_delta = 0.0;
      bool identical = true;
      for (size_t i = 0; i < y.size(); ++i) {
        double delta = y[i] - reference_y[i];
        if (delta < 0) {
          delta = -delta;
        }
        if (delta > max_delta) {
          max_delta = delta;
        }
        // Bit-identity, not epsilon-closeness: the scheduler's claim.
        identical = identical && y[i] == reference_y[i];
      }
      all_identical = all_identical && identical;
      table.AddRow({StrFormat("%d job(s), %s order", jobs,
                              core::RunOrderName(order)),
                    StrFormat("%.17g", max_delta),
                    identical ? "YES" : "NO"});
      csv.AddRow({StrFormat("%d", jobs), core::RunOrderName(order),
                  StrFormat("%.17g", max_delta), identical ? "1" : "0"});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "every schedule reproduces the serial reference exactly: %s\n"
      "(per-trial seeds are hash(experiment, point, replication); results "
      "are reassembled into design order before aggregation — so --jobs "
      "and --order are pure throughput/assignment knobs, never part of the "
      "result.)\n",
      all_identical ? "YES" : "NO");

  std::string csv_path = ctx.ResultPath("a6_sched_determinism.csv");
  if (!csv.WriteToFile(csv_path).ok()) {
    return 1;
  }
  ctx.AddOutput(csv_path);
  ctx.Finish();
  return all_identical ? 0 : 1;
}
