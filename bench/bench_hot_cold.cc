// T2 — paper slides 33-36: hot vs. cold runs, user vs. real time.
// Reproduces the shape of the paper's Q1 table: cold real time is several
// times the hot real time (the buffer pool must be read from disk), while
// user CPU time barely changes.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "db/database.h"
#include "report/csv.h"
#include "report/table_format.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "T2",
      "cold: buffer pool flushed before the measured run; hot: measured "
      "last of three consecutive runs",
      argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.02");
  ctx.properties().SetDefault("query", "1");
  ctx.PrintHeader("hot vs cold runs, user vs real time");

  double sf = ctx.properties().GetDouble("scaleFactor", 0.02);
  int query = static_cast<int>(ctx.properties().GetInt("query", 1));
  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  std::printf("TPC-H scale factor %.3g, query Q%d\n\n", sf, query);

  db::PlanPtr plan = workload::GetTpchQuery(query).Build(database);

  // Cold run: flush everything first (the paper's "system reboot").
  database.FlushCaches();
  db::QueryResult cold = database.Run(plan);

  // Hot run: last of three consecutive runs.
  db::QueryResult hot;
  for (int run = 0; run < 3; ++run) {
    hot = database.Run(plan);
  }

  report::TextTable table;
  table.SetHeader({"Q", "cold user", "cold real", "hot user", "hot real"});
  table.AddRow({std::to_string(query),
                StrFormat("%.0f ms", cold.ServerUserMs()),
                StrFormat("%.0f ms", cold.ServerRealMs()),
                StrFormat("%.0f ms", hot.ServerUserMs()),
                StrFormat("%.0f ms", hot.ServerRealMs())});
  std::printf("%s\n", table.ToString().c_str());

  double real_ratio = cold.ServerRealMs() / hot.ServerRealMs();
  std::printf("cold real / hot real = %.1fx  (paper: 13243/3534 = 3.7x)\n",
              real_ratio);
  std::printf("cold stall (simulated disk): %.0f ms of %.0f ms real\n\n",
              cold.server.simulated_stall_ns / 1e6, cold.ServerRealMs());
  std::printf("Buffer pool after cold run:\n%s\n",
              database.storage().stats().ToString().c_str());

  report::CsvWriter csv({"state", "user_ms", "real_ms"});
  csv.AddRow({"cold", StrFormat("%.3f", cold.ServerUserMs()),
              StrFormat("%.3f", cold.ServerRealMs())});
  csv.AddRow({"hot", StrFormat("%.3f", hot.ServerUserMs()),
              StrFormat("%.3f", hot.ServerRealMs())});
  std::string csv_path = ctx.ResultPath("t2_hot_cold.csv");
  if (!csv.WriteToFile(csv_path).ok()) {
    return 1;
  }
  ctx.AddOutput(csv_path);
  ctx.Finish();
  return 0;
}
