// Micro-benchmarks (Google Benchmark) for the library's own hot paths —
// the "CSI" side of the paper (slide 18: find out where the time goes):
// per-tuple vs vectorized expression evaluation, the LIKE matcher, sign
// table algebra, the cache and network simulators, RNGs, parsing, and
// report rendering. Run with --benchmark_filter=... to drill into one.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "common/zipf.h"
#include "db/expr.h"
#include "db/table.h"
#include "doe/effects.h"
#include "doe/sign_table.h"
#include "hwsim/cache.h"
#include "netsim/omega.h"
#include "report/csv.h"
#include "sql/parser.h"
#include "stats/histogram.h"
#include "stats/tdist.h"

namespace perfeval {
namespace {

void BM_Pcg32Next(benchmark::State& state) {
  Pcg32 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_Pcg32Next);

void BM_ZipfDraw(benchmark::State& state) {
  ZipfGenerator zipf(static_cast<uint64_t>(state.range(0)), 1.0);
  Pcg32 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfDraw)->Arg(1000)->Arg(100000);

void BM_StudentTCritical(benchmark::State& state) {
  double df = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::TwoSidedTCritical(0.95, df));
    df = df >= 120.0 ? 1.0 : df + 1.0;
  }
}
BENCHMARK(BM_StudentTCritical);

void BM_HistogramAdd(benchmark::State& state) {
  stats::Histogram histogram(0.0, 1.0, 20);
  Pcg32 rng(3);
  for (auto _ : state) {
    histogram.Add(rng.NextDouble());
  }
}
BENCHMARK(BM_HistogramAdd);

void BM_SignTableColumn(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  doe::SignTable table = doe::SignTable::FullFactorial(k);
  doe::EffectMask effect = (doe::EffectMask{1} << k) - 1;  // highest order.
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Column(effect));
  }
}
BENCHMARK(BM_SignTableColumn)->Arg(6)->Arg(10);

void BM_EstimateEffects(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  doe::SignTable table = doe::SignTable::FullFactorial(k);
  Pcg32 rng(4);
  std::vector<double> y;
  for (size_t i = 0; i < table.num_runs(); ++i) {
    y.push_back(rng.NextDouble());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(doe::EstimateEffects(table, y));
  }
}
BENCHMARK(BM_EstimateEffects)->Arg(4)->Arg(8);

/// The DBG/OPT gap in isolation: one arithmetic expression over 64k rows.
db::Table MakeNumericTable(size_t rows) {
  db::Table table(db::Schema({{"price", db::DataType::kDouble},
                              {"discount", db::DataType::kDouble}}));
  Pcg32 rng(5);
  for (size_t i = 0; i < rows; ++i) {
    table.column(0).AppendDouble(rng.NextDoubleInRange(1.0, 1000.0));
    table.column(1).AppendDouble(rng.NextDoubleInRange(0.0, 0.1));
  }
  table.FinishBulkLoad();
  return table;
}

void BM_ExprScalarEval(benchmark::State& state) {
  db::Table table = MakeNumericTable(65536);
  db::ExprPtr expr =
      db::Mul(db::Col(table.schema(), "price"),
              db::Sub(db::LitDouble(1.0),
                      db::Col(table.schema(), "discount")));
  for (auto _ : state) {
    double sum = 0.0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      sum += expr->EvalRow(table, r).AsDouble();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_rows()));
}
BENCHMARK(BM_ExprScalarEval);

void BM_ExprBatchEval(benchmark::State& state) {
  db::Table table = MakeNumericTable(65536);
  db::ExprPtr expr =
      db::Mul(db::Col(table.schema(), "price"),
              db::Sub(db::LitDouble(1.0),
                      db::Col(table.schema(), "discount")));
  std::vector<uint32_t> rows(table.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<uint32_t>(i);
  }
  std::vector<double> out;
  for (auto _ : state) {
    expr->EvalNumericBatch(table, rows, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_rows()));
}
BENCHMARK(BM_ExprBatchEval);

void BM_LikeMatch(benchmark::State& state) {
  db::Table table(db::Schema({{"s", db::DataType::kString}}));
  table.AppendRow({db::Value::String("special packages above requests")});
  db::ExprPtr pred =
      db::Like(db::Col(table.schema(), "s"), "%special%requests%");
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred->EvalBool(table, 0));
  }
}
BENCHMARK(BM_LikeMatch);

void BM_CacheSimSequential(benchmark::State& state) {
  hwsim::MemoryHierarchy hierarchy(
      {{"L1", 32 * 1024, 64, 4, 1}, {"L2", 1024 * 1024, 64, 8, 10}}, 0.5,
      100.0);
  uint64_t address = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy.AccessNs(address));
    address += 8;
  }
}
BENCHMARK(BM_CacheSimSequential);

void BM_OmegaArbitrate(benchmark::State& state) {
  netsim::OmegaNetwork omega(static_cast<int>(state.range(0)));
  Pcg32 rng(6);
  std::vector<netsim::Request> requests;
  for (int p = 0; p < state.range(0); ++p) {
    requests.push_back(
        {p, static_cast<int>(rng.NextBounded(
                static_cast<uint32_t>(state.range(0)))),
         0});
  }
  std::vector<bool> granted;
  for (auto _ : state) {
    omega.Arbitrate(requests, &granted);
    benchmark::DoNotOptimize(granted.size());
  }
}
BENCHMARK(BM_OmegaArbitrate)->Arg(16)->Arg(64);

void BM_SqlParse(benchmark::State& state) {
  const std::string sql_text =
      "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, "
      "sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
      "count(*) AS n FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
      "AND l_discount BETWEEN 0.05 AND 0.07 "
      "GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag LIMIT 10";
  for (auto _ : state) {
    Result<sql::SelectStatement> parsed = sql::Parse(sql_text);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_SqlParse);

void BM_CsvRender(benchmark::State& state) {
  for (auto _ : state) {
    report::CsvWriter writer({"a", "b", "c"});
    for (int i = 0; i < 100; ++i) {
      writer.AddNumericRow({i * 1.0, i * 2.0, i * 3.0});
    }
    benchmark::DoNotOptimize(writer.ToString());
  }
}
BENCHMARK(BM_CsvRender);

}  // namespace
}  // namespace perfeval

BENCHMARK_MAIN();
