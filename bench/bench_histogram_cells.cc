// F4 — paper slide 144: manipulating cell size in histograms.
// The same 36-point response-time sample rendered with 6 cells (violating
// the >= 5 points/cell rule of thumb) and with 2 cells (satisfying it),
// with the linter flagging the former.

#include <cstdio>

#include "bench_util.h"
#include "report/chart_lint.h"
#include "stats/histogram.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("F4", "fixed 36-point sample from the slide",
                          argc, argv);
  ctx.PrintHeader("histogram cell-size manipulation");

  // The slide's 6-cell histogram reads 2, 6, 12, 8, 6, 2 over
  // [0,2), [2,4), ..., [10,12).
  std::vector<double> sample;
  const int kCounts[6] = {2, 6, 12, 8, 6, 2};
  for (int cell = 0; cell < 6; ++cell) {
    for (int i = 0; i < kCounts[cell]; ++i) {
      sample.push_back(cell * 2.0 + 0.5 + i * (1.4 / kCounts[cell]));
    }
  }
  std::printf("sample: %zu response-time observations in [0, 12)\n\n",
              sample.size());

  stats::Histogram fine(0.0, 12.0, 6);
  fine.AddAll(sample);
  std::printf("6 cells of width 2:\n%s\n", fine.ToString().c_str());
  std::printf("%s\n", report::FindingsToString(
                          report::LintHistogram(fine)).c_str());

  stats::Histogram coarse(0.0, 12.0, 2);
  coarse.AddAll(sample);
  std::printf("2 cells of width 6:\n%s\n", coarse.ToString().c_str());
  std::vector<report::LintFinding> coarse_findings =
      report::LintHistogram(coarse);
  std::printf("%s\n", coarse_findings.empty()
                          ? "(clean — every cell has >= 5 points)\n"
                          : report::FindingsToString(coarse_findings)
                                .c_str());

  std::printf(
      "paper: the rule of thumb (>= 5 points per cell) flags the first "
      "rendering, but is \"not sufficient to uniquely determine what one "
      "should do\".\n");

  bool shape = !report::LintHistogram(fine).empty() &&
               coarse_findings.empty() &&
               coarse.cells()[0].count == 20 &&
               coarse.cells()[1].count == 16;
  ctx.Finish();
  return shape ? 0 : 1;
}
