// F3 — paper slides 115-148: presentation guidelines. Builds the slide
// deck's bad-chart patterns as ChartSpecs and shows the linter catching
// each one, plus a clean chart passing.

#include <cstdio>

#include "bench_util.h"
#include "report/chart_lint.h"

namespace perfeval {
namespace {

core::Series Line(const std::string& name, double scale = 1.0) {
  core::Series series;
  series.name = name;
  for (int i = 1; i <= 5; ++i) {
    series.Append(i, scale * (10.0 + 2.0 * i));
  }
  return series;
}

void Report(const char* label, const report::ChartSpec& spec) {
  std::vector<report::LintFinding> findings = report::LintChart(spec);
  std::printf("--- %s ---\n", label);
  if (findings.empty()) {
    std::printf("(clean)\n\n");
  } else {
    std::printf("%s\n", report::FindingsToString(findings).c_str());
  }
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("F3", "static analysis of chart specifications",
                          argc, argv);
  ctx.PrintHeader("chart-guideline linter on the paper's examples");

  int caught = 0;

  // Slide 118-121: an overloaded chart nobody can read.
  report::ChartSpec crowded;
  crowded.title = "Response time";
  crowded.x_label = "Number of users";
  crowded.y_label = "Response time (ms)";
  for (int i = 0; i < 9; ++i) {
    crowded.series.push_back(Line("variant " + std::to_string(i)));
  }
  Report("slide 118: too many alternatives on one chart", crowded);
  caught += !report::LintChart(crowded).empty();

  // Slide 129: response time + utilization + throughput on one chart.
  report::ChartSpec mixed;
  mixed.title = "Everything at once";
  mixed.x_label = "Number of users";
  mixed.y_label = "Response time (ms)";
  mixed.series = {Line("Response time", 1.0), Line("Utilization", 0.001),
                  Line("Throughput", 1000.0)};
  Report("slide 129: many result variables on a single chart", mixed);
  caught += !report::LintChart(mixed).empty();

  // Slide 131: symbols in place of text.
  report::ChartSpec symbolic;
  symbolic.title = "Response time";
  symbolic.x_label = "Arrival rate (jobs/sec)";
  symbolic.y_label = "Response time (ms)";
  symbolic.series = {Line("mu=1"), Line("mu=2"), Line("mu=3")};
  Report("slide 131: symbols in place of text (mental join)", symbolic);
  caught += !report::LintChart(symbolic).empty();

  // Slide 138: "MINE is better than YOURS" via a non-zero y origin.
  report::ChartSpec zoomed;
  zoomed.title = "MINE is better than YOURS";
  zoomed.x_label = "system";
  zoomed.y_label = "Execution time (ms)";
  zoomed.allow_nonzero_y_origin = true;
  zoomed.series = {Line("MINE", 1.0), Line("YOURS", 1.002)};
  Report("slide 138: y axis not starting at 0", zoomed);
  caught += !report::LintChart(zoomed).empty();

  // Slide 122: labels without units.
  report::ChartSpec unitless;
  unitless.title = "CPU time";
  unitless.x_label = "Scale factor";
  unitless.y_label = "CPU time";
  unitless.series = {Line("Q1")};
  Report("slide 122: axis label without a unit", unitless);
  caught += !report::LintChart(unitless).empty();

  // A chart following all the guidelines.
  report::ChartSpec clean;
  clean.title = "Execution time for various scale factors";
  clean.x_label = "Scale factor";
  clean.y_label = "Execution time (ms)";
  clean.series = {Line("hash join"), Line("merge join", 1.3)};
  Report("clean chart (all guidelines followed)", clean);
  bool clean_passes = report::LintChart(clean).empty();

  std::printf("bad patterns caught: %d of 5; clean chart passes: %s\n",
              caught, clean_passes ? "YES" : "NO");
  ctx.Finish();
  return caught == 5 && clean_passes ? 0 : 1;
}
