// A5 — the paper's comparison metrics "Scale-up / Speed-up" (slide 22).
// Sweeps the TPC-H scale factor and measures Q1 (scan+aggregate) and Q3
// (join-heavy), fits time = a + b * sf by least squares, and reports
// scale-up efficiency relative to the smallest size (1.0 = perfectly
// linear). Sub-linear efficiency appears exactly when a working set stops
// fitting in a cache level — which is why the paper wants the sweep, not a
// single point.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "report/csv.h"
#include "report/gnuplot.h"
#include "report/table_format.h"
#include "stats/compare.h"
#include "stats/descriptive.h"
#include "stats/regression.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace {

double MinUserMs(db::Database& database, const db::PlanPtr& plan) {
  (void)database.Run(plan);
  std::vector<double> samples;
  for (int i = 0; i < 3; ++i) {
    samples.push_back(database.Run(plan).ServerUserMs());
  }
  return stats::Min(samples);
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("A5",
                          "hot runs: 1 warm-up, minimum of 3, user CPU time",
                          argc, argv);
  ctx.PrintHeader("scale-up: query time vs TPC-H scale factor");

  const std::vector<double> scale_factors = {0.005, 0.01, 0.02, 0.04};
  report::TextTable table;
  table.SetHeader({"sf", "lineitem rows", "Q1 (ms)", "Q1 scale-up eff",
                   "Q3 (ms)", "Q3 scale-up eff"});
  core::Series q1_series{"Q1 scan+aggregate", {}, {}, {}};
  core::Series q3_series{"Q3 join-heavy", {}, {}, {}};
  report::CsvWriter csv({"sf", "rows", "q1_ms", "q3_ms"});

  double base_rows = 0.0;
  double base_q1 = 0.0;
  double base_q3 = 0.0;
  std::vector<double> xs;
  std::vector<double> q1_times;
  for (double sf : scale_factors) {
    db::Database database;
    workload::TpchGenerator gen(sf);
    gen.LoadAll(&database);
    double rows =
        static_cast<double>(database.GetTable("lineitem").num_rows());
    double q1 =
        MinUserMs(database, workload::GetTpchQuery(1).Build(database));
    double q3 =
        MinUserMs(database, workload::GetTpchQuery(3).Build(database));
    if (base_rows == 0.0) {
      base_rows = rows;
      base_q1 = q1;
      base_q3 = q3;
    }
    double q1_eff = stats::ScaleupEfficiency(base_rows, base_q1, rows, q1);
    double q3_eff = stats::ScaleupEfficiency(base_rows, base_q3, rows, q3);
    table.AddRow({StrFormat("%.3f", sf), StrFormat("%.0f", rows),
                  StrFormat("%.2f", q1), StrFormat("%.2f", q1_eff),
                  StrFormat("%.2f", q3), StrFormat("%.2f", q3_eff)});
    q1_series.Append(rows, q1);
    q3_series.Append(rows, q3);
    csv.AddNumericRow({sf, rows, q1, q3});
    xs.push_back(rows);
    q1_times.push_back(q1);
  }
  std::printf("%s\n", table.ToString().c_str());

  stats::LinearFit fit = stats::FitLinear(xs, q1_times);
  std::printf("Q1 cost model: %s\n", fit.ToString().c_str());
  std::printf("  per-row cost: %.1f ns (slope), fixed cost: %.2f ms\n",
              fit.slope * 1e6, fit.intercept);
  std::printf(
      "\nshape: Q1 scales near-linearly (r^2 close to 1, efficiency near "
      "1.0); the join-heavy Q3's efficiency drifts below 1.0 as hash "
      "tables outgrow cache levels.\n");

  report::ChartSpec chart;
  chart.title = "Query time vs data size";
  chart.x_label = "lineitem rows";
  chart.y_label = "user CPU time (ms)";
  chart.logscale_x = true;
  chart.logscale_y = true;
  chart.series = {q1_series, q3_series};
  std::string stem = ctx.ResultPath("a5_scaleup");
  if (!report::WriteChart(chart, stem).ok()) {
    return 1;
  }
  ctx.AddOutput(stem + ".csv");
  ctx.Finish();
  return fit.r_squared > 0.98 ? 0 : 1;
}
