// F5 — paper slides 218-220: how SIGMOD 2008 repeatability went.
// The slides give exact totals (78 accepted papers, 11 rejected verified,
// 64 verified in total; 298 of 436 submissions provided code) and pie
// charts without printed percentages. We bundle per-category counts read
// off the pies (documented as estimates in EXPERIMENTS.md) and reproduce
// the aggregation with proportion confidence intervals — the analysis the
// paper itself recommends for random quantities.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "report/table_format.h"
#include "stats/confidence.h"

namespace perfeval {
namespace {

struct Category {
  const char* label;
  int64_t count;
};

void PrintGroup(const char* title, const std::vector<Category>& categories,
                int64_t expected_total) {
  int64_t total = 0;
  for (const Category& c : categories) {
    total += c.count;
  }
  std::printf("--- %s (%lld papers) ---\n", title,
              static_cast<long long>(total));
  report::TextTable table;
  table.SetHeader({"outcome", "papers", "share", "95% CI"});
  for (const Category& c : categories) {
    stats::ConfidenceInterval ci =
        stats::ProportionConfidenceInterval(c.count, total, 0.95);
    table.AddRow({c.label, std::to_string(c.count),
                  StrFormat("%.0f%%", ci.mean * 100.0),
                  StrFormat("[%.0f%%, %.0f%%]", ci.lower * 100.0,
                            ci.upper * 100.0)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("total matches the slide: %s\n\n",
              total == expected_total ? "YES" : "NO");
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("F5", "bundled survey counts, no measurement",
                          argc, argv);
  ctx.PrintHeader("SIGMOD 2008 repeatability assessment outcomes");

  std::printf(
      "context (slide 2): 298 of 436 submitted papers provided code for "
      "repeatability testing.\n\n");

  // Slide 218: accepted papers (78). Category counts estimated from the
  // pie chart; the total is the slide's.
  PrintGroup("Accepted papers",
             {{"all experiments repeated", 33},
              {"some repeated", 17},
              {"none repeated", 10},
              {"excuse", 8},
              {"no submission", 10}},
             78);

  // Slide 219: rejected verified papers (11).
  PrintGroup("Rejected verified papers",
             {{"all experiments repeated", 5},
              {"some repeated", 4},
              {"none repeated", 2}},
             11);

  // Slide 220: all verified papers (64).
  PrintGroup("All verified papers",
             {{"all experiments repeated", 38},
              {"some repeated", 21},
              {"none repeated", 5}},
             64);

  std::printf(
      "shape: a majority of verified papers could be fully repeated, a "
      "substantial minority only partially — the basis for the paper's "
      "conclusion that repeatability \"can be done\" (slide 234).\n");
  ctx.AddNote("per-category counts are estimates read off the pie charts; "
              "group totals are the slides' exact numbers");
  ctx.Finish();
  return 0;
}
