// A9 — the write path measured (DESIGN.md S15). Three panels:
//
//  1. ingest rate vs commit batch size: every commit pays one fsync
//     (seek + unsynced bytes), so rows/s on the observed clock — real
//     CPU time plus the DiskModel's simulated write stall — should rise
//     with batch size until the per-row WAL encoding cost dominates. A
//     group-commit cell commits from several threads at once and reports
//     fsyncs per commit < 1, the amortization WalWriter::SyncUpTo buys.
//  2. recovery time vs WAL length: Open() replays the log, so recovery
//     should be linear in committed records — and a checkpoint resets
//     the line to (checkpoint load + short tail), which is the whole
//     point of taking one.
//  3. read latency under concurrent ingest: the same closed-loop driver
//     as A8 runs against serve::QueryService twice — once on a quiet
//     database and once while a background writer commits batches into
//     lineitem — and reports the p50/p99 shift with bootstrap CIs.
//     Queries fold freshly committed deltas in via the refresh hook, so
//     the shift prices the merge, not just lock contention.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/metrics.h"
#include "core/timer.h"
#include "db/database.h"
#include "report/gnuplot.h"
#include "report/svg.h"
#include "report/table_format.h"
#include "serve/loadgen.h"
#include "serve/service.h"
#include "stats/confidence.h"
#include "txn/store.h"
#include "txn/vdisk.h"
#include "workload/tpch_gen.h"

namespace perfeval {
namespace {

constexpr double kConfidence = 0.95;

void Require(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// The ingest target: a two-column table over a pristine database, the
/// smallest catalog a DeltaStore can mutate.
std::unique_ptr<db::Database> MakeIngestDb() {
  auto database = std::make_unique<db::Database>();
  auto events = std::make_shared<db::Table>(db::Schema(
      {{"id", db::DataType::kInt64}, {"v", db::DataType::kDouble}}));
  events->AppendRow({db::Value::Int64(0), db::Value::Double(0.0)});
  database->RegisterTable("events", std::move(events));
  return database;
}

std::vector<std::vector<db::Value>> Batch(int64_t start, int rows) {
  std::vector<std::vector<db::Value>> out;
  out.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    out.push_back({db::Value::Int64(start + i),
                   db::Value::Double(static_cast<double>(start + i) * 0.5)});
  }
  return out;
}

/// Commits `commits` batches of `rows_per_commit` into a fresh store and
/// returns rows/s on the observed clock (real + simulated write stall).
double IngestOnce(int commits, int rows_per_commit, db::StorageStats* stats) {
  std::unique_ptr<db::Database> database = MakeIngestDb();
  txn::VirtualDisk disk;
  txn::DeltaStore store(database.get(), &disk);
  Require(store.Open(), "DeltaStore::Open");
  disk.ResetStats();
  core::WallTimer timer;
  int64_t next_id = 1;
  for (int c = 0; c < commits; ++c) {
    uint64_t txn = store.Begin();
    Require(store.BufferInsert(txn, "events", Batch(next_id, rows_per_commit)),
            "BufferInsert");
    Require(store.Commit(txn), "Commit");
    next_id += rows_per_commit;
  }
  double real_s = timer.ElapsedSeconds();
  *stats = disk.stats();
  double observed_s = real_s + static_cast<double>(stats->write_stall_ns) / 1e9;
  return static_cast<double>(commits) * rows_per_commit / observed_s;
}

struct IngestCell {
  int batch_rows = 0;
  stats::ConfidenceInterval rows_per_sec;
  double fsyncs_per_commit = 0.0;
  double wal_bytes_per_row = 0.0;
};

struct RecoveryCell {
  int commits = 0;
  bool checkpointed = false;
  size_t wal_bytes = 0;
  uint64_t records_replayed = 0;
  stats::ConfidenceInterval recover_ms;
};

/// Builds `commits` batches of durable state (optionally checkpointing,
/// then committing a short tail), then measures Open() from a fresh
/// pristine database `reps` times.
RecoveryCell MeasureRecovery(int commits, bool checkpointed, int reps) {
  RecoveryCell cell;
  cell.commits = commits;
  cell.checkpointed = checkpointed;
  txn::VirtualDisk disk;
  {
    std::unique_ptr<db::Database> database = MakeIngestDb();
    txn::DeltaStore store(database.get(), &disk);
    Require(store.Open(), "DeltaStore::Open");
    int64_t next_id = 1;
    for (int c = 0; c < commits; ++c) {
      uint64_t txn = store.Begin();
      Require(store.BufferInsert(txn, "events", Batch(next_id, 8)),
              "BufferInsert");
      Require(store.Commit(txn), "Commit");
      next_id += 8;
    }
    if (checkpointed) {
      Require(store.Checkpoint(), "Checkpoint");
      for (int c = 0; c < 8; ++c) {
        uint64_t txn = store.Begin();
        Require(store.BufferInsert(txn, "events", Batch(next_id, 8)),
                "BufferInsert");
        Require(store.Commit(txn), "Commit");
        next_id += 8;
        cell.commits = commits + c + 1;
      }
    }
    cell.wal_bytes = disk.Size("wal.log");
  }
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    disk.Reopen();  // power-off: volatile state gone, durable state kept.
    std::unique_ptr<db::Database> pristine = MakeIngestDb();
    txn::DeltaStore recovered(pristine.get(), &disk);
    core::WallTimer timer;
    Require(recovered.Open(), "recovery Open");
    samples.push_back(timer.ElapsedMs());
    cell.records_replayed = recovered.stats().wal_records_replayed;
  }
  cell.recover_ms = stats::MeanConfidenceInterval(samples, kConfidence);
  return cell;
}

struct PercentileRow {
  double ms = 0.0;
  stats::ConfidenceInterval ci;  ///< in ms.
};

PercentileRow Pct(const serve::LatencyHistogram& latency, double percentile,
                  uint64_t ci_seed, int resamples) {
  PercentileRow row;
  row.ms = latency.ValueAtPercentile(percentile) / 1e6;
  stats::ConfidenceInterval ci =
      latency.PercentileCI(percentile, kConfidence, ci_seed, resamples);
  ci.mean /= 1e6;
  ci.lower /= 1e6;
  ci.upper /= 1e6;
  row.ci = ci;
  return row;
}

std::string PercentileJson(const PercentileRow& row) {
  return StrFormat(
      "{\"ms\": %.4f, \"ci_lower_ms\": %.4f, \"ci_upper_ms\": %.4f, "
      "\"confidence\": %.2f}",
      row.ms, row.ci.lower, row.ci.upper, kConfidence);
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A9",
      "write-path measurement: commit-batch-size sweep with fsync "
      "accounting on the observed clock, group-commit fsync "
      "amortization, recovery-time-vs-WAL-length sweep with a "
      "checkpoint cell, and closed-loop query latency quiet vs under "
      "concurrent ingest; means and percentiles with CIs",
      argc, argv);
  ctx.properties().SetDefault("totalRows", "2048");
  ctx.properties().SetDefault("ingestReps", "5");
  ctx.properties().SetDefault("recoveryReps", "5");
  ctx.properties().SetDefault("scaleFactor", "0.01");
  ctx.properties().SetDefault("workers", "4");
  ctx.properties().SetDefault("requests", "160");
  ctx.properties().SetDefault("resamples", "1000");
  ctx.properties().SetDefault("runSeed", "42");
  ctx.PrintHeader("write path: ingest, recovery, reads under ingest (A9)");

  bool smoke = ctx.Smoke();
  int total_rows = static_cast<int>(ctx.properties().GetInt("totalRows", 2048));
  int ingest_reps = static_cast<int>(ctx.properties().GetInt("ingestReps", 5));
  int recovery_reps =
      static_cast<int>(ctx.properties().GetInt("recoveryReps", 5));
  double sf = ctx.properties().GetDouble("scaleFactor", 0.01);
  int workers = static_cast<int>(ctx.properties().GetInt("workers", 4));
  int requests = static_cast<int>(ctx.properties().GetInt("requests", 160));
  int resamples = static_cast<int>(ctx.properties().GetInt("resamples", 1000));
  uint64_t run_seed =
      static_cast<uint64_t>(ctx.properties().GetInt("runSeed", 42));
  std::vector<int> batch_sizes = {1, 4, 16, 64, 256};
  std::vector<int> recovery_commits = {64, 256, 1024};
  int group_commits_per_thread = 64;
  if (smoke) {
    total_rows = 256;
    ingest_reps = 2;
    recovery_reps = 2;
    sf = 0.005;
    requests = 48;
    resamples = 200;
    batch_sizes = {1, 16, 128};
    recovery_commits = {16, 64};
    group_commits_per_thread = 12;
  }

  // --- Panel 1: ingest rate vs commit batch size.
  report::TextTable ingest_table;
  ingest_table.SetHeader({"batch rows", "commits", "rows/s (observed)",
                          "fsyncs/commit", "WAL bytes/row"});
  std::vector<IngestCell> ingest;
  core::Series ingest_series{"ingest rate", {}, {}, {}};
  for (int batch : batch_sizes) {
    int commits = total_rows / batch;
    std::vector<double> rates;
    db::StorageStats disk_stats;
    for (int r = 0; r < ingest_reps; ++r) {
      rates.push_back(IngestOnce(commits, batch, &disk_stats));
    }
    IngestCell cell;
    cell.batch_rows = batch;
    cell.rows_per_sec = stats::MeanConfidenceInterval(rates, kConfidence);
    cell.fsyncs_per_commit =
        static_cast<double>(disk_stats.fsyncs) / commits;
    cell.wal_bytes_per_row =
        static_cast<double>(disk_stats.bytes_written) / (commits * batch);
    ingest.push_back(cell);
    ingest_table.AddRow(
        {StrFormat("%d", batch), StrFormat("%d", commits),
         StrFormat("%.0f [%.0f,%.0f]", cell.rows_per_sec.mean,
                   cell.rows_per_sec.lower, cell.rows_per_sec.upper),
         StrFormat("%.2f", cell.fsyncs_per_commit),
         StrFormat("%.1f", cell.wal_bytes_per_row)});
    ingest_series.AppendWithError(batch, cell.rows_per_sec.mean,
                                  cell.rows_per_sec.HalfWidth());
  }
  std::printf("Ingest rate vs commit batch size (%d rows per rep, %d reps; "
              "observed clock = real + simulated write stall):\n%s\n",
              total_rows, ingest_reps, ingest_table.ToString().c_str());

  // --- Panel 1b: group commit — concurrent committers share fsyncs.
  report::TextTable group_table;
  group_table.SetHeader({"threads", "commits", "fsyncs", "fsyncs/commit"});
  struct GroupCell {
    int threads = 0;
    int64_t commits = 0;
    int64_t fsyncs = 0;
  };
  std::vector<GroupCell> group_cells;
  for (int threads : {1, 4}) {
    std::unique_ptr<db::Database> database = MakeIngestDb();
    txn::VirtualDisk disk;
    txn::DeltaStore store(database.get(), &disk);
    Require(store.Open(), "DeltaStore::Open");
    disk.ResetStats();
    std::vector<std::thread> committers;
    for (int t = 0; t < threads; ++t) {
      committers.emplace_back([&, t] {
        int64_t next_id = 1 + t * 1'000'000;
        for (int c = 0; c < group_commits_per_thread; ++c) {
          uint64_t txn = store.Begin();
          Require(store.BufferInsert(txn, "events", Batch(next_id, 4)),
                  "BufferInsert");
          Require(store.Commit(txn), "Commit");
          next_id += 4;
        }
      });
    }
    for (std::thread& t : committers) {
      t.join();
    }
    GroupCell cell;
    cell.threads = threads;
    cell.commits = static_cast<int64_t>(threads) * group_commits_per_thread;
    cell.fsyncs = disk.stats().fsyncs;
    group_cells.push_back(cell);
    group_table.AddRow(
        {StrFormat("%d", threads),
         StrFormat("%lld", static_cast<long long>(cell.commits)),
         StrFormat("%lld", static_cast<long long>(cell.fsyncs)),
         StrFormat("%.2f",
                   static_cast<double>(cell.fsyncs) / cell.commits)});
  }
  bool group_commit_shown = group_cells.back().fsyncs <
                            group_cells.back().commits;
  std::printf("Group commit (concurrent committers share the fsync):\n%s\n",
              group_table.ToString().c_str());

  // --- Panel 2: recovery time vs WAL length, plus the checkpoint bound.
  report::TextTable recovery_table;
  recovery_table.SetHeader({"commits", "checkpoint", "WAL bytes",
                            "records replayed", "recovery (ms)"});
  std::vector<RecoveryCell> recovery;
  core::Series recovery_series{"replay from WAL", {}, {}, {}};
  for (int commits : recovery_commits) {
    recovery.push_back(MeasureRecovery(commits, false, recovery_reps));
  }
  recovery.push_back(
      MeasureRecovery(recovery_commits.back(), true, recovery_reps));
  for (const RecoveryCell& cell : recovery) {
    recovery_table.AddRow(
        {StrFormat("%d", cell.commits), cell.checkpointed ? "yes" : "no",
         StrFormat("%zu", cell.wal_bytes),
         StrFormat("%llu", static_cast<unsigned long long>(
                               cell.records_replayed)),
         StrFormat("%.2f [%.2f,%.2f]", cell.recover_ms.mean,
                   cell.recover_ms.lower, cell.recover_ms.upper)});
    if (!cell.checkpointed) {
      // The chart shows the replay line only; the checkpointed cell is a
      // single point (WriteSeriesCsv wants equal-length series) and lives
      // in the table and the JSON instead.
      recovery_series.AppendWithError(static_cast<double>(cell.commits),
                                      cell.recover_ms.mean,
                                      cell.recover_ms.HalfWidth());
    }
  }
  std::printf("Recovery time vs log length (%d reps per cell; the "
              "checkpointed cell replays only the post-checkpoint "
              "tail):\n%s\n",
              recovery_reps, recovery_table.ToString().c_str());

  // --- Panel 3: read latency quiet vs under concurrent ingest.
  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  txn::VirtualDisk disk;
  txn::DeltaStore store(&database, &disk);
  Require(store.Open(), "DeltaStore::Open");

  serve::ServiceOptions service_options;
  service_options.workers = workers;
  service_options.queue_capacity = static_cast<size_t>(requests) + 1;
  service_options.overload = serve::OverloadPolicy::kShed;
  service_options.fingerprint_results = false;
  serve::QueryService service(&database, service_options);

  serve::LoadOptions closed_options;
  closed_options.mode = serve::LoadMode::kClosed;
  closed_options.requests = requests;
  closed_options.clients = workers;
  closed_options.run_seed = run_seed;
  serve::LoadGenerator load(&service, closed_options);
  (void)load.Run();  // warm the buffer pool, unmeasured.
  serve::LoadResult quiet = load.Run();

  // Source rows cloned from lineitem so every ingest batch is
  // schema-valid without touching the store from the driver thread.
  std::vector<std::vector<db::Value>> proto;
  {
    std::shared_ptr<db::Table> lineitem = store.MergedTable("lineitem");
    size_t cols = lineitem->schema().num_columns();
    size_t rows = std::min<size_t>(lineitem->num_rows(), 64);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<db::Value> row;
      row.reserve(cols);
      for (size_t c = 0; c < cols; ++c) {
        row.push_back(lineitem->ValueAt(r, c));
      }
      proto.push_back(std::move(row));
    }
  }
  std::atomic<bool> stop{false};
  uint64_t ingest_commits = 0;
  const int ingest_batch = 8;
  std::thread ingester([&] {
    size_t next = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<std::vector<db::Value>> rows;
      rows.reserve(ingest_batch);
      for (int i = 0; i < ingest_batch; ++i) {
        rows.push_back(proto[(next + i) % proto.size()]);
      }
      next += ingest_batch;
      uint64_t txn = store.Begin();
      Require(store.BufferInsert(txn, "lineitem", std::move(rows)),
              "BufferInsert");
      Require(store.Commit(txn), "Commit");
      ++ingest_commits;
    }
  });
  core::WallTimer ingest_window;
  serve::LoadResult busy = load.Run();
  double window_s = ingest_window.ElapsedSeconds();
  stop.store(true, std::memory_order_relaxed);
  ingester.join();
  double ingest_rows_per_sec =
      static_cast<double>(ingest_commits) * ingest_batch / window_s;

  PercentileRow quiet_p50 =
      Pct(quiet.client_latency, 50.0, run_seed * 977, resamples);
  PercentileRow quiet_p99 =
      Pct(quiet.client_latency, 99.0, run_seed * 977 + 1, resamples);
  PercentileRow busy_p50 =
      Pct(busy.client_latency, 50.0, run_seed * 1979, resamples);
  PercentileRow busy_p99 =
      Pct(busy.client_latency, 99.0, run_seed * 1979 + 1, resamples);
  report::TextTable read_table;
  read_table.SetHeader({"condition", "achieved qph", "p50 (ms)", "p99 (ms)"});
  read_table.AddRow(
      {"quiet", StrFormat("%.0f", quiet.qph),
       StrFormat("%.2f [%.2f,%.2f]", quiet_p50.ms, quiet_p50.ci.lower,
                 quiet_p50.ci.upper),
       StrFormat("%.2f [%.2f,%.2f]", quiet_p99.ms, quiet_p99.ci.lower,
                 quiet_p99.ci.upper)});
  read_table.AddRow(
      {"under ingest", StrFormat("%.0f", busy.qph),
       StrFormat("%.2f [%.2f,%.2f]", busy_p50.ms, busy_p50.ci.lower,
                 busy_p50.ci.upper),
       StrFormat("%.2f [%.2f,%.2f]", busy_p99.ms, busy_p99.ci.lower,
                 busy_p99.ci.upper)});
  std::printf(
      "Read latency: closed loop (%d clients, %d requests) on TPC-H sf "
      "%.3g, quiet vs under concurrent ingest (%.0f rows/s committed into "
      "lineitem during the measured window):\n%s\n",
      workers, requests, sf, ingest_rows_per_sec,
      read_table.ToString().c_str());
  Require(store.CheckIntegrity(), "CheckIntegrity after ingest");

  // --- Charts.
  report::ChartSpec ingest_chart;
  ingest_chart.title = "Ingest rate vs commit batch size";
  ingest_chart.x_label = "Rows per commit";
  ingest_chart.y_label = "Rows/s (observed clock)";
  ingest_chart.style = report::ChartStyle::kErrorBars;
  ingest_chart.series = {ingest_series};
  std::string ingest_stem = ctx.ResultPath("a9_ingest_rate");
  if (!report::WriteChart(ingest_chart, ingest_stem).ok() ||
      !report::WriteSvgChart(ingest_chart, ingest_stem).ok()) {
    std::fprintf(stderr, "cannot write charts at %s\n", ingest_stem.c_str());
    return 1;
  }
  ctx.AddOutput(ingest_stem + ".gnu");
  ctx.AddOutput(ingest_stem + ".svg");

  report::ChartSpec recovery_chart;
  recovery_chart.title = "Recovery time vs committed records";
  recovery_chart.x_label = "Commits in durable state";
  recovery_chart.y_label = "Open() time (ms)";
  recovery_chart.style = report::ChartStyle::kErrorBars;
  recovery_chart.series = {recovery_series};
  std::string recovery_stem = ctx.ResultPath("a9_recovery");
  if (!report::WriteChart(recovery_chart, recovery_stem).ok() ||
      !report::WriteSvgChart(recovery_chart, recovery_stem).ok()) {
    std::fprintf(stderr, "cannot write charts at %s\n",
                 recovery_stem.c_str());
    return 1;
  }
  ctx.AddOutput(recovery_stem + ".gnu");
  ctx.AddOutput(recovery_stem + ".svg");

  // --- Machine-readable results.
  std::string json = "{\n";
  json += "  \"experiment\": \"A9\",\n";
  json += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += StrFormat("  \"total_rows\": %d,\n", total_rows);
  json += StrFormat("  \"scale_factor\": %g,\n", sf);
  json += StrFormat("  \"workers\": %d,\n", workers);
  json += StrFormat("  \"requests\": %d,\n", requests);
  json += "  \"ingest\": [\n";
  for (size_t i = 0; i < ingest.size(); ++i) {
    const IngestCell& cell = ingest[i];
    json += StrFormat(
        "    {\"batch_rows\": %d, \"rows_per_sec\": %.1f, "
        "\"ci_lower\": %.1f, \"ci_upper\": %.1f, "
        "\"fsyncs_per_commit\": %.3f, \"wal_bytes_per_row\": %.2f}%s\n",
        cell.batch_rows, cell.rows_per_sec.mean, cell.rows_per_sec.lower,
        cell.rows_per_sec.upper, cell.fsyncs_per_commit,
        cell.wal_bytes_per_row, i + 1 < ingest.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"group_commit\": [\n";
  for (size_t i = 0; i < group_cells.size(); ++i) {
    const GroupCell& cell = group_cells[i];
    json += StrFormat(
        "    {\"threads\": %d, \"commits\": %lld, \"fsyncs\": %lld}%s\n",
        cell.threads, static_cast<long long>(cell.commits),
        static_cast<long long>(cell.fsyncs),
        i + 1 < group_cells.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"recovery\": [\n";
  for (size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryCell& cell = recovery[i];
    json += StrFormat(
        "    {\"commits\": %d, \"checkpointed\": %s, \"wal_bytes\": %zu, "
        "\"records_replayed\": %llu, \"recover_ms\": %.3f, "
        "\"ci_lower_ms\": %.3f, \"ci_upper_ms\": %.3f}%s\n",
        cell.commits, cell.checkpointed ? "true" : "false", cell.wal_bytes,
        static_cast<unsigned long long>(cell.records_replayed),
        cell.recover_ms.mean, cell.recover_ms.lower, cell.recover_ms.upper,
        i + 1 < recovery.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"read_latency\": {\n";
  json += StrFormat("    \"ingest_rows_per_sec\": %.1f,\n",
                    ingest_rows_per_sec);
  json += StrFormat(
      "    \"quiet\": {\"qph\": %.0f, \"p50\": %s, \"p99\": %s},\n",
      quiet.qph, PercentileJson(quiet_p50).c_str(),
      PercentileJson(quiet_p99).c_str());
  json += StrFormat(
      "    \"under_ingest\": {\"qph\": %.0f, \"p50\": %s, \"p99\": %s}\n",
      busy.qph, PercentileJson(busy_p50).c_str(),
      PercentileJson(busy_p99).c_str());
  json += "  }\n";
  json += "}\n";

  std::string json_path = ctx.ResultPath("BENCH_write_path.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  ctx.AddOutput(json_path);
  ctx.AddNote(group_commit_shown
                  ? "group commit amortized fsyncs across committers"
                  : "group commit NOT visible (fsyncs == commits)");
  ctx.Finish();
  return 0;
}
