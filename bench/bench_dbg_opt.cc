// F1 — paper slide 41: "Of apples and oranges".
// Relative execution time DBG/OPT across the 22 TPC-H queries. The paper's
// figure shows ratios between 1.0 and 2.2 depending on the query. Our
// engine's kDebug mode (tuple-at-a-time, checked) plays the un-optimized
// build; kOptimized (vectorized) plays the -O6 build — the same cause
// (per-tuple interpretation overhead vs tight loops), repeatable from one
// binary without recompiling.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/metrics.h"
#include "db/database.h"
#include "report/gnuplot.h"
#include "report/table_format.h"
#include "core/noise.h"
#include "stats/descriptive.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace {

/// Minimum user-CPU time of `runs` hot executions (min is the least-noise
/// estimator for a CPU-bound kernel) (user time excludes
/// simulated stalls: this experiment is about code quality, not I/O).
double MinUserMs(db::Database& database, const db::PlanPtr& plan,
                    db::ExecMode mode, int runs) {
  (void)database.Run(plan, mode);  // warm-up.
  std::vector<double> samples;
  for (int i = 0; i < runs; ++i) {
    samples.push_back(database.Run(plan, mode).ServerUserMs());
  }
  return stats::Min(samples);
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "F1", "hot runs: 1 warm-up, minimum of 5 measured runs, user CPU time",
      argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.01");
  ctx.properties().SetDefault("runs", "5");
  ctx.PrintHeader("DBG/OPT relative execution time across 22 queries");

  core::NoiseReport noise = core::MeasureNoiseFloor(20, 1'000'000);
  std::printf("%s\n\n", noise.ToString().c_str());

  double sf = ctx.properties().GetDouble("scaleFactor", 0.01);
  int runs = static_cast<int>(ctx.properties().GetInt("runs", 5));
  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  std::printf("TPC-H scale factor %.3g\n\n", sf);

  report::TextTable table;
  table.SetHeader({"Q", "OPT (ms)", "DBG (ms)", "DBG/OPT"});
  core::Series ratios;
  ratios.name = "DBG/OPT";
  std::vector<double> all_ratios;
  for (int q = 1; q <= 22; ++q) {
    db::PlanPtr plan = workload::GetTpchQuery(q).Build(database);
    double opt = MinUserMs(database, plan, db::ExecMode::kOptimized,
                              runs);
    double dbg = MinUserMs(database, plan, db::ExecMode::kDebug, runs);
    double ratio = opt > 0.0 ? dbg / opt : 1.0;
    all_ratios.push_back(ratio);
    ratios.Append(q, ratio);
    table.AddRow({std::to_string(q), StrFormat("%.2f", opt),
                  StrFormat("%.2f", dbg), StrFormat("%.2f", ratio)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "geometric mean ratio: %.2f, max: %.2f  (paper: ratios 1.0-2.2, "
      "non-uniform across queries)\n",
      stats::GeometricMean(all_ratios), stats::Max(all_ratios));

  report::ChartSpec chart;
  chart.title = "Relative execution time DBG/OPT, TPC-H queries";
  chart.x_label = "TPC-H queries";
  chart.y_label = "relative execution time: DBG/OPT ratio";
  chart.series = {ratios};
  std::string stem = ctx.ResultPath("f1_dbg_opt");
  if (!report::WriteChart(chart, stem).ok()) {
    return 1;
  }
  ctx.AddOutput(stem + ".csv");
  ctx.AddOutput(stem + ".gnu");
  ctx.Finish();
  return 0;
}
