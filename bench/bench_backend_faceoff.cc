// A12 — two backends, one harness (the paper's two-engines discipline
// applied internally, slides 8-13): the columnar vectorized executor and
// the packed-tuple row store execute the SAME plan trees over the SAME
// generated data through the SAME measurement protocol, so every reported
// difference is layout + kernel, never harness. Three parts:
//
//   1. Who wins: all 22 TPC-H queries, hot, interleaved col/row samples
//      (ABAB ordering so drift hits both arms equally), median observed
//      server time (wall + simulated stall) with bootstrap row/col ratio
//      CIs; non-overlap with 1.0 flags the distinguishable queries. Every
//      sample pair is diffed — a who-wins row is only reported for
//      results proven equal.
//   2. Per-operator attribution: TRACE wall time grouped by operator kind
//      across the suite, per backend — where the row store's
//      tuple-at-a-time CPU actually goes.
//   3. Crossover sweep, cold: selectivity (l_quantity threshold) x
//      projected-column count over lineitem. The row store reads whole
//      tuples no matter how narrow the projection (one stream, one seek);
//      the columnar scan reads only the referenced columns but opens one
//      stream per column. Narrow projections: columnar wins on bytes.
//      Wide projections: equal bytes, and the column store pays one seek
//      per column vs the row store's one per table — the classic
//      layout crossover, priced by the shared DiskModel and located by
//      the sweep.
//
// Everything lands in BENCH_backend_faceoff.json plus plot-ready
// CSV+gnuplot; `--smoke` shrinks the scale factor and run counts to a
// ctest-able pass.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/metrics.h"
#include "db/database.h"
#include "db/plan.h"
#include "db/reference.h"
#include "engine/backend.h"
#include "report/gnuplot.h"
#include "report/table_format.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace {

constexpr double kDoubleTol = 1e-9;

/// Operator kind of a trace label: "HashJoin(l_orderkey=o_orderkey)"
/// attributes to "HashJoin", "Scan(lineitem)" to "Scan".
std::string OpKind(const std::string& op) {
  size_t paren = op.find('(');
  return paren == std::string::npos ? op : op.substr(0, paren);
}

struct OpAttribution {
  int64_t col_ns = 0;
  int64_t row_ns = 0;
};

void Attribute(const db::Profiler& profile, bool is_row,
               std::map<std::string, OpAttribution>* by_op) {
  for (const db::OpTrace& trace : profile.traces()) {
    OpAttribution& slot = (*by_op)[OpKind(trace.op)];
    (is_row ? slot.row_ns : slot.col_ns) += trace.wall_ns;
  }
}

std::string CiJson(const stats::ConfidenceInterval& ci) {
  return StrFormat("{\"mean\": %.4f, \"lower\": %.4f, \"upper\": %.4f}",
                   ci.mean, ci.lower, ci.upper);
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A12",
      "hot who-wins: 1 warm-up each, interleaved col/row samples, median "
      "ObservedServerNs (wall + simulated stall), row-vs-col DiffTables "
      "on every sample pair; cold sweep: FlushCaches on both backends "
      "before every sample; both backends share DiskModel, pool budget "
      "and rows_per_page",
      argc, argv);
  bool smoke = ctx.Smoke();
  ctx.properties().SetDefault("scaleFactor", smoke ? "0.002" : "0.02");
  ctx.properties().SetDefault("runs", smoke ? "3" : "5");
  ctx.PrintHeader(
      "multi-backend faceoff: columnar vs row store through one harness "
      "— who-wins table, per-operator attribution, layout crossover");
  if (smoke) {
    std::printf("[smoke mode: tiny scale factor, few runs]\n\n");
  }
  double sf = ctx.properties().GetDouble("scaleFactor", 0.02);
  int runs = static_cast<int>(ctx.properties().GetInt("runs", 5));

  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  Status knobs = ctx.ApplyDbKnobs(&database);
  if (!knobs.ok()) {
    std::fprintf(stderr, "%s\n", knobs.ToString().c_str());
    return 2;
  }
  std::unique_ptr<engine::Backend> columnar =
      engine::CreateBackend(db::BackendKind::kColumnar, &database);
  std::unique_ptr<engine::Backend> row =
      engine::CreateBackend(db::BackendKind::kRowStore, &database);
  engine::ExecOptions options;
  options.threads = database.threads();

  // ---- Part 1: hot who-wins over the 22 TPC-H queries. ----
  report::TextTable wins_table;
  wins_table.SetHeader({"query", "col (ms)", "row (ms)", "row finish",
                        "row/col", "95% CI", "winner"});
  std::string wins_json;
  std::map<std::string, OpAttribution> by_op;
  uint64_t ci_seed = 1200;
  int col_wins = 0;
  int row_wins = 0;
  int distinct = 0;
  for (int q = 1; q <= 22; ++q) {
    db::PlanPtr plan = workload::GetTpchQuery(q).Build(database);
    (void)columnar->Execute(plan, options);  // warm-up.
    (void)row->Execute(plan, options);
    std::vector<double> col_samples;
    std::vector<double> row_samples;
    std::vector<double> finish_samples;
    for (int r = 0; r < runs; ++r) {
      engine::BackendResult col_result = columnar->Execute(plan, options);
      engine::BackendResult row_result = row->Execute(plan, options);
      col_samples.push_back(
          static_cast<double>(col_result.ObservedServerNs()));
      row_samples.push_back(
          static_cast<double>(row_result.ObservedServerNs()));
      finish_samples.push_back(static_cast<double>(row_result.finish_ns));
      std::string diff =
          db::DiffTables(*row_result.table, *col_result.table, kDoubleTol,
                         /*ignore_row_order=*/true);
      if (!diff.empty()) {
        std::fprintf(stderr, "Q%d rep %d: backends disagree: %s\n", q, r,
                     diff.c_str());
        return 2;
      }
      if (r == runs - 1) {
        Attribute(col_result.profile, /*is_row=*/false, &by_op);
        Attribute(row_result.profile, /*is_row=*/true, &by_op);
      }
    }
    double col_median = stats::Median(col_samples);
    double row_median = stats::Median(row_samples);
    double finish_median = stats::Median(finish_samples);
    stats::ConfidenceInterval ratio =
        stats::BootstrapRatioCI(row_samples, col_samples, 0.95, ci_seed++);
    bool is_distinct = ratio.lower > 1.0 || ratio.upper < 1.0;
    distinct += is_distinct ? 1 : 0;
    bool row_faster = row_median < col_median;
    (row_faster ? row_wins : col_wins) += 1;
    wins_table.AddRow(
        {StrFormat("Q%d", q), StrFormat("%.2f", col_median / 1e6),
         StrFormat("%.2f", row_median / 1e6),
         StrFormat("%.2f", finish_median / 1e6),
         StrFormat("%.2fx", row_median / col_median),
         StrFormat("[%.2f, %.2f]%s", ratio.lower, ratio.upper,
                   is_distinct ? "" : " ~"),
         row_faster ? "row" : "col"});
    wins_json += StrFormat(
        "    %s{\"query\": %d, \"col_ns\": %.0f, \"row_ns\": %.0f, "
        "\"row_finish_ns\": %.0f, \"row_over_col\": %.4f, "
        "\"row_over_col_ci\": %s, \"distinct\": %s, \"winner\": \"%s\"}",
        q == 1 ? "" : ",\n", q, col_median, row_median, finish_median,
        row_median / col_median, CiJson(ratio).c_str(),
        is_distinct ? "true" : "false", row_faster ? "row" : "col");
  }
  std::printf("TPC-H who-wins, hot (row finish = packed-result -> Table "
              "conversion, outside server time; ~ = CI overlaps 1.0)\n%s\n",
              wins_table.ToString().c_str());
  std::printf(
      "columnar wins %d/22, row store %d/22; %d/22 distinguishable at "
      "95%% (ratio CI excludes 1.0)\n\n",
      col_wins, row_wins, distinct);

  // ---- Part 2: per-operator attribution across the suite. ----
  report::TextTable op_table;
  op_table.SetHeader({"operator", "col total (ms)", "row total (ms)",
                      "row/col"});
  std::string op_json;
  bool first = true;
  for (const auto& [op, attribution] : by_op) {
    double col_ms = static_cast<double>(attribution.col_ns) / 1e6;
    double row_ms = static_cast<double>(attribution.row_ns) / 1e6;
    op_table.AddRow({op, StrFormat("%.2f", col_ms),
                     StrFormat("%.2f", row_ms),
                     attribution.col_ns > 0
                         ? StrFormat("%.2fx", row_ms / col_ms)
                         : "-"});
    op_json += StrFormat(
        "    %s{\"op\": \"%s\", \"col_ns\": %lld, \"row_ns\": %lld}",
        first ? "" : ",\n", op.c_str(),
        (long long)attribution.col_ns, (long long)attribution.row_ns);
    first = false;
  }
  std::printf(
      "per-operator TRACE attribution, one hot rep of each of the 22 "
      "queries\n%s\n"
      "expected shape: the row store's scan/filter pay tuple-at-a-time "
      "interpretation the vectorized kernels amortize; its joins and "
      "sorts work on packed tuples and sit closer to parity.\n\n",
      op_table.ToString().c_str());

  // ---- Part 3: cold layout crossover, selectivity x projected width. ----
  const db::Schema& lineitem = database.GetTable("lineitem").schema();
  std::vector<std::string> all_columns;
  for (size_t c = 0; c < lineitem.num_columns(); ++c) {
    all_columns.push_back(lineitem.column(c).name);
  }
  const double kThresholds[] = {5.0, 25.0, 50.0};
  const size_t kWidths[] = {1, 4, 8, 16};
  double lineitem_rows =
      static_cast<double>(database.GetTable("lineitem").num_rows());
  report::TextTable sweep_table;
  sweep_table.SetHeader({"l_quantity <", "selectivity", "columns",
                         "col (ms)", "col MB", "col misses", "row (ms)",
                         "row MB", "row misses", "winner"});
  std::string sweep_json;
  core::Series col_series{"columnar", {}, {}, {}};
  core::Series row_series{"row store", {}, {}, {}};
  int crossover_row_wins = 0;
  first = true;
  for (double threshold : kThresholds) {
    for (size_t width : kWidths) {
      std::vector<std::string> projected(all_columns.begin(),
                                         all_columns.begin() + width);
      db::ExprPtr pred = db::Lt(db::Col(lineitem, "l_quantity"),
                                db::LitDouble(threshold));
      db::PlanPtr plan = db::FilterScan("lineitem", projected, pred);
      std::vector<double> col_samples;
      std::vector<double> row_samples;
      engine::BackendResult col_result;
      engine::BackendResult row_result;
      for (int r = 0; r < runs; ++r) {
        columnar->FlushCaches();
        row->FlushCaches();
        col_result = columnar->Execute(plan, options);
        row_result = row->Execute(plan, options);
        col_samples.push_back(
            static_cast<double>(col_result.ObservedServerNs()));
        row_samples.push_back(
            static_cast<double>(row_result.ObservedServerNs()));
      }
      std::string diff =
          db::DiffTables(*row_result.table, *col_result.table, kDoubleTol,
                         /*ignore_row_order=*/false);
      if (!diff.empty()) {
        std::fprintf(stderr, "sweep t=%.0f width=%zu: %s\n", threshold,
                     width, diff.c_str());
        return 2;
      }
      double selectivity =
          static_cast<double>(col_result.table->num_rows()) /
          lineitem_rows;
      double col_median = stats::Median(col_samples);
      double row_median = stats::Median(row_samples);
      bool row_faster = row_median < col_median;
      crossover_row_wins += row_faster ? 1 : 0;
      sweep_table.AddRow(
          {StrFormat("%.0f", threshold), StrFormat("%.3f", selectivity),
           StrFormat("%zu", width), StrFormat("%.2f", col_median / 1e6),
           StrFormat("%.1f",
                     static_cast<double>(col_result.storage.bytes_read) /
                         1e6),
           StrFormat("%lld", (long long)col_result.storage.page_misses),
           StrFormat("%.2f", row_median / 1e6),
           StrFormat("%.1f",
                     static_cast<double>(row_result.storage.bytes_read) /
                         1e6),
           StrFormat("%lld", (long long)row_result.storage.page_misses),
           row_faster ? "row" : "col"});
      if (threshold == kThresholds[1]) {
        col_series.Append(static_cast<double>(width), col_median / 1e6);
        row_series.Append(static_cast<double>(width), row_median / 1e6);
      }
      sweep_json += StrFormat(
          "    %s{\"threshold\": %.0f, \"selectivity\": %.4f, "
          "\"columns\": %zu, \"col_ns\": %.0f, \"row_ns\": %.0f, "
          "\"col_bytes\": %lld, \"row_bytes\": %lld, "
          "\"col_misses\": %lld, \"row_misses\": %lld, "
          "\"winner\": \"%s\"}",
          first ? "" : ",\n", threshold, selectivity, width, col_median,
          row_median, (long long)col_result.storage.bytes_read,
          (long long)row_result.storage.bytes_read,
          (long long)col_result.storage.page_misses,
          (long long)row_result.storage.page_misses,
          row_faster ? "row" : "col");
      first = false;
    }
  }
  std::printf("cold layout crossover: FilterScan(lineitem), observed "
              "server time = wall + DiskModel stall\n%s\n",
              sweep_table.ToString().c_str());
  std::printf(
      "row store wins %d/%d cold cells. The mechanism is visible in the "
      "bytes/misses columns: the row store always reads full tuples "
      "through one per-table stream (one seek); the columnar scan reads "
      "only the projected columns but opens one stream per column — "
      "narrow projections trade seeks for far fewer bytes and win, wide "
      "projections read the same bytes plus the extra seeks and lose.\n\n",
      crossover_row_wins, static_cast<int>(3 * 4));
  if (crossover_row_wins == 0) {
    std::fprintf(stderr,
                 "expected at least one row-store win in the cold "
                 "crossover sweep\n");
    return 2;
  }

  report::ChartSpec sweep_chart;
  sweep_chart.title = "Cold scan: columnar vs row store vs projected width";
  sweep_chart.x_label = "projected columns (of 16)";
  sweep_chart.y_label = "observed server time (ms)";
  sweep_chart.logscale_y = true;
  sweep_chart.series = {col_series, row_series};
  std::string sweep_stem = ctx.ResultPath("a12_crossover");
  if (!report::WriteChart(sweep_chart, sweep_stem).ok()) {
    return 1;
  }
  ctx.AddOutput(sweep_stem + ".csv");

  std::string json = "{\n";
  json += "  \"experiment\": \"A12\",\n";
  json += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += StrFormat("  \"scale_factor\": %.4f,\n", sf);
  json += StrFormat("  \"runs\": %d,\n", runs);
  json += StrFormat("  \"threads\": %d,\n", options.threads);
  json += "  \"tpch_who_wins\": [\n" + wins_json + "\n  ],\n";
  json += StrFormat("  \"col_wins\": %d,\n", col_wins);
  json += StrFormat("  \"row_wins\": %d,\n", row_wins);
  json += StrFormat("  \"distinct_at_95\": %d,\n", distinct);
  json += "  \"op_attribution\": [\n" + op_json + "\n  ],\n";
  json += "  \"cold_crossover\": [\n" + sweep_json + "\n  ],\n";
  json += StrFormat("  \"crossover_row_wins\": %d,\n", crossover_row_wins);
  json += "  \"queries\": 22\n";
  json += "}\n";

  std::string json_path = ctx.ResultPath("BENCH_backend_faceoff.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  ctx.AddOutput(json_path);
  ctx.AddNote(StrFormat(
      "hot TPC-H: columnar %d/22, row %d/22 (%d distinguishable at 95%%); "
      "cold crossover: row store wins %d/12 cells, winning where "
      "projections are wide enough that equal bytes meet fewer seeks",
      col_wins, row_wins, distinct, crossover_row_wins));
  ctx.Finish();
  return 0;
}
