// T4 — paper slides 86-93: allocation of variation for the memory-
// interconnect study. Factors: A = address pattern (Random/Matrix),
// B = network (Crossbar/Omega); responses: throughput T, 90% transit time
// N, average response time R — all measured live on the netsim
// discrete-event simulator, then decomposed with the sign-table method.
//
// Expected shape (paper's conclusion): "the address pattern influences
// most" — the pattern factor explains the dominant share of variation,
// the interaction the smallest. (See EXPERIMENTS.md T4 for the label-swap
// note on the slide's printed summary.)

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "doe/allocation.h"
#include "doe/interaction.h"
#include "doe/significance.h"
#include "netsim/simulator.h"
#include "report/csv.h"
#include "report/gnuplot.h"
#include "report/table_format.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "T4", "cycle simulation, 200 warm-up + 5000 measured cycles per cell",
      argc, argv);
  ctx.properties().SetDefault("cycles", "5000");
  ctx.properties().SetDefault("processors", "16");
  ctx.PrintHeader("allocation of variation: interconnect x address pattern");

  netsim::SimulationConfig config;
  config.measured_cycles = ctx.properties().GetInt("cycles", 5000);
  config.num_processors =
      static_cast<int>(ctx.properties().GetInt("processors", 16));

  // Runs in sign-table order: factor A (pattern) varies fastest.
  struct Cell {
    const char* network;
    const char* pattern;
    netsim::NetworkMetrics metrics;
  };
  std::vector<Cell> cells = {{"Crossbar", "Random", {}},
                             {"Crossbar", "Matrix", {}},
                             {"Omega", "Random", {}},
                             {"Omega", "Matrix", {}}};
  report::TextTable measured;
  measured.SetHeader({"A (pattern)", "B (network)", "T", "N (cycles)",
                      "R (cycles)"});
  report::CsvWriter csv({"network", "pattern", "T", "N", "R"});
  for (Cell& cell : cells) {
    cell.metrics = netsim::SimulateCell(cell.network, cell.pattern, config);
    measured.AddRow({cell.pattern, cell.network,
                     StrFormat("%.4f", cell.metrics.throughput),
                     StrFormat("%.0f", cell.metrics.transit_p90_cycles),
                     StrFormat("%.3f", cell.metrics.avg_response_cycles)});
    csv.AddRow({cell.network, cell.pattern,
                StrFormat("%.4f", cell.metrics.throughput),
                StrFormat("%.0f", cell.metrics.transit_p90_cycles),
                StrFormat("%.3f", cell.metrics.avg_response_cycles)});
  }
  std::printf("Measured cells (paper's: T 0.6041/0.7922/0.4220/0.4717):\n");
  std::printf("%s\n", measured.ToString().c_str());

  doe::SignTable table = doe::SignTable::FullFactorial(2);
  report::TextTable summary;
  summary.SetHeader({"effect", "T %var", "N %var", "R %var"});
  auto column = [&](auto get) {
    std::vector<double> y;
    for (const Cell& cell : cells) {
      y.push_back(get(cell.metrics));
    }
    return doe::AllocateVariation(table, y);
  };
  doe::VariationAllocation t_alloc =
      column([](const netsim::NetworkMetrics& m) { return m.throughput; });
  doe::VariationAllocation n_alloc = column(
      [](const netsim::NetworkMetrics& m) { return m.transit_p90_cycles; });
  doe::VariationAllocation r_alloc = column(
      [](const netsim::NetworkMetrics& m) { return m.avg_response_cycles; });
  const struct {
    const char* label;
    doe::EffectMask mask;
  } rows[] = {{"qA (pattern)", 0b01},
              {"qB (network)", 0b10},
              {"qAB (interaction)", 0b11}};
  for (const auto& row : rows) {
    summary.AddRow({row.label,
                    StrFormat("%.1f", t_alloc.FractionFor(row.mask) * 100),
                    StrFormat("%.1f", n_alloc.FractionFor(row.mask) * 100),
                    StrFormat("%.1f", r_alloc.FractionFor(row.mask) * 100)});
  }
  std::printf("Variation explained (%%):\n%s\n",
              summary.ToString().c_str());
  std::printf(
      "paper (slide 92): pattern 77.0/80/87.8, network 17.2/20/10.9, "
      "interaction 5.8/0/1.3\n");

  bool pattern_dominates =
      t_alloc.FractionFor(0b01) > t_alloc.FractionFor(0b10) &&
      t_alloc.FractionFor(0b01) > 0.5 &&
      t_alloc.FractionFor(0b11) < 0.1;
  std::printf("conclusion reproduced (pattern influences most): %s\n",
              pattern_dominates ? "YES" : "NO");

  // Significance against experimental error (common mistake #1, slide
  // 59): replicate every cell with three seeds and run the 2^2 ANOVA.
  std::vector<std::vector<double>> replicated(4);
  for (size_t cell = 0; cell < cells.size(); ++cell) {
    for (uint64_t seed : {101u, 202u, 303u}) {
      netsim::SimulationConfig noisy = config;
      noisy.seed = seed;
      replicated[cell].push_back(
          netsim::SimulateCell(cells[cell].network, cells[cell].pattern,
                               noisy)
              .throughput);
    }
  }
  stats::AnovaTable anova = doe::Anova2k(
      table, replicated, 0.05, {"pattern", "network"});
  std::printf("ANOVA of T over 3 replications per cell:\n%s\n",
              anova.ToString().c_str());
  std::printf(
      "both main effects should be significant; the interaction may or "
      "may not clear the noise floor.\n\n");

  // Slide-58 interaction plot of the two factors over T.
  std::vector<double> t_values;
  for (const Cell& cell : cells) {
    t_values.push_back(cell.metrics.throughput);
  }
  report::ChartSpec interaction_chart;
  interaction_chart.title = "Interaction: pattern x network (throughput)";
  interaction_chart.x_label = "address pattern (-1 random, +1 matrix)";
  interaction_chart.y_label = "throughput fraction";
  interaction_chart.series =
      doe::InteractionPlot(table, t_values, 0, 1, "omega");
  std::string interaction_stem = ctx.ResultPath("t4_interaction");
  if (report::WriteChart(interaction_chart, interaction_stem).ok()) {
    ctx.AddOutput(interaction_stem + ".csv");
    std::printf(
        "interaction plot written to %s.{csv,gnu,svg} — near-parallel "
        "lines echo the tiny qAB share above (slide 58).\n\n",
        interaction_stem.c_str());
  }

  std::string csv_path = ctx.ResultPath("t4_allocation.csv");
  if (!csv.WriteToFile(csv_path).ok()) {
    return 1;
  }
  ctx.AddOutput(csv_path);
  ctx.Finish();
  return pattern_dominates ? 0 : 1;
}
