#ifndef PERFEVAL_BENCH_BENCH_UTIL_H_
#define PERFEVAL_BENCH_BENCH_UTIL_H_

#include <string>

#include "common/result.h"
#include "core/environment.h"
#include "db/backend_kind.h"
#include "db/join.h"
#include "repro/manifest.h"
#include "repro/properties.h"
#include "sched/options.h"

namespace perfeval {
namespace db {
class Database;
}  // namespace db
}  // namespace perfeval

namespace perfeval {
namespace bench {

/// Shared scaffolding for the experiment binaries: every bench
///  1. parses -Dkey=value overrides into Properties (paper, slides
///     183–195) plus the uniform scheduler flags
///     `--jobs=N --order=design|randomized|interleaved
///      --isolation=concurrent|exclusive --progress`,
///  2. prints the environment spec at the paper's recommended granularity
///     (slides 149–156),
///  3. writes results + a provenance manifest under `results_dir`.
class BenchContext {
 public:
  /// `experiment_id` is the DESIGN.md id ("T2", "F1", ...).
  BenchContext(const std::string& experiment_id,
               const std::string& protocol_description, int argc,
               char** argv);

  repro::Properties& properties() { return properties_; }
  const core::EnvironmentSpec& environment() const { return environment_; }

  /// Scheduler options assembled from the uniform flags (equivalently the
  /// `jobs` / `order` / `isolation` / `schedSeed` / `progress` properties,
  /// so PERFEVAL_jobs=4 and -Djobs=4 work too). Unparsable values fall
  /// back to the serial defaults with a warning on stderr — a typo must
  /// not silently change the experiment. The options land in the manifest
  /// via the properties, so the documented protocol covers the schedule.
  sched::Options ScheduleOptions() const;

  /// Worker threads for morsel-driven intra-query parallelism
  /// (`--dbThreads=N`, equivalently the `dbThreads` property). A pure
  /// concurrency knob: query results and storage stats are identical at
  /// any setting, only wall-clock time changes. Clamped to >= 1.
  int DbThreads() const;

  /// Join algorithm knob (`--dbJoin=<legacy|hash|radix|merge>`,
  /// equivalently the `dbJoin` property; default radix). Unlike the
  /// scheduler flags this is a *treatment* knob — a typo would silently
  /// measure the wrong engine — so an unrecognized value is a hard usage
  /// error, never a fallback.
  Result<db::JoinAlgo> DbJoin() const;

  /// Cost-based-optimizer knob (`--dbOpt=<on|off>`, equivalently the
  /// `dbOpt` property; default off). Same strictness as DbJoin(): any
  /// value other than on/off/true/false is a usage error.
  Result<bool> DbOpt() const;

  /// Execution-backend knob (`--dbBackend=<col|row>`, equivalently the
  /// `dbBackend` property; default col). A treatment knob with DbJoin()'s
  /// strictness — an unrecognized backend name is a hard usage error,
  /// never a silent fallback to the columnar engine.
  Result<db::BackendKind> DbBackend() const;

  /// Applies the validated database knobs (`--dbThreads`, `--dbJoin`,
  /// `--radixBits`, `--dbOpt`, `--dbBackend`) to `database`, returning the
  /// first usage error. Benches call this once after constructing their
  /// Database so every binary honours the uniform flags identically.
  Status ApplyDbKnobs(db::Database* database) const;

  /// `--smoke` (equivalently `-Dsmoke=true`): ask the bench for its
  /// seconds-scale fast path — tiny configs, few repetitions — so ctest
  /// can exercise the full measurement/report pipeline on every run. The
  /// emitted numbers are pipeline checks, not publishable measurements.
  bool Smoke() const;

  /// bench_results/<stem> — all artifacts of this experiment go there.
  std::string ResultPath(const std::string& file_name) const;

  /// Prints the standard header: experiment id/title, environment,
  /// protocol, parameters.
  void PrintHeader(const std::string& title) const;

  /// Registers an output for the manifest.
  void AddOutput(const std::string& path) { manifest_.AddOutput(path); }
  void AddNote(const std::string& note) { manifest_.AddNote(note); }

  /// Writes the manifest; call last. Returns the manifest path.
  std::string Finish();

 private:
  std::string experiment_id_;
  std::string results_dir_;
  repro::Properties properties_;
  core::EnvironmentSpec environment_;
  repro::RunManifest manifest_;
};

}  // namespace bench
}  // namespace perfeval

#endif  // PERFEVAL_BENCH_BENCH_UTIL_H_
