// A10 — scale-out serving across a hash-partitioned shard cluster
// (DESIGN.md S16): throughput–latency curves vs shard count, shard-count
// speedup with bootstrap ratio CIs, and the tail-amplification effect
// scatter-gather inherits from waiting on the slowest shard — measured
// clean and with an injected straggler.
//
// Protocol:
//  1. For each shard count N in {1, 2, 4, 8}: build an N-shard cluster
//     behind a front-end QueryService and run the shared offered-load
//     sweep (load_sweep.h — identical machinery to A8, so A8-vs-A10
//     differences are system differences): closed-loop capacity
//     calibration, then an open-loop Poisson sweep at fractions of
//     capacity. Speedup vs N=1 is reported as a bootstrap ratio CI over
//     the per-request closed-loop latencies (Kalibera & Jones: report
//     measured speedups with resampled intervals, not point ratios).
//  2. Tail amplification: the coordinator's latency is max-over-shards,
//     so with per-shard latency CDF F the coordinator sees F^N — the p99
//     of the max sits at roughly the per-shard p(0.99^(1/N)) quantile.
//     Measured directly: per-repetition per-shard server times pooled
//     into one histogram vs the per-repetition max, p99 against p99.
//  3. Straggler injection: one shard of the 4-shard cluster gets the
//     spinning-disk DiskModel (the rest keep the default) plus a nonzero
//     serve realize_stall_scale, and every repetition runs cold — the
//     amplification table gains a cell where the max is pinned to the
//     slow shard, with the slowest-shard attribution share proving it.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "db/database.h"
#include "load_sweep.h"
#include "report/gnuplot.h"
#include "report/svg.h"
#include "report/table_format.h"
#include "serve/latency.h"
#include "serve/service.h"
#include "shard/cluster.h"
#include "shard/frontend.h"
#include "stats/bootstrap.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace {

const int kShardCounts[] = {1, 2, 4, 8};
constexpr double kConfidence = 0.95;

struct ScaleoutCell {
  int shards = 0;
  double capacity_qps = 0.0;
  stats::ConfidenceInterval speedup;  ///< vs the 1-shard cluster.
  std::vector<bench::LoadCell> sweep;
  core::Series p99_series;
  /// Per-request closed-loop client latencies (ms), the ratio-CI samples.
  std::vector<double> closed_latencies_ms;
};

struct TailCell {
  int shards = 0;
  bool straggler = false;
  double per_shard_p99_ms = 0.0;   ///< pooled over shards x repetitions.
  double max_p99_ms = 0.0;         ///< p99 of per-repetition max.
  double amplification = 0.0;      ///< max p99 / pooled per-shard p99.
  int slow_shard = -1;             ///< straggler cells: the injected shard.
  double slow_shard_share = 0.0;   ///< fraction of reps it was slowest.
};

std::unique_ptr<shard::ShardCluster> MakeCluster(
    int num_shards, double sf, int shard_workers,
    const std::map<int, db::DiskModel>& disk_override,
    double realize_stall_scale) {
  shard::ShardClusterOptions options;
  options.num_shards = num_shards;
  options.shard_service.workers = shard_workers;
  options.shard_service.fingerprint_results = false;
  options.shard_service.queue_capacity = 4096;
  options.shard_service.realize_stall_scale = realize_stall_scale;
  options.shard_disk_override = disk_override;
  auto cluster = std::make_unique<shard::ShardCluster>(options);
  workload::TpchGenerator gen(sf);
  cluster->LoadTpch(&gen);
  return cluster;
}

/// Runs `reps` scatter-gather executions and summarizes the per-shard vs
/// max-over-shards server-time tails. `cold` flushes all caches before
/// every repetition so the DiskModel's stall is charged each time (the
/// straggler cell needs the slow disk visible every run).
TailCell MeasureTail(shard::ShardCluster* cluster, const db::PlanPtr& plan,
                     int reps, bool cold) {
  TailCell cell;
  cell.shards = cluster->num_shards();
  serve::LatencyHistogram per_shard;
  serve::LatencyHistogram max_over_shards;
  std::map<int, int> slowest_counts;
  for (int r = 0; r < reps; ++r) {
    if (cold) {
      cluster->FlushCaches();
    }
    shard::ShardedResult result = cluster->Execute(plan);
    int64_t max_ns = 0;
    for (const shard::ShardExecution& exec : result.shards) {
      per_shard.Record(exec.timing.TotalNs());
      max_ns = std::max(max_ns, exec.timing.TotalNs());
    }
    max_over_shards.Record(max_ns);
    ++slowest_counts[result.slowest_shard];
  }
  cell.per_shard_p99_ms = per_shard.ValueAtPercentile(99.0) / 1e6;
  cell.max_p99_ms = max_over_shards.ValueAtPercentile(99.0) / 1e6;
  cell.amplification = cell.per_shard_p99_ms > 0.0
                           ? cell.max_p99_ms / cell.per_shard_p99_ms
                           : 0.0;
  int best_shard = -1;
  int best_count = -1;
  for (const auto& [shard_id, count] : slowest_counts) {
    if (count > best_count) {
      best_count = count;
      best_shard = shard_id;
    }
  }
  cell.slow_shard = best_shard;
  cell.slow_shard_share =
      reps > 0 ? static_cast<double>(best_count) / reps : 0.0;
  return cell;
}

std::string TailCellJson(const TailCell& cell) {
  return StrFormat(
      "{\"shards\": %d, \"straggler\": %s, \"per_shard_p99_ms\": %.4f, "
      "\"max_over_shards_p99_ms\": %.4f, \"amplification\": %.3f, "
      "\"slowest_shard\": %d, \"slowest_shard_share\": %.3f}",
      cell.shards, cell.straggler ? "true" : "false", cell.per_shard_p99_ms,
      cell.max_p99_ms, cell.amplification, cell.slow_shard,
      cell.slow_shard_share);
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A10",
      "per shard count: closed-loop capacity calibration + open-loop "
      "Poisson sweep through the sharded front-end (shared A8 machinery); "
      "speedup vs 1 shard as bootstrap ratio CIs; tail amplification "
      "(p99 of max-over-shards vs pooled per-shard p99), clean and with "
      "an injected slow-disk straggler",
      argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.01");
  ctx.properties().SetDefault("requests", "240");
  ctx.properties().SetDefault("tailReps", "60");
  ctx.properties().SetDefault("shardWorkers", "2");
  ctx.properties().SetDefault("frontWorkers", "4");
  ctx.properties().SetDefault("resamples", "1000");
  ctx.properties().SetDefault("runSeed", "42");
  if (ctx.Smoke()) {
    ctx.properties().SetDefault("smokeNote", "true");
  }
  ctx.PrintHeader("scale-out serving across a shard cluster (A10)");

  bool smoke = ctx.Smoke();
  double sf = ctx.properties().GetDouble("scaleFactor", 0.01);
  int requests = static_cast<int>(ctx.properties().GetInt("requests", 240));
  int tail_reps = static_cast<int>(ctx.properties().GetInt("tailReps", 60));
  int shard_workers =
      static_cast<int>(ctx.properties().GetInt("shardWorkers", 2));
  int front_workers =
      static_cast<int>(ctx.properties().GetInt("frontWorkers", 4));
  int resamples =
      static_cast<int>(ctx.properties().GetInt("resamples", 1000));
  uint64_t run_seed =
      static_cast<uint64_t>(ctx.properties().GetInt("runSeed", 42));
  if (smoke) {
    sf = 0.005;
    requests = 48;
    tail_reps = 12;
    resamples = 200;
  }
  // A mix of scan-heavy and join-heavy queries that all decompose into
  // shard fragments (Q1/Q6: split aggregates; Q3/Q12: co-partitioned
  // joins under split aggregates).
  const std::vector<int> query_mix = {1, 3, 6, 12};

  std::printf(
      "TPC-H sf %.3g, shard counts {1,2,4,8}, %d shard workers, "
      "%d front-end workers, %d requests per cell, query mix Q1/Q3/Q6/"
      "Q12\n\n",
      sf, shard_workers, front_workers, requests);

  // --- Part 1: throughput–latency sweep per shard count.
  std::vector<ScaleoutCell> scaleout;
  for (int num_shards : kShardCounts) {
    auto cluster = MakeCluster(num_shards, sf, shard_workers, {}, 0.0);
    serve::ServiceOptions front_options;
    front_options.workers = front_workers;
    front_options.queue_capacity = static_cast<size_t>(requests) + 1;
    front_options.overload = serve::OverloadPolicy::kShed;
    front_options.fingerprint_results = false;
    shard::FrontEnd frontend(cluster.get(), front_options);

    bench::LoadSweepOptions sweep_options;
    sweep_options.requests = requests;
    sweep_options.capacity_clients = front_workers;
    sweep_options.fractions = smoke ? std::vector<double>{1.0}
                                    : std::vector<double>{0.5, 0.85, 1.0};
    sweep_options.run_seed = run_seed + static_cast<uint64_t>(num_shards);
    sweep_options.resamples = resamples;
    sweep_options.query_mix = query_mix;
    bench::LoadSweepResult sweep =
        bench::RunLoadSweep(&frontend.service(), sweep_options);

    ScaleoutCell cell;
    cell.shards = num_shards;
    cell.capacity_qps = sweep.capacity_qps;
    cell.sweep = sweep.cells;
    cell.p99_series = sweep.p99_series;
    cell.p99_series.name = StrFormat("p99 N=%d", num_shards);
    for (double v : sweep.closed_run.client_latency.RepresentativeValues()) {
      cell.closed_latencies_ms.push_back(v / 1e6);
    }
    scaleout.push_back(std::move(cell));
    frontend.Shutdown();
  }
  // Speedup vs 1 shard: ratio of mean closed-loop latencies (same client
  // population and mix on both sides, so the latency ratio is the
  // capacity ratio), bootstrap-resampled.
  for (size_t i = 0; i < scaleout.size(); ++i) {
    scaleout[i].speedup = stats::BootstrapRatioCI(
        scaleout[0].closed_latencies_ms, scaleout[i].closed_latencies_ms,
        kConfidence, run_seed * 31 + static_cast<uint64_t>(i));
  }

  report::TextTable scale_table;
  scale_table.SetHeader({"shards", "capacity q/s", "speedup vs 1",
                         "p99 @ full load (ms)"});
  for (const ScaleoutCell& cell : scaleout) {
    const bench::LoadCell& full = cell.sweep.back();
    scale_table.AddRow(
        {StrFormat("%d", cell.shards), StrFormat("%.1f", cell.capacity_qps),
         StrFormat("%.2fx [%.2f,%.2f]", cell.speedup.mean, cell.speedup.lower,
                   cell.speedup.upper),
         StrFormat("%.2f [%.2f,%.2f]", full.percentiles[2].ms,
                   full.percentiles[2].ci.lower,
                   full.percentiles[2].ci.upper)});
  }
  std::printf("Scale-out sweep (open loop through the front-end):\n%s\n",
              scale_table.ToString().c_str());

  // --- Part 2: tail amplification, clean then with a straggler.
  std::vector<TailCell> tails;
  {
    db::PlanPtr probe;
    for (int num_shards : kShardCounts) {
      auto cluster = MakeCluster(num_shards, sf, shard_workers, {}, 0.0);
      if (probe == nullptr) {
        probe = workload::GetTpchQuery(6).Build(cluster->shard_db(0));
      }
      cluster->Execute(probe);  // warm every shard pool, unmeasured.
      tails.push_back(MeasureTail(cluster.get(), probe, tail_reps,
                                  /*cold=*/false));
    }
    // Straggler: shard 2 of 4 gets the spinning-rust model (the default
    // DiskModel; the others run SSD-class), its stall partially realized
    // as wall time, and every repetition runs cold so the model is
    // charged each time.
    std::map<int, db::DiskModel> override_map;
    for (int s = 0; s < 4; ++s) {
      override_map[s] = db::DiskModel::Ssd();
    }
    override_map[2] = db::DiskModel{};
    auto straggler_cluster =
        MakeCluster(4, sf, shard_workers, override_map,
                    /*realize_stall_scale=*/smoke ? 0.0 : 0.001);
    TailCell straggler =
        MeasureTail(straggler_cluster.get(), probe, tail_reps, /*cold=*/true);
    straggler.straggler = true;
    tails.push_back(straggler);
  }

  report::TextTable tail_table;
  tail_table.SetHeader({"shards", "cell", "per-shard p99 (ms)",
                        "max-over-shards p99 (ms)", "amplification",
                        "slowest shard (share)"});
  for (const TailCell& cell : tails) {
    tail_table.AddRow(
        {StrFormat("%d", cell.shards),
         cell.straggler ? "straggler (slow disk on shard 2)" : "clean",
         StrFormat("%.3f", cell.per_shard_p99_ms),
         StrFormat("%.3f", cell.max_p99_ms),
         StrFormat("%.2fx", cell.amplification),
         StrFormat("%d (%.0f%%)", cell.slow_shard,
                   cell.slow_shard_share * 100.0)});
  }
  std::printf(
      "Tail amplification (server-side, Q6; the coordinator waits for "
      "max-over-shards, so per-shard CDF F becomes F^N — the p99 of the "
      "max sits near the per-shard p(0.99^(1/N)) quantile):\n%s\n",
      tail_table.ToString().c_str());
  const TailCell& straggler_cell = tails.back();
  std::printf(
      "straggler cell: shard %d slowest in %.0f%% of repetitions — one "
      "slow disk pins the whole cluster's tail to itself.\n\n",
      straggler_cell.slow_shard, straggler_cell.slow_shard_share * 100.0);

  // --- Charts: p99 vs offered load, one curve per shard count.
  report::ChartSpec chart;
  chart.title = "Sharded front-end p99 vs offered load";
  chart.x_label = "Offered load (queries/s)";
  chart.y_label = "Client p99 latency (ms)";
  chart.style = report::ChartStyle::kErrorBars;
  for (const ScaleoutCell& cell : scaleout) {
    chart.series.push_back(cell.p99_series);
  }
  std::string stem = ctx.ResultPath("a10_shard_scaleout");
  if (!report::WriteChart(chart, stem).ok() ||
      !report::WriteSvgChart(chart, stem).ok()) {
    std::fprintf(stderr, "cannot write charts at %s\n", stem.c_str());
    return 1;
  }
  ctx.AddOutput(stem + ".gnu");
  ctx.AddOutput(stem + ".svg");

  // --- Machine-readable results.
  std::string json = "{\n";
  json += "  \"experiment\": \"A10\",\n";
  json += StrFormat("  \"scale_factor\": %g,\n", sf);
  json += StrFormat("  \"requests_per_cell\": %d,\n", requests);
  json += StrFormat("  \"tail_reps\": %d,\n", tail_reps);
  json += StrFormat("  \"shard_workers\": %d,\n", shard_workers);
  json += StrFormat("  \"front_workers\": %d,\n", front_workers);
  json += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += "  \"query_mix\": [1, 3, 6, 12],\n";
  json += "  \"scaleout\": [\n";
  for (size_t i = 0; i < scaleout.size(); ++i) {
    const ScaleoutCell& cell = scaleout[i];
    json += StrFormat(
        "    {\"shards\": %d, \"capacity_qps\": %.2f, "
        "\"speedup_vs_1\": {\"mean\": %.3f, \"ci_lower\": %.3f, "
        "\"ci_upper\": %.3f, \"confidence\": %.2f},\n",
        cell.shards, cell.capacity_qps, cell.speedup.mean, cell.speedup.lower,
        cell.speedup.upper, kConfidence);
    json += "     \"sweep\": " + bench::SweepJson(cell.sweep, 5) + "}";
    json += (i + 1 < scaleout.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"tail_amplification\": [\n";
  for (size_t i = 0; i < tails.size(); ++i) {
    json += "    " + TailCellJson(tails[i]) +
            (i + 1 < tails.size() ? ",\n" : "\n");
  }
  json += "  ]\n";
  json += "}\n";

  std::string json_path = ctx.ResultPath("BENCH_shard_scaleout.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  ctx.AddOutput(json_path);
  ctx.AddNote(StrFormat(
      "straggler pins the tail: shard %d slowest in %.0f%% of reps",
      straggler_cell.slow_shard, straggler_cell.slow_shard_share * 100.0));
  ctx.Finish();
  return 0;
}
