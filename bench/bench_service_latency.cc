// A8 — throughput–latency curves for the concurrent query service, and
// the closed-vs-open-loop comparison the load-generation literature
// insists on (Schroeder et al.; paper slides 22–35: report server and
// client time separately, and report distributions, not means).
//
// Protocol (the sweep itself lives in load_sweep.h, shared with A10's
// sharded front-end): a closed-loop calibration run (one client per
// worker, no think time) measures the service's capacity; the sweep then
// offers open-loop Poisson load at fractions of that capacity and reports
// client-observed percentiles with bootstrap CIs. The comparison cell
// re-runs closed- and open-loop at the *same* offered load: the closed
// driver stops issuing while the service is busy (coordinated omission),
// so its tail under-reports the latency an independent arrival process
// actually experiences — open-loop p99 exceeding closed-loop p99 at equal
// offered load is that effect, measured.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "db/database.h"
#include "load_sweep.h"
#include "report/table_format.h"
#include "serve/loadgen.h"
#include "serve/service.h"
#include "workload/tpch_gen.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A8",
      "closed-loop calibration, then open-loop Poisson sweep at fractions "
      "of capacity; percentiles with bootstrap CIs; closed-vs-open "
      "comparison at equal offered load",
      argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.01");
  ctx.properties().SetDefault("workers", "4");
  ctx.properties().SetDefault("requests", "400");
  ctx.properties().SetDefault("resamples", "1000");
  ctx.properties().SetDefault("runSeed", "42");
  if (ctx.Smoke()) {
    ctx.properties().SetDefault("smokeNote", "true");
  }
  ctx.PrintHeader("service latency under open/closed-loop load (A8)");

  bool smoke = ctx.Smoke();
  double sf = ctx.properties().GetDouble("scaleFactor", 0.01);
  int workers = static_cast<int>(ctx.properties().GetInt("workers", 4));
  int requests = static_cast<int>(ctx.properties().GetInt("requests", 400));
  int resamples =
      static_cast<int>(ctx.properties().GetInt("resamples", 1000));
  uint64_t run_seed =
      static_cast<uint64_t>(ctx.properties().GetInt("runSeed", 42));
  if (smoke) {
    sf = 0.005;
    requests = 80;
    resamples = 200;
  }

  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);

  serve::ServiceOptions service_options;
  service_options.workers = workers;
  // The sweep measures queueing, so the queue must be able to hold the
  // whole backlog of a saturated run: admission control is a different
  // experiment (serve_test covers the policies).
  service_options.queue_capacity = static_cast<size_t>(requests) + 1;
  service_options.overload = serve::OverloadPolicy::kShed;
  service_options.fingerprint_results = false;
  serve::QueryService service(&database, service_options);

  std::printf("TPC-H sf %.3g, %d service workers, %d requests per cell\n\n",
              sf, workers, requests);

  // --- Calibration + open-loop offered-load sweep (shared machinery).
  bench::LoadSweepOptions sweep_options;
  sweep_options.requests = requests;
  sweep_options.capacity_clients = workers;
  sweep_options.fractions = smoke ? std::vector<double>{0.5, 1.0}
                                  : std::vector<double>{0.3, 0.5, 0.7,
                                                        0.85, 1.0};
  sweep_options.run_seed = run_seed;
  sweep_options.resamples = resamples;
  bench::LoadSweepResult sweep = bench::RunLoadSweep(&service, sweep_options);
  std::printf(
      "capacity (closed loop, %d clients, zero think): %.1f q/s "
      "(%.0f qph)\n\n",
      workers, sweep.capacity_qps, sweep.closed_run.qph);
  std::printf("Open-loop offered-load sweep (client-observed latency, "
              "charged from intended arrival):\n%s\n",
              bench::SweepTable(sweep.cells).ToString().c_str());

  // --- Coordinated omission: closed vs open at the same offered load.
  // A closed driver with zero think time offers exactly what it achieves,
  // so the open-loop cell below offers the same load the closed cell
  // sustained — the only difference is whether arrivals wait for the
  // service (closed) or for nobody (open).
  bench::LoadCell closed_cell = sweep.closed_cell;
  serve::LoadOptions matched_options;
  matched_options.mode = serve::LoadMode::kOpen;
  matched_options.requests = requests;
  matched_options.offered_qps = sweep.capacity_qps;
  matched_options.run_seed = run_seed + 101;
  serve::LoadGenerator matched_gen(&service, matched_options);
  serve::LoadResult matched_run = matched_gen.Run();
  bench::LoadCell open_cell = bench::SummarizeLoadRun(
      sweep.capacity_qps, matched_run, run_seed * 2791, resamples);

  report::TextTable cmp_table;
  cmp_table.SetHeader({"driver", "offered q/s", "achieved qph", "p50 (ms)",
                       "p90 (ms)", "p99 (ms)", "p99.9 (ms)"});
  for (const auto& [name, cell] :
       {std::pair<const char*, const bench::LoadCell&>{"closed",
                                                       closed_cell},
        std::pair<const char*, const bench::LoadCell&>{"open", open_cell}}) {
    cmp_table.AddRow({name, StrFormat("%.1f", cell.offered_qps),
                      StrFormat("%.0f", cell.achieved_qph),
                      StrFormat("%.2f", cell.percentiles[0].ms),
                      StrFormat("%.2f", cell.percentiles[1].ms),
                      StrFormat("%.2f [%.2f,%.2f]", cell.percentiles[2].ms,
                                cell.percentiles[2].ci.lower,
                                cell.percentiles[2].ci.upper),
                      StrFormat("%.2f", cell.percentiles[3].ms)});
  }
  bool omission_shown =
      open_cell.percentiles[2].ms > closed_cell.percentiles[2].ms;
  std::printf("Closed vs open loop at equal offered load:\n%s\n",
              cmp_table.ToString().c_str());
  std::printf(
      "open-loop p99 %s closed-loop p99 (%.2f vs %.2f ms): a closed driver "
      "stops offering load while it waits, so queueing delay the arrival "
      "process would have seen is simply never measured — coordinated "
      "omission %s.\n\n",
      omission_shown ? "exceeds" : "does NOT exceed",
      open_cell.percentiles[2].ms, closed_cell.percentiles[2].ms,
      omission_shown ? "demonstrated" : "not visible in this run");

  // --- Charts: throughput–latency curve with CI error bars.
  std::string stem = ctx.ResultPath("a8_service_latency");
  if (!bench::WriteThroughputLatencyChart(
           sweep, "Service latency vs offered load (open loop)", stem)
           .ok()) {
    std::fprintf(stderr, "cannot write charts at %s\n", stem.c_str());
    return 1;
  }
  ctx.AddOutput(stem + ".gnu");
  ctx.AddOutput(stem + ".svg");

  // --- Machine-readable results.
  std::string json = "{\n";
  json += "  \"experiment\": \"A8\",\n";
  json += StrFormat("  \"scale_factor\": %g,\n", sf);
  json += StrFormat("  \"workers\": %d,\n", workers);
  json += StrFormat("  \"requests_per_cell\": %d,\n", requests);
  json += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += StrFormat("  \"capacity_qps\": %.2f,\n", sweep.capacity_qps);
  json += "  \"sweep\": " + bench::SweepJson(sweep.cells, 2) + ",\n";
  json += "  \"comparison\": {\n";
  json += StrFormat("    \"offered_qps\": %.2f,\n", sweep.capacity_qps);
  json += "    \"closed\": " + bench::LoadCellJson(closed_cell) + ",\n";
  json += "    \"open\": " + bench::LoadCellJson(open_cell) + ",\n";
  json += StrFormat("    \"open_p99_exceeds_closed_p99\": %s\n",
                    omission_shown ? "true" : "false");
  json += "  }\n";
  json += "}\n";

  std::string json_path = ctx.ResultPath("BENCH_service_latency.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  ctx.AddOutput(json_path);
  ctx.AddNote(omission_shown
                  ? "coordinated omission demonstrated (open p99 > closed)"
                  : "coordinated omission NOT visible in this run");
  ctx.Finish();
  return 0;
}
