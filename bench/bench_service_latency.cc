// A8 — throughput–latency curves for the concurrent query service, and
// the closed-vs-open-loop comparison the load-generation literature
// insists on (Schroeder et al.; paper slides 22–35: report server and
// client time separately, and report distributions, not means).
//
// Protocol: a closed-loop calibration run (one client per worker, no
// think time) measures the service's capacity; the sweep then offers
// open-loop Poisson load at fractions of that capacity and reports
// client-observed percentiles with bootstrap CIs. The comparison cell
// re-runs closed- and open-loop at the *same* offered load: the closed
// driver stops issuing while the service is busy (coordinated omission),
// so its tail under-reports the latency an independent arrival process
// actually experiences — open-loop p99 exceeding closed-loop p99 at equal
// offered load is that effect, measured.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/metrics.h"
#include "db/database.h"
#include "report/gnuplot.h"
#include "report/svg.h"
#include "report/table_format.h"
#include "serve/loadgen.h"
#include "serve/service.h"
#include "stats/confidence.h"
#include "workload/tpch_gen.h"

namespace perfeval {
namespace {

constexpr double kConfidence = 0.95;
const double kPercentiles[] = {50.0, 90.0, 99.0, 99.9};
const char* kPercentileNames[] = {"p50", "p90", "p99", "p99.9"};

struct PercentileRow {
  double ms = 0.0;
  stats::ConfidenceInterval ci;  ///< in ms.
};

struct CellResult {
  double offered_qps = 0.0;
  double achieved_qph = 0.0;
  int64_t errors = 0;
  PercentileRow percentiles[4];
};

CellResult Summarize(double offered_qps, const serve::LoadResult& run,
                     uint64_t ci_seed, int resamples) {
  CellResult cell;
  cell.offered_qps = offered_qps;
  cell.achieved_qph = run.qph;
  cell.errors = run.errors;
  for (int i = 0; i < 4; ++i) {
    cell.percentiles[i].ms =
        run.client_latency.ValueAtPercentile(kPercentiles[i]) / 1e6;
    stats::ConfidenceInterval ci = run.client_latency.PercentileCI(
        kPercentiles[i], kConfidence, ci_seed + static_cast<uint64_t>(i),
        resamples);
    ci.mean /= 1e6;
    ci.lower /= 1e6;
    ci.upper /= 1e6;
    cell.percentiles[i].ci = ci;
  }
  return cell;
}

std::string PercentilesJson(const CellResult& cell) {
  std::string out = "{";
  for (int i = 0; i < 4; ++i) {
    out += StrFormat(
        "%s\"%s\": {\"ms\": %.4f, \"ci_lower_ms\": %.4f, "
        "\"ci_upper_ms\": %.4f, \"confidence\": %.2f}",
        i == 0 ? "" : ", ", kPercentileNames[i], cell.percentiles[i].ms,
        cell.percentiles[i].ci.lower, cell.percentiles[i].ci.upper,
        kConfidence);
  }
  out += "}";
  return out;
}

std::string CellJson(const CellResult& cell) {
  return StrFormat(
      "{\"offered_qps\": %.2f, \"achieved_qph\": %.0f, \"errors\": %lld, "
      "\"percentiles\": %s}",
      cell.offered_qps, cell.achieved_qph,
      static_cast<long long>(cell.errors), PercentilesJson(cell).c_str());
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A8",
      "closed-loop calibration, then open-loop Poisson sweep at fractions "
      "of capacity; percentiles with bootstrap CIs; closed-vs-open "
      "comparison at equal offered load",
      argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.01");
  ctx.properties().SetDefault("workers", "4");
  ctx.properties().SetDefault("requests", "400");
  ctx.properties().SetDefault("resamples", "1000");
  ctx.properties().SetDefault("runSeed", "42");
  if (ctx.Smoke()) {
    ctx.properties().SetDefault("smokeNote", "true");
  }
  ctx.PrintHeader("service latency under open/closed-loop load (A8)");

  bool smoke = ctx.Smoke();
  double sf = ctx.properties().GetDouble("scaleFactor", 0.01);
  int workers = static_cast<int>(ctx.properties().GetInt("workers", 4));
  int requests = static_cast<int>(ctx.properties().GetInt("requests", 400));
  int resamples =
      static_cast<int>(ctx.properties().GetInt("resamples", 1000));
  uint64_t run_seed =
      static_cast<uint64_t>(ctx.properties().GetInt("runSeed", 42));
  if (smoke) {
    sf = 0.005;
    requests = 80;
    resamples = 200;
  }

  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);

  serve::ServiceOptions service_options;
  service_options.workers = workers;
  // The sweep measures queueing, so the queue must be able to hold the
  // whole backlog of a saturated run: admission control is a different
  // experiment (serve_test covers the policies).
  service_options.queue_capacity = static_cast<size_t>(requests) + 1;
  service_options.overload = serve::OverloadPolicy::kShed;
  service_options.fingerprint_results = false;
  serve::QueryService service(&database, service_options);

  std::printf("TPC-H sf %.3g, %d service workers, %d requests per cell\n\n",
              sf, workers, requests);

  // --- Calibration: closed loop, one client per worker, no think time.
  serve::LoadOptions closed_options;
  closed_options.mode = serve::LoadMode::kClosed;
  closed_options.requests = requests;
  closed_options.clients = workers;
  closed_options.run_seed = run_seed;
  serve::LoadGenerator closed_gen(&service, closed_options);
  (void)closed_gen.Run();  // warm the buffer pool, unmeasured.
  serve::LoadResult closed_run = closed_gen.Run();
  double capacity_qps = closed_run.achieved_qps;
  std::printf(
      "capacity (closed loop, %d clients, zero think): %.1f q/s "
      "(%.0f qph)\n\n",
      workers, capacity_qps, closed_run.qph);

  // --- Offered-load sweep, open loop.
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.5, 1.0}
            : std::vector<double>{0.3, 0.5, 0.7, 0.85, 1.0};
  report::TextTable sweep_table;
  sweep_table.SetHeader({"offered q/s", "achieved qph", "p50 (ms)",
                         "p90 (ms)", "p99 (ms)", "p99.9 (ms)"});
  std::vector<CellResult> sweep;
  core::Series p50_series{"p50", {}, {}, {}};
  core::Series p99_series{"p99", {}, {}, {}};
  for (size_t i = 0; i < fractions.size(); ++i) {
    double offered = capacity_qps * fractions[i];
    serve::LoadOptions open_options;
    open_options.mode = serve::LoadMode::kOpen;
    open_options.requests = requests;
    open_options.offered_qps = offered;
    open_options.run_seed = run_seed + 1 + static_cast<uint64_t>(i);
    serve::LoadGenerator open_gen(&service, open_options);
    serve::LoadResult run = open_gen.Run();
    CellResult cell =
        Summarize(offered, run, run_seed * 977 + static_cast<uint64_t>(i),
                  resamples);
    sweep.push_back(cell);
    sweep_table.AddRow(
        {StrFormat("%.1f", offered), StrFormat("%.0f", cell.achieved_qph),
         StrFormat("%.2f [%.2f,%.2f]", cell.percentiles[0].ms,
                   cell.percentiles[0].ci.lower,
                   cell.percentiles[0].ci.upper),
         StrFormat("%.2f", cell.percentiles[1].ms),
         StrFormat("%.2f [%.2f,%.2f]", cell.percentiles[2].ms,
                   cell.percentiles[2].ci.lower,
                   cell.percentiles[2].ci.upper),
         StrFormat("%.2f", cell.percentiles[3].ms)});
    p50_series.AppendWithError(offered, cell.percentiles[0].ms,
                               cell.percentiles[0].ci.HalfWidth());
    p99_series.AppendWithError(offered, cell.percentiles[2].ms,
                               cell.percentiles[2].ci.HalfWidth());
  }
  std::printf("Open-loop offered-load sweep (client-observed latency, "
              "charged from intended arrival):\n%s\n",
              sweep_table.ToString().c_str());

  // --- Coordinated omission: closed vs open at the same offered load.
  // A closed driver with zero think time offers exactly what it achieves,
  // so the open-loop cell below offers the same load the closed cell
  // sustained — the only difference is whether arrivals wait for the
  // service (closed) or for nobody (open).
  CellResult closed_cell =
      Summarize(capacity_qps, closed_run, run_seed * 1979, resamples);
  serve::LoadOptions matched_options;
  matched_options.mode = serve::LoadMode::kOpen;
  matched_options.requests = requests;
  matched_options.offered_qps = capacity_qps;
  matched_options.run_seed = run_seed + 101;
  serve::LoadGenerator matched_gen(&service, matched_options);
  serve::LoadResult matched_run = matched_gen.Run();
  CellResult open_cell =
      Summarize(capacity_qps, matched_run, run_seed * 2791, resamples);

  report::TextTable cmp_table;
  cmp_table.SetHeader({"driver", "offered q/s", "achieved qph", "p50 (ms)",
                       "p90 (ms)", "p99 (ms)", "p99.9 (ms)"});
  for (const auto& [name, cell] :
       {std::pair<const char*, const CellResult&>{"closed", closed_cell},
        std::pair<const char*, const CellResult&>{"open", open_cell}}) {
    cmp_table.AddRow({name, StrFormat("%.1f", cell.offered_qps),
                      StrFormat("%.0f", cell.achieved_qph),
                      StrFormat("%.2f", cell.percentiles[0].ms),
                      StrFormat("%.2f", cell.percentiles[1].ms),
                      StrFormat("%.2f [%.2f,%.2f]", cell.percentiles[2].ms,
                                cell.percentiles[2].ci.lower,
                                cell.percentiles[2].ci.upper),
                      StrFormat("%.2f", cell.percentiles[3].ms)});
  }
  bool omission_shown =
      open_cell.percentiles[2].ms > closed_cell.percentiles[2].ms;
  std::printf("Closed vs open loop at equal offered load:\n%s\n",
              cmp_table.ToString().c_str());
  std::printf(
      "open-loop p99 %s closed-loop p99 (%.2f vs %.2f ms): a closed driver "
      "stops offering load while it waits, so queueing delay the arrival "
      "process would have seen is simply never measured — coordinated "
      "omission %s.\n\n",
      omission_shown ? "exceeds" : "does NOT exceed",
      open_cell.percentiles[2].ms, closed_cell.percentiles[2].ms,
      omission_shown ? "demonstrated" : "not visible in this run");

  // --- Charts: throughput–latency curve with CI error bars.
  report::ChartSpec chart;
  chart.title = "Service latency vs offered load (open loop)";
  chart.x_label = "Offered load (queries/s)";
  chart.y_label = "Client latency (ms)";
  chart.style = report::ChartStyle::kErrorBars;
  chart.series = {p50_series, p99_series};
  std::string stem = ctx.ResultPath("a8_service_latency");
  if (!report::WriteChart(chart, stem).ok() ||
      !report::WriteSvgChart(chart, stem).ok()) {
    std::fprintf(stderr, "cannot write charts at %s\n", stem.c_str());
    return 1;
  }
  ctx.AddOutput(stem + ".gnu");
  ctx.AddOutput(stem + ".svg");

  // --- Machine-readable results.
  std::string json = "{\n";
  json += "  \"experiment\": \"A8\",\n";
  json += StrFormat("  \"scale_factor\": %g,\n", sf);
  json += StrFormat("  \"workers\": %d,\n", workers);
  json += StrFormat("  \"requests_per_cell\": %d,\n", requests);
  json += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += StrFormat("  \"capacity_qps\": %.2f,\n", capacity_qps);
  json += "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    json += "    " + CellJson(sweep[i]) +
            (i + 1 < sweep.size() ? ",\n" : "\n");
  }
  json += "  ],\n";
  json += "  \"comparison\": {\n";
  json += StrFormat("    \"offered_qps\": %.2f,\n", capacity_qps);
  json += "    \"closed\": " + CellJson(closed_cell) + ",\n";
  json += "    \"open\": " + CellJson(open_cell) + ",\n";
  json += StrFormat("    \"open_p99_exceeds_closed_p99\": %s\n",
                    omission_shown ? "true" : "false");
  json += "  }\n";
  json += "}\n";

  std::string json_path = ctx.ResultPath("BENCH_service_latency.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  ctx.AddOutput(json_path);
  ctx.AddNote(omission_shown
                  ? "coordinated omission demonstrated (open p99 > closed)"
                  : "coordinated omission NOT visible in this run");
  ctx.Finish();
  return 0;
}
