// A1 — ablation in the paper's own methodology (slides 59, 110-113):
// screen the database engine's design factors with a 2^k design, allocate
// the variation, and show that a half-fraction 2^(5-1) reaches the same
// ranking of important factors with half the runs.
//
// Factors (all two-level):
//   A  buffer pool size   32 vs 4096 pages
//   B  zone maps          off vs on
//   C  execution mode     debug vs optimized
//   D  page size          512 vs 4096 rows/page
//   E  disk model         HDD vs SSD
// Response: total observed time (ms) of one cold TPC-H Q6 followed by two
// hot repetitions — so both I/O factors and CPU factors can show up.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "db/database.h"
#include "doe/allocation.h"
#include "doe/effects.h"
#include "report/csv.h"
#include "report/table_format.h"
#include "sched/scheduler.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace {

struct Tables {
  std::vector<std::pair<std::string, std::shared_ptr<db::Table>>> tables;
};

Tables GenerateOnce(double scale_factor) {
  workload::TpchGenerator gen(scale_factor);
  Tables out;
  for (const char* name : {"region", "nation", "supplier", "customer",
                           "part", "partsupp", "orders", "lineitem"}) {
    out.tables.emplace_back(name, gen.Generate(name));
  }
  return out;
}

double RunConfiguration(const Tables& tables, bool big_pool, bool zone_maps,
                        bool optimized, bool big_pages, bool ssd) {
  db::DatabaseOptions options;
  options.buffer_pool_pages = big_pool ? 4096 : 32;
  options.rows_per_page = big_pages ? 4096 : 512;
  options.disk = ssd ? db::DiskModel::Ssd() : db::DiskModel();
  db::Database database(options);
  for (const auto& [name, table] : tables.tables) {
    database.RegisterTable(name, table);
  }
  db::ExecMode mode =
      optimized ? db::ExecMode::kOptimized : db::ExecMode::kDebug;
  db::PlanPtr plan = workload::GetTpchQuery(6).Build(database);
  database.FlushCaches();
  double total_ms = 0.0;
  for (int run = 0; run < 3; ++run) {
    total_ms += database
                    .Run(plan, mode, db::SinkKind::kDiscard, zone_maps)
                    .ServerRealMs();
  }
  return total_ms;
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A1", "per design point: cold Q6 + 2 hot repetitions, observed time",
      argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.01");
  ctx.PrintHeader("engine factor screening with 2^5 and 2^(5-1) designs");

  double sf = ctx.properties().GetDouble("scaleFactor", 0.01);
  Tables tables = GenerateOnce(sf);
  std::printf("TPC-H scale factor %.3g\n\n", sf);

  const std::vector<std::string> factor_names = {
      "pool", "zonemaps", "vectorized", "pagesize", "ssd"};
  doe::SignTable full = doe::SignTable::FullFactorial(5);
  // The same 32 configurations as a Design (both use the standard order:
  // factor f of run r is "high" iff bit f of r is set), executed through
  // the scheduler: --jobs/--order/--isolation control the worker pool, the
  // run order and whether trials may overlap; the results are reassembled
  // into design order, so they do not depend on any of the three.
  doe::Design design = doe::TwoLevelFullFactorial(
      {doe::Factor::TwoLevel("pool", "32", "4096"),
       doe::Factor::TwoLevel("zonemaps", "off", "on"),
       doe::Factor::TwoLevel("vectorized", "debug", "opt"),
       doe::Factor::TwoLevel("pagesize", "512", "4096"),
       doe::Factor::TwoLevel("ssd", "hdd", "ssd")});
  core::RunProtocol protocol;
  protocol.warmup_runs = 0;   // The cold+2-hot sequence is the trial itself.
  protocol.measured_runs = 1;
  protocol.aggregation = core::Aggregation::kLast;
  sched::Scheduler scheduler(ctx.ScheduleOptions());
  std::printf("schedule: %s\n\n",
              scheduler.options().ToScheduleSpec().Describe().c_str());
  Result<core::ExperimentResult> scheduled = scheduler.Run(
      design, protocol, core::ResponseMetric::kRealMs,
      [&](const doe::DesignPoint& point, const core::TrialSpec&) {
        core::Measurement m;
        m.real_ns = static_cast<int64_t>(
            RunConfiguration(tables, point.levels[0] > 0,
                             point.levels[1] > 0, point.levels[2] > 0,
                             point.levels[3] > 0, point.levels[4] > 0) *
            1e6);
        return m;
      });
  if (!scheduled.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 scheduled.status().ToString().c_str());
    return 1;
  }
  std::vector<double> y = scheduled->AggregatedResponses();
  report::CsvWriter csv(
      {"pool", "zonemaps", "vectorized", "pagesize", "ssd", "total_ms"});
  for (size_t run = 0; run < full.num_runs(); ++run) {
    const doe::DesignPoint& point = design.points()[run];
    csv.AddNumericRow({point.levels[0] > 0 ? 1.0 : 0.0,
                       point.levels[1] > 0 ? 1.0 : 0.0,
                       point.levels[2] > 0 ? 1.0 : 0.0,
                       point.levels[3] > 0 ? 1.0 : 0.0,
                       point.levels[4] > 0 ? 1.0 : 0.0, y[run]});
  }

  doe::VariationAllocation allocation = doe::AllocateVariation(full, y);
  report::TextTable table;
  table.SetHeader({"effect", "%var"});
  int printed = 0;
  for (const doe::VariationComponent& c : allocation.components) {
    if (printed++ == 8) {
      break;
    }
    table.AddRow({doe::EffectName(c.effect, factor_names),
                  StrFormat("%.1f%%", c.fraction * 100.0)});
  }
  std::printf("Full 2^5 design (32 runs) — top effects:\n%s\n",
              table.ToString().c_str());

  // Half fraction E = ABCD (resolution V): pick the 16 matching runs.
  doe::FractionalDesignSpec spec(5, {doe::Generator{4, 0b01111}});
  doe::SignTable fraction = doe::SignTable::Fractional(spec);
  std::vector<double> y_fraction;
  for (size_t frun = 0; frun < fraction.num_runs(); ++frun) {
    // Locate the full-design run with identical signs.
    size_t index = 0;
    for (size_t f = 0; f < 5; ++f) {
      if (fraction.FactorSign(frun, f) > 0) {
        index |= size_t{1} << f;
      }
    }
    y_fraction.push_back(y[index]);
  }
  doe::EffectModel fraction_model =
      doe::EstimateMainEffectsFractional(fraction, y_fraction);
  std::printf(
      "Half fraction 2^(5-1), E=ABCD (16 runs, resolution V) — main "
      "effects:\n");
  report::TextTable fraction_table;
  fraction_table.SetHeader({"factor", "effect q (ms)"});
  for (size_t f = 0; f < 5; ++f) {
    fraction_table.AddRow(
        {factor_names[f],
         StrFormat("%.2f",
                   fraction_model.Coefficient(doe::EffectMask{1} << f))});
  }
  std::printf("%s\n", fraction_table.ToString().c_str());

  // Do the full design and the fraction agree on the most important main
  // effect?
  auto top_main = [&](auto coefficient) {
    size_t best = 0;
    double best_magnitude = -1.0;
    for (size_t f = 0; f < 5; ++f) {
      double magnitude = std::fabs(coefficient(f));
      if (magnitude > best_magnitude) {
        best_magnitude = magnitude;
        best = f;
      }
    }
    return best;
  };
  doe::EffectModel full_model = doe::EstimateEffects(full, y);
  size_t full_top = top_main([&](size_t f) {
    return full_model.Coefficient(doe::EffectMask{1} << f);
  });
  size_t fraction_top = top_main([&](size_t f) {
    return fraction_model.Coefficient(doe::EffectMask{1} << f);
  });
  std::printf(
      "most important factor — full design: %s, half fraction: %s "
      "(agree: %s)\n",
      factor_names[full_top].c_str(), factor_names[fraction_top].c_str(),
      full_top == fraction_top ? "YES" : "NO");
  std::printf(
      "\npaper (slide 113): run a 2^k or 2^(k-p) design, evaluate factor "
      "importance, then refine the important factors.\n");

  std::string csv_path = ctx.ResultPath("a1_screening.csv");
  if (!csv.WriteToFile(csv_path).ok()) {
    return 1;
  }
  ctx.AddOutput(csv_path);
  ctx.Finish();
  return full_top == fraction_top ? 0 : 1;
}
