// T5 — paper slides 67-69: the fractional factorial design table.
// Reproduces the 9-run selection out of 3^4 = 81 combinations for the
// CPU x Memory x Workload x Education catalogue, and verifies the two
// properties the paper highlights: fewer experiments, with balanced
// (pairwise-orthogonal) level coverage so main effects stay estimable.

#include <cstdio>

#include "bench_util.h"
#include "doe/fractional3.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("T5", "combinatorial construction, no measurement",
                          argc, argv);
  ctx.PrintHeader("fractional factorial design, 4 factors x 3 levels");

  doe::Design design = doe::PaperSlide67Design();
  std::printf("%s\n", design.ToTable().c_str());
  std::printf("runs: %zu of %lld possible combinations\n",
              design.num_runs(),
              static_cast<long long>(doe::FullFactorialRuns({3, 3, 3, 3})));
  bool covers = design.CoversAllLevels();
  bool balanced = design.IsPairwiseBalanced();
  std::printf("covers every level of every factor: %s\n",
              covers ? "YES" : "NO");
  std::printf("pairwise balanced (each level pair once per factor pair): %s\n",
              balanced ? "YES" : "NO");
  std::printf(
      "\npaper: \"Less experiments — some information loss "
      "(interactions!) Maybe they were negligible?\"\n");

  ctx.Finish();
  return covers && balanced ? 0 : 1;
}
