// F2 — paper slides 46/51: "Do you know what happens?"
// SELECT MAX(column) per-iteration cost across five machine generations
// (1992 Sun LX ... 2000 Origin2000), dissected into CPU and memory time
// via the simulated cache hierarchy and its hardware counters. The figure's
// message: a 10x CPU clock improvement yields hardly any scan improvement,
// because memory latency dominates.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/metrics.h"
#include "hwsim/scan.h"
#include "report/gnuplot.h"
#include "report/table_format.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "F2", "cold simulated caches; one full scan per machine profile",
      argc, argv);
  ctx.properties().SetDefault("elements", "1048576");
  ctx.PrintHeader("SELECT MAX scan across machine generations");

  hwsim::ScanSpec spec;
  spec.num_elements = ctx.properties().GetInt("elements", 1 << 20);

  report::TextTable table;
  table.SetHeader({"year", "system", "CPU", "clock", "CPU ns/iter",
                   "mem ns/iter", "total ns/iter", "memory share"});
  core::Series cpu_series;
  cpu_series.name = "CPU";
  core::Series mem_series;
  mem_series.name = "Memory";

  double first_total = 0.0;
  double last_total = 0.0;
  std::string counters_1998;
  for (const hwsim::MachineProfile& machine : hwsim::HistoricalMachines()) {
    hwsim::ScanResult result = hwsim::SimulateScanMax(machine, spec);
    table.AddRow({std::to_string(result.year), machine.system, machine.cpu,
                  StrFormat("%.0f MHz", machine.clock_mhz),
                  StrFormat("%.1f", result.cpu_ns_per_iter),
                  StrFormat("%.1f", result.mem_ns_per_iter),
                  StrFormat("%.1f", result.TotalNsPerIter()),
                  StrFormat("%.0f%%", result.MemoryShare() * 100.0)});
    cpu_series.Append(result.year, result.cpu_ns_per_iter);
    mem_series.Append(result.year, result.mem_ns_per_iter);
    if (first_total == 0.0) {
      first_total = result.TotalNsPerIter();
    }
    last_total = result.TotalNsPerIter();
    if (machine.year == 1998) {
      counters_1998 = result.counter_report;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "10x clock improvement, total scan time improved only %.1fx\n"
      "(paper: \"hardly any performance improvement\")\n\n",
      first_total / last_total);
  std::printf("Hardware counters, DEC Alpha (row-store scan):\n%s\n",
              counters_1998.c_str());

  // Columnar counterpoint: the layout change MonetDB made.
  hwsim::ScanSpec columnar = spec;
  columnar.layout = hwsim::ScanLayout::kColumnar;
  hwsim::ScanResult row_alpha =
      hwsim::SimulateScanMax(hwsim::MachineByName("DEC Alpha"), spec);
  hwsim::ScanResult col_alpha =
      hwsim::SimulateScanMax(hwsim::MachineByName("DEC Alpha"), columnar);
  std::printf(
      "Columnar layout on the same Alpha: %.1f ns/iter vs %.1f ns/iter "
      "row-store (%.1fx)\n",
      col_alpha.TotalNsPerIter(), row_alpha.TotalNsPerIter(),
      row_alpha.TotalNsPerIter() / col_alpha.TotalNsPerIter());

  // Ablation: the stream prefetcher that later broke the memory wall.
  hwsim::ScanSpec prefetched = spec;
  prefetched.next_line_prefetch = true;
  hwsim::ScanResult alpha_prefetch =
      hwsim::SimulateScanMax(hwsim::MachineByName("DEC Alpha"), prefetched);
  std::printf(
      "With a stride-stream prefetcher on the same Alpha: "
      "%.1f ns/iter memory (vs %.1f without) — the knob that eventually "
      "softened this figure's memory wall.\n\n",
      alpha_prefetch.mem_ns_per_iter, row_alpha.mem_ns_per_iter);

  report::ChartSpec chart;
  chart.title = "Simple in-memory scan: SELECT MAX(column) FROM table";
  chart.x_label = "machine generation (year)";
  chart.y_label = "elapsed time per iteration (ns)";
  chart.style = report::ChartStyle::kStackedBars;
  chart.series = {cpu_series, mem_series};
  std::string stem = ctx.ResultPath("f2_scan_generations");
  if (!report::WriteChart(chart, stem).ok()) {
    return 1;
  }
  ctx.AddOutput(stem + ".csv");
  ctx.AddOutput(stem + ".gnu");
  ctx.Finish();
  return 0;
}
