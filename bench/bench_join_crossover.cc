// A2 — ablation: comparing alternatives the paper's way ("who wins, by
// what factor, and where is the crossover"). Two operator duels on the
// bundled engine:
//
//   1. HashJoin vs MergeJoin over input size, for pre-sorted (clustered)
//      and random key orders. Merge join exploits sortedness and skips
//      its sort; hash join is oblivious to order.
//   2. TopN (partial sort, O(n log k)) vs Sort+Limit (O(n log n)) over
//      input size at fixed k.
//
// Every point is the minimum of 3 hot runs of user CPU time, reported
// with the winner and factor; series are written as plot-ready CSV+gnuplot.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/metrics.h"
#include "db/database.h"
#include "report/gnuplot.h"
#include "report/table_format.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace {

std::shared_ptr<db::Table> MakeKeyed(size_t rows, int64_t key_range,
                                     bool sorted, uint64_t seed) {
  Pcg32 rng(seed);
  auto table = std::make_shared<db::Table>(db::Schema(
      {{"k", db::DataType::kInt64}, {"v", db::DataType::kInt64}}));
  std::vector<int64_t> keys;
  keys.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    keys.push_back(rng.NextInRange(0, key_range));
  }
  if (sorted) {
    std::sort(keys.begin(), keys.end());
  }
  table->ReserveRows(rows);
  for (size_t i = 0; i < rows; ++i) {
    table->column(0).AppendInt64(keys[i]);
    table->column(1).AppendInt64(static_cast<int64_t>(i));
  }
  table->FinishBulkLoad();
  return table;
}

double MinUserMs(db::Database& database, const db::PlanPtr& plan,
                 int runs) {
  (void)database.Run(plan);
  std::vector<double> samples;
  for (int i = 0; i < runs; ++i) {
    samples.push_back(database.Run(plan).ServerUserMs());
  }
  return stats::Min(samples);
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("A2",
                          "hot runs: 1 warm-up, minimum of 3, user CPU time",
                          argc, argv);
  ctx.properties().SetDefault("maxRows", "262144");
  ctx.PrintHeader("operator crossovers: hash vs merge join, topn vs sort");

  size_t max_rows =
      static_cast<size_t>(ctx.properties().GetInt("maxRows", 262144));

  // ---- Part 1: join duel. ----
  report::TextTable join_table;
  join_table.SetHeader({"rows/side", "keys", "hash (ms)", "merge (ms)",
                        "winner", "factor"});
  core::Series hash_sorted{"hash, sorted keys", {}, {}, {}};
  core::Series merge_sorted{"merge, sorted keys", {}, {}, {}};
  core::Series hash_random{"hash, random keys", {}, {}, {}};
  core::Series merge_random{"merge, random keys", {}, {}, {}};

  for (size_t rows = 4096; rows <= max_rows; rows *= 4) {
    for (bool sorted : {true, false}) {
      db::Database database;
      // Unique-ish keys: range 4x the row count.
      int64_t range = static_cast<int64_t>(rows) * 4;
      database.RegisterTable("l", MakeKeyed(rows, range, sorted, 1));
      database.RegisterTable("r", MakeKeyed(rows, range, sorted, 2));
      db::PlanPtr hash = db::HashJoin(db::Scan("l"), db::Scan("r"), "k",
                                      "k");
      db::PlanPtr merge = db::MergeJoin(db::Scan("l"), db::Scan("r"), "k",
                                        "k");
      double hash_ms = MinUserMs(database, hash, 3);
      double merge_ms = MinUserMs(database, merge, 3);
      bool hash_wins = hash_ms < merge_ms;
      double factor = hash_wins ? merge_ms / hash_ms : hash_ms / merge_ms;
      join_table.AddRow({StrFormat("%zu", rows),
                         sorted ? "sorted" : "random",
                         StrFormat("%.2f", hash_ms),
                         StrFormat("%.2f", merge_ms),
                         hash_wins ? "hash" : "merge",
                         StrFormat("%.2fx", factor)});
      double x = static_cast<double>(rows);
      if (sorted) {
        hash_sorted.Append(x, hash_ms);
        merge_sorted.Append(x, merge_ms);
      } else {
        hash_random.Append(x, hash_ms);
        merge_random.Append(x, merge_ms);
      }
    }
  }
  std::printf("%s\n", join_table.ToString().c_str());
  std::printf(
      "expected shape: merge join wins on pre-sorted (clustered) keys — "
      "it skips its sort; the gap narrows or flips on random keys where "
      "merge pays two sorts.\n\n");

  report::ChartSpec join_chart;
  join_chart.title = "Join algorithm crossover";
  join_chart.x_label = "rows per side";
  join_chart.y_label = "user CPU time (ms)";
  join_chart.logscale_x = true;
  join_chart.logscale_y = true;
  join_chart.series = {hash_sorted, merge_sorted, hash_random,
                       merge_random};
  std::string join_stem = ctx.ResultPath("a2_join_crossover");
  if (!report::WriteChart(join_chart, join_stem).ok()) {
    return 1;
  }
  ctx.AddOutput(join_stem + ".csv");

  // ---- Part 2: TopN vs Sort+Limit. ----
  report::TextTable top_table;
  top_table.SetHeader({"rows", "k", "sort+limit (ms)", "topn (ms)",
                       "speedup"});
  core::Series sort_series{"sort+limit", {}, {}, {}};
  core::Series topn_series{"topn", {}, {}, {}};
  const size_t k = 10;
  for (size_t rows = 16384; rows <= max_rows * 4; rows *= 4) {
    db::Database database;
    database.RegisterTable(
        "t", MakeKeyed(rows, static_cast<int64_t>(rows) * 100, false, 3));
    db::PlanPtr sorted_plan =
        db::Limit(db::Sort(db::Scan("t"), {{"k", true}}), k);
    db::PlanPtr topn_plan = db::TopN(db::Scan("t"), {{"k", true}}, k);
    double sort_ms = MinUserMs(database, sorted_plan, 3);
    double topn_ms = MinUserMs(database, topn_plan, 3);
    top_table.AddRow({StrFormat("%zu", rows), StrFormat("%zu", k),
                      StrFormat("%.2f", sort_ms),
                      StrFormat("%.2f", topn_ms),
                      StrFormat("%.1fx", sort_ms / topn_ms)});
    sort_series.Append(static_cast<double>(rows), sort_ms);
    topn_series.Append(static_cast<double>(rows), topn_ms);
  }
  std::printf("%s\n", top_table.ToString().c_str());
  std::printf(
      "expected shape: the top-n operator wins everywhere and its factor "
      "grows with n (O(n log k) vs O(n log n) plus full materialization "
      "of the sorted table).\n");

  report::ChartSpec top_chart;
  top_chart.title = "Top-N vs full sort";
  top_chart.x_label = "rows";
  top_chart.y_label = "user CPU time (ms)";
  top_chart.logscale_x = true;
  top_chart.logscale_y = true;
  top_chart.series = {sort_series, topn_series};
  std::string top_stem = ctx.ResultPath("a2_topn");
  if (!report::WriteChart(top_chart, top_stem).ok()) {
    return 1;
  }
  ctx.AddOutput(top_stem + ".csv");
  ctx.Finish();
  return 0;
}
