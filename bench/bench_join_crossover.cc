// A2 — ablation: comparing alternatives the paper's way ("who wins, by
// what factor, and where is the crossover"). Three operator duels on the
// bundled engine:
//
//   1. HashJoin vs MergeJoin over input size, for pre-sorted (clustered)
//      and random key orders. Merge join exploits sortedness and skips
//      its sort; hash join is oblivious to order.
//   2. TopN (partial sort, O(n log k)) vs Sort+Limit (O(n log n)) over
//      input size at fixed k.
//   3. Radix-partitioned join sweep: radix bits x worker threads against
//      the legacy std::unordered_map baseline, join-operator time from
//      the engine's own TRACE (slides 28-29), speedups reported with
//      bootstrap confidence intervals (Kalibera & Jones), and the hwsim
//      cache-cost dissection explaining the shape.
//
// Every point is the minimum/median of hot runs; series are written as
// plot-ready CSV+gnuplot and the sweep as BENCH_join_crossover.json.
// `--smoke` shrinks every part to a seconds-long ctest-able pass.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/metrics.h"
#include "db/database.h"
#include "db/join.h"
#include "hwsim/join_model.h"
#include "report/gnuplot.h"
#include "report/table_format.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace {

std::shared_ptr<db::Table> MakeKeyed(size_t rows, int64_t key_range,
                                     bool sorted, uint64_t seed) {
  Pcg32 rng(seed);
  auto table = std::make_shared<db::Table>(db::Schema(
      {{"k", db::DataType::kInt64}, {"v", db::DataType::kInt64}}));
  std::vector<int64_t> keys;
  keys.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    keys.push_back(rng.NextInRange(0, key_range));
  }
  if (sorted) {
    std::sort(keys.begin(), keys.end());
  }
  table->ReserveRows(rows);
  for (size_t i = 0; i < rows; ++i) {
    table->column(0).AppendInt64(keys[i]);
    table->column(1).AppendInt64(static_cast<int64_t>(i));
  }
  table->FinishBulkLoad();
  return table;
}

double MinUserMs(db::Database& database, const db::PlanPtr& plan,
                 int runs) {
  (void)database.Run(plan);
  std::vector<double> samples;
  for (int i = 0; i < runs; ++i) {
    samples.push_back(database.Run(plan).ServerUserMs());
  }
  // Sub-granularity runs report 0 user CPU time; floor at the rusage tick
  // so log-scale charts and win factors stay defined.
  return std::max(stats::Min(samples), 0.01);
}

/// The join operator's own wall time from the query TRACE — the paper's
/// "use timings provided by the tested software", so the sweep measures
/// the operator under test, not scans and rendering around it.
double JoinWallNs(const db::QueryResult& result) {
  for (const db::OpTrace& trace : result.profile.traces()) {
    if (trace.op.rfind("HashJoin(", 0) == 0) {
      return static_cast<double>(trace.wall_ns);
    }
  }
  return static_cast<double>(result.server.real_ns);
}

/// Hot samples of the join operator's wall time under the database's
/// current algo/bits/threads settings.
std::vector<double> JoinSamples(db::Database& database,
                                const db::PlanPtr& plan, int runs) {
  (void)database.Run(plan);  // warm-up.
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    samples.push_back(JoinWallNs(database.Run(plan)));
  }
  return samples;
}

std::string CiJson(const stats::ConfidenceInterval& ci) {
  return StrFormat("{\"mean\": %.4f, \"lower\": %.4f, \"upper\": %.4f}",
                   ci.mean, ci.lower, ci.upper);
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("A2",
                          "hot runs: 1 warm-up, minimum of 3 (duels) / "
                          "median of `runs` (radix sweep); join-operator "
                          "TRACE time for the sweep",
                          argc, argv);
  bool smoke = ctx.Smoke();
  ctx.properties().SetDefault("maxRows", smoke ? "16384" : "262144");
  ctx.properties().SetDefault("sweepProbeRows",
                              smoke ? "32768" : "1048576");
  ctx.properties().SetDefault("runs", smoke ? "3" : "5");
  ctx.properties().SetDefault("maxThreads", smoke ? "2" : "8");
  ctx.PrintHeader("operator crossovers: hash vs merge join, topn vs sort, "
                  "radix bits x threads");
  if (smoke) {
    std::printf("[smoke mode: shrunk inputs, shortened sweep]\n\n");
  }

  size_t max_rows =
      static_cast<size_t>(ctx.properties().GetInt("maxRows", 262144));

  // ---- Part 1: join duel. ----
  report::TextTable join_table;
  join_table.SetHeader({"rows/side", "keys", "hash (ms)", "merge (ms)",
                        "winner", "factor"});
  core::Series hash_sorted{"hash, sorted keys", {}, {}, {}};
  core::Series merge_sorted{"merge, sorted keys", {}, {}, {}};
  core::Series hash_random{"hash, random keys", {}, {}, {}};
  core::Series merge_random{"merge, random keys", {}, {}, {}};

  for (size_t rows = 4096; rows <= max_rows; rows *= 4) {
    for (bool sorted : {true, false}) {
      db::Database database;
      // Unique-ish keys: range 4x the row count.
      int64_t range = static_cast<int64_t>(rows) * 4;
      database.RegisterTable("l", MakeKeyed(rows, range, sorted, 1));
      database.RegisterTable("r", MakeKeyed(rows, range, sorted, 2));
      db::PlanPtr hash = db::HashJoin(db::Scan("l"), db::Scan("r"), "k",
                                      "k");
      db::PlanPtr merge = db::MergeJoin(db::Scan("l"), db::Scan("r"), "k",
                                        "k");
      double hash_ms = MinUserMs(database, hash, 3);
      double merge_ms = MinUserMs(database, merge, 3);
      bool hash_wins = hash_ms < merge_ms;
      double factor = hash_wins ? merge_ms / hash_ms : hash_ms / merge_ms;
      join_table.AddRow({StrFormat("%zu", rows),
                         sorted ? "sorted" : "random",
                         StrFormat("%.2f", hash_ms),
                         StrFormat("%.2f", merge_ms),
                         hash_wins ? "hash" : "merge",
                         StrFormat("%.2fx", factor)});
      double x = static_cast<double>(rows);
      if (sorted) {
        hash_sorted.Append(x, hash_ms);
        merge_sorted.Append(x, merge_ms);
      } else {
        hash_random.Append(x, hash_ms);
        merge_random.Append(x, merge_ms);
      }
    }
  }
  std::printf("%s\n", join_table.ToString().c_str());
  std::printf(
      "expected shape: merge join wins on pre-sorted (clustered) keys — "
      "it skips its sort; the gap narrows or flips on random keys where "
      "merge pays two sorts.\n\n");

  report::ChartSpec join_chart;
  join_chart.title = "Join algorithm crossover";
  join_chart.x_label = "rows per side";
  join_chart.y_label = "user CPU time (ms)";
  join_chart.logscale_x = true;
  join_chart.logscale_y = true;
  join_chart.series = {hash_sorted, merge_sorted, hash_random,
                       merge_random};
  std::string join_stem = ctx.ResultPath("a2_join_crossover");
  if (!report::WriteChart(join_chart, join_stem).ok()) {
    return 1;
  }
  ctx.AddOutput(join_stem + ".csv");

  // ---- Part 2: TopN vs Sort+Limit. ----
  report::TextTable top_table;
  top_table.SetHeader({"rows", "k", "sort+limit (ms)", "topn (ms)",
                       "speedup"});
  core::Series sort_series{"sort+limit", {}, {}, {}};
  core::Series topn_series{"topn", {}, {}, {}};
  const size_t k = 10;
  for (size_t rows = 16384; rows <= max_rows * 4; rows *= 4) {
    db::Database database;
    database.RegisterTable(
        "t", MakeKeyed(rows, static_cast<int64_t>(rows) * 100, false, 3));
    db::PlanPtr sorted_plan =
        db::Limit(db::Sort(db::Scan("t"), {{"k", true}}), k);
    db::PlanPtr topn_plan = db::TopN(db::Scan("t"), {{"k", true}}, k);
    double sort_ms = MinUserMs(database, sorted_plan, 3);
    double topn_ms = MinUserMs(database, topn_plan, 3);
    top_table.AddRow({StrFormat("%zu", rows), StrFormat("%zu", k),
                      StrFormat("%.2f", sort_ms),
                      StrFormat("%.2f", topn_ms),
                      StrFormat("%.1fx", sort_ms / topn_ms)});
    sort_series.Append(static_cast<double>(rows), sort_ms);
    topn_series.Append(static_cast<double>(rows), topn_ms);
  }
  std::printf("%s\n", top_table.ToString().c_str());
  std::printf(
      "expected shape: the top-n operator wins everywhere and its factor "
      "grows with n (O(n log k) vs O(n log n) plus full materialization "
      "of the sorted table).\n\n");

  report::ChartSpec top_chart;
  top_chart.title = "Top-N vs full sort";
  top_chart.x_label = "rows";
  top_chart.y_label = "user CPU time (ms)";
  top_chart.logscale_x = true;
  top_chart.logscale_y = true;
  top_chart.series = {sort_series, topn_series};
  std::string top_stem = ctx.ResultPath("a2_topn");
  if (!report::WriteChart(top_chart, top_stem).ok()) {
    return 1;
  }
  ctx.AddOutput(top_stem + ".csv");

  // ---- Part 3: radix bits x threads sweep vs legacy baseline. ----
  size_t probe_rows = static_cast<size_t>(
      ctx.properties().GetInt("sweepProbeRows", 1048576));
  size_t build_rows = probe_rows / 4;
  int runs = static_cast<int>(ctx.properties().GetInt("runs", 5));
  int max_threads =
      static_cast<int>(ctx.properties().GetInt("maxThreads", 8));
  unsigned host_cores = std::thread::hardware_concurrency();
  int auto_bits = db::ChooseRadixBits(build_rows);

  db::Database database;
  int64_t range = static_cast<int64_t>(build_rows) * 2;
  database.RegisterTable("build",
                         MakeKeyed(build_rows, range, false, 11));
  database.RegisterTable("probe",
                         MakeKeyed(probe_rows, range, false, 12));
  db::PlanPtr sweep_plan =
      db::HashJoin(db::Scan("probe"), db::Scan("build"), "k", "k");

  std::printf(
      "radix sweep: build %zu rows, probe %zu rows, %d measured runs, "
      "auto fan-out %d bits, %u hardware thread(s)\n\n",
      build_rows, probe_rows, runs, auto_bits, host_cores);

  // Baseline: the legacy unordered_map join, single-threaded.
  database.set_threads(1);
  database.set_join_algo(db::JoinAlgo::kLegacy);
  std::vector<double> legacy = JoinSamples(database, sweep_plan, runs);
  double legacy_median = stats::Median(legacy);

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) {
    thread_counts.push_back(t);
  }
  // -1 = flat (non-partitioned) hash; the rest are explicit fan-outs,
  // always including whatever ChooseRadixBits picked.
  std::vector<int> bit_settings = smoke
                                      ? std::vector<int>{auto_bits}
                                      : std::vector<int>{2, 4, 6, 8, 10, 12};
  if (std::find(bit_settings.begin(), bit_settings.end(), auto_bits) ==
      bit_settings.end()) {
    bit_settings.push_back(auto_bits);
    std::sort(bit_settings.begin(), bit_settings.end());
  }
  bit_settings.insert(bit_settings.begin(), -1);

  report::TextTable sweep_table;
  sweep_table.SetHeader({"algo", "bits", "threads", "join (ms)",
                         "speedup vs legacy", "95% CI"});
  std::string sweep_json;
  std::vector<double> radix_auto_t1;
  std::vector<double> radix_auto_tmax;
  uint64_t ci_seed = 1;
  bool first_entry = true;
  for (int bits : bit_settings) {
    bool flat = bits < 0;
    for (int threads : thread_counts) {
      // The flat table has no partition stage: threads only parallelize
      // key extraction and probing, so sweeping it at every thread count
      // still isolates the partitioning effect.
      database.set_threads(threads);
      database.set_join_algo(flat ? db::JoinAlgo::kHash
                                  : db::JoinAlgo::kRadix);
      database.set_radix_bits(flat ? 0 : bits);
      std::vector<double> samples = JoinSamples(database, sweep_plan, runs);
      stats::ConfidenceInterval speedup =
          stats::BootstrapRatioCI(legacy, samples, 0.95, ci_seed++);
      if (!flat && bits == auto_bits) {
        if (threads == 1) {
          radix_auto_t1 = samples;
        }
        if (threads == max_threads) {
          radix_auto_tmax = samples;
        }
      }
      double median = stats::Median(samples);
      sweep_table.AddRow(
          {flat ? "hash (flat)" : "radix",
           flat ? "-" : StrFormat("%d%s", bits,
                                  bits == auto_bits ? " (auto)" : ""),
           std::to_string(threads), StrFormat("%.2f", median / 1e6),
           StrFormat("%.2fx", speedup.mean),
           StrFormat("[%.2f, %.2f]", speedup.lower, speedup.upper)});
      sweep_json += StrFormat(
          "    %s{\"algo\": \"%s\", \"radix_bits\": %d, \"threads\": %d, "
          "\"median_join_ns\": %.0f, \"speedup_vs_legacy\": %s}",
          first_entry ? "" : ",\n", flat ? "hash" : "radix",
          flat ? 0 : bits, threads, median, CiJson(speedup).c_str());
      first_entry = false;
    }
  }
  database.set_threads(1);
  database.set_join_algo(db::JoinAlgo::kRadix);
  database.set_radix_bits(0);
  std::printf("%s\n", sweep_table.ToString().c_str());

  stats::ConfidenceInterval algo_speedup = stats::BootstrapRatioCI(
      legacy, radix_auto_t1, 0.95, 1001);
  stats::ConfidenceInterval self_speedup = stats::BootstrapRatioCI(
      radix_auto_t1, radix_auto_tmax, 0.95, 1002);
  std::printf(
      "radix(auto) vs legacy at 1 thread: %.2fx [%.2f, %.2f]\n"
      "radix(auto) self-speedup at %d threads: %.2fx [%.2f, %.2f]\n"
      "(parallel speedup above 1x needs spare physical cores; this host "
      "has %u)\n\n",
      algo_speedup.mean, algo_speedup.lower, algo_speedup.upper,
      max_threads, self_speedup.mean, self_speedup.lower,
      self_speedup.upper, host_cores);

  // ---- hwsim dissection: why the sweep has this shape. ----
  // Simulated per-pass CPU/memory split on the reference profile whose L2
  // sizes ChooseRadixBits (DESIGN.md §4): partitioning pays a sequential
  // pass to shrink the random working set of build+probe.
  const hwsim::MachineProfile& machine =
      hwsim::MachineByName("Sun Ultra");
  hwsim::JoinSpec spec;
  spec.build_rows = smoke ? (1 << 13) : (1 << 17);
  spec.probe_rows = smoke ? (1 << 15) : (1 << 19);
  std::vector<int> model_bits =
      smoke ? std::vector<int>{0, 4} : std::vector<int>{0, 2, 4, 6, 8, 10};

  report::TextTable model_table;
  model_table.SetHeader({"bits", "partition (ns/t)", "build (ns/t)",
                         "probe (ns/t)", "total (ms)", "memory share"});
  std::string model_json;
  for (size_t bi = 0; bi < model_bits.size(); ++bi) {
    spec.radix_bits = model_bits[bi];
    hwsim::JoinCostResult cost = hwsim::SimulateRadixJoin(machine, spec);
    double partition_ns = 0.0;
    double build_ns = 0.0;
    double probe_ns = 0.0;
    std::string passes_json;
    for (size_t pi = 0; pi < cost.passes.size(); ++pi) {
      const hwsim::JoinPassCost& pass = cost.passes[pi];
      if (pass.pass == "partition") {
        partition_ns = pass.TotalNsPerTuple();
      } else if (pass.pass == "build") {
        build_ns = pass.TotalNsPerTuple();
      } else {
        probe_ns = pass.TotalNsPerTuple();
      }
      passes_json += StrFormat(
          "%s{\"pass\": \"%s\", \"tuples\": %lld, "
          "\"cpu_ns_per_tuple\": %.2f, \"mem_ns_per_tuple\": %.2f}",
          pi == 0 ? "" : ", ", pass.pass.c_str(),
          static_cast<long long>(pass.tuples), pass.cpu_ns_per_tuple,
          pass.mem_ns_per_tuple);
    }
    model_table.AddRow({std::to_string(cost.radix_bits),
                        cost.radix_bits == 0 ? "-"
                                             : StrFormat("%.1f", partition_ns),
                        StrFormat("%.1f", build_ns),
                        StrFormat("%.1f", probe_ns),
                        StrFormat("%.2f", cost.TotalNs() / 1e6),
                        StrFormat("%.2f", cost.MemoryShare())});
    model_json += StrFormat(
        "    %s{\"radix_bits\": %d, \"total_ns\": %.0f, "
        "\"memory_share\": %.3f, \"passes\": [%s]}",
        bi == 0 ? "" : ",\n", cost.radix_bits, cost.TotalNs(),
        cost.MemoryShare(), passes_json.c_str());
  }
  std::printf("hwsim dissection (%s, %d): simulated join cost per tuple\n%s\n",
              machine.system.c_str(), machine.year,
              model_table.ToString().c_str());
  std::printf(
      "expected shape: moderate fan-out moves build+probe time from "
      "memory to cache for one extra (prefetched) sequential pass; "
      "excessive fan-out exceeds prefetcher stream capacity and cache "
      "sets, so the partition pass itself turns memory-bound.\n");

  std::string json = "{\n";
  json += "  \"experiment\": \"A2\",\n";
  json += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += StrFormat("  \"build_rows\": %zu,\n", build_rows);
  json += StrFormat("  \"probe_rows\": %zu,\n", probe_rows);
  json += StrFormat("  \"runs\": %d,\n", runs);
  json += StrFormat("  \"hardware_threads\": %u,\n", host_cores);
  json += StrFormat("  \"auto_radix_bits\": %d,\n", auto_bits);
  json += StrFormat("  \"legacy_median_join_ns\": %.0f,\n", legacy_median);
  json += "  \"sweep\": [\n" + sweep_json + "\n  ],\n";
  json += StrFormat("  \"radix_auto_speedup_vs_legacy_1thread\": %s,\n",
                    CiJson(algo_speedup).c_str());
  json += StrFormat("  \"radix_auto_self_speedup_at_%d_threads\": %s,\n",
                    max_threads, CiJson(self_speedup).c_str());
  json += StrFormat("  \"hwsim_system\": \"%s\",\n", machine.system.c_str());
  json += "  \"hwsim_dissection\": [\n" + model_json + "\n  ]\n";
  json += "}\n";

  std::string json_path = ctx.ResultPath("BENCH_join_crossover.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  ctx.AddOutput(json_path);
  ctx.AddNote(StrFormat(
      "radix(auto,1t) vs legacy %.2fx [%.2f, %.2f]; self-speedup at %d "
      "threads %.2fx on %u-core host",
      algo_speedup.mean, algo_speedup.lower, algo_speedup.upper,
      max_threads, self_speedup.mean, host_cores));
  ctx.Finish();
  return 0;
}
