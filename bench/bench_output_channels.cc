// T1 — paper slides 23-26: "Be aware what you measure!"
// Server-side (user/real) vs client-side (real) time for TPC-H Q1 and Q16,
// with the query result written to a file vs a terminal. Reproduces the
// shape of the paper's table: Q1's small result makes the channel nearly
// irrelevant; Q16's large result roughly doubles client time on a terminal.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/metrics.h"
#include "core/measurement.h"
#include "db/database.h"
#include "report/csv.h"
#include "report/table_format.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace {

struct Row {
  int query;
  double server_user_ms;
  double server_real_ms;
  double client_file_ms;
  double client_terminal_ms;
  size_t result_bytes;
};

Row MeasureQuery(db::Database& database, int query_number) {
  db::PlanPtr plan =
      workload::GetTpchQuery(query_number).Build(database);
  // Paper protocol: measured last of three consecutive (hot) runs. The two
  // client channels are measured on the *same* server execution so the
  // channel difference is not buried in server-side run-to-run noise.
  (void)database.Run(plan);  // warm the buffer pool.
  db::QueryResult result;
  for (int run = 0; run < 3; ++run) {
    result = database.Run(plan);
  }
  db::SinkReport file_report;
  db::SinkReport terminal_report;
  core::Measurement file_render = core::MeasureOnce([&] {
    file_report = db::SendToSink(*result.table, db::SinkKind::kFile,
                                 database.options().sink_model);
  });
  file_render.simulated_stall_ns = file_report.stall_ns;
  core::Measurement terminal_render = core::MeasureOnce([&] {
    terminal_report = db::SendToSink(*result.table, db::SinkKind::kTerminal,
                                     database.options().sink_model);
  });
  terminal_render.simulated_stall_ns = terminal_report.stall_ns;

  Row row;
  row.query = query_number;
  row.server_user_ms = result.ServerUserMs();
  row.server_real_ms = result.ServerRealMs();
  row.client_file_ms = (result.server + file_render).ObservedRealMs();
  row.client_terminal_ms =
      (result.server + terminal_render).ObservedRealMs();
  row.result_bytes = file_report.bytes;
  return row;
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "T1", "hot runs: 1 warm-up, measured last of 3 consecutive runs",
      argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.02");
  ctx.PrintHeader("server vs client time and output channels (Q1, Q16)");

  double sf = ctx.properties().GetDouble("scaleFactor", 0.02);
  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  std::printf("TPC-H scale factor %.3g (%zu lineitem rows)\n\n", sf,
              database.GetTable("lineitem").num_rows());

  report::TextTable table;
  table.SetHeader({"Q", "server user", "server real", "client real (file)",
                   "client real (terminal)", "result size"});
  report::CsvWriter csv({"query", "server_user_ms", "server_real_ms",
                         "client_file_ms", "client_terminal_ms",
                         "result_bytes"});
  for (int q : {1, 16}) {
    Row row = MeasureQuery(database, q);
    table.AddRow({std::to_string(row.query),
                  StrFormat("%.0f ms", row.server_user_ms),
                  StrFormat("%.0f ms", row.server_real_ms),
                  StrFormat("%.0f ms", row.client_file_ms),
                  StrFormat("%.0f ms", row.client_terminal_ms),
                  core::FormatBytes(static_cast<int64_t>(row.result_bytes))});
    csv.AddNumericRow({static_cast<double>(row.query), row.server_user_ms,
                       row.server_real_ms, row.client_file_ms,
                       row.client_terminal_ms,
                       static_cast<double>(row.result_bytes)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shape check: Q16's large result should make terminal client\n"
      "time clearly exceed file client time, while Q1's should not.\n");

  std::string csv_path = ctx.ResultPath("t1_output_channels.csv");
  if (!csv.WriteToFile(csv_path).ok()) {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 1;
  }
  ctx.AddOutput(csv_path);
  ctx.Finish();
  return 0;
}
