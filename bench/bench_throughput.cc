// A3 — the paper's first metric: "Throughput: queries per time"
// (slide 22), measured the way the standard benchmark the paper cites
// (TPC-H, slide 13) defines it: a single-stream power test (geometric
// mean over all 22 queries, so no one query dominates) and a multi-stream
// throughput test over per-stream query permutations.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "report/csv.h"
#include "report/table_format.h"
#include "workload/driver.h"
#include "workload/tpch_gen.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A3", "power: hot single stream; throughput: permuted streams",
      argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.01");
  ctx.properties().SetDefault("maxStreams", "4");
  ctx.PrintHeader("TPC-H-style power and throughput metrics");

  double sf = ctx.properties().GetDouble("scaleFactor", 0.01);
  int max_streams =
      static_cast<int>(ctx.properties().GetInt("maxStreams", 4));
  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  std::printf("TPC-H scale factor %.3g, all 22 queries\n\n", sf);

  workload::TpchDriver driver(&database);

  workload::PowerResult power = driver.RunPowerTest();
  std::printf("Power test (single stream, hot):\n");
  std::printf("  stream total: %.1f ms, geometric mean per query: %.2f ms\n",
              power.stream.total_ms, power.geomean_ms);
  std::printf("  power metric: %.0f queries/hour\n\n", power.power_qph);

  report::TextTable table;
  table.SetHeader({"streams", "total (ms)", "throughput (queries/hour)"});
  report::CsvWriter csv({"streams", "total_ms", "qph"});
  for (int streams = 1; streams <= max_streams; ++streams) {
    workload::ThroughputResult result =
        driver.RunThroughputTest(streams, 42);
    table.AddRow({std::to_string(streams),
                  StrFormat("%.1f", result.total_ms),
                  StrFormat("%.0f", result.throughput_qph)});
    csv.AddNumericRow({static_cast<double>(streams), result.total_ms,
                       result.throughput_qph});
  }
  std::printf("Throughput test (sequential permuted streams):\n%s\n",
              table.ToString().c_str());
  std::printf(
      "single-threaded streams run back to back, so queries/hour should "
      "stay roughly flat across stream counts (work scales with streams); "
      "power_qph exceeds throughput_qph because the geometric mean damps "
      "the heavy join queries that dominate the arithmetic total.\n");

  std::string csv_path = ctx.ResultPath("a3_throughput.csv");
  if (!csv.WriteToFile(csv_path).ok()) {
    return 1;
  }
  ctx.AddOutput(csv_path);
  ctx.Finish();
  return 0;
}
