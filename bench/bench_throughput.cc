// A3 — the paper's first metric: "Throughput: queries per time"
// (slide 22), measured the way the standard benchmark the paper cites
// (TPC-H, slide 13) defines it: a single-stream power test (geometric
// mean over all 22 queries, so no one query dominates) and a multi-stream
// throughput test over per-stream query permutations.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "report/csv.h"
#include "report/table_format.h"
#include "workload/driver.h"
#include "workload/tpch_gen.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A3", "power: hot single stream; throughput: permuted streams",
      argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.01");
  ctx.properties().SetDefault("maxStreams", "4");
  ctx.PrintHeader("TPC-H-style power and throughput metrics");

  double sf = ctx.properties().GetDouble("scaleFactor", 0.01);
  int max_streams =
      static_cast<int>(ctx.properties().GetInt("maxStreams", 4));
  db::Database database;
  database.set_threads(ctx.DbThreads());
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  std::printf("TPC-H scale factor %.3g, all 22 queries, dbThreads=%d\n\n",
              sf, database.threads());

  workload::TpchDriver driver(&database);

  workload::PowerResult power = driver.RunPowerTest();
  std::printf("Power test (single stream, hot):\n");
  std::printf("  stream total: %.1f ms, geometric mean per query: %.2f ms\n",
              power.stream.total_ms, power.geomean_ms);
  std::printf("  power metric: %.0f queries/hour\n\n", power.power_qph);

  report::TextTable table;
  table.SetHeader({"streams", "total (ms)", "throughput (queries/hour)"});
  report::CsvWriter csv({"streams", "total_ms", "qph"});
  for (int streams = 1; streams <= max_streams; ++streams) {
    workload::ThroughputResult result =
        driver.RunThroughputTest(streams, 42);
    table.AddRow({std::to_string(streams),
                  StrFormat("%.1f", result.total_ms),
                  StrFormat("%.0f", result.throughput_qph)});
    csv.AddNumericRow({static_cast<double>(streams), result.total_ms,
                       result.throughput_qph});
  }
  std::printf("Throughput test (sequential permuted streams):\n%s\n",
              table.ToString().c_str());
  std::printf(
      "single-threaded streams run back to back, so queries/hour should "
      "stay roughly flat across stream counts (work scales with streams); "
      "power_qph exceeds throughput_qph because the geometric mean damps "
      "the heavy join queries that dominate the arithmetic total.\n\n");

  // Concurrent variant: the same streams and permutations, but run at the
  // same time on one worker thread per stream. total_ms is wall clock, so
  // queries/hour now measures multi-stream scale-up.
  report::TextTable ctable;
  ctable.SetHeader({"streams", "wall (ms)", "throughput (queries/hour)",
                    "scale-up vs 1 stream"});
  report::CsvWriter ccsv({"streams", "wall_ms", "qph", "scaleup"});
  double qph_one_stream = 0.0;
  for (int streams = 1; streams <= max_streams; ++streams) {
    workload::ThroughputResult result =
        driver.RunConcurrentThroughputTest(streams, 42);
    if (streams == 1) {
      qph_one_stream = result.throughput_qph;
    }
    double scaleup = qph_one_stream > 0.0
                         ? result.throughput_qph / qph_one_stream
                         : 0.0;
    ctable.AddRow({std::to_string(streams),
                   StrFormat("%.1f", result.total_ms),
                   StrFormat("%.0f", result.throughput_qph),
                   StrFormat("%.2fx", scaleup)});
    ccsv.AddNumericRow({static_cast<double>(streams), result.total_ms,
                        result.throughput_qph, scaleup});
  }
  std::printf("Throughput test (concurrent permuted streams):\n%s\n",
              ctable.ToString().c_str());
  std::printf(
      "concurrent streams share the buffer pool and the host's cores; "
      "scale-up above 1x needs spare cores, and results stay deterministic "
      "regardless (only timings may move).\n");

  std::string csv_path = ctx.ResultPath("a3_throughput.csv");
  if (!csv.WriteToFile(csv_path).ok()) {
    return 1;
  }
  ctx.AddOutput(csv_path);
  std::string ccsv_path = ctx.ResultPath("a3_throughput_concurrent.csv");
  if (!ccsv.WriteToFile(ccsv_path).ok()) {
    return 1;
  }
  ctx.AddOutput(ccsv_path);
  ctx.Finish();
  return 0;
}
