// A3 — the paper's first metric: "Throughput: queries per time"
// (slide 22), measured the way the standard benchmark the paper cites
// (TPC-H, slide 13) defines it: a single-stream power test (geometric
// mean over all 22 queries, so no one query dominates) and a multi-stream
// throughput test over per-stream query permutations.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "report/csv.h"
#include "report/table_format.h"
#include "serve/latency.h"
#include "workload/driver.h"
#include "workload/tpch_gen.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A3", "power: hot single stream; throughput: permuted streams",
      argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.01");
  ctx.properties().SetDefault("maxStreams", "4");
  ctx.PrintHeader("TPC-H-style power and throughput metrics");

  double sf = ctx.properties().GetDouble("scaleFactor", 0.01);
  int max_streams =
      static_cast<int>(ctx.properties().GetInt("maxStreams", 4));
  db::Database database;
  database.set_threads(ctx.DbThreads());
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  std::printf("TPC-H scale factor %.3g, all 22 queries, dbThreads=%d\n\n",
              sf, database.threads());

  workload::TpchDriver driver(&database);

  workload::PowerResult power = driver.RunPowerTest();
  std::printf("Power test (single stream, hot):\n");
  std::printf("  stream total: %.1f ms, geometric mean per query: %.2f ms\n",
              power.stream.total_ms, power.geomean_ms);
  std::printf("  power metric: %.0f queries/hour\n\n", power.power_qph);

  report::TextTable table;
  table.SetHeader({"streams", "total (ms)", "throughput (queries/hour)"});
  report::CsvWriter csv({"streams", "total_ms", "qph"});
  for (int streams = 1; streams <= max_streams; ++streams) {
    workload::ThroughputResult result =
        driver.RunThroughputTest(streams, 42);
    table.AddRow({std::to_string(streams),
                  StrFormat("%.1f", result.total_ms),
                  StrFormat("%.0f", result.throughput_qph)});
    csv.AddNumericRow({static_cast<double>(streams), result.total_ms,
                       result.throughput_qph});
  }
  std::printf("Throughput test (sequential permuted streams):\n%s\n",
              table.ToString().c_str());
  std::printf(
      "single-threaded streams run back to back, so queries/hour should "
      "stay roughly flat across stream counts (work scales with streams); "
      "power_qph exceeds throughput_qph because the geometric mean damps "
      "the heavy join queries that dominate the arithmetic total.\n\n");

  // Concurrent variant: the same streams and permutations, but run at the
  // same time on one worker thread per stream (after an unmeasured warm-up
  // pass). total_ms is wall clock of the measured window, so queries/hour
  // measures multi-stream scale-up; the per-stream qph spread and the
  // per-query latency percentiles report the distribution behind the
  // aggregate (slide 140: never just the mean).
  report::TextTable ctable;
  ctable.SetHeader({"streams", "wall (ms)", "qph", "scale-up",
                    "stream qph min/med/max", "query ms p50/p90/p99"});
  report::CsvWriter ccsv({"streams", "wall_ms", "qph", "scaleup",
                          "stream_qph_min", "stream_qph_median",
                          "stream_qph_max", "query_ms_p50", "query_ms_p90",
                          "query_ms_p99"});
  double qph_one_stream = 0.0;
  for (int streams = 1; streams <= max_streams; ++streams) {
    workload::ThroughputResult result =
        driver.RunConcurrentThroughputTest(streams, 42);
    if (streams == 1) {
      qph_one_stream = result.throughput_qph;
    }
    double scaleup = qph_one_stream > 0.0
                         ? result.throughput_qph / qph_one_stream
                         : 0.0;
    serve::LatencyHistogram query_latency;
    for (const workload::StreamResult& stream : result.streams) {
      for (double ms : stream.query_ms) {
        query_latency.Record(static_cast<int64_t>(ms * 1e6));
      }
    }
    double p50_ms = query_latency.ValueAtPercentile(50.0) / 1e6;
    double p90_ms = query_latency.ValueAtPercentile(90.0) / 1e6;
    double p99_ms = query_latency.ValueAtPercentile(99.0) / 1e6;
    ctable.AddRow({std::to_string(streams),
                   StrFormat("%.1f", result.total_ms),
                   StrFormat("%.0f", result.throughput_qph),
                   StrFormat("%.2fx", scaleup),
                   StrFormat("%.0f/%.0f/%.0f", result.stream_qph_min,
                             result.stream_qph_median,
                             result.stream_qph_max),
                   StrFormat("%.1f/%.1f/%.1f", p50_ms, p90_ms, p99_ms)});
    ccsv.AddNumericRow({static_cast<double>(streams), result.total_ms,
                        result.throughput_qph, scaleup,
                        result.stream_qph_min, result.stream_qph_median,
                        result.stream_qph_max, p50_ms, p90_ms, p99_ms});
  }
  std::printf("Throughput test (concurrent permuted streams, warm):\n%s\n",
              ctable.ToString().c_str());
  std::printf(
      "concurrent streams share the buffer pool and the host's cores; "
      "scale-up above 1x needs spare cores, and results stay deterministic "
      "regardless (only timings may move). A wide stream qph spread means "
      "some streams starved while the aggregate looked fine; the "
      "percentiles are per-query latencies across all streams.\n");

  std::string csv_path = ctx.ResultPath("a3_throughput.csv");
  if (!csv.WriteToFile(csv_path).ok()) {
    return 1;
  }
  ctx.AddOutput(csv_path);
  std::string ccsv_path = ctx.ResultPath("a3_throughput_concurrent.csv");
  if (!ccsv.WriteToFile(ccsv_path).ok()) {
    return 1;
  }
  ctx.AddOutput(ccsv_path);
  ctx.Finish();
  return 0;
}
