// T6 — paper slides 100-109: constructing 2^(k-p) designs and their
// confounding algebra. Reproduces:
//  - the 2^(7-4) sign table of slide 102 (D=AB, E=AC, F=BC, G=ABC),
//  - the alias derivation for D=ABC in a 2^(4-1) (slides 104-106),
//  - the comparison of D=ABC vs D=AB and the resolution-based preference
//    (slides 107-109).

#include <cstdio>

#include "bench_util.h"
#include "doe/confounding.h"
#include "doe/sign_table.h"

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("T6", "symbolic algebra, no measurement", argc,
                          argv);
  ctx.PrintHeader("fractional factorial confounding algebra");

  // ---- 2^(7-4) construction (slide 102). ----
  doe::FractionalDesignSpec spec_7_4(
      7, {doe::Generator{3, 0b011}, doe::Generator{4, 0b101},
          doe::Generator{5, 0b110}, doe::Generator{6, 0b111}});
  doe::SignTable table_7_4 = doe::SignTable::Fractional(spec_7_4);
  std::printf("2^(7-4) design (D=AB, E=AC, F=BC, G=ABC), %zu runs:\n",
              table_7_4.num_runs());
  std::printf("%s\n",
              table_7_4
                  .ToTable({0b0000001, 0b0000010, 0b0000100, 0b0001000,
                            0b0010000, 0b0100000, 0b1000000})
                  .c_str());
  std::printf("all 7 columns zero-sum and proper: %s\n\n",
              table_7_4.IsProper() ? "YES" : "NO");

  // ---- D=ABC alias structure (slides 104-106). ----
  doe::FractionalDesignSpec d_abc(4, {doe::Generator{3, 0b0111}});
  std::printf("2^(4-1) with D=ABC — defining relation I = ABCD\n");
  std::printf("alias structure (up to 2-factor interactions):\n%s\n",
              d_abc.DescribeAliases(2).c_str());

  // ---- D=AB alias structure and the comparison (slides 107-109). ----
  doe::FractionalDesignSpec d_ab(4, {doe::Generator{3, 0b0011}});
  std::printf("2^(4-1) with D=AB — defining relation I = ABD\n");
  std::printf("alias structure (up to 2-factor interactions):\n%s\n",
              d_ab.DescribeAliases(2).c_str());

  std::printf("resolution of D=ABC: %d (IV)\n", d_abc.Resolution());
  std::printf("resolution of D=AB:  %d (III)\n", d_ab.Resolution());
  bool prefers_abc = doe::PreferDesign(d_abc, d_ab);
  std::printf(
      "D=ABC preferred: %s  (paper: \"designs that confound higher order "
      "interactions are preferred\" — sparsity of effects)\n",
      prefers_abc ? "YES" : "NO");

  ctx.Finish();
  return prefers_abc && d_abc.Resolution() == 4 && d_ab.Resolution() == 3
             ? 0
             : 1;
}
