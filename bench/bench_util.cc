#include "bench_util.h"

#include <cstdio>

#include "common/string_util.h"

namespace perfeval {
namespace bench {

BenchContext::BenchContext(const std::string& experiment_id,
                           const std::string& protocol_description,
                           int argc, char** argv)
    : experiment_id_(experiment_id),
      environment_(core::CaptureEnvironment()),
      manifest_(experiment_id, protocol_description) {
  properties_.SetDefault("resultsDir", "bench_results");
  (void)properties_.OverrideFromArgs(argc, argv);
  properties_.OverrideFromEnv("PERFEVAL_");
  results_dir_ = properties_.GetOr("resultsDir", "bench_results");
  manifest_.set_environment(environment_);
}

std::string BenchContext::ResultPath(const std::string& file_name) const {
  return results_dir_ + "/" + file_name;
}

void BenchContext::PrintHeader(const std::string& title) const {
  std::printf("== %s: %s ==\n", experiment_id_.c_str(), title.c_str());
  std::printf("%s", environment_.ToReportString().c_str());
  std::printf("\n");
}

std::string BenchContext::Finish() {
  manifest_.set_properties(properties_);
  std::string path =
      ResultPath(StrFormat("%s_manifest.txt", experiment_id_.c_str()));
  Status status = manifest_.WriteToFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "manifest write failed: %s\n",
                 status.ToString().c_str());
  }
  return path;
}

}  // namespace bench
}  // namespace perfeval
