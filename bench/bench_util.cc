#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"
#include "db/database.h"

namespace perfeval {
namespace bench {
namespace {

/// Maps the uniform scheduler flags onto properties so they flow into the
/// manifest like every other parameter. Returns true when consumed.
bool ConsumeScheduleFlag(const std::string& arg,
                         repro::Properties* properties) {
  const struct {
    const char* prefix;
    const char* key;
  } kFlags[] = {
      {"--jobs=", "jobs"},
      {"--order=", "order"},
      {"--isolation=", "isolation"},
      {"--schedSeed=", "schedSeed"},
      {"--dbThreads=", "dbThreads"},
      {"--dbJoin=", "dbJoin"},
      {"--radixBits=", "radixBits"},
      {"--dbOpt=", "dbOpt"},
      {"--dbBackend=", "dbBackend"},
  };
  for (const auto& flag : kFlags) {
    std::string prefix = flag.prefix;
    if (arg.rfind(prefix, 0) == 0) {
      properties->Set(flag.key, arg.substr(prefix.size()));
      return true;
    }
  }
  if (arg == "--progress") {
    properties->Set("progress", "true");
    return true;
  }
  if (arg == "--smoke") {
    properties->Set("smoke", "true");
    return true;
  }
  return false;
}

}  // namespace

BenchContext::BenchContext(const std::string& experiment_id,
                           const std::string& protocol_description,
                           int argc, char** argv)
    : experiment_id_(experiment_id),
      environment_(core::CaptureEnvironment()),
      manifest_(experiment_id, protocol_description) {
  properties_.SetDefault("resultsDir", "bench_results");
  properties_.SetDefault("jobs", "1");
  properties_.SetDefault("order", "design");
  properties_.SetDefault("isolation", "exclusive");
  properties_.SetDefault("schedSeed", "0");
  properties_.SetDefault("progress", "false");
  properties_.SetDefault("dbThreads", "1");
  properties_.SetDefault("dbJoin", "radix");
  properties_.SetDefault("dbOpt", "off");
  properties_.SetDefault("dbBackend", "col");
  properties_.SetDefault("smoke", "false");
  std::vector<std::string> rest = properties_.OverrideFromArgs(argc, argv);
  for (const std::string& arg : rest) {
    if (!ConsumeScheduleFlag(arg, &properties_)) {
      std::fprintf(stderr, "warning: ignoring unknown argument '%s'\n",
                   arg.c_str());
    }
  }
  properties_.OverrideFromEnv("PERFEVAL_");
  results_dir_ = properties_.GetOr("resultsDir", "bench_results");
  manifest_.set_environment(environment_);
}

sched::Options BenchContext::ScheduleOptions() const {
  sched::Options options;
  options.experiment_id = experiment_id_;
  options.jobs = static_cast<int>(properties_.GetInt("jobs", 1));
  options.seed =
      static_cast<uint64_t>(properties_.GetInt("schedSeed", 0));
  options.progress = properties_.GetBool("progress", false);
  Result<core::RunOrder> order =
      sched::ParseRunOrder(properties_.GetOr("order", "design"));
  if (order.ok()) {
    options.order = order.value();
  } else {
    std::fprintf(stderr, "warning: %s; using design order\n",
                 order.status().message().c_str());
  }
  Result<core::IsolationPolicy> isolation =
      sched::ParseIsolationPolicy(properties_.GetOr("isolation", "exclusive"));
  if (isolation.ok()) {
    options.isolation = isolation.value();
  } else {
    std::fprintf(stderr, "warning: %s; using exclusive isolation\n",
                 isolation.status().message().c_str());
  }
  return options;
}

int BenchContext::DbThreads() const {
  int threads = static_cast<int>(properties_.GetInt("dbThreads", 1));
  return threads < 1 ? 1 : threads;
}

Result<db::JoinAlgo> BenchContext::DbJoin() const {
  const std::string text = properties_.GetOr("dbJoin", "radix");
  Result<db::JoinAlgo> algo = db::ParseJoinAlgo(text);
  if (!algo.ok()) {
    return Status::InvalidArgument(StrFormat(
        "usage: --dbJoin=<legacy|hash|radix|merge> (got \"%s\")",
        text.c_str()));
  }
  return algo;
}

Result<bool> BenchContext::DbOpt() const {
  const std::string text = properties_.GetOr("dbOpt", "off");
  if (text == "on" || text == "true") {
    return true;
  }
  if (text == "off" || text == "false") {
    return false;
  }
  return Status::InvalidArgument(
      StrFormat("usage: --dbOpt=on|off (got \"%s\")", text.c_str()));
}

Result<db::BackendKind> BenchContext::DbBackend() const {
  const std::string text = properties_.GetOr("dbBackend", "col");
  Result<db::BackendKind> kind = db::ParseBackendKind(text);
  if (!kind.ok()) {
    return Status::InvalidArgument(StrFormat(
        "usage: --dbBackend=<col|row> (got \"%s\")", text.c_str()));
  }
  return kind;
}

Status BenchContext::ApplyDbKnobs(db::Database* database) const {
  database->set_threads(DbThreads());
  Result<db::JoinAlgo> join = DbJoin();
  if (!join.ok()) {
    return join.status();
  }
  database->set_join_algo(join.value());
  database->set_radix_bits(
      static_cast<int>(properties_.GetInt("radixBits", 0)));
  Result<bool> optimize = DbOpt();
  if (!optimize.ok()) {
    return optimize.status();
  }
  database->set_optimize(optimize.value());
  Result<db::BackendKind> backend = DbBackend();
  if (!backend.ok()) {
    return backend.status();
  }
  database->set_backend(backend.value());
  return Status::OK();
}

bool BenchContext::Smoke() const {
  return properties_.GetBool("smoke", false);
}

std::string BenchContext::ResultPath(const std::string& file_name) const {
  return results_dir_ + "/" + file_name;
}

void BenchContext::PrintHeader(const std::string& title) const {
  std::printf("== %s: %s ==\n", experiment_id_.c_str(), title.c_str());
  std::printf("%s", environment_.ToReportString().c_str());
  // Treatment knobs are part of the experimental setup (paper, slides
  // 149–156): echo them in every header so a report can never be read
  // without knowing which engine configuration produced it.
  std::printf(
      "db knobs: backend=%s threads=%s join=%s opt=%s\n",
      properties_.GetOr("dbBackend", "col").c_str(),
      properties_.GetOr("dbThreads", "1").c_str(),
      properties_.GetOr("dbJoin", "radix").c_str(),
      properties_.GetOr("dbOpt", "off").c_str());
  std::printf("\n");
}

std::string BenchContext::Finish() {
  manifest_.set_properties(properties_);
  std::string path =
      ResultPath(StrFormat("%s_manifest.txt", experiment_id_.c_str()));
  Status status = manifest_.WriteToFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "manifest write failed: %s\n",
                 status.ToString().c_str());
  }
  return path;
}

}  // namespace bench
}  // namespace perfeval
