// A4 — ablation: data skew as a controlled workload characteristic
// (slide 11: micro-benchmarks must control "value ranges and distribution,
// correlation"). The TPC-H generator's Zipf foreign-key knob sweeps the
// part-key skew from uniform (theta 0) to heavy (theta 1.5); the bench
// reports how the data changes (distinct keys, hottest key's share) and
// what that does to a hash join and a group-by on the skewed key. The
// honest punchline (measured, see EXPERIMENTS.md A4): the data profile
// changes dramatically while these in-memory operators barely move at this
// scale — materialization dominates the join, and the group-by's hash map
// fits in cache at every theta. A result quoted "on skewed data" without
// the data profile beside it says almost nothing.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "bench_util.h"
#include "common/string_util.h"
#include "db/database.h"
#include "report/csv.h"
#include "report/table_format.h"
#include "sched/scheduler.h"
#include "stats/descriptive.h"
#include "workload/tpch_gen.h"

namespace perfeval {
namespace {

constexpr double kThetas[] = {0.0, 0.5, 1.0, 1.5};

/// The generated tables for one theta, shared read-only by all of that
/// theta's trials (each trial registers them into its own Database, so no
/// execution state is shared between workers).
struct SkewTables {
  std::shared_ptr<db::Table> part;
  std::shared_ptr<db::Table> orders;
  std::shared_ptr<db::Table> lineitem;
};

struct DataProfile {
  int64_t distinct_parts;
  double top_key_share;
};

SkewTables GenerateAtTheta(double theta, double sf) {
  workload::TpchGenerator gen(sf, 19920101, theta);
  return {gen.Generate("part"), gen.Generate("orders"),
          gen.Generate("lineitem")};
}

DataProfile ProfileOf(const SkewTables& tables) {
  const auto& partkeys = tables.lineitem->ColumnByName("l_partkey").ints();
  std::unordered_map<int64_t, int64_t> counts;
  for (int64_t k : partkeys) {
    ++counts[k];
  }
  int64_t top = 0;
  for (const auto& [key, count] : counts) {
    top = std::max(top, count);
  }
  return {static_cast<int64_t>(counts.size()),
          static_cast<double>(top) / static_cast<double>(partkeys.size())};
}

/// One self-contained trial: a fresh Database over the shared tables, one
/// un-measured warm-up execution of the plan, then the measured run. Each
/// (theta, operator, replication) trial is an independent job for the
/// scheduler, so `--jobs`/`--order` never change the reported numbers.
core::Measurement MeasureTrial(const SkewTables& tables, bool join_op) {
  db::Database database;
  database.RegisterTable("part", tables.part);
  database.RegisterTable("orders", tables.orders);
  database.RegisterTable("lineitem", tables.lineitem);
  db::PlanPtr plan =
      join_op ? db::HashJoin(db::Scan("lineitem", {"l_partkey"}),
                             db::Scan("part", {"p_partkey"}), "l_partkey",
                             "p_partkey")
              : db::Aggregate(db::Scan("lineitem", {"l_partkey"}),
                              {"l_partkey"},
                              {{db::AggOp::kCount, nullptr, "n"}});
  (void)database.Run(plan);  // Warm this trial's own instance.
  core::Measurement m;
  m.user_ns =
      static_cast<int64_t>(database.Run(plan).ServerUserMs() * 1e6);
  return m;
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("A4",
                          "hot runs: 1 warm-up, minimum of 3, user CPU time",
                          argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.02");
  ctx.PrintHeader("foreign-key skew sweep: data profile and operator cost");

  double sf = ctx.properties().GetDouble("scaleFactor", 0.02);

  // Generate the four datasets once, serially (generation is the expensive
  // part); profile them while the scheduler only measures operators.
  std::vector<SkewTables> tables;
  std::vector<DataProfile> profiles;
  for (double theta : kThetas) {
    tables.push_back(GenerateAtTheta(theta, sf));
    profiles.push_back(ProfileOf(tables.back()));
  }

  // theta x operator design, measured through the scheduler: every
  // (point, replication) pair is one self-contained trial.
  doe::Design design = doe::FullFactorialDesign(
      {doe::Factor("theta", {"0.0", "0.5", "1.0", "1.5"}),
       doe::Factor("operator", {"join", "group-by"})});
  core::RunProtocol protocol;
  protocol.warmup_runs = 0;  // Each trial warms its own Database instance.
  protocol.measured_runs = 3;
  protocol.aggregation = core::Aggregation::kMin;
  sched::Scheduler scheduler(ctx.ScheduleOptions());
  std::printf("schedule: %s\n\n",
              scheduler.options().ToScheduleSpec().Describe().c_str());
  Result<core::ExperimentResult> scheduled = scheduler.Run(
      design, protocol, core::ResponseMetric::kUserMs,
      [&](const doe::DesignPoint& point, const core::TrialSpec&) {
        return MeasureTrial(tables[point.levels[0]], point.levels[1] == 0);
      });
  if (!scheduled.ok()) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 scheduled.status().ToString().c_str());
    return 1;
  }
  // Factor 0 (theta) varies fastest: points 0..3 are the join at each
  // theta, points 4..7 the group-by.
  std::vector<double> y = scheduled->AggregatedResponses();

  report::TextTable table;
  table.SetHeader({"zipf theta", "distinct parts", "hottest key share",
                   "join (ms)", "group-by (ms)"});
  report::CsvWriter csv({"theta", "distinct_parts", "top_share", "join_ms",
                         "group_ms"});
  for (size_t t = 0; t < 4; ++t) {
    double join_ms = y[t];
    double group_ms = y[4 + t];
    table.AddRow({StrFormat("%.1f", kThetas[t]),
                  StrFormat("%lld",
                            static_cast<long long>(
                                profiles[t].distinct_parts)),
                  StrFormat("%.2f%%", profiles[t].top_key_share * 100.0),
                  StrFormat("%.2f", join_ms),
                  StrFormat("%.2f", group_ms)});
    csv.AddNumericRow({kThetas[t],
                       static_cast<double>(profiles[t].distinct_parts),
                       profiles[t].top_key_share, join_ms, group_ms});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "shape: rising theta concentrates references on few keys (distinct "
      "count falls, the hottest key's share climbs to ~40%%) while the "
      "operator costs stay within noise at this scale — the data profile "
      "and the timing must be reported together (slide 42: document "
      "accurately and completely what you do).\n");

  std::string csv_path = ctx.ResultPath("a4_skew.csv");
  if (!csv.WriteToFile(csv_path).ok()) {
    return 1;
  }
  ctx.AddOutput(csv_path);
  ctx.Finish();
  return 0;
}
