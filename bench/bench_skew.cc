// A4 — ablation: data skew as a controlled workload characteristic
// (slide 11: micro-benchmarks must control "value ranges and distribution,
// correlation"). The TPC-H generator's Zipf foreign-key knob sweeps the
// part-key skew from uniform (theta 0) to heavy (theta 1.5); the bench
// reports how the data changes (distinct keys, hottest key's share) and
// what that does to a hash join and a group-by on the skewed key. The
// honest punchline (measured, see EXPERIMENTS.md A4): the data profile
// changes dramatically while these in-memory operators barely move at this
// scale — materialization dominates the join, and the group-by's hash map
// fits in cache at every theta. A result quoted "on skewed data" without
// the data profile beside it says almost nothing.

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "bench_util.h"
#include "common/string_util.h"
#include "db/database.h"
#include "report/csv.h"
#include "report/table_format.h"
#include "stats/descriptive.h"
#include "workload/tpch_gen.h"

namespace perfeval {
namespace {

struct SkewPoint {
  double theta;
  int64_t distinct_parts;
  double top_key_share;
  double join_ms;
  double group_ms;
};

double MinUserMs(db::Database& database, const db::PlanPtr& plan) {
  (void)database.Run(plan);
  std::vector<double> samples;
  for (int i = 0; i < 3; ++i) {
    samples.push_back(database.Run(plan).ServerUserMs());
  }
  return stats::Min(samples);
}

SkewPoint MeasureAtTheta(double theta, double sf) {
  db::Database database;
  workload::TpchGenerator gen(sf, 19920101, theta);
  database.RegisterTable("part", gen.Generate("part"));
  database.RegisterTable("orders", gen.Generate("orders"));
  database.RegisterTable("lineitem", gen.Generate("lineitem"));

  SkewPoint point;
  point.theta = theta;

  // Data profile.
  const db::Table& lineitem = database.GetTable("lineitem");
  const auto& partkeys = lineitem.ColumnByName("l_partkey").ints();
  std::unordered_map<int64_t, int64_t> counts;
  for (int64_t k : partkeys) {
    ++counts[k];
  }
  point.distinct_parts = static_cast<int64_t>(counts.size());
  int64_t top = 0;
  for (const auto& [key, count] : counts) {
    top = std::max(top, count);
  }
  point.top_key_share =
      static_cast<double>(top) / static_cast<double>(partkeys.size());

  db::PlanPtr join = db::HashJoin(
      db::Scan("lineitem", {"l_partkey"}),
      db::Scan("part", {"p_partkey"}), "l_partkey", "p_partkey");
  point.join_ms = MinUserMs(database, join);

  db::PlanPtr group =
      db::Aggregate(db::Scan("lineitem", {"l_partkey"}), {"l_partkey"},
                    {{db::AggOp::kCount, nullptr, "n"}});
  point.group_ms = MinUserMs(database, group);
  return point;
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx("A4",
                          "hot runs: 1 warm-up, minimum of 3, user CPU time",
                          argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.02");
  ctx.PrintHeader("foreign-key skew sweep: data profile and operator cost");

  double sf = ctx.properties().GetDouble("scaleFactor", 0.02);
  report::TextTable table;
  table.SetHeader({"zipf theta", "distinct parts", "hottest key share",
                   "join (ms)", "group-by (ms)"});
  report::CsvWriter csv({"theta", "distinct_parts", "top_share", "join_ms",
                         "group_ms"});
  for (double theta : {0.0, 0.5, 1.0, 1.5}) {
    SkewPoint point = MeasureAtTheta(theta, sf);
    table.AddRow({StrFormat("%.1f", point.theta),
                  StrFormat("%lld",
                            static_cast<long long>(point.distinct_parts)),
                  StrFormat("%.2f%%", point.top_key_share * 100.0),
                  StrFormat("%.2f", point.join_ms),
                  StrFormat("%.2f", point.group_ms)});
    csv.AddNumericRow({point.theta,
                       static_cast<double>(point.distinct_parts),
                       point.top_key_share, point.join_ms, point.group_ms});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "shape: rising theta concentrates references on few keys (distinct "
      "count falls, the hottest key's share climbs to ~40%%) while the "
      "operator costs stay within noise at this scale — the data profile "
      "and the timing must be reported together (slide 42: document "
      "accurately and completely what you do).\n");

  std::string csv_path = ctx.ResultPath("a4_skew.csv");
  if (!csv.WriteToFile(csv_path).ok()) {
    return 1;
  }
  ctx.AddOutput(csv_path);
  ctx.Finish();
  return 0;
}
