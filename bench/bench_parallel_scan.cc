// A7 — morsel-driven parallel query speedup. Scan-heavy TPC-H queries
// (Q1: scan + group-by aggregation; Q6: scan + filter + sum) run hot at
// 1/2/4/8 worker threads. Reported time is measured wall clock of the
// server phase, excluding simulated I/O stall — the parallelism knob
// speeds up compute, while the deterministic I/O accounting charges the
// same stall at every thread count by design (A6 invariant: results and
// storage stats are bit-identical across `threads`; this bench verifies
// that on every run). Speedup above 1x needs physical cores: the JSON
// records the host's core count so a reader can judge the numbers.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "db/database.h"
#include "report/table_format.h"
#include "stats/descriptive.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace {

std::string Render(const db::Table& table) {
  std::string out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      out += table.ValueAt(r, c).ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A7",
      "hot runs: 1 warm-up, median of `runs` measured runs, server wall "
      "time excluding simulated stall",
      argc, argv);
  ctx.properties().SetDefault("scaleFactor", "0.02");
  ctx.properties().SetDefault("runs", "7");
  ctx.properties().SetDefault("maxThreads", "8");
  ctx.PrintHeader("morsel-driven parallel scan speedup (Q1, Q6)");

  double sf = ctx.properties().GetDouble("scaleFactor", 0.02);
  int runs = static_cast<int>(ctx.properties().GetInt("runs", 7));
  int max_threads =
      static_cast<int>(ctx.properties().GetInt("maxThreads", 8));
  unsigned host_cores = std::thread::hardware_concurrency();

  db::Database database;
  workload::TpchGenerator gen(sf);
  gen.LoadAll(&database);
  std::printf("TPC-H scale factor %.3g, %u hardware thread(s)\n\n", sf,
              host_cores);

  const std::vector<int> kQueries = {1, 6};
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) {
    thread_counts.push_back(t);
  }

  std::string json = "{\n";
  json += StrFormat("  \"experiment\": \"A7\",\n");
  json += StrFormat("  \"scale_factor\": %g,\n", sf);
  json += StrFormat("  \"runs\": %d,\n", runs);
  json += StrFormat("  \"hardware_threads\": %u,\n", host_cores);
  json += "  \"queries\": [\n";

  bool determinism_ok = true;
  for (size_t qi = 0; qi < kQueries.size(); ++qi) {
    int q = kQueries[qi];
    db::PlanPtr plan = workload::GetTpchQuery(q).Build(database);

    report::TextTable table;
    table.SetHeader({"threads", "median wall (ms)", "speedup"});
    json += StrFormat("    {\"query\": %d, \"results\": [", q);

    std::string baseline_render;
    double baseline_ns = 0.0;
    for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
      int threads = thread_counts[ti];
      database.set_threads(threads);
      db::QueryResult warm = database.Run(plan);  // warm-up.
      std::string rendered = Render(*warm.table);
      if (threads == 1) {
        baseline_render = rendered;
      } else if (rendered != baseline_render) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: Q%d differs at threads=%d\n",
                     q, threads);
        determinism_ok = false;
      }
      std::vector<double> samples;
      for (int r = 0; r < runs; ++r) {
        samples.push_back(
            static_cast<double>(database.Run(plan).server.real_ns));
      }
      double median_ns = stats::Median(samples);
      if (threads == 1) {
        baseline_ns = median_ns;
      }
      double speedup = median_ns > 0.0 ? baseline_ns / median_ns : 0.0;
      table.AddRow({std::to_string(threads),
                    StrFormat("%.3f", median_ns / 1e6),
                    StrFormat("%.2fx", speedup)});
      json += StrFormat("%s{\"threads\": %d, \"median_ns\": %.0f, "
                        "\"speedup\": %.3f}",
                        ti == 0 ? "" : ", ", threads, median_ns, speedup);
    }
    json += StrFormat("]}%s\n", qi + 1 < kQueries.size() ? "," : "");
    std::printf("Q%d (%s):\n%s\n", q,
                workload::GetTpchQuery(q).name.c_str(),
                table.ToString().c_str());
  }
  database.set_threads(1);
  json += "  ],\n";
  json += StrFormat("  \"results_bit_identical_across_threads\": %s\n",
                    determinism_ok ? "true" : "false");
  json += "}\n";

  std::printf(
      "results were %s across all thread counts; speedup above 1x "
      "requires spare physical cores (this host: %u).\n",
      determinism_ok ? "bit-identical" : "NOT IDENTICAL (bug!)",
      host_cores);

  std::string json_path = ctx.ResultPath("BENCH_parallel_scan.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  ctx.AddOutput(json_path);
  ctx.AddNote(determinism_ok
                  ? "results bit-identical across thread counts"
                  : "DETERMINISM VIOLATION observed");
  ctx.Finish();
  return determinism_ok ? 0 : 1;
}
