// A7 — adaptive morsel-driven parallel query speedup, as a 2-factor study
// (scale factor x worker threads). Scan-heavy TPC-H queries (Q1: scan +
// group-by aggregation; Q6: scan + filter + sum) run hot at 1/2/4/8
// worker threads over sf=0.01 (below the adaptive serial cutoff — the
// regression case where fan-out overhead used to cost more than the work)
// and sf=1 (~6M lineitem rows, where parallelism pays).
//
// Server time decomposes into two parts with different scaling physics:
//   - simulated I/O stall: the deterministic device-wait charge from the
//     storage simulation. The determinism contract pins StorageStats —
//     stall included — to be bit-identical at every thread count (this
//     bench asserts exactly that), so the stall is a thread-invariant
//     additive constant by construction.
//   - compute: everything else. This is what morsel parallelism
//     accelerates, and the headline speedup is measured on it.
// Compute is reported as *modeled* time: parallel regions are counted at
// their critical path (max per-worker CLOCK_THREAD_CPUTIME_ID busy time)
// instead of their measured region wall, because on a host without spare
// physical cores the workers time-slice one core and measured wall cannot
// show scaling. Serial operators and coordinator work are still charged
// at wall, so Amdahl effects stay visible. The JSON labels the model and
// records the host core count so a reader can judge the numbers.
//
// Speedups are baseline / t-thread compute ratios with percentile-
// bootstrap CIs (Kalibera & Jones style). Sub-millisecond cells batch
// inner repetitions per sample so scheduler hiccups cannot dominate the
// ratio. The bench also verifies, per thread count, the A6 invariant:
// rendered results AND StorageStats bit-identical. `--smoke` shrinks
// everything to a ctest-able pass.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "db/database.h"
#include "report/table_format.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace {

std::string Render(const db::Table& table) {
  std::string out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      out += table.ValueAt(r, c).ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

/// Simulated device-wait charged to the query — thread-invariant by the
/// determinism contract (asserted below), so it is subtracted out of the
/// speedup basis.
int64_t SimStallNs(const db::QueryResult& r) {
  return r.storage.stall_ns + r.storage.write_stall_ns;
}

/// Modeled compute time: server time minus the simulated stall, with
/// parallel regions at their critical path. The quantity parallelism can
/// actually move.
double ModeledComputeNs(const db::QueryResult& r) {
  int64_t ns = r.ModeledServerNs() - SimStallNs(r);
  return ns < 0 ? 0.0 : static_cast<double>(ns);
}

/// The per-query storage counters that must not move with `threads`.
std::string StatsKey(const db::StorageStats& s) {
  return StrFormat("h=%lld m=%lld br=%lld s=%lld bw=%lld f=%lld ws=%lld",
                   static_cast<long long>(s.page_hits),
                   static_cast<long long>(s.page_misses),
                   static_cast<long long>(s.bytes_read),
                   static_cast<long long>(s.stall_ns),
                   static_cast<long long>(s.bytes_written),
                   static_cast<long long>(s.fsyncs),
                   static_cast<long long>(s.write_stall_ns));
}

}  // namespace
}  // namespace perfeval

int main(int argc, char** argv) {
  using namespace perfeval;  // NOLINT(build/namespaces) bench binary.
  bench::BenchContext ctx(
      "A7",
      "hot runs; per (sf, query): determinism pass over all thread counts, "
      "then `runs` interleaved timing rounds (batched inner reps); "
      "compute speedups with bootstrap CIs",
      argc, argv);
  bool smoke = ctx.Smoke();
  ctx.properties().SetDefault("scaleFactors", smoke ? "0.01" : "0.01,1");
  ctx.properties().SetDefault("runs", smoke ? "3" : "7");
  ctx.properties().SetDefault("maxThreads", smoke ? "4" : "8");
  ctx.PrintHeader(
      "adaptive morsel-driven parallel scan speedup (Q1, Q6; sf x threads)");
  if (smoke) {
    std::printf("[smoke mode: sf=0.01 only, shortened runs]\n\n");
  }

  int runs = static_cast<int>(ctx.properties().GetInt("runs", 7));
  int max_threads =
      static_cast<int>(ctx.properties().GetInt("maxThreads", 8));
  unsigned host_cores = std::thread::hardware_concurrency();

  std::vector<double> scale_factors;
  for (const std::string& tok :
       Split(ctx.properties().GetOr("scaleFactors", "0.01,1"), ',')) {
    scale_factors.push_back(std::stod(tok));
  }
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) {
    thread_counts.push_back(t);
  }
  const std::vector<int> kQueries = {1, 6};

  std::string json = "{\n";
  json += "  \"experiment\": \"A7\",\n";
  json += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += StrFormat("  \"runs\": %d,\n", runs);
  json += StrFormat("  \"hardware_threads\": %u,\n", host_cores);
  json +=
      "  \"speedup_basis\": \"modeled compute time: server time minus the "
      "simulated I/O stall (thread-invariant by the determinism contract, "
      "asserted per run), with parallel regions counted at their critical "
      "path (max per-worker CPU busy); measured wall cannot show scaling "
      "without spare physical cores\",\n";
  json += "  \"cells\": [\n";

  bool determinism_ok = true;
  bool first_cell = true;
  for (double sf : scale_factors) {
    db::Database database;
    workload::TpchGenerator gen(sf);
    gen.set_threads(max_threads);  // chunk-parallel load, data unchanged.
    gen.LoadAll(&database);
    std::printf("=== TPC-H sf=%g (%zu lineitem rows), %u hardware "
                "thread(s) ===\n\n",
                sf, database.GetTable("lineitem").num_rows(), host_cores);

    for (int q : kQueries) {
      db::PlanPtr plan = workload::GetTpchQuery(q).Build(database);

      report::TextTable table;
      table.SetHeader({"threads", "wall (ms)", "sim stall (ms)",
                       "compute (ms)", "speedup [95% CI]"});

      database.set_threads(1);
      (void)database.Run(plan);  // cold run: populate the buffer pool so
                                 // the stats comparison below is hot-vs-hot.

      // Calibrate inner repetitions once per (sf, query) at threads=1 so
      // each sample aggregates >= ~20 ms of compute; sub-millisecond runs
      // otherwise let a single scheduler hiccup dominate the mean ratio.
      db::QueryResult probe = database.Run(plan);
      double probe_compute = ModeledComputeNs(probe);
      int reps = 1;
      if (probe_compute > 0 && probe_compute < 20e6) {
        reps = static_cast<int>(20e6 / probe_compute) + 1;
        reps = reps > 256 ? 256 : reps;
      }
      double stall_ns = static_cast<double>(SimStallNs(probe));

      // Pass 1 — determinism: one run per thread count, results and
      // storage counters compared bit-for-bit against the serial baseline.
      std::string baseline_render;
      std::string baseline_stats;
      for (int threads : thread_counts) {
        database.set_threads(threads);
        db::QueryResult warm = database.Run(plan);
        std::string rendered = Render(*warm.table);
        std::string stats_key = StatsKey(warm.storage);
        if (threads == 1) {
          baseline_render = rendered;
          baseline_stats = stats_key;
          continue;
        }
        if (rendered != baseline_render) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: Q%d results differ at "
                       "sf=%g threads=%d\n",
                       q, sf, threads);
          determinism_ok = false;
        }
        if (stats_key != baseline_stats) {
          std::fprintf(
              stderr,
              "DETERMINISM VIOLATION: Q%d storage stats differ at sf=%g "
              "threads=%d (%s vs %s)\n",
              q, sf, threads, stats_key.c_str(), baseline_stats.c_str());
          determinism_ok = false;
        }
      }

      // Pass 2 — timing, interleaved: each round collects one sample at
      // every thread count, so slow drift (thermal, background load)
      // lands evenly on the baseline and on every comparison cell instead
      // of biasing whichever setting ran last.
      size_t num_settings = thread_counts.size();
      std::vector<std::vector<double>> wall_samples(num_settings);
      std::vector<std::vector<double>> compute_samples(num_settings);
      std::vector<int> threads_used(num_settings, 0);
      for (int r = 0; r < runs; ++r) {
        for (size_t ti = 0; ti < num_settings; ++ti) {
          database.set_threads(thread_counts[ti]);
          double wall_sum = 0;
          double compute_sum = 0;
          for (int k = 0; k < reps; ++k) {
            db::QueryResult result = database.Run(plan);
            wall_sum += static_cast<double>(result.server.ObservedRealNs());
            compute_sum += ModeledComputeNs(result);
            for (const db::OpTrace& trace : result.profile.traces()) {
              threads_used[ti] = std::max(threads_used[ti],
                                          trace.threads_used);
            }
          }
          wall_samples[ti].push_back(wall_sum / reps);
          compute_samples[ti].push_back(compute_sum / reps);
        }
      }
      database.set_threads(1);

      for (size_t ti = 0; ti < num_settings; ++ti) {
        int threads = thread_counts[ti];
        double median_wall = stats::Median(wall_samples[ti]);
        double median_compute = stats::Median(compute_samples[ti]);
        stats::ConfidenceInterval speedup = stats::BootstrapRatioCI(
            compute_samples[0], compute_samples[ti], 0.95,
            MixSeed(static_cast<uint64_t>(q),
                    static_cast<uint64_t>(threads),
                    static_cast<uint64_t>(sf * 1000)));
        table.AddRow(
            {std::to_string(threads), StrFormat("%.3f", median_wall / 1e6),
             StrFormat("%.3f", stall_ns / 1e6),
             StrFormat("%.3f", median_compute / 1e6),
             StrFormat("%.2fx [%.2f, %.2f]", speedup.mean, speedup.lower,
                       speedup.upper)});
        json += StrFormat(
            "%s    {\"scale_factor\": %g, \"query\": %d, \"threads\": %d, "
            "\"threads_used\": %d, \"reps_per_sample\": %d, "
            "\"median_wall_ns\": %.0f, \"sim_stall_ns\": %.0f, "
            "\"median_compute_modeled_ns\": %.0f, "
            "\"speedup_compute\": %.3f, \"speedup_ci95\": [%.3f, %.3f]}",
            first_cell ? "" : ",\n", sf, q, threads, threads_used[ti], reps,
            median_wall, stall_ns, median_compute, speedup.mean,
            speedup.lower, speedup.upper);
        first_cell = false;
      }
      std::printf("Q%d (%s), sf=%g:\n%s\n", q,
                  workload::GetTpchQuery(q).name.c_str(), sf,
                  table.ToString().c_str());
    }
  }
  json += "\n  ],\n";
  json += StrFormat(
      "  \"results_and_stats_bit_identical_across_threads\": %s\n",
      determinism_ok ? "true" : "false");
  json += "}\n";

  std::printf(
      "results and storage stats were %s across all thread counts.\n"
      "speedups are modeled-compute ratios (server time minus the "
      "thread-invariant simulated I/O stall, parallel regions at critical "
      "path); measured wall needs spare physical cores (this host: %u).\n",
      determinism_ok ? "bit-identical" : "NOT IDENTICAL (bug!)", host_cores);

  std::string json_path = ctx.ResultPath("BENCH_parallel_scan.json");
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  out.close();
  ctx.AddOutput(json_path);
  ctx.AddNote(determinism_ok
                  ? "results and storage stats bit-identical across threads"
                  : "DETERMINISM VIOLATION observed");
  ctx.Finish();
  return determinism_ok ? 0 : 1;
}
