#include "db/database.h"

#include "common/check.h"

namespace perfeval {
namespace db {

Database::Database(DatabaseOptions options)
    : options_(options),
      storage_(std::make_unique<StorageManager>(options.disk,
                                                options.buffer_pool_pages,
                                                options.rows_per_page)) {}

void Database::RegisterTable(const std::string& name,
                             std::shared_ptr<Table> table) {
  PERFEVAL_CHECK(table != nullptr);
  std::lock_guard<std::mutex> lock(catalog_mu_);
  PERFEVAL_CHECK(tables_.find(name) == tables_.end())
      << "table " << name << " already registered";
  uint32_t id = static_cast<uint32_t>(table_order_.size());
  storage_->RegisterTable(id, *table);
  stats_[name] = std::make_shared<const TableStats>(
      ComputeTableStats(*table, storage_.get(), id));
  tables_[name] = std::move(table);
  table_ids_[name] = id;
  table_order_.push_back(name);
}

void Database::ReplaceTable(const std::string& name,
                            std::shared_ptr<Table> table) {
  PERFEVAL_CHECK(table != nullptr);
  // Exclusive gate first: wait out running queries, then swap catalog and
  // storage metadata together so a scan never sees one without the other.
  std::unique_lock<std::shared_mutex> gate(exec_gate_);
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = tables_.find(name);
  PERFEVAL_CHECK(it != tables_.end()) << "no table named " << name;
  PERFEVAL_CHECK_EQ(it->second->schema().num_columns(),
                    table->schema().num_columns());
  storage_->ReplaceTable(table_ids_[name], *table);
  stats_[name] = std::make_shared<const TableStats>(
      ComputeTableStats(*table, storage_.get(), table_ids_[name]));
  retired_.push_back(std::move(it->second));
  it->second = std::move(table);
}

void Database::SetRefreshHook(std::function<void()> hook) {
  refresh_hook_ = std::move(hook);
}

bool Database::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return tables_.find(name) != tables_.end();
}

const Table& Database::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = tables_.find(name);
  PERFEVAL_CHECK(it != tables_.end()) << "no table named " << name;
  return *it->second;
}

std::shared_ptr<const Table> Database::GetTableShared(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = tables_.find(name);
  PERFEVAL_CHECK(it != tables_.end()) << "no table named " << name;
  return it->second;
}

uint32_t Database::TableId(const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = table_ids_.find(name);
  PERFEVAL_CHECK(it != table_ids_.end()) << "no table named " << name;
  return it->second;
}

std::shared_ptr<const TableStats> Database::GetTableStats(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = stats_.find(name);
  PERFEVAL_CHECK(it != stats_.end()) << "no table named " << name;
  return it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return table_order_;
}

QueryResult Database::Run(const PlanPtr& plan, ExecMode mode, SinkKind sink,
                          bool use_zone_maps) {
  // Fold freshly committed write-path deltas into the catalog before
  // executing, so every query observes the latest committed snapshot. The
  // hook may call ReplaceTable, which takes the exec gate exclusively, so
  // it must run before this query acquires the gate in shared mode.
  if (refresh_hook_) {
    refresh_hook_();
  }
  QueryResult result;
  ExecContext ctx;
  ctx.mode = mode;
  ctx.database = this;
  ctx.storage = storage_.get();
  ctx.profiler = &result.profile;
  ctx.use_zone_maps = use_zone_maps;
  ctx.threads = threads();
  ctx.morsel = options_.morsel;
  ctx.parallel_sim = &result.parallel;
  ctx.join_algo = options_.join_algo;
  ctx.radix_bits = options_.radix_bits;
  ctx.check = options_.check;

  // Server phase: execute the plan. Stats are read through the
  // thread-safe snapshot so concurrent query streams never race on the
  // counters (the per-query deltas are then only meaningful when streams
  // run serially; the result table is deterministic either way).
  StorageStats stats_before = storage_->StatsSnapshot();
  int64_t stall_before = storage_->total_stall_ns();
  Relation relation;
  {
    // Shared exec gate: storage metadata (zone maps, chunk counts) stays
    // stable for the whole server phase even while the write path swaps
    // tables between queries.
    std::shared_lock<std::shared_mutex> gate(exec_gate_);
    result.server = core::MeasureOnce([&] { relation = plan->Execute(ctx); });
  }
  result.server.simulated_stall_ns =
      storage_->total_stall_ns() - stall_before;
  StorageStats stats_after = storage_->StatsSnapshot();
  result.storage.page_hits = stats_after.page_hits - stats_before.page_hits;
  result.storage.page_misses =
      stats_after.page_misses - stats_before.page_misses;
  result.storage.bytes_read = stats_after.bytes_read - stats_before.bytes_read;
  result.storage.stall_ns = stats_after.stall_ns - stats_before.stall_ns;

  // Plans can return a selection over a base table; materialize the final
  // result the way a server serializes it.
  if (relation.selection) {
    std::vector<uint32_t> rows = relation.RowIds();
    auto materialized = std::make_shared<Table>(relation.table->schema());
    materialized->ReserveRows(rows.size());
    for (uint32_t r : rows) {
      std::vector<Value> row;
      row.reserve(relation.table->num_columns());
      for (size_t c = 0; c < relation.table->num_columns(); ++c) {
        row.push_back(relation.table->ValueAt(r, c));
      }
      materialized->AppendRow(row);
    }
    result.table = materialized;
  } else {
    result.table = relation.table;
  }

  // Client phase: render the result into the sink.
  core::Measurement render = core::MeasureOnce(
      [&] { result.sink = SendToSink(*result.table, sink,
                                     options_.sink_model); });
  render.simulated_stall_ns = result.sink.stall_ns;
  result.client = result.server + render;
  return result;
}

}  // namespace db
}  // namespace perfeval
