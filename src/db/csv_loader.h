#ifndef PERFEVAL_DB_CSV_LOADER_H_
#define PERFEVAL_DB_CSV_LOADER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "db/table.h"

namespace perfeval {
namespace db {

/// Loads a CSV file (RFC-4180-ish: ',' separator, '"' quoting with ""
/// escapes, first line is the header) into a table. With an explicit
/// schema, header names must match the schema's column names in order and
/// values must parse as the declared types. Without one, types are
/// inferred per column from the data: int64 if every value parses as an
/// integer, else date if every value is "YYYY-MM-DD", else double, else
/// string. Empty numeric/date fields are errors (the engine has no NULLs).
///
/// This is the on-ramp for experimenting on one's own data — the paper's
/// real-life-application workload class (slides 16-17) — through the same
/// engine, SQL shell and harness as the bundled benchmarks.
Result<std::shared_ptr<Table>> LoadCsv(const std::string& path,
                                       const Schema& schema);
Result<std::shared_ptr<Table>> LoadCsv(const std::string& path);

/// Parses CSV text directly (used by LoadCsv and tests).
Result<std::shared_ptr<Table>> ParseCsvText(const std::string& text,
                                            const Schema* schema);

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_CSV_LOADER_H_
