#ifndef PERFEVAL_DB_CSV_LOADER_H_
#define PERFEVAL_DB_CSV_LOADER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "db/table.h"

namespace perfeval {
namespace db {

/// Loads a CSV file (RFC-4180-ish: ',' separator, '"' quoting with ""
/// escapes — delimiters and line breaks inside quoted fields are data —
/// first line is the header; a missing trailing newline is fine) into a
/// table. With an explicit schema, header names must match the schema's
/// column names in order and values must parse as the declared types.
/// Without one, types are inferred per column from the non-empty values:
/// int64 if every one parses as an integer, else date if every one is
/// "YYYY-MM-DD", else double, else string. An empty numeric/date field
/// loads as NULL (empty string fields stay "").
///
/// This is the on-ramp for experimenting on one's own data — the paper's
/// real-life-application workload class (slides 16-17) — through the same
/// engine, SQL shell and harness as the bundled benchmarks.
Result<std::shared_ptr<Table>> LoadCsv(const std::string& path,
                                       const Schema& schema);
Result<std::shared_ptr<Table>> LoadCsv(const std::string& path);

/// Parses CSV text directly (used by LoadCsv and tests).
Result<std::shared_ptr<Table>> ParseCsvText(const std::string& text,
                                            const Schema* schema);

/// Renders a table back to CSV with RFC-4180 quoting (fields holding the
/// delimiter, quotes or line breaks are quoted; NULL renders as an empty
/// field; doubles use a round-trippable %.17g). LoadCsv(WriteCsv(t))
/// reproduces t exactly for any table whose strings are non-empty — an
/// empty string and NULL both render as the empty field.
std::string WriteCsvText(const Table& table);
Status WriteCsv(const Table& table, const std::string& path);

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_CSV_LOADER_H_
