#include "db/types.h"

#include "common/string_util.h"

namespace perfeval {
namespace db {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
  }
  return "unknown";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble ||
         type == DataType::kDate;
}

int32_t DateFromYmd(int year, int month, int day) {
  // days_from_civil (Hinnant). Valid for the proleptic Gregorian calendar.
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);  // [0, 399]
  const unsigned doy = static_cast<unsigned>(
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return static_cast<int32_t>(era * 146097 + static_cast<int>(doe) - 719468);
}

void YmdFromDate(int32_t days, int* year, int* month, int* day) {
  // civil_from_days (Hinnant).
  int z = days + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = y + (m <= 2);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

bool ParseDate(const std::string& text, int32_t* days) {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') {
    return false;
  }
  auto year = ParseInt64(text.substr(0, 4));
  auto month = ParseInt64(text.substr(5, 2));
  auto day = ParseInt64(text.substr(8, 2));
  if (!year || !month || !day || *month < 1 || *month > 12 || *day < 1 ||
      *day > 31) {
    return false;
  }
  *days = DateFromYmd(static_cast<int>(*year), static_cast<int>(*month),
                      static_cast<int>(*day));
  return true;
}

std::string FormatDate(int32_t days) {
  int year = 0;
  int month = 0;
  int day = 0;
  YmdFromDate(days, &year, &month, &day);
  return StrFormat("%04d-%02d-%02d", year, month, day);
}

}  // namespace db
}  // namespace perfeval
