#ifndef PERFEVAL_DB_REFERENCE_H_
#define PERFEVAL_DB_REFERENCE_H_

#include <memory>
#include <string>

#include "db/plan.h"

namespace perfeval {
namespace db {

class Database;

/// Row-at-a-time reference interpreter: re-executes a physical plan naively
/// from its PlanSpec tree, with none of the engine's fast paths — no
/// vectorized kernels, no zone-map pruning, no morsel parallelism, no
/// radix/merge join machinery. It exists purely as a differential oracle
/// (tests/sql/oracle_test.cc): the engine's output across every exec mode
/// × thread count × join algorithm must match this interpreter's, so a bug
/// must be present in both a tight loop and this straight-line code to go
/// unnoticed.
///
/// Semantics mirrored from the engine:
///   - Kleene three-valued logic in the expression tree, with UNKNOWN
///     collapsing to "not selected" at the filter boundary;
///   - aggregates skip NULL inputs; SUM/AVG/MIN/MAX over zero accumulated
///     rows are NULL; int64-typed SUM/MIN/MAX stay exact int64 with
///     checked (throwing) addition;
///   - groups emit in first-occurrence order of the input;
///   - sorts are stable with NULL smallest; joins reject NULL keys.
/// Deliberately NOT mirrored: double SUM/AVG accumulate in flat input
/// order rather than the engine's morsel-merge order, so comparisons of
/// double aggregates need a small tolerance (DiffTables double_tol).
/// TopN ties are resolved by a stable sort here but by std::partial_sort
/// in the engine; comparisons are only exact when the keys totally order
/// the rows (the oracle harness generates such queries).
///
/// Throws QueryError like the engine (checked overflow, NULL join keys),
/// so differential tests can also compare failure behaviour.
std::shared_ptr<const Table> ReferenceExecute(const PlanNode& plan,
                                              const Database& database);

inline std::shared_ptr<const Table> ReferenceExecute(
    const PlanPtr& plan, const Database& database) {
  return ReferenceExecute(*plan, database);
}

/// Structural + cell-wise comparison of two result tables, for the
/// differential harness. Returns "" when they match, else a one-line
/// human-readable description of the first mismatch (schema, row count, or
/// cell). Doubles compare with relative tolerance
/// |a-b| <= double_tol * max(1, |a|, |b|); everything else (ints, dates,
/// strings, NULL flags) compares exactly. With ignore_row_order both
/// tables are first sorted into a canonical row order over all columns
/// (NULL smallest), so results that legitimately differ only in row order
/// — e.g. hash vs radix join match order feeding an unordered aggregate —
/// still compare equal.
std::string DiffTables(const Table& actual, const Table& expected,
                       double double_tol, bool ignore_row_order);

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_REFERENCE_H_
