#ifndef PERFEVAL_DB_STORAGE_H_
#define PERFEVAL_DB_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/table.h"

namespace perfeval {
namespace db {

/// Cost model of the simulated disk. Substitutes the paper's physical
/// 5400RPM laptop disk (DESIGN.md, substitutions): instead of blocking on
/// real I/O, reads charge deterministic stall time which the measurement
/// layer adds to "real" time. Defaults approximate a 5400RPM laptop drive:
/// ~9ms average access, ~50MB/s sequential transfer.
struct DiskModel {
  int64_t seek_ns = 9'000'000;   ///< charged on non-sequential page reads.
  double ns_per_byte = 20.0;     ///< 1/bandwidth: 20ns/B = 50MB/s.

  /// An SSD-like profile for comparisons.
  static DiskModel Ssd() { return DiskModel{80'000, 2.0}; }
};

/// Identifies one page: a fixed-size run of rows of one column of one table.
struct PageId {
  uint32_t table_id = 0;
  uint32_t column_id = 0;
  uint32_t chunk = 0;

  uint64_t Key() const {
    return (static_cast<uint64_t>(table_id) << 40) |
           (static_cast<uint64_t>(column_id) << 28) | chunk;
  }
  bool operator==(const PageId& other) const {
    return Key() == other.Key();
  }
};

/// Min/max statistics of one numeric page — a zone map. Scans with simple
/// range predicates skip pages whose [min, max] cannot match, avoiding both
/// the I/O charge and the scan work. `min`/`max` cover the non-NaN values
/// only; a page containing any NaN sets `has_nan` and must never be pruned
/// (NaN compares false against every bound, so [min, max] says nothing
/// about whether its rows match).
struct ZoneMap {
  double min = 0.0;
  double max = 0.0;
  bool valid = false;    ///< true when the page has at least one non-NaN value.
  bool has_nan = false;  ///< page holds a NaN; pruning must skip this zone.

  /// True when a range predicate may safely skip the page: the zone is
  /// valid, NaN-free, and `might_match` (the predicate's verdict on
  /// [min, max]) is false.
  bool Prunable(bool might_match) const {
    return valid && !has_nan && !might_match;
  }
};

/// Buffer-pool and I/O statistics since the last ResetStats(). The write
/// fields are accounted by the write path (txn::VirtualDisk charges WAL
/// appends and fsyncs through the same DiskModel); they stay zero for
/// read-only workloads and ToString() only renders them when nonzero, so
/// existing read-side reports are unchanged.
struct StorageStats {
  int64_t page_hits = 0;
  int64_t page_misses = 0;
  int64_t bytes_read = 0;
  int64_t stall_ns = 0;
  int64_t bytes_written = 0;   ///< durable-write traffic (WAL, checkpoints).
  int64_t fsyncs = 0;          ///< Sync() barriers issued.
  int64_t write_stall_ns = 0;  ///< simulated time charged to writes/syncs.

  StorageStats& operator+=(const StorageStats& other) {
    page_hits += other.page_hits;
    page_misses += other.page_misses;
    bytes_read += other.bytes_read;
    stall_ns += other.stall_ns;
    bytes_written += other.bytes_written;
    fsyncs += other.fsyncs;
    write_stall_ns += other.write_stall_ns;
    return *this;
  }

  std::string ToString() const;
};

/// The storage manager: tracks which pages are resident (LRU buffer pool
/// over the simulated disk) and charges stall time for misses.
///
/// Cold vs. hot runs (paper, slide 32) are implemented exactly as defined
/// there: FlushCaches() produces the "clean state ... achieved via a system
/// reboot"; running a query once re-populates the pool, making later runs
/// hot.
///
/// Thread safety: all page-touch entry points, FlushCaches, ResetStats and
/// StatsSnapshot serialize on one internal mutex, so concurrent query
/// streams may share a StorageManager. Determinism under intra-query
/// parallelism is the caller's contract: parallel scans account their I/O
/// through TouchMorsel from the coordinating thread in chunk order (one
/// morsel at a time), so hits/misses/bytes/stall are independent of how
/// the compute morsels interleave across workers.
class StorageManager {
 public:
  StorageManager(DiskModel disk, size_t buffer_pool_pages,
                 size_t rows_per_page);

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  size_t rows_per_page() const { return rows_per_page_; }
  size_t buffer_pool_pages() const { return buffer_pool_pages_; }

  /// Registers a table's columns so page counts, byte sizes and zone maps
  /// are known. Must be called after the table is loaded.
  void RegisterTable(uint32_t table_id, const Table& table);

  /// Re-registers an already-registered table id with new contents (the
  /// write path's delta-merge refresh): page counts, byte sizes and zone
  /// maps are recomputed and every resident page of the table is evicted —
  /// the new version's pages are cold, exactly as a freshly written file
  /// would be. Callers must exclude concurrent queries (Database holds its
  /// exec gate exclusively around the call): NumChunks/GetZoneMap read the
  /// metadata without taking `mu_`.
  void ReplaceTable(uint32_t table_id, const Table& table);

  /// Number of pages of a registered column.
  size_t NumChunks(uint32_t table_id, uint32_t column_id) const;

  /// Zone map of one page (invalid for string columns).
  const ZoneMap& GetZoneMap(uint32_t table_id, uint32_t column_id,
                            uint32_t chunk) const;

  /// Marks a page accessed: buffer-pool hit (free) or miss (charges the
  /// disk model and evicts LRU pages as needed).
  void TouchPage(const PageId& page);

  /// Touches every page overlapping rows [row_begin, row_end) of a column.
  void TouchColumnRange(uint32_t table_id, uint32_t column_id,
                        size_t row_begin, size_t row_end);

  /// Touches all pages of a column (a full scan).
  void TouchColumn(uint32_t table_id, uint32_t column_id);

  /// One morsel's I/O, accounted as a unit: touches the pages of every
  /// column in `column_ids` overlapping rows [row_begin, row_end) — in
  /// the given column order, chunks ascending — under a single lock, and
  /// returns the stats delta charged to exactly this call. Parallel scans
  /// invoke this per morsel in chunk order from the coordinator and reduce
  /// the returned deltas in that same order, which makes the aggregate
  /// StorageStats independent of worker interleaving.
  StorageStats TouchMorsel(uint32_t table_id,
                           const std::vector<uint32_t>& column_ids,
                           size_t row_begin, size_t row_end);

  /// Empties the buffer pool — the cold-run "reboot".
  void FlushCaches();

  /// Not synchronized: single-threaded callers (tests, serial tools) only.
  /// Concurrent readers must use StatsSnapshot().
  const StorageStats& stats() const { return stats_; }

  /// Thread-safe copy of the counters.
  StorageStats StatsSnapshot() const;

  void ResetStats();

  /// Stall accumulated since construction; diff two readings to attribute
  /// stalls to a measured interval. Thread-safe (atomic).
  int64_t total_stall_ns() const {
    return total_stall_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct ColumnMeta {
    size_t num_chunks = 0;
    /// Exact bytes per chunk: fixed-width columns charge rows-in-chunk *
    /// value width (the last chunk of a non-divisible row count is
    /// smaller); string columns charge the actual footprint of the rows in
    /// the chunk. Sums to Column::ByteSize().
    std::vector<size_t> chunk_bytes;
    std::vector<ZoneMap> zone_maps;
  };

  const ColumnMeta& GetColumnMeta(uint32_t table_id,
                                  uint32_t column_id) const;

  /// TouchPage body; mu_ must be held.
  void TouchPageLocked(const PageId& page);

  DiskModel disk_;
  size_t buffer_pool_pages_;
  size_t rows_per_page_;

  /// table_id -> per-column metadata. Written only by RegisterTable
  /// (single-threaded load phase), read-only afterwards.
  std::unordered_map<uint32_t, std::vector<ColumnMeta>> tables_;

  /// Guards the buffer pool, stream heads and stats_.
  mutable std::mutex mu_;

  /// LRU buffer pool: most-recent at front.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> resident_;

  /// Per-column stream heads for sequential-read detection: reading chunk
  /// c+1 of a column right after chunk c of the same column costs no seek,
  /// even when reads of other columns interleave — modelling per-file OS
  /// readahead. Hits advance the head too: a warm page in the middle of a
  /// sequential scan keeps the head moving, so the next miss continues the
  /// stream instead of paying a spurious seek.
  std::unordered_map<uint64_t, uint32_t> stream_heads_;

  StorageStats stats_;
  std::atomic<int64_t> total_stall_ns_{0};
};

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_STORAGE_H_
