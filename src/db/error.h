#ifndef PERFEVAL_DB_ERROR_H_
#define PERFEVAL_DB_ERROR_H_

#include <stdexcept>
#include <string>
#include <utility>

#include "common/status.h"

namespace perfeval {
namespace db {

/// A runtime query failure raised from inside plan execution: checked
/// integer arithmetic that would wrap, or a checked-mode operator
/// invariant that does not hold. The engine otherwise reports errors as
/// Status values, but operator kernels sit several stack frames below
/// Database::Run (including inside sched::ParallelFor worker lambdas,
/// which catch and re-raise on the coordinator), so an exception is the
/// only clean way out mid-query. sql::RunQuery converts a QueryError back
/// into an error Status, keeping the public surface exception-free.
class QueryError : public std::runtime_error {
 public:
  QueryError(StatusCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  StatusCode code() const { return code_; }
  Status ToStatus() const { return Status(code_, what()); }

  /// Checked arithmetic that would overflow/wrap.
  static QueryError Overflow(std::string message) {
    return QueryError(StatusCode::kOutOfRange, std::move(message));
  }
  /// A checked-mode operator invariant that failed — an engine bug.
  static QueryError Invariant(std::string message) {
    return QueryError(StatusCode::kInternal, std::move(message));
  }

 private:
  StatusCode code_;
};

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_ERROR_H_
