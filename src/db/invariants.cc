#include "db/invariants.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/string_util.h"

namespace perfeval {
namespace db {

void CheckSelectionStrictlyIncreasing(const std::vector<uint32_t>& selection,
                                      const char* op) {
  for (size_t i = 1; i < selection.size(); ++i) {
    if (selection[i] <= selection[i - 1]) {
      throw QueryError::Invariant(StrFormat(
          "%s: selection vector not strictly increasing at position %zu "
          "(%u after %u)",
          op, i, selection[i], selection[i - 1]));
    }
  }
}

void CheckSelectionSubsequence(const std::vector<uint32_t>& output,
                               const std::vector<uint32_t>* input,
                               size_t num_input_rows, const char* op) {
  size_t in_pos = 0;
  size_t in_size = input != nullptr ? input->size() : num_input_rows;
  for (size_t i = 0; i < output.size(); ++i) {
    uint32_t id = output[i];
    while (in_pos < in_size &&
           (input != nullptr ? (*input)[in_pos] : static_cast<uint32_t>(
                                                      in_pos)) != id) {
      ++in_pos;
    }
    if (in_pos == in_size) {
      throw QueryError::Invariant(StrFormat(
          "%s: output row id %u at position %zu is not a subsequence of "
          "the input selection",
          op, id, i));
    }
    ++in_pos;
  }
}

void CheckZoneMapConsistent(const Column& column, size_t begin, size_t end,
                            const ZoneMap& zone_map,
                            const std::string& context) {
  // Mirrors the fold in StorageManager::RegisterTable: NaN and NULL rows
  // are excluded from the bounds and flagged, everything else tightens
  // min/max exactly.
  ZoneMap expected;
  bool seen = false;
  for (size_t r = begin; r < end; ++r) {
    if (column.IsNull(r)) {
      expected.has_nan = true;
      continue;
    }
    double v = column.GetNumeric(r);
    if (std::isnan(v)) {
      expected.has_nan = true;
      continue;
    }
    if (!seen) {
      expected.min = v;
      expected.max = v;
      seen = true;
    } else {
      if (v < expected.min) expected.min = v;
      if (v > expected.max) expected.max = v;
    }
  }
  expected.valid = seen;
  if (expected.valid != zone_map.valid ||
      expected.has_nan != zone_map.has_nan ||
      (expected.valid &&
       (expected.min != zone_map.min || expected.max != zone_map.max))) {
    throw QueryError::Invariant(StrFormat(
        "%s: zone map inconsistent with page contents over rows "
        "[%zu, %zu): registered [%g, %g] valid=%d has_nan=%d, actual "
        "[%g, %g] valid=%d has_nan=%d",
        context.c_str(), begin, end, zone_map.min, zone_map.max,
        zone_map.valid ? 1 : 0, zone_map.has_nan ? 1 : 0, expected.min,
        expected.max, expected.valid ? 1 : 0, expected.has_nan ? 1 : 0));
  }
}

void CheckJoinMatchConservation(const std::vector<int64_t>& probe_keys,
                                const std::vector<int64_t>& build_keys,
                                size_t match_count, const char* op) {
  std::unordered_map<int64_t, size_t> multiplicity;
  multiplicity.reserve(build_keys.size());
  for (int64_t k : build_keys) {
    ++multiplicity[k];
  }
  size_t expected = 0;
  for (int64_t k : probe_keys) {
    auto it = multiplicity.find(k);
    if (it != multiplicity.end()) {
      expected += it->second;
    }
  }
  if (expected != match_count) {
    throw QueryError::Invariant(StrFormat(
        "%s: join match-count conservation violated: emitted %zu matches, "
        "key multiplicities require %zu",
        op, match_count, expected));
  }
}

void CheckPermutation(std::vector<uint32_t> input,
                      std::vector<uint32_t> output, const char* op) {
  if (input.size() != output.size()) {
    throw QueryError::Invariant(
        StrFormat("%s: output has %zu rows, input %zu", op, output.size(),
                  input.size()));
  }
  std::sort(input.begin(), input.end());
  std::sort(output.begin(), output.end());
  if (input != output) {
    throw QueryError::Invariant(StrFormat(
        "%s: output row ids are not a permutation of the input", op));
  }
}

void CheckFirstOccurrenceOrder(const std::vector<uint32_t>& expected,
                               const std::vector<uint32_t>& actual,
                               const char* op) {
  if (expected.size() != actual.size()) {
    throw QueryError::Invariant(
        StrFormat("%s: %zu groups emitted, serial recomputation found %zu",
                  op, actual.size(), expected.size()));
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i] != actual[i]) {
      throw QueryError::Invariant(StrFormat(
          "%s: group %zu is represented by row %u, but global "
          "first-occurrence order requires row %u",
          op, i, actual[i], expected[i]));
    }
  }
}

}  // namespace db
}  // namespace perfeval
