#include "db/morsel.h"

#include <algorithm>

#include "hwsim/machine.h"

namespace perfeval {
namespace db {
namespace {

/// Working-set bytes one scanned row drags through the cache: a few numeric
/// payload columns plus the selection-vector entry being produced. The same
/// order of magnitude as the radix join's per-row estimate in db/join.cc.
constexpr size_t kScanBytesPerRow = 32;

MorselPolicy Calibrate() {
  // The same simulated machine the radix join calibrates against.
  const hwsim::MachineProfile& machine = hwsim::MachineByName("Sun Ultra");
  size_t l2_bytes = 512 * 1024;
  for (const hwsim::CacheConfig& cache : machine.caches) {
    if (cache.name == "L2") {
      l2_bytes = cache.size_bytes;
    }
  }
  MorselPolicy policy;
  size_t target_rows = std::max<size_t>(1, l2_bytes / kScanBytesPerRow);
  policy.morsel_rows = 1;
  while (policy.morsel_rows * 2 <= target_rows) {
    policy.morsel_rows *= 2;
  }
  // Two morsels per worker at full 8-way fan-out before parallelism is
  // even considered, and at least two morsels of slack per extra worker.
  policy.serial_cutoff_rows = policy.morsel_rows * 16;
  policy.min_rows_per_worker = policy.morsel_rows * 2;
  return policy;
}

}  // namespace

int MorselPolicy::EffectiveThreads(size_t rows, int requested) const {
  if (requested <= 1 || rows < serial_cutoff_rows) {
    return 1;
  }
  size_t per_worker = std::max<size_t>(1, min_rows_per_worker);
  size_t cap = std::max<size_t>(1, rows / per_worker);
  return static_cast<int>(
      std::min<size_t>(static_cast<size_t>(requested), cap));
}

size_t MorselPolicy::NumMorsels(size_t rows) const {
  size_t per_morsel = std::max<size_t>(1, morsel_rows);
  return (rows + per_morsel - 1) / per_morsel;
}

const MorselPolicy& MorselPolicy::Hardware() {
  static const MorselPolicy policy = Calibrate();
  return policy;
}

}  // namespace db
}  // namespace perfeval
