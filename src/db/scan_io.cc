#include "db/scan_io.h"

#include <algorithm>

#include "common/check.h"

namespace perfeval {
namespace db {

std::vector<SimplePredicate> SimpleConjuncts(const ExprPtr& predicate) {
  std::vector<SimplePredicate> simple;
  if (predicate == nullptr) {
    return simple;
  }
  std::vector<ExprPtr> conjuncts;
  predicate->CollectConjuncts(&conjuncts, predicate);
  for (const ExprPtr& conjunct : conjuncts) {
    SimplePredicate sp;
    if (conjunct->AsSimplePredicate(&sp)) {
      simple.push_back(sp);
    }
  }
  return simple;
}

void TouchScanColumns(StorageManager* storage, const ScanTableInfo& table,
                      const std::vector<std::string>& columns) {
  if (storage == nullptr) {
    return;
  }
  PERFEVAL_CHECK(table.schema != nullptr);
  if (columns.empty()) {
    for (size_t c = 0; c < table.schema->num_columns(); ++c) {
      storage->TouchColumn(table.table_id, static_cast<uint32_t>(c));
    }
    return;
  }
  for (const std::string& name : columns) {
    storage->TouchColumn(
        table.table_id,
        static_cast<uint32_t>(table.schema->MustIndexOf(name)));
  }
}

void FilterScanChunkWalk(
    StorageManager* storage, const ScanTableInfo& table,
    const std::vector<uint32_t>& column_ids,
    const std::vector<SimplePredicate>& simple,
    const std::function<void(size_t, size_t)>& on_chunk) {
  PERFEVAL_CHECK(storage != nullptr);
  size_t page_rows = std::max<size_t>(storage->rows_per_page(), 1);
  size_t num_rows = table.num_rows;
  size_t num_chunks = (num_rows + page_rows - 1) / page_rows;
  for (uint32_t chunk = 0; chunk < num_chunks; ++chunk) {
    bool pruned = false;
    for (const SimplePredicate& sp : simple) {
      const ZoneMap& zm = storage->GetZoneMap(
          table.table_id, static_cast<uint32_t>(sp.column), chunk);
      if (zm.Prunable(sp.MightMatch(zm.min, zm.max))) {
        pruned = true;
        break;
      }
    }
    if (pruned) {
      continue;  // page never read, rows never scanned.
    }
    size_t begin = static_cast<size_t>(chunk) * page_rows;
    size_t end = std::min(num_rows, begin + page_rows);
    // I/O accounting happens here, on the coordinating thread, one page
    // at a time in chunk order — never from the workers — so
    // hits/misses/bytes/stall are identical at any thread count.
    storage->TouchMorsel(table.table_id, column_ids, begin, end);
    if (on_chunk) {
      on_chunk(begin, end);
    }
  }
}

void ReplayScanIo(const PlanNode& plan, const ScanIoCatalog& catalog,
                  StorageManager* storage, bool use_zone_maps) {
  PERFEVAL_CHECK(storage != nullptr);
  // Children first, left to right — the order Execute() visits them (every
  // operator evaluates its inputs before itself; joins run left then
  // right), so the page-touch sequence matches a real execution exactly.
  for (const PlanNode* child : plan.Children()) {
    ReplayScanIo(*child, catalog, storage, use_zone_maps);
  }
  PlanSpec spec = plan.Spec();
  if (spec.kind == PlanKind::kScan) {
    ScanTableInfo table = catalog.Lookup(spec.table_name);
    TouchScanColumns(storage, table, spec.columns);
    return;
  }
  if (spec.kind != PlanKind::kFilterScan) {
    return;
  }
  ScanTableInfo table = catalog.Lookup(spec.table_name);
  std::vector<SimplePredicate> simple = SimpleConjuncts(spec.predicate);
  // Same gate as FilterScanNode: zone maps only when there is a simple
  // conjunct to prune with and rows to scan; otherwise the node touches
  // the named columns in full.
  if (!use_zone_maps || simple.empty() || table.num_rows == 0) {
    TouchScanColumns(storage, table, spec.columns);
    return;
  }
  PERFEVAL_CHECK(table.schema != nullptr);
  std::vector<uint32_t> column_ids;
  column_ids.reserve(spec.columns.size());
  for (const std::string& name : spec.columns) {
    column_ids.push_back(
        static_cast<uint32_t>(table.schema->MustIndexOf(name)));
  }
  FilterScanChunkWalk(storage, table, column_ids, simple, nullptr);
}

}  // namespace db
}  // namespace perfeval
