#include "db/table_stats.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/check.h"
#include "db/join.h"
#include "db/storage.h"

namespace perfeval {
namespace db {

namespace {

/// Fraction of the non-NULL values strictly below `v`, interpolated from
/// the histogram (uniform within a cell) or linearly over [min, max].
double FracBelow(const ColumnStats& s, double v) {
  if (v <= s.min) {
    return 0.0;
  }
  if (v > s.max) {
    return 1.0;
  }
  if (s.histogram.has_value() && s.histogram->total_count() > 0) {
    double total = static_cast<double>(s.histogram->total_count());
    double below = 0.0;
    for (const stats::HistogramCell& cell : s.histogram->cells()) {
      if (cell.upper <= v) {
        below += static_cast<double>(cell.count);
      } else if (cell.lower < v) {
        double width = cell.upper - cell.lower;
        double part = width > 0.0 ? (v - cell.lower) / width : 0.0;
        below += part * static_cast<double>(cell.count);
      }
    }
    return std::clamp(below / total, 0.0, 1.0);
  }
  if (s.max <= s.min) {
    return v > s.min ? 1.0 : 0.0;
  }
  return std::clamp((v - s.min) / (s.max - s.min), 0.0, 1.0);
}

int64_t DoubleBits(double v) {
  int64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

double ColumnStats::Selectivity(CmpOp op, double value) const {
  if (rows == 0 || non_null() == 0) {
    return 0.0;
  }
  double nonnull_frac =
      static_cast<double>(non_null()) / static_cast<double>(rows);
  // Fraction of the *non-NULL* values matching; scaled by the non-NULL
  // fraction at the end (NULL never satisfies a comparison).
  double eq = distinct > 0
                  ? 1.0 / static_cast<double>(distinct)
                  : 0.1;  // Selinger's default equality selectivity.
  bool have_range = numeric && max >= min;
  bool in_range = !have_range || (value >= min && value <= max);
  double frac;
  switch (op) {
    case CmpOp::kEq:
      frac = in_range ? eq : 0.0;
      break;
    case CmpOp::kNe:
      frac = 1.0 - (in_range ? eq : 0.0);
      break;
    case CmpOp::kLt:
      frac = have_range ? FracBelow(*this, value) : 1.0 / 3.0;
      break;
    case CmpOp::kLe:
      frac = have_range ? FracBelow(*this, value) + (in_range ? eq : 0.0)
                        : 1.0 / 3.0;
      break;
    case CmpOp::kGt:
      frac = have_range
                 ? 1.0 - FracBelow(*this, value) - (in_range ? eq : 0.0)
                 : 1.0 / 3.0;
      break;
    case CmpOp::kGe:
      frac = have_range ? 1.0 - FracBelow(*this, value) : 1.0 / 3.0;
      break;
    default:
      frac = 1.0 / 3.0;
      break;
  }
  return std::clamp(frac, 0.0, 1.0) * nonnull_frac;
}

const ColumnStats* TableStats::Find(const std::string& name) const {
  for (const ColumnStats& c : columns) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

TableStats ComputeTableStats(const Table& table,
                             const StorageManager* storage,
                             uint32_t table_id) {
  TableStats out;
  out.rows = table.num_rows();
  out.columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    ColumnStats s;
    s.name = table.schema().column(c).name;
    s.type = column.type();
    s.rows = table.num_rows();
    s.numeric = column.type() != DataType::kString;
    if (column.has_nulls()) {
      for (uint8_t bit : column.null_mask()) {
        s.null_count += bit != 0 ? 1 : 0;
      }
    }

    // min/max: aggregate the storage layer's per-page zone maps when they
    // are available for every chunk (the common case — they were computed
    // at registration); otherwise scan the non-NULL, non-NaN values.
    bool have_minmax = false;
    if (s.numeric && s.non_null() > 0) {
      if (storage != nullptr) {
        size_t chunks = storage->NumChunks(
            table_id, static_cast<uint32_t>(c));
        bool all_valid = chunks > 0;
        double zmin = 0.0;
        double zmax = 0.0;
        bool first = true;
        for (size_t k = 0; all_valid && k < chunks; ++k) {
          const ZoneMap& zm = storage->GetZoneMap(
              table_id, static_cast<uint32_t>(c), k);
          if (!zm.valid || zm.has_nan) {
            all_valid = false;
            break;
          }
          zmin = first ? zm.min : std::min(zmin, zm.min);
          zmax = first ? zm.max : std::max(zmax, zm.max);
          first = false;
        }
        if (all_valid) {
          s.min = zmin;
          s.max = zmax;
          have_minmax = true;
        }
      }
      if (!have_minmax) {
        bool first = true;
        for (size_t r = 0; r < table.num_rows(); ++r) {
          if (column.IsNull(r)) {
            continue;
          }
          double v = column.GetNumeric(r);
          if (std::isnan(v)) {
            continue;
          }
          s.min = first ? v : std::min(s.min, v);
          s.max = first ? v : std::max(s.max, v);
          first = false;
          have_minmax = true;
        }
      }
    }

    // NDV: the Chao1 estimator from db/join.cc, clamped to the row count.
    // int64/date payloads feed it directly (no copy when NULL-free);
    // doubles go in as bit patterns, strings as their std::hash values.
    if (s.non_null() > 0) {
      switch (column.type()) {
        case DataType::kInt64:
        case DataType::kDate:
          if (!column.has_nulls()) {
            s.distinct = EstimateDistinctKeys(column.ints());
          } else {
            std::vector<int64_t> keys;
            keys.reserve(s.non_null());
            for (size_t r = 0; r < table.num_rows(); ++r) {
              if (!column.IsNull(r)) {
                keys.push_back(column.ints()[r]);
              }
            }
            s.distinct = EstimateDistinctKeys(keys);
          }
          break;
        case DataType::kDouble: {
          std::vector<int64_t> keys;
          keys.reserve(s.non_null());
          for (size_t r = 0; r < table.num_rows(); ++r) {
            if (!column.IsNull(r)) {
              keys.push_back(DoubleBits(column.doubles()[r]));
            }
          }
          s.distinct = EstimateDistinctKeys(keys);
          break;
        }
        case DataType::kString: {
          std::vector<int64_t> keys;
          keys.reserve(s.non_null());
          std::hash<std::string> hasher;
          for (size_t r = 0; r < table.num_rows(); ++r) {
            if (!column.IsNull(r)) {
              keys.push_back(
                  static_cast<int64_t>(hasher(column.strings()[r])));
            }
          }
          s.distinct = EstimateDistinctKeys(keys);
          break;
        }
      }
      s.distinct = std::max<size_t>(s.distinct, 1);
    }

    // Histogram over an evenly strided sample of the non-NULL, non-NaN
    // values. The stride is a pure function of the row count, so the
    // sample (and with it every estimate) is deterministic.
    if (s.numeric && have_minmax) {
      stats::Histogram hist(s.min, s.max, kStatsHistogramCells);
      size_t n = table.num_rows();
      size_t stride = std::max<size_t>(1, n / kStatsSampleRows);
      for (size_t r = 0; r < n; r += stride) {
        if (column.IsNull(r)) {
          continue;
        }
        double v = column.GetNumeric(r);
        if (std::isnan(v)) {
          continue;
        }
        hist.Add(v);
      }
      if (hist.total_count() > 0) {
        s.histogram = std::move(hist);
      }
    }
    out.columns.push_back(std::move(s));
  }
  return out;
}

}  // namespace db
}  // namespace perfeval
