#include "db/sink.h"

namespace perfeval {
namespace db {

const char* SinkKindName(SinkKind kind) {
  switch (kind) {
    case SinkKind::kDiscard:
      return "discard";
    case SinkKind::kFile:
      return "file";
    case SinkKind::kTerminal:
      return "terminal";
  }
  return "unknown";
}

SinkReport SendToSink(const Table& table, SinkKind kind,
                      const SinkModel& model) {
  SinkReport report;
  if (kind == SinkKind::kDiscard) {
    return report;
  }
  // Render every row (real CPU work, like a DB client's result formatter).
  std::string line;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    line.clear();
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) {
        line += " | ";
      }
      line += table.ValueAt(r, c).ToString();
    }
    line += "\n";
    report.bytes += line.size();
    ++report.lines;
  }
  switch (kind) {
    case SinkKind::kFile:
      report.stall_ns = static_cast<int64_t>(
          static_cast<double>(report.bytes) * model.file_ns_per_byte);
      break;
    case SinkKind::kTerminal:
      report.stall_ns =
          static_cast<int64_t>(static_cast<double>(report.bytes) *
                               model.terminal_ns_per_byte) +
          static_cast<int64_t>(report.lines) * model.terminal_ns_per_line;
      break;
    case SinkKind::kDiscard:
      break;
  }
  return report;
}

}  // namespace db
}  // namespace perfeval
