#include "db/partial_agg.h"

#include <utility>

#include "common/check.h"
#include "db/expr.h"

namespace perfeval {
namespace db {
namespace {

std::string PartialName(size_t i, const char* suffix) {
  return "__p" + std::to_string(i) + "_" + suffix;
}

}  // namespace

bool SplitAggregates(const std::vector<std::string>& group_by,
                     const std::vector<AggSpec>& aggregates,
                     const Schema& input_schema, AggSplit* out) {
  PERFEVAL_CHECK(out != nullptr);
  for (const AggSpec& spec : aggregates) {
    if (spec.op == AggOp::kCountDistinct) {
      return false;  // needs the raw value sets; caller gathers rows.
    }
  }

  AggSplit split;
  std::vector<ColumnSpec> partial_cols;
  for (const std::string& name : group_by) {
    partial_cols.push_back(
        input_schema.column(input_schema.MustIndexOf(name)));
  }

  // Step 1: the shard-side partial aggregates and their output schema.
  struct MergePlan {
    AggFinalizeStep::Kind kind = AggFinalizeStep::Kind::kPassThrough;
    size_t first = 0;   ///< index into split.partial.
    size_t second = 0;  ///< kAvgDivide: the COUNT partial's index.
  };
  std::vector<MergePlan> plans;
  plans.reserve(aggregates.size());
  for (size_t i = 0; i < aggregates.size(); ++i) {
    const AggSpec& spec = aggregates[i];
    MergePlan plan;
    switch (spec.op) {
      case AggOp::kSum:
        plan.first = split.partial.size();
        split.partial.push_back(
            {AggOp::kSum, spec.expr, PartialName(i, "sum")});
        break;
      case AggOp::kCount:
        plan.first = split.partial.size();
        split.partial.push_back(
            {AggOp::kCount, spec.expr, PartialName(i, "cnt")});
        break;
      case AggOp::kMin:
        plan.first = split.partial.size();
        split.partial.push_back(
            {AggOp::kMin, spec.expr, PartialName(i, "min")});
        break;
      case AggOp::kMax:
        plan.first = split.partial.size();
        split.partial.push_back(
            {AggOp::kMax, spec.expr, PartialName(i, "max")});
        break;
      case AggOp::kAvg:
        plan.kind = AggFinalizeStep::Kind::kAvgDivide;
        plan.first = split.partial.size();
        split.partial.push_back(
            {AggOp::kSum, spec.expr, PartialName(i, "sum")});
        plan.second = split.partial.size();
        split.partial.push_back(
            {AggOp::kCount, spec.expr, PartialName(i, "cnt")});
        break;
      case AggOp::kCountDistinct:
        PERFEVAL_CHECK(false);  // rejected above.
    }
    plans.push_back(plan);
  }
  for (const AggSpec& p : split.partial) {
    partial_cols.push_back({p.output_name, AggOutputType(p, input_schema)});
  }
  split.partial_schema = Schema(std::move(partial_cols));

  // Step 2: the merge aggregates — one per partial column, same names, in
  // partial order, so merged column i+|group_by| re-aggregates partial
  // column i+|group_by|. SUMs and COUNTs re-add (COUNT partials are int64
  // and never NULL, so they take the exact checked-int SUM path); MIN/MAX
  // fold with themselves.
  for (const AggSpec& p : split.partial) {
    AggOp merge_op = p.op == AggOp::kMin   ? AggOp::kMin
                     : p.op == AggOp::kMax ? AggOp::kMax
                                           : AggOp::kSum;
    split.merge.push_back(
        {merge_op, Col(split.partial_schema, p.output_name), p.output_name});
  }

  // Step 3: finalize — the projection back to the original output columns.
  for (size_t i = 0; i < aggregates.size(); ++i) {
    AggFinalizeStep step;
    step.kind = plans[i].kind;
    step.input_index = group_by.size() + plans[i].first;
    step.count_index = group_by.size() + plans[i].second;
    step.output_name = aggregates[i].output_name;
    step.output_type = AggOutputType(aggregates[i], input_schema);
    split.finalize.push_back(std::move(step));
  }

  *out = std::move(split);
  return true;
}

std::shared_ptr<Table> FinalizeMergedAggregates(
    const Table& merged, size_t num_group_cols,
    const std::vector<AggFinalizeStep>& finalize) {
  std::vector<ColumnSpec> specs;
  for (size_t c = 0; c < num_group_cols; ++c) {
    specs.push_back(merged.schema().column(c));
  }
  for (const AggFinalizeStep& step : finalize) {
    specs.push_back({step.output_name, step.output_type});
  }
  auto out = std::make_shared<Table>(Schema(std::move(specs)));
  out->ReserveRows(merged.num_rows());
  for (size_t r = 0; r < merged.num_rows(); ++r) {
    for (size_t c = 0; c < num_group_cols; ++c) {
      out->column(c).AppendValue(merged.column(c).GetValue(r));
    }
    for (size_t s = 0; s < finalize.size(); ++s) {
      const AggFinalizeStep& step = finalize[s];
      Column& dst = out->column(num_group_cols + s);
      const Column& src = merged.column(step.input_index);
      if (step.kind == AggFinalizeStep::Kind::kPassThrough) {
        dst.AppendValue(src.GetValue(r));
        continue;
      }
      // AVG = merged SUM / merged COUNT, replicating AggregateNode's
      // emission exactly: NULL when no rows accumulated; the int64 path
      // divides the exact integer sum, so it is bit-identical to
      // single-node; the double path re-adds per-shard sums, which the
      // comparison discipline covers with its relative tolerance.
      const Column& cnt = merged.column(step.count_index);
      int64_t count = cnt.GetInt64(r);
      if (count == 0) {
        dst.AppendNull();
        continue;
      }
      PERFEVAL_CHECK(!src.IsNull(r));
      double sum = src.type() == DataType::kInt64
                       ? static_cast<double>(src.GetInt64(r))
                       : src.GetDouble(r);
      dst.AppendDouble(sum / static_cast<double>(count));
    }
  }
  out->FinishBulkLoad();
  return out;
}

}  // namespace db
}  // namespace perfeval
