#include "db/join.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "sched/parallel_for.h"

namespace perfeval {
namespace db {
namespace {

/// Probe-side morsel size (rows). Fixed — never derived from the thread
/// count — so match-list boundaries, and with them the concatenated output,
/// are identical at any `threads` setting (the repo's determinism
/// invariant, same constant as the scan/aggregate morsels in plan.cc).
constexpr size_t kMorselRows = 4096;

/// Per-build-row footprint of a FlatKeyIndex in bytes: one 16-byte slot at
/// 7/8 load plus the 8 bytes of rows_/next_ chain storage per row,
/// assuming mostly-distinct keys (the conservative, largest-table case).
constexpr size_t kIndexBytesPerRow = 16 * 8 / 7 + 8;

/// Radix partitions are sized so one partition's build-side index fits a
/// 512 KB L2 — the hwsim "Sun Ultra" profile's external L2
/// (hwsim/machine.cc), which doubles as a typical per-core L2 today. The
/// hwsim join model (hwsim/join_model.h) dissects exactly this choice.
constexpr size_t kRadixTargetBytes = 512 * 1024;

}  // namespace

const char* JoinAlgoName(JoinAlgo algo) {
  switch (algo) {
    case JoinAlgo::kLegacy:
      return "legacy";
    case JoinAlgo::kHash:
      return "hash";
    case JoinAlgo::kRadix:
      return "radix";
    case JoinAlgo::kMerge:
      return "merge";
  }
  return "?";
}

Result<JoinAlgo> ParseJoinAlgo(const std::string& text) {
  if (text == "legacy") {
    return JoinAlgo::kLegacy;
  }
  if (text == "hash") {
    return JoinAlgo::kHash;
  }
  if (text == "radix") {
    return JoinAlgo::kRadix;
  }
  if (text == "merge") {
    return JoinAlgo::kMerge;
  }
  return Status::InvalidArgument("unknown join algorithm '" + text +
                                 "' (want legacy|hash|radix|merge)");
}

// ---- FlatKeyIndex ----

FlatKeyIndex::FlatKeyIndex(size_t expected_distinct, size_t expected_rows) {
  size_t capacity = 16;
  // Slots for the distinct estimate at 7/8 load, not one per row.
  while (capacity * 7 / 8 < expected_distinct) {
    capacity *= 2;
  }
  slots_.assign(capacity, Slot());
  mask_ = capacity - 1;
  rows_.reserve(expected_rows);
  next_.reserve(expected_rows);
}

uint64_t FlatKeyIndex::HashKey(int64_t key) {
  return SplitMix64(static_cast<uint64_t>(key));
}

void FlatKeyIndex::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot());
  mask_ = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.head == kEmpty) {
      continue;
    }
    size_t slot = HashKey(s.key) & mask_;
    while (slots_[slot].head != kEmpty) {
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = s;
  }
}

void FlatKeyIndex::Insert(int64_t key, uint32_t row) {
  uint32_t index = static_cast<uint32_t>(rows_.size());
  rows_.push_back(row);
  next_.push_back(kEnd);
  size_t slot = HashKey(key) & mask_;
  while (true) {
    Slot& s = slots_[slot];
    if (s.head == kEmpty) {
      if ((num_keys_ + 1) * 8 > slots_.size() * 7) {
        Grow();
        // Re-find the key's slot in the grown table.
        slot = HashKey(key) & mask_;
        continue;
      }
      s.key = key;
      s.head = index;
      s.tail = index;
      ++num_keys_;
      return;
    }
    if (s.key == key) {
      next_[s.tail] = index;
      s.tail = index;
      return;
    }
    slot = (slot + 1) & mask_;
  }
}

size_t FlatKeyIndex::Lookup(int64_t key, std::vector<uint32_t>* out) const {
  size_t appended = 0;
  ForEachMatch(key, [&](uint32_t row) {
    out->push_back(row);
    ++appended;
  });
  return appended;
}

// ---- Sizing helpers ----

size_t EstimateDistinctKeys(const std::vector<int64_t>& keys) {
  size_t n = keys.size();
  if (n == 0) {
    return 0;
  }
  constexpr size_t kSample = 1024;
  if (n <= kSample) {
    std::unordered_set<int64_t> distinct(keys.begin(), keys.end());
    return distinct.size();
  }
  // Chao1 estimate over a uniform random sample: d + f1^2 / (2 (f2 + 1)),
  // where f1/f2 count sample keys seen once/twice. Keys repeating across
  // the whole input repeat inside the sample too (f1 -> 0, estimate -> d),
  // so duplicate-heavy inputs estimate near their true distinct count —
  // which is the point: reserving one slot per *row* (the old
  // `reserve(right.num_rows())`) overshoots by the duplication factor.
  // All-distinct inputs are all singletons (f2 = 0), blowing the estimate
  // past n, where it clamps.
  //
  // The positions must be (pseudo-)random, not evenly strided: duplicates
  // are often clustered in row order (TPC-H lineitem repeats each
  // orderkey in 1-7 *consecutive* rows), and a stride wider than the
  // clusters never samples a key twice — mistaking a duplicate-heavy
  // input for an all-distinct one and estimating NDV at the row count.
  // Chao1's extrapolation is only valid when the sample's duplicate rate
  // reflects the input's, which position-independent draws guarantee.
  // The seed is fixed, so the estimate stays a pure function of `keys`.
  std::unordered_map<int64_t, uint32_t> sample_counts;
  Pcg32 rng(0x5eed0d15);
  std::unordered_set<size_t> positions;
  positions.reserve(kSample);
  while (positions.size() < kSample) {
    size_t pos = static_cast<size_t>(
        rng.NextBounded(static_cast<uint32_t>(std::min(
            n, static_cast<size_t>(0xffffffffu)))));
    if (positions.insert(pos).second) {
      ++sample_counts[keys[pos]];
    }
  }
  double d = static_cast<double>(sample_counts.size());
  double f1 = 0.0;
  double f2 = 0.0;
  for (const auto& entry : sample_counts) {
    f1 += entry.second == 1 ? 1.0 : 0.0;
    f2 += entry.second == 2 ? 1.0 : 0.0;
  }
  double estimate = d + f1 * f1 / (2.0 * (f2 + 1.0));
  estimate = std::min(estimate, static_cast<double>(n));
  return std::max(static_cast<size_t>(estimate), sample_counts.size());
}

int ChooseRadixBits(size_t build_rows) {
  size_t bytes = build_rows * kIndexBytesPerRow;
  int bits = 0;
  while (bits < kMaxRadixBits && (bytes >> bits) > kRadixTargetBytes) {
    ++bits;
  }
  return bits;
}

// ---- Match kernels ----

JoinMatches LegacyHashJoinMatch(const std::vector<int64_t>& build_keys,
                                const std::vector<uint32_t>& build_rows,
                                const std::vector<int64_t>& probe_keys,
                                const std::vector<uint32_t>& probe_rows) {
  PERFEVAL_CHECK_EQ(build_keys.size(), build_rows.size());
  PERFEVAL_CHECK_EQ(probe_keys.size(), probe_rows.size());
  std::unordered_map<int64_t, std::vector<uint32_t>> hash_table;
  // Reserve for the distinct-key estimate: the map holds one entry per
  // distinct key, so reserving one bucket per build row (the old code)
  // overshoots by the duplication factor on duplicate-heavy keys.
  hash_table.reserve(EstimateDistinctKeys(build_keys));
  for (size_t i = 0; i < build_keys.size(); ++i) {
    hash_table[build_keys[i]].push_back(build_rows[i]);
  }
  JoinMatches out;
  for (size_t i = 0; i < probe_keys.size(); ++i) {
    auto it = hash_table.find(probe_keys[i]);
    if (it == hash_table.end()) {
      continue;
    }
    for (uint32_t build_row : it->second) {
      out.probe_rows.push_back(probe_rows[i]);
      out.build_rows.push_back(build_row);
    }
  }
  return out;
}

namespace {

/// Probes `index` with probe positions [begin, end), appending matches in
/// probe order. Shared by the flat and radix kernels.
void ProbeRange(const FlatKeyIndex& index,
                const std::vector<int64_t>& probe_keys,
                const std::vector<uint32_t>& probe_rows, size_t begin,
                size_t end, JoinMatches* out) {
  for (size_t i = begin; i < end; ++i) {
    uint32_t probe_row = probe_rows[i];
    index.ForEachMatch(probe_keys[i], [&](uint32_t build_row) {
      out->probe_rows.push_back(probe_row);
      out->build_rows.push_back(build_row);
    });
  }
}

void AppendMatches(const JoinMatches& part, JoinMatches* out) {
  out->probe_rows.insert(out->probe_rows.end(), part.probe_rows.begin(),
                         part.probe_rows.end());
  out->build_rows.insert(out->build_rows.end(), part.build_rows.begin(),
                         part.build_rows.end());
}

}  // namespace

JoinMatches FlatHashJoinMatch(const std::vector<int64_t>& build_keys,
                              const std::vector<uint32_t>& build_rows,
                              const std::vector<int64_t>& probe_keys,
                              const std::vector<uint32_t>& probe_rows,
                              int threads) {
  PERFEVAL_CHECK_EQ(build_keys.size(), build_rows.size());
  PERFEVAL_CHECK_EQ(probe_keys.size(), probe_rows.size());
  FlatKeyIndex index(EstimateDistinctKeys(build_keys), build_keys.size());
  for (size_t i = 0; i < build_keys.size(); ++i) {
    index.Insert(build_keys[i], build_rows[i]);
  }
  size_t n = probe_keys.size();
  size_t num_morsels = (n + kMorselRows - 1) / kMorselRows;
  if (threads <= 1 || num_morsels <= 1) {
    JoinMatches out;
    ProbeRange(index, probe_keys, probe_rows, 0, n, &out);
    return out;
  }
  // Morsel-parallel probe: per-morsel match lists concatenated in morsel
  // order reproduce the serial probe's output exactly.
  std::vector<JoinMatches> partial(num_morsels);
  sched::ParallelFor(threads, num_morsels, [&](size_t m) {
    size_t begin = m * kMorselRows;
    size_t end = std::min(n, begin + kMorselRows);
    ProbeRange(index, probe_keys, probe_rows, begin, end, &partial[m]);
  });
  size_t total = 0;
  for (const JoinMatches& part : partial) {
    total += part.size();
  }
  JoinMatches out;
  out.probe_rows.reserve(total);
  out.build_rows.reserve(total);
  for (const JoinMatches& part : partial) {
    AppendMatches(part, &out);
  }
  return out;
}

namespace {

/// One side radix-partitioned: keys/rows regrouped so partition `p`
/// occupies [starts[p], starts[p+1]), with rows inside a partition in
/// original input order (the scatter walks morsels in order and each
/// morsel's slice of each partition is pre-assigned by prefix sums, so the
/// layout is thread-count-independent).
struct Partitioned {
  std::vector<int64_t> keys;
  std::vector<uint32_t> rows;
  std::vector<size_t> starts;  ///< size 2^bits + 1.
};

Partitioned RadixPartition(const std::vector<int64_t>& keys,
                           const std::vector<uint32_t>& rows, int bits,
                           int threads) {
  size_t n = keys.size();
  size_t num_parts = size_t{1} << bits;
  uint64_t mask = num_parts - 1;
  size_t num_morsels = (n + kMorselRows - 1) / kMorselRows;

  // Pass 1: per-morsel partition histograms.
  std::vector<std::vector<uint32_t>> counts(
      num_morsels, std::vector<uint32_t>(num_parts, 0));
  sched::ParallelFor(threads, num_morsels, [&](size_t m) {
    size_t begin = m * kMorselRows;
    size_t end = std::min(n, begin + kMorselRows);
    std::vector<uint32_t>& local = counts[m];
    for (size_t i = begin; i < end; ++i) {
      ++local[FlatKeyIndex::HashKey(keys[i]) & mask];
    }
  });

  // Prefix sums: partition base offsets, then per-(morsel, partition)
  // write cursors in (partition, morsel) order.
  Partitioned out;
  out.starts.assign(num_parts + 1, 0);
  for (size_t p = 0; p < num_parts; ++p) {
    size_t total = 0;
    for (size_t m = 0; m < num_morsels; ++m) {
      total += counts[m][p];
    }
    out.starts[p + 1] = out.starts[p] + total;
  }
  std::vector<std::vector<size_t>> cursors(
      num_morsels, std::vector<size_t>(num_parts, 0));
  for (size_t p = 0; p < num_parts; ++p) {
    size_t offset = out.starts[p];
    for (size_t m = 0; m < num_morsels; ++m) {
      cursors[m][p] = offset;
      offset += counts[m][p];
    }
  }

  // Pass 2: scatter. Each morsel writes disjoint slices, so morsels run in
  // parallel and the result layout never depends on the thread count.
  out.keys.resize(n);
  out.rows.resize(n);
  sched::ParallelFor(threads, num_morsels, [&](size_t m) {
    size_t begin = m * kMorselRows;
    size_t end = std::min(n, begin + kMorselRows);
    std::vector<size_t>& cursor = cursors[m];
    for (size_t i = begin; i < end; ++i) {
      size_t p = FlatKeyIndex::HashKey(keys[i]) & mask;
      size_t at = cursor[p]++;
      out.keys[at] = keys[i];
      out.rows[at] = rows[i];
    }
  });
  return out;
}

}  // namespace

JoinMatches RadixJoinMatch(const std::vector<int64_t>& build_keys,
                           const std::vector<uint32_t>& build_rows,
                           const std::vector<int64_t>& probe_keys,
                           const std::vector<uint32_t>& probe_rows,
                           int radix_bits, int threads) {
  PERFEVAL_CHECK_EQ(build_keys.size(), build_rows.size());
  PERFEVAL_CHECK_EQ(probe_keys.size(), probe_rows.size());
  int bits = radix_bits > 0 ? std::min(radix_bits, kMaxRadixBits)
                            : ChooseRadixBits(build_keys.size());
  if (bits == 0) {
    // One partition: the flat join already is the cache-resident case.
    return FlatHashJoinMatch(build_keys, build_rows, probe_keys, probe_rows,
                             threads);
  }
  Partitioned build = RadixPartition(build_keys, build_rows, bits, threads);
  Partitioned probe = RadixPartition(probe_keys, probe_rows, bits, threads);

  // Per-partition build + probe, partitions in parallel. Each partition's
  // index stays L2-sized by construction (ChooseRadixBits), so probes hit
  // cache instead of stalling on memory — the Manegold cache-conscious
  // join this PR reproduces.
  size_t num_parts = size_t{1} << bits;
  std::vector<JoinMatches> partial(num_parts);
  sched::ParallelFor(threads, num_parts, [&](size_t p) {
    size_t b_begin = build.starts[p];
    size_t b_end = build.starts[p + 1];
    size_t q_begin = probe.starts[p];
    size_t q_end = probe.starts[p + 1];
    if (b_begin == b_end || q_begin == q_end) {
      return;
    }
    FlatKeyIndex index(b_end - b_begin, b_end - b_begin);
    for (size_t i = b_begin; i < b_end; ++i) {
      index.Insert(build.keys[i], build.rows[i]);
    }
    ProbeRange(index, probe.keys, probe.rows, q_begin, q_end, &partial[p]);
  });

  // Concatenate in partition-then-probe-row order — fixed at any thread
  // count (partition layout and per-partition probe order are both
  // thread-count-independent).
  size_t total = 0;
  for (const JoinMatches& part : partial) {
    total += part.size();
  }
  JoinMatches out;
  out.probe_rows.reserve(total);
  out.build_rows.reserve(total);
  for (const JoinMatches& part : partial) {
    AppendMatches(part, &out);
  }
  return out;
}

JoinMatches MergeJoinMatch(const std::vector<int64_t>& build_keys,
                           const std::vector<uint32_t>& build_rows,
                           const std::vector<int64_t>& probe_keys,
                           const std::vector<uint32_t>& probe_rows,
                           int threads) {
  PERFEVAL_CHECK_EQ(build_keys.size(), build_rows.size());
  PERFEVAL_CHECK_EQ(probe_keys.size(), probe_rows.size());
  using Keyed = std::vector<std::pair<int64_t, uint32_t>>;
  Keyed sides[2];
  const std::vector<int64_t>* keys[2] = {&probe_keys, &build_keys};
  const std::vector<uint32_t>* rows[2] = {&probe_rows, &build_rows};
  // The two sides sort independently; (key, original position) is a total
  // order, so the sorted sequences are unique regardless of scheduling.
  sched::ParallelFor(threads, 2, [&](size_t s) {
    Keyed& keyed = sides[s];
    keyed.reserve(keys[s]->size());
    for (size_t i = 0; i < keys[s]->size(); ++i) {
      keyed.emplace_back((*keys[s])[i], (*rows[s])[i]);
    }
    std::sort(keyed.begin(), keyed.end());
  });
  const Keyed& lk = sides[0];
  const Keyed& rk = sides[1];

  JoinMatches out;
  size_t i = 0;
  size_t j = 0;
  while (i < lk.size() && j < rk.size()) {
    if (lk[i].first < rk[j].first) {
      ++i;
    } else if (lk[i].first > rk[j].first) {
      ++j;
    } else {
      int64_t key = lk[i].first;
      size_t i_end = i;
      while (i_end < lk.size() && lk[i_end].first == key) {
        ++i_end;
      }
      size_t j_end = j;
      while (j_end < rk.size() && rk[j_end].first == key) {
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          out.probe_rows.push_back(lk[a].second);
          out.build_rows.push_back(rk[b].second);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return out;
}

JoinMatches JoinMatch(JoinAlgo algo, const std::vector<int64_t>& build_keys,
                      const std::vector<uint32_t>& build_rows,
                      const std::vector<int64_t>& probe_keys,
                      const std::vector<uint32_t>& probe_rows,
                      int radix_bits, int threads) {
  switch (algo) {
    case JoinAlgo::kLegacy:
      return LegacyHashJoinMatch(build_keys, build_rows, probe_keys,
                                 probe_rows);
    case JoinAlgo::kHash:
      return FlatHashJoinMatch(build_keys, build_rows, probe_keys,
                               probe_rows, threads);
    case JoinAlgo::kRadix:
      return RadixJoinMatch(build_keys, build_rows, probe_keys, probe_rows,
                            radix_bits, threads);
    case JoinAlgo::kMerge:
      return MergeJoinMatch(build_keys, build_rows, probe_keys, probe_rows,
                            threads);
  }
  PERFEVAL_CHECK(false) << "unhandled join algorithm";
  return JoinMatches();
}

}  // namespace db
}  // namespace perfeval
