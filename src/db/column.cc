#include "db/column.h"

namespace perfeval {
namespace db {

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
  }
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
  NoteAppend(true);
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(v.AsInt64());
      break;
    case DataType::kDate:
      AppendDate(v.AsDate());
      break;
    case DataType::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case DataType::kString:
      AppendString(v.AsString());
      break;
  }
}

void Column::AppendColumn(const Column& other) {
  PERFEVAL_CHECK(type_ == other.type_) << "AppendColumn type mismatch";
  size_t old_size = size();
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
      break;
    case DataType::kDouble:
      doubles_.insert(doubles_.end(), other.doubles_.begin(),
                      other.doubles_.end());
      break;
    case DataType::kString:
      strings_.insert(strings_.end(), other.strings_.begin(),
                      other.strings_.end());
      break;
  }
  if (!other.nulls_.empty()) {
    if (nulls_.empty()) {
      nulls_.assign(old_size, 0);  // backfill: prior rows were non-null.
    }
    nulls_.insert(nulls_.end(), other.nulls_.begin(), other.nulls_.end());
  } else if (!nulls_.empty()) {
    nulls_.resize(nulls_.size() + other.size(), 0);
  }
}

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) {
    return Value::Null(type_);
  }
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(ints_[row]);
    case DataType::kDate:
      return Value::Date(static_cast<int32_t>(ints_[row]));
    case DataType::kDouble:
      return Value::Double(doubles_[row]);
    case DataType::kString:
      return Value::String(strings_[row]);
  }
  return Value();
}

size_t Column::ByteSize() const {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      return ints_.size() * sizeof(int64_t);
    case DataType::kDouble:
      return doubles_.size() * sizeof(double);
    case DataType::kString: {
      size_t bytes = 0;
      for (const std::string& s : strings_) {
        bytes += s.size() + sizeof(std::string);
      }
      return bytes;
    }
  }
  return 0;
}

}  // namespace db
}  // namespace perfeval
