#include "db/backend_kind.h"

namespace perfeval {
namespace db {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kColumnar:
      return "col";
    case BackendKind::kRowStore:
      return "row";
  }
  return "?";
}

Result<BackendKind> ParseBackendKind(const std::string& text) {
  if (text == "col" || text == "columnar") {
    return BackendKind::kColumnar;
  }
  if (text == "row" || text == "rowstore") {
    return BackendKind::kRowStore;
  }
  return Status::InvalidArgument("unknown backend '" + text +
                                 "' (want col|row)");
}

}  // namespace db
}  // namespace perfeval
