#ifndef PERFEVAL_DB_MORSEL_H_
#define PERFEVAL_DB_MORSEL_H_

#include <cstddef>

namespace perfeval {
namespace db {

/// The single knob set for morsel-driven parallelism: how big a morsel is
/// and when fanning work out to threads pays at all. Every operator in
/// plan.cc sizes its morsels from one of these objects instead of a local
/// constant, so "how we chop work" cannot drift between the scan, filter
/// and aggregate paths.
///
/// Determinism contract: all three fields are plain data, fixed before a
/// query starts, and none of the derived quantities depends on the thread
/// count. Morsel boundaries — and with them every floating-point reduction
/// order — are identical at any `threads` setting. The thread count only
/// ever changes how many workers claim the (fixed) morsels.
struct MorselPolicy {
  /// Rows per morsel. Calibrated so one morsel's working set sits in the
  /// simulated L2 cache (see Hardware()); bigger morsels amortize claim
  /// overhead, smaller ones would thrash nothing but the claim counter.
  size_t morsel_rows = 16384;

  /// Inputs below this many rows run serially no matter how many threads
  /// were requested. Spawning workers costs tens of microseconds; under
  /// the cutoff that overhead exceeds the whole scan, which is exactly the
  /// sf=0.01 regression A7 used to document.
  size_t serial_cutoff_rows = 262144;

  /// Above the cutoff, fan-out is still capped so each worker gets at
  /// least this many rows; a worker that claims less does no useful work
  /// per wakeup.
  size_t min_rows_per_worker = 32768;

  /// Workers an operator over `rows` input rows should use when the query
  /// asked for `requested` threads: 1 below the serial cutoff, otherwise
  /// `requested` capped to rows / min_rows_per_worker.
  int EffectiveThreads(size_t rows, int requested) const;

  /// Number of morsels covering `rows` rows (at least 1 when rows > 0).
  size_t NumMorsels(size_t rows) const;

  /// The policy calibrated against the hwsim cache model (the "Sun Ultra"
  /// profile whose L2 also sizes radix-join partitions, db/join.cc):
  /// morsel_rows is the largest power of two whose working set fits L2,
  /// and the cutoffs are fixed multiples of it. Computed once per process.
  static const MorselPolicy& Hardware();
};

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_MORSEL_H_
