#ifndef PERFEVAL_DB_TABLE_STATS_H_
#define PERFEVAL_DB_TABLE_STATS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/expr.h"
#include "db/table.h"
#include "stats/histogram.h"

namespace perfeval {
namespace db {

class StorageManager;

/// Per-column statistics the cost-based optimizer estimates from: row and
/// NULL counts, min/max (aggregated from the storage layer's zone maps
/// when available), a distinct-count estimate (the Chao1 machinery from
/// db/join.cc, clamped to the row count), and an equi-width
/// stats::Histogram over a deterministic strided sample of the values.
struct ColumnStats {
  std::string name;
  DataType type = DataType::kInt64;
  size_t rows = 0;        ///< total rows (including NULLs).
  size_t null_count = 0;  ///< rows whose value is NULL.
  bool numeric = false;   ///< int64 / date / double.
  double min = 0.0;       ///< valid when numeric and non_null() > 0.
  double max = 0.0;
  size_t distinct = 0;    ///< NDV estimate over non-NULL values.
  /// Equi-width histogram over a strided sample of the non-NULL numeric
  /// values; absent for string columns and all-NULL columns.
  std::optional<stats::Histogram> histogram;

  size_t non_null() const { return rows - null_count; }
  double null_fraction() const {
    return rows == 0 ? 0.0 : static_cast<double>(null_count) /
                                 static_cast<double>(rows);
  }

  /// Estimated fraction of *all* rows satisfying `column <op> value`
  /// (NULLs never match, so the non-NULL fraction scales the estimate).
  /// Equality uses 1/NDV within [min, max]; ranges interpolate the
  /// histogram (uniform within a cell), falling back to linear
  /// interpolation over [min, max] and then to textbook constants when
  /// the column has no usable statistics. Always in [0, 1].
  double Selectivity(CmpOp op, double value) const;
};

/// Statistics of one catalog table, refreshed at load and on every
/// write-path snapshot install (Database::ReplaceTable).
struct TableStats {
  size_t rows = 0;
  std::vector<ColumnStats> columns;  ///< one per schema column, in order.

  /// Stats of the column named `name`, or nullptr when absent.
  const ColumnStats* Find(const std::string& name) const;
};

/// Computes statistics for `table` in one deterministic pass: exact row
/// and NULL counts, min/max taken from the already-computed zone maps
/// when `storage` is given (falling back to a column scan when any zone
/// is invalid), NDV via EstimateDistinctKeys, and a histogram over an
/// evenly strided sample (at most kStatsSampleRows values per column).
/// Pure function of the table contents — thread counts, storage state,
/// and call order never change the result.
TableStats ComputeTableStats(const Table& table,
                             const StorageManager* storage = nullptr,
                             uint32_t table_id = 0);

/// Sample-size bound for the per-column histograms and double/string NDV.
inline constexpr size_t kStatsSampleRows = 65536;

/// Cells per histogram.
inline constexpr int kStatsHistogramCells = 64;

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_TABLE_STATS_H_
