#ifndef PERFEVAL_DB_PARTIAL_AGG_H_
#define PERFEVAL_DB_PARTIAL_AGG_H_

#include <memory>
#include <string>
#include <vector>

#include "db/plan.h"
#include "db/table.h"

namespace perfeval {
namespace db {

/// Decomposition of a hash aggregate into a distributable three-step form:
///
///   shard:       Aggregate(child, group_by, partial)   -- runs on N shards
///   coordinator: concat partial outputs in shard order, then
///                Aggregate(concat, group_by, merge)
///   coordinator: FinalizeMergedAggregates(...)          -- projection
///
/// SUM and COUNT re-aggregate with SUM, MIN with MIN, MAX with MAX; AVG
/// ships SUM + COUNT and divides at finalize (the engine's exact division:
/// int64 sums divide as double(isum)/double(count), so the int AVG path is
/// bit-identical to single-node — integer partials re-add exactly).
/// COUNT DISTINCT is not decomposable (a shard cannot know another shard's
/// value set), so SplitAggregates refuses and the caller gathers rows.
///
/// NULL discipline is compositional by construction: a partial SUM/MIN/MAX
/// over an empty group emits NULL, and the merge aggregate skips NULL
/// inputs — so a group present on one shard and absent on another merges
/// to exactly the single-node value. Partial COUNTs are never NULL and
/// re-add through the checked int64 SUM path.

/// How one original aggregate's output column is reconstructed from the
/// merge aggregate's output.
struct AggFinalizeStep {
  enum class Kind {
    kPassThrough,  ///< copy merged column `input_index` (NULLs included).
    kAvgDivide,    ///< merged sum at `input_index` / count at `count_index`.
  };
  Kind kind = Kind::kPassThrough;
  size_t input_index = 0;  ///< column index into the merged table.
  size_t count_index = 0;  ///< kAvgDivide only: merged COUNT column index.
  std::string output_name;
  DataType output_type = DataType::kDouble;
};

/// The full decomposition for one Aggregate node.
struct AggSplit {
  /// Aggregates each shard runs (same group_by as the original).
  std::vector<AggSpec> partial;
  /// The shard-side output schema == the merge aggregate's input schema:
  /// group columns first (original names/types), then one column per
  /// partial aggregate (names "__p<i>_sum" / "_cnt" / "_min" / "_max").
  Schema partial_schema;
  /// Aggregates the coordinator runs over the shard-order concatenation
  /// of the partial outputs (group_by unchanged; exprs resolved against
  /// `partial_schema`).
  std::vector<AggSpec> merge;
  /// Projection from the merge output to the original output columns.
  std::vector<AggFinalizeStep> finalize;
};

/// Splits `aggregates` (grouped by `group_by` over a child producing
/// `input_schema`) into partial + merge + finalize. Returns false — and
/// leaves `*out` untouched — when any aggregate is COUNT DISTINCT.
bool SplitAggregates(const std::vector<std::string>& group_by,
                     const std::vector<AggSpec>& aggregates,
                     const Schema& input_schema, AggSplit* out);

/// Applies the finalize projection: keeps the first `num_group_cols`
/// columns of `merged` verbatim, then emits one column per step, in step
/// order. Row order is preserved (the coordinator's deterministic
/// shard-then-first-occurrence group order).
std::shared_ptr<Table> FinalizeMergedAggregates(
    const Table& merged, size_t num_group_cols,
    const std::vector<AggFinalizeStep>& finalize);

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_PARTIAL_AGG_H_
