#ifndef PERFEVAL_DB_JOIN_H_
#define PERFEVAL_DB_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace perfeval {
namespace db {

/// Physical algorithm executed by equi-join plan nodes (HashJoin /
/// HashJoin2). The knob travels ExecContext -> DatabaseOptions -> SQL
/// shell (`\join <algo>`), so the same plan can be re-run under every
/// algorithm — the paper's "compare alternatives under one protocol"
/// discipline applied to the engine's own join.
///
///  - kLegacy: single `std::unordered_map<key, vector<row>>` build + serial
///    probe — the pre-radix implementation, kept as the measured baseline
///    of bench_join_crossover.
///  - kHash: one flat open-addressing table (FlatKeyIndex) over the whole
///    build side, serial build + morsel-parallel probe. Same output order
///    as kLegacy.
///  - kRadix: cache-conscious radix-partitioned join (Manegold's MonetDB
///    line of work): both sides are fanned out into 2^bits partitions by
///    key hash, each partition gets its own L2-resident FlatKeyIndex, and
///    partitions build+probe in parallel. Output order is
///    partition-then-probe-row order — different from kHash but
///    deterministic at any thread count.
///  - kMerge: sort-merge on the (possibly composite) key.
enum class JoinAlgo {
  kLegacy,
  kHash,
  kRadix,
  kMerge,
};

const char* JoinAlgoName(JoinAlgo algo);

/// Parses "legacy" / "hash" / "radix" / "merge".
Result<JoinAlgo> ParseJoinAlgo(const std::string& text);

/// Matching (probe row, build row) pairs of an equi-join, in the emission
/// order of the algorithm that produced them. Row ids refer to the
/// original tables (they pass through the key-extraction row lists).
struct JoinMatches {
  std::vector<uint32_t> probe_rows;
  std::vector<uint32_t> build_rows;

  size_t size() const { return probe_rows.size(); }
};

/// A flat open-addressing hash index from int64 keys to the build rows
/// holding them: power-of-two capacity, linear probing, and duplicate rows
/// chained through one contiguous `next` array — no per-key heap-allocated
/// vectors, so a build is two cache-friendly arrays instead of a node
/// store. Capacity grows by doubling at 7/8 load, so sizing from a
/// distinct-key *estimate* (duplicates collapse into one slot each) never
/// overshoots the way reserving one slot per build row does.
class FlatKeyIndex {
 public:
  /// `expected_distinct` pre-sizes the slot array (0 picks the minimum);
  /// `expected_rows` pre-sizes the duplicate chain storage.
  explicit FlatKeyIndex(size_t expected_distinct = 0,
                        size_t expected_rows = 0);

  /// Inserts one (key, row) pair. Duplicate keys append to the key's
  /// chain, preserving insertion order.
  void Insert(int64_t key, uint32_t row);

  /// Appends every build row stored under `key` to `out`, in insertion
  /// order. Returns the number of rows appended.
  size_t Lookup(int64_t key, std::vector<uint32_t>* out) const;

  /// Calls `fn(row)` for every build row under `key`, in insertion order.
  template <typename Fn>
  void ForEachMatch(int64_t key, Fn&& fn) const {
    if (num_keys_ == 0) {
      return;
    }
    size_t slot = HashKey(key) & mask_;
    while (true) {
      const Slot& s = slots_[slot];
      if (s.head == kEmpty) {
        return;
      }
      if (s.key == key) {
        for (uint32_t i = s.head; i != kEnd; i = next_[i]) {
          fn(rows_[i]);
        }
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }

  size_t num_rows() const { return rows_.size(); }
  size_t num_keys() const { return num_keys_; }
  /// Slot-array capacity — exposed so tests can pin that duplicate-heavy
  /// builds stay sized by distinct keys, not by row count.
  size_t capacity() const { return slots_.size(); }

  static uint64_t HashKey(int64_t key);

 private:
  struct Slot {
    int64_t key = 0;
    uint32_t head = kEmpty;  ///< first index into rows_/next_.
    uint32_t tail = 0;       ///< last index, for O(1) chain append.
  };

  static constexpr uint32_t kEmpty = ~uint32_t{0};
  static constexpr uint32_t kEnd = ~uint32_t{0} - 1;

  void Grow();

  std::vector<Slot> slots_;
  std::vector<uint32_t> rows_;  ///< build rows in insertion order.
  std::vector<uint32_t> next_;  ///< chain links parallel to rows_.
  size_t mask_ = 0;
  size_t num_keys_ = 0;
};

/// Sampled distinct-key estimate: hashes up to 1024 evenly spaced keys and
/// scales the sample's distinct ratio to the full input. Used to size hash
/// structures so duplicate-heavy inputs do not reserve one slot per row.
size_t EstimateDistinctKeys(const std::vector<int64_t>& keys);

/// Radix fan-out (log2 partitions) sized so one partition's build-side
/// hash index fits the L2 cache of the hwsim reference machine profile
/// (see kRadixTargetBytes in join.cc). Returns 0 for builds that fit as a
/// single partition.
int ChooseRadixBits(size_t build_rows);

/// Maximum supported fan-out; ChooseRadixBits never exceeds it and
/// explicit `radix_bits` settings are clamped to it.
constexpr int kMaxRadixBits = 14;

// ---- Match kernels ----
//
// All kernels take the two sides as parallel (keys, rows) arrays — the
// caller extracts keys from its columns (checked tuple-at-a-time in debug
// mode, raw vectors in optimized mode), so every kernel is mode-agnostic.
// All kernels are deterministic: the same inputs give byte-identical
// match lists at any `threads` setting.

/// The pre-PR-3 join: unordered_map build, serial probe. Matches emit in
/// probe-row order, build rows per key in insertion order.
JoinMatches LegacyHashJoinMatch(const std::vector<int64_t>& build_keys,
                                const std::vector<uint32_t>& build_rows,
                                const std::vector<int64_t>& probe_keys,
                                const std::vector<uint32_t>& probe_rows);

/// Flat-table join: serial FlatKeyIndex build, probe fanned over fixed
/// 4096-row morsels with per-morsel match lists concatenated in morsel
/// order — output identical to LegacyHashJoinMatch at any thread count.
JoinMatches FlatHashJoinMatch(const std::vector<int64_t>& build_keys,
                              const std::vector<uint32_t>& build_rows,
                              const std::vector<int64_t>& probe_keys,
                              const std::vector<uint32_t>& probe_rows,
                              int threads);

/// Radix-partitioned join: both sides partition by the low `radix_bits`
/// bits of the key hash (morsel-order scatter, so partition contents are
/// in original row order), then each partition builds its own FlatKeyIndex
/// and probes, all partitions in parallel. Matches concatenate in
/// partition-then-probe-row order. `radix_bits` <= 0 picks
/// ChooseRadixBits(build size).
JoinMatches RadixJoinMatch(const std::vector<int64_t>& build_keys,
                           const std::vector<uint32_t>& build_rows,
                           const std::vector<int64_t>& probe_keys,
                           const std::vector<uint32_t>& probe_rows,
                           int radix_bits, int threads);

/// Sort-merge join on the key arrays: sorts both sides by (key, input
/// position), merges equal-key blocks (cross product per block). Matches
/// emit in key order, probe before build within a block.
JoinMatches MergeJoinMatch(const std::vector<int64_t>& build_keys,
                           const std::vector<uint32_t>& build_rows,
                           const std::vector<int64_t>& probe_keys,
                           const std::vector<uint32_t>& probe_rows,
                           int threads);

/// Dispatch on `algo`. `radix_bits` only affects kRadix.
JoinMatches JoinMatch(JoinAlgo algo,
                      const std::vector<int64_t>& build_keys,
                      const std::vector<uint32_t>& build_rows,
                      const std::vector<int64_t>& probe_keys,
                      const std::vector<uint32_t>& probe_rows,
                      int radix_bits, int threads);

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_JOIN_H_
