#ifndef PERFEVAL_DB_COLUMN_H_
#define PERFEVAL_DB_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "db/value.h"

namespace perfeval {
namespace db {

/// A typed column vector — the storage unit of the engine (operator-at-a-
/// time columnar execution, MonetDB style, matching the DBMS the paper's
/// examples are measured on).
///
/// Numeric data (int64, double, date) lives in contiguous vectors so hot
/// loops scan raw arrays; string data lives in a std::string vector.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const {
    switch (type_) {
      case DataType::kInt64:
      case DataType::kDate:
        return ints_.size();
      case DataType::kDouble:
        return doubles_.size();
      case DataType::kString:
        return strings_.size();
    }
    return 0;
  }

  void Reserve(size_t n);

  void AppendInt64(int64_t v) {
    PERFEVAL_CHECK(type_ == DataType::kInt64 || type_ == DataType::kDate);
    ints_.push_back(v);
    NoteAppend(false);
  }
  void AppendDouble(double v) {
    PERFEVAL_CHECK(type_ == DataType::kDouble);
    doubles_.push_back(v);
    NoteAppend(false);
  }
  void AppendString(std::string v) {
    PERFEVAL_CHECK(type_ == DataType::kString);
    strings_.push_back(std::move(v));
    NoteAppend(false);
  }
  void AppendDate(int32_t days) {
    PERFEVAL_CHECK(type_ == DataType::kDate);
    ints_.push_back(days);
    NoteAppend(false);
  }
  /// Appends SQL NULL: a zero/empty placeholder in the payload vector plus
  /// a set bit in the (lazily materialized) null mask. Raw vector kernels
  /// would read the placeholder, so execution falls back to Value-based
  /// row paths whenever has_nulls() is true.
  void AppendNull();
  void AppendValue(const Value& v);

  /// Appends all of `other`'s rows (same type required) — bulk vector
  /// concatenation, null-mask aware. The chunked data generator builds
  /// per-chunk sub-columns in parallel and glues them in chunk order.
  void AppendColumn(const Column& other);

  int64_t GetInt64(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const { return doubles_[row]; }
  const std::string& GetString(size_t row) const { return strings_[row]; }
  int32_t GetDate(size_t row) const {
    return static_cast<int32_t>(ints_[row]);
  }

  /// Numeric view regardless of concrete numeric type (aborts on strings).
  double GetNumeric(size_t row) const {
    switch (type_) {
      case DataType::kInt64:
      case DataType::kDate:
        return static_cast<double>(ints_[row]);
      case DataType::kDouble:
        return doubles_[row];
      case DataType::kString:
        PERFEVAL_CHECK(false) << "GetNumeric on string column";
    }
    return 0.0;
  }

  Value GetValue(size_t row) const;

  /// True if row holds SQL NULL (the payload slot is a placeholder).
  bool IsNull(size_t row) const {
    return !nulls_.empty() && nulls_[row] != 0;
  }
  /// True if any NULL was ever appended. The mask is only materialized on
  /// the first NULL, so null-free columns pay one empty() branch.
  bool has_nulls() const { return !nulls_.empty(); }
  /// Raw mask (empty when the column never saw a NULL; else 1 = NULL).
  const std::vector<uint8_t>& null_mask() const { return nulls_; }

  /// Raw vector access for vectorized kernels.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// Mutable raw access for bulk-build kernels (parallel gather): resize
  /// first, then fill disjoint index ranges from worker threads. Callers
  /// must leave all columns of a table equally sized and then call
  /// Table::FinishBulkLoad().
  std::vector<int64_t>& mutable_ints() {
    PERFEVAL_CHECK(type_ == DataType::kInt64 || type_ == DataType::kDate);
    return ints_;
  }
  std::vector<double>& mutable_doubles() {
    PERFEVAL_CHECK(type_ == DataType::kDouble);
    return doubles_;
  }
  std::vector<std::string>& mutable_strings() {
    PERFEVAL_CHECK(type_ == DataType::kString);
    return strings_;
  }

  /// Approximate in-memory footprint, used to derive page I/O volume.
  size_t ByteSize() const;

 private:
  /// Keeps the lazily materialized null mask in sync after one payload
  /// slot has been pushed.
  void NoteAppend(bool is_null) {
    if (is_null && nulls_.empty()) {
      // Backfill zeros for the rows appended before the first NULL. When
      // the NULL *is* the first row this leaves the mask empty, so the
      // new bit must be pushed unconditionally — guarding it on
      // !nulls_.empty() silently dropped the flag of a leading NULL.
      nulls_.assign(size() - 1, 0);
      nulls_.push_back(1);
      return;
    }
    if (!nulls_.empty()) {
      nulls_.push_back(is_null ? 1 : 0);
    }
  }

  DataType type_;
  std::vector<int64_t> ints_;      // kInt64 and kDate payloads.
  std::vector<double> doubles_;    // kDouble payload.
  std::vector<std::string> strings_;
  std::vector<uint8_t> nulls_;     // empty unless a NULL was appended.
};

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_COLUMN_H_
