#include "db/value.h"

#include "common/string_util.h"

namespace perfeval {
namespace db {

int Value::Compare(const Value& other) const {
  PERFEVAL_CHECK(!null_ && !other.null_) << "NULL has no order";
  bool this_string = type_ == DataType::kString;
  bool other_string = other.type_ == DataType::kString;
  PERFEVAL_CHECK_EQ(this_string, other_string)
      << "cannot compare string with numeric";
  if (this_string) {
    const std::string& a = AsString();
    const std::string& b = other.AsString();
    if (a < b) {
      return -1;
    }
    return a == b ? 0 : 1;
  }
  // Two integers (kInt64/kDate) compare natively: going through double
  // would collapse values more than 2^53 apart from a power of two onto
  // the same representation and report spurious equality.
  bool this_double = type_ == DataType::kDouble;
  bool other_double = other.type_ == DataType::kDouble;
  if (!this_double && !other_double) {
    int64_t a = std::get<int64_t>(data_);
    int64_t b = std::get<int64_t>(other.data_);
    if (a < b) {
      return -1;
    }
    return a == b ? 0 : 1;
  }
  double a = AsDouble();
  double b = other.AsDouble();
  if (a < b) {
    return -1;
  }
  return a == b ? 0 : 1;
}

std::string Value::ToString() const {
  if (null_) {
    return "NULL";
  }
  switch (type_) {
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(AsInt64()));
    case DataType::kDouble:
      return StrFormat("%.2f", AsDouble());
    case DataType::kString:
      return AsString();
    case DataType::kDate:
      return FormatDate(AsDate());
  }
  return "?";
}

}  // namespace db
}  // namespace perfeval
