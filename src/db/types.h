#ifndef PERFEVAL_DB_TYPES_H_
#define PERFEVAL_DB_TYPES_H_

#include <cstdint>
#include <string>

namespace perfeval {
namespace db {

/// Column data types of the mini column-store. Dates are stored as int32
/// day numbers (days since 1970-01-01) inside kDate columns, which keeps
/// date comparisons integer comparisons — the same trick real columnar
/// engines use.
enum class DataType {
  kInt64,
  kDouble,
  kString,
  kDate,
};

const char* DataTypeName(DataType type);

/// True for kInt64, kDouble and kDate (totally ordered numerics).
bool IsNumeric(DataType type);

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
/// Howard Hinnant's days_from_civil algorithm.
int32_t DateFromYmd(int year, int month, int day);

/// Inverse of DateFromYmd.
void YmdFromDate(int32_t days, int* year, int* month, int* day);

/// Parses "YYYY-MM-DD"; returns false on malformed input.
bool ParseDate(const std::string& text, int32_t* days);

/// "YYYY-MM-DD".
std::string FormatDate(int32_t days);

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_TYPES_H_
