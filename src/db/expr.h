#ifndef PERFEVAL_DB_EXPR_H_
#define PERFEVAL_DB_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/table.h"

namespace perfeval {
namespace db {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Comparison operators.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CmpOpName(CmpOp op);

/// Arithmetic operators.
enum class ArithOp { kAdd, kSub, kMul, kDiv };
const char* ArithOpName(ArithOp op);

/// A `column <op> constant` predicate in a form the storage layer can test
/// against zone maps.
struct SimplePredicate {
  size_t column = 0;
  CmpOp op = CmpOp::kEq;
  double value = 0.0;

  /// True when a page with the given [min, max] might contain matches.
  bool MightMatch(double page_min, double page_max) const;
};

/// Scalar expression tree over a table's columns.
///
/// Two evaluation paths implement the engine's DBG/OPT execution modes
/// (paper, slides 37–45): EvalRow / EvalBool are the tuple-at-a-time
/// interpreted path (one virtual dispatch per tuple per node — the
/// "debug build"); EvalNumericBatch and the vectorized filter in exec.cc
/// are the tight-loop path (the "optimized build").
class Expr {
 public:
  virtual ~Expr() = default;

  /// Result type given the input schema.
  virtual DataType ResultType(const Schema& schema) const = 0;

  /// Tuple-at-a-time evaluation.
  virtual Value EvalRow(const Table& table, size_t row) const = 0;

  /// Predicate evaluation; only meaningful for boolean-valued nodes.
  virtual bool EvalBool(const Table& table, size_t row) const;

  /// Vectorized numeric evaluation: out[i] = eval(rows[i]). The base
  /// implementation falls back to EvalRow; numeric nodes override with
  /// tight loops.
  virtual void EvalNumericBatch(const Table& table,
                                const std::vector<uint32_t>& rows,
                                std::vector<double>* out) const;

  /// If this node is `column <cmp> numeric-literal`, fills `out` and
  /// returns true (zone-map pushdown).
  virtual bool AsSimplePredicate(SimplePredicate* out) const;

  /// If this node is a plain column reference, fills `out` with its column
  /// index and returns true — the aggregate fast paths in plan.cc read the
  /// column's raw payload vector directly instead of going through EvalRow.
  virtual bool AsColumnIndex(size_t* out) const;

  /// If this node is `column = column` (equality between two plain column
  /// references), fills the two indices and returns true. The optimizer
  /// treats such residual filters as join edges it can rebind by name.
  virtual bool AsColumnEquality(size_t* left, size_t* right) const;

  /// Appends this predicate's top-level conjuncts to `out` (flattens AND).
  virtual void CollectConjuncts(std::vector<ExprPtr>* out,
                                const ExprPtr& self) const;

  /// SQL-ish rendering for EXPLAIN output.
  virtual std::string ToString() const = 0;
};

// ---- Branch-free selection kernels (optimized mode, null-free data) ----
//
// Both kernels evaluate `column <op> value` with the comparison done in
// double — the same semantics as SimplePredicate, over int64/date/double
// payloads. The inner loops are branch-free (`out[kept] = r; kept +=
// predicate`), so survivor-density has no branch-misprediction cost; on
// mostly-true predicates like Q1's shipdate filter they run at copy speed.
// Callers must ensure the column has no NULLs (placeholders would compare
// as real values).

/// Appends the rows of [begin, end) that satisfy the predicate to `*out`.
void FilterColumnRange(const Column& column, CmpOp op, double value,
                       size_t begin, size_t end, std::vector<uint32_t>* out);

/// Compacts `*rows` in place to the rows satisfying the predicate,
/// preserving order.
void RefineSelection(const Column& column, CmpOp op, double value,
                     std::vector<uint32_t>* rows);

// ---- Factory functions (the public expression-building API) ----

/// Column reference, resolved against `schema` now (aborts if absent).
ExprPtr Col(const Schema& schema, const std::string& name);

ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr LitDate(const std::string& ymd);  ///< "YYYY-MM-DD", aborts if bad.

ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);

ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr Div(ExprPtr lhs, ExprPtr rhs);

/// SQL LIKE with '%' (any run) and '_' (any one char) wildcards.
ExprPtr Like(ExprPtr operand, std::string pattern);

/// Membership in a set of strings (SQL IN).
ExprPtr InStrings(ExprPtr operand, std::vector<std::string> values);

/// Substring containment (LIKE '%needle%' fast path).
ExprPtr Contains(ExprPtr operand, std::string needle);

/// Calendar year of a date expression (SQL EXTRACT(YEAR FROM ...)).
ExprPtr Year(ExprPtr date_operand);

/// SQL CASE WHEN cond THEN a ELSE b END. `then_expr` and `else_expr` must
/// have the same result type.
ExprPtr If(ExprPtr condition, ExprPtr then_expr, ExprPtr else_expr);

/// Membership in a set of integers (SQL IN over numerics).
ExprPtr InInts(ExprPtr operand, std::vector<int64_t> values);

/// SQL SUBSTRING(operand FROM pos FOR len), 1-based `pos`.
ExprPtr Substr(ExprPtr operand, size_t pos, size_t len);

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_EXPR_H_
