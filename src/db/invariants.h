#ifndef PERFEVAL_DB_INVARIANTS_H_
#define PERFEVAL_DB_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/column.h"
#include "db/error.h"
#include "db/storage.h"

namespace perfeval {
namespace db {

/// Checked int64 arithmetic: the result of a op b, or a QueryError
/// (kOutOfRange) when the mathematical result does not fit in int64 —
/// wrapping silently is exactly the class of bug a benchmark result must
/// never hide (the paper's debug-vs-optimized warning). `what` names the
/// computation for the error message, e.g. "SUM accumulator".
inline int64_t CheckedAdd(int64_t a, int64_t b, const char* what) {
  int64_t result = 0;
  if (__builtin_add_overflow(a, b, &result)) {
    throw QueryError::Overflow(std::string(what) +
                               ": int64 addition overflow");
  }
  return result;
}
inline int64_t CheckedSub(int64_t a, int64_t b, const char* what) {
  int64_t result = 0;
  if (__builtin_sub_overflow(a, b, &result)) {
    throw QueryError::Overflow(std::string(what) +
                               ": int64 subtraction overflow");
  }
  return result;
}
inline int64_t CheckedMul(int64_t a, int64_t b, const char* what) {
  int64_t result = 0;
  if (__builtin_mul_overflow(a, b, &result)) {
    throw QueryError::Overflow(std::string(what) +
                               ": int64 multiplication overflow");
  }
  return result;
}

// Checked-mode operator invariants. Each throws QueryError (kInternal)
// with a description of the first violation; callers only invoke them
// when ExecContext::check is set, so they may be O(input).

/// A selection vector must be strictly increasing: operators that
/// concatenate per-morsel partial selections rely on it for row order,
/// and downstream kernels rely on it for cache-friendly access.
void CheckSelectionStrictlyIncreasing(const std::vector<uint32_t>& selection,
                                      const char* op);

/// A filter's output selection must be a subsequence of its input
/// selection (identity 0..num_input_rows-1 when `input` is nullptr):
/// filters may only drop rows, never duplicate, invent, or reorder them.
void CheckSelectionSubsequence(const std::vector<uint32_t>& output,
                               const std::vector<uint32_t>* input,
                               size_t num_input_rows, const char* op);

/// Recomputes the min/max/has_nan fold over rows [begin, end) of `column`
/// and requires it to match the registered zone map exactly; a stale or
/// corrupt zone map silently prunes live rows. NULL rows count like NaN
/// (zone unusable), mirroring StorageManager::RegisterTable.
void CheckZoneMapConsistent(const Column& column, size_t begin, size_t end,
                            const ZoneMap& zone_map,
                            const std::string& context);

/// Join match-count conservation: the number of emitted matches must equal
/// the sum over probe keys of that key's build-side multiplicity,
/// independent of the join algorithm that produced them.
void CheckJoinMatchConservation(const std::vector<int64_t>& probe_keys,
                                const std::vector<int64_t>& build_keys,
                                size_t match_count, const char* op);

/// Sort output must be a permutation of its input row ids.
void CheckPermutation(std::vector<uint32_t> input, std::vector<uint32_t> output,
                      const char* op);

/// Group output must list group-representative rows in global
/// first-occurrence order; `expected` is the serially recomputed order.
void CheckFirstOccurrenceOrder(const std::vector<uint32_t>& expected,
                               const std::vector<uint32_t>& actual,
                               const char* op);

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_INVARIANTS_H_
