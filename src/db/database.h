#ifndef PERFEVAL_DB_DATABASE_H_
#define PERFEVAL_DB_DATABASE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/measurement.h"
#include "db/backend_kind.h"
#include "db/plan.h"
#include "db/profile.h"
#include "db/sink.h"
#include "db/storage.h"
#include "db/table.h"
#include "db/table_stats.h"

namespace perfeval {
namespace db {

/// Configuration of a Database instance. These knobs are the factors of the
/// engine-screening experiment (DESIGN.md, A1) and of the hot/cold and
/// output-channel reproductions.
struct DatabaseOptions {
  DiskModel disk;
  size_t buffer_pool_pages = 256;
  size_t rows_per_page = 4096;
  SinkModel sink_model;
  /// Worker threads for morsel-driven intra-query parallelism (<= 1 runs
  /// serially). A pure concurrency knob: result relations and reported
  /// StorageStats are bit-identical at any setting; only wall-clock time
  /// may change.
  int threads = 1;
  /// Morsel sizing and the adaptive go-parallel decision (serial below the
  /// cutoff). Defaults to the hwsim-calibrated MorselPolicy::Hardware()
  /// values; tests override it to move the serial/parallel boundary.
  MorselPolicy morsel;
  /// Physical algorithm for equi-join nodes; a performance knob, not a
  /// semantic one (see db/join.h).
  JoinAlgo join_algo = JoinAlgo::kRadix;
  /// Radix fan-out (log2 partitions) for JoinAlgo::kRadix; <= 0 derives it
  /// from the hwsim L2 cache profile (ChooseRadixBits).
  int radix_bits = 0;
  /// Checked execution: operators assert their own invariants and queries
  /// fail with QueryError on violation (see ExecContext::check). SQL shell
  /// `\check on`.
  bool check = false;
  /// Cost-based optimization: when set, the SQL planner hands its rule-
  /// built plan to opt::Optimize, which re-derives join order and picks a
  /// physical join algorithm per node from the table statistics. Opt-in
  /// (SQL shell `\opt on`, bench `--dbOpt=on`); results are oracle-diffed
  /// identical to the rule-only plans.
  bool optimize = false;
  /// Which execution backend serves queries (see db/backend_kind.h). The
  /// Database itself always runs the columnar executor; the knob is
  /// carried here so the shell, benches, and engine::CreateBackend agree
  /// on one treatment setting per experiment (SQL shell `\backend`, bench
  /// `--dbBackend=`).
  BackendKind backend = BackendKind::kColumnar;
};

/// A query's complete outcome: the result table, server-side timing split
/// the way the paper's slide-23 table splits it (server user/real vs client
/// real), operator traces, and the output-channel report.
struct QueryResult {
  std::shared_ptr<const Table> table;
  Profiler profile;

  /// Server-side execution only (plan execution).
  core::Measurement server;
  /// Client-side view: server plus result rendering and sink stall.
  core::Measurement client;

  SinkReport sink;

  /// Buffer-pool activity attributable to this query (hits, misses, bytes
  /// read, stall) — the server-side "where did the time go" counters.
  StorageStats storage;

  /// Wall vs critical-path time of the query's parallel regions (see
  /// ParallelSim in db/plan.h).
  ParallelSim parallel;

  double ServerRealMs() const { return server.ObservedRealMs(); }
  double ServerUserMs() const { return server.user_ms(); }
  double ClientRealMs() const { return client.ObservedRealMs(); }

  /// Server time with every parallel region counted at its critical path
  /// (max per-worker busy time) instead of its measured wall time. On a
  /// host with enough idle cores the two coincide; on an oversubscribed
  /// host — where workers time-slice one core and measured wall cannot
  /// show scaling — this is the defensible "time with real cores" figure.
  /// Benches that report it must label it as modeled, next to the
  /// measured wall time and the host core count.
  int64_t ModeledServerNs() const {
    int64_t ns = server.ObservedRealNs() - parallel.region_wall_ns +
                 parallel.region_critical_ns;
    return ns < 0 ? 0 : ns;
  }
};

/// The engine facade: a catalog of named tables over a StorageManager, and
/// a Run() entry point that executes plans under a chosen ExecMode and
/// result sink, with full timing.
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Adds a loaded table to the catalog and registers its pages with the
  /// storage manager. Aborts on duplicate names.
  void RegisterTable(const std::string& name, std::shared_ptr<Table> table);

  /// Swaps the catalog entry of an existing table for new contents with
  /// the same schema — the write path installing a freshly merged
  /// base+delta snapshot. Keeps the table id, re-registers pages and zone
  /// maps, and evicts the stale buffer-pool pages. Takes the exec gate
  /// exclusively, so it waits for in-flight queries and blocks new ones
  /// for the duration of the swap; the previous table object is kept
  /// alive, so references handed out earlier stay valid (tables are
  /// immutable once registered).
  void ReplaceTable(const std::string& name, std::shared_ptr<Table> table);

  /// Installs a hook run at the top of every Run() call, before the query
  /// executes — the write path uses it to fold freshly committed deltas
  /// into the catalog so every query sees the latest committed snapshot.
  /// The hook runs outside the exec gate and may call ReplaceTable.
  void SetRefreshHook(std::function<void()> hook);

  bool HasTable(const std::string& name) const;
  const Table& GetTable(const std::string& name) const;
  std::shared_ptr<const Table> GetTableShared(const std::string& name) const;
  uint32_t TableId(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  StorageManager& storage() { return *storage_; }
  const DatabaseOptions& options() const { return options_; }

  /// Intra-query parallelism knob; adjustable at runtime (SQL shell
  /// `\threads N`, bench `--dbThreads=N`). Clamped to >= 1.
  int threads() const { return options_.threads; }
  void set_threads(int threads) {
    options_.threads = threads < 1 ? 1 : threads;
  }

  /// Morsel policy knob: morsel size and the adaptive serial/parallel
  /// cutoff. Tests use it to place the decision boundary precisely.
  const MorselPolicy& morsel_policy() const { return options_.morsel; }
  void set_morsel_policy(const MorselPolicy& policy) {
    options_.morsel = policy;
  }

  /// Join algorithm knob; adjustable at runtime (SQL shell `\join ALGO`,
  /// bench `--dbJoin=ALGO`).
  JoinAlgo join_algo() const { return options_.join_algo; }
  void set_join_algo(JoinAlgo algo) { options_.join_algo = algo; }

  /// Radix fan-out override for JoinAlgo::kRadix (<= 0 = auto).
  int radix_bits() const { return options_.radix_bits; }
  void set_radix_bits(int bits) { options_.radix_bits = bits; }

  /// Checked execution knob; adjustable at runtime (SQL shell `\check`).
  bool check() const { return options_.check; }
  void set_check(bool check) { options_.check = check; }

  /// Cost-based optimization knob; adjustable at runtime (SQL shell
  /// `\opt on|off`, bench `--dbOpt=on|off`).
  bool optimize() const { return options_.optimize; }
  void set_optimize(bool optimize) { options_.optimize = optimize; }

  /// Execution-backend knob; adjustable at runtime (SQL shell
  /// `\backend col|row`, bench `--dbBackend=`). Run() itself always
  /// executes columnar; callers that honor the knob route through
  /// engine::Backend (see src/engine/backend.h).
  BackendKind backend() const { return options_.backend; }
  void set_backend(BackendKind backend) { options_.backend = backend; }

  /// Runs the refresh hook (if any) without executing a query: folds
  /// freshly committed write-path deltas into the catalog. Secondary
  /// backends call this before re-syncing their own copies of the
  /// catalog, so they observe the same committed snapshot a Run() would.
  void Refresh() {
    if (refresh_hook_) {
      refresh_hook_();
    }
  }

  /// Statistics of a catalog table, computed at RegisterTable and
  /// refreshed on every ReplaceTable (write-path snapshot install).
  /// Never null for a registered table.
  std::shared_ptr<const TableStats> GetTableStats(
      const std::string& name) const;

  /// Empties the buffer pool: the next run is a cold run (slide 32).
  void FlushCaches() { storage_->FlushCaches(); }

  /// Executes `plan`: server phase (plan execution) then client phase
  /// (result rendering into `sink`). Profiling is always collected.
  QueryResult Run(const PlanPtr& plan, ExecMode mode = ExecMode::kOptimized,
                  SinkKind sink = SinkKind::kDiscard,
                  bool use_zone_maps = true);

 private:
  DatabaseOptions options_;
  std::unique_ptr<StorageManager> storage_;

  /// Guards the catalog maps (lookup vs. ReplaceTable swap). Distinct from
  /// the exec gate: lookups are lock-then-copy and never block queries.
  mutable std::mutex catalog_mu_;
  /// Queries hold this shared for the server phase; ReplaceTable holds it
  /// exclusively so storage metadata (zone maps, chunk counts) is never
  /// swapped under a running scan.
  mutable std::shared_mutex exec_gate_;
  std::function<void()> refresh_hook_;

  std::unordered_map<std::string, std::shared_ptr<Table>> tables_;
  std::unordered_map<std::string, uint32_t> table_ids_;
  /// Optimizer statistics per table; replaced wholesale on refresh so
  /// handed-out snapshots stay valid (like `retired_` for tables).
  std::unordered_map<std::string, std::shared_ptr<const TableStats>> stats_;
  std::vector<std::string> table_order_;
  /// Replaced table versions, kept alive so GetTable() references handed
  /// out before a swap never dangle (a handful of entries per session).
  std::vector<std::shared_ptr<Table>> retired_;
};

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_DATABASE_H_
