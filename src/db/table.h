#ifndef PERFEVAL_DB_TABLE_H_
#define PERFEVAL_DB_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/column.h"

namespace perfeval {
namespace db {

/// Name and type of one column.
struct ColumnSpec {
  std::string name;
  DataType type;
};

/// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t i) const {
    PERFEVAL_CHECK_LT(i, columns_.size());
    return columns_[i];
  }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 when absent.
  int IndexOf(const std::string& name) const;

  /// Like IndexOf but aborts when absent — for code where the schema is
  /// statically known (the TPC-H queries).
  size_t MustIndexOf(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<ColumnSpec> columns_;
};

/// A materialized table: a schema plus equal-length columns. Tables are the
/// unit of exchange between operators (operator-at-a-time execution).
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  Column& column(size_t i) {
    PERFEVAL_CHECK_LT(i, columns_.size());
    return columns_[i];
  }
  const Column& column(size_t i) const {
    PERFEVAL_CHECK_LT(i, columns_.size());
    return columns_[i];
  }
  const Column& ColumnByName(const std::string& name) const {
    return columns_[schema_.MustIndexOf(name)];
  }

  /// Appends one row; values must match the schema's types.
  void AppendRow(const std::vector<Value>& values);

  /// Recomputes num_rows after columns were filled directly (bulk load).
  /// All columns must have equal sizes.
  void FinishBulkLoad();

  /// Appends all rows of `other` (identical column count and types
  /// required). Column-wise vector concatenation — the merge step of the
  /// chunk-parallel data generator.
  void AppendTable(const Table& other);

  void ReserveRows(size_t n);

  Value ValueAt(size_t row, size_t col) const {
    return column(col).GetValue(row);
  }

  /// True if any column holds a NULL; vectorized kernels that read raw
  /// payload vectors fall back to row-at-a-time Value paths in that case.
  bool has_nulls() const {
    for (const Column& c : columns_) {
      if (c.has_nulls()) {
        return true;
      }
    }
    return false;
  }

  /// Total approximate byte size over all columns.
  size_t ByteSize() const;

  /// First `max_rows` rows rendered as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_TABLE_H_
