#include "db/expr.h"

#include <unordered_set>

#include "common/string_util.h"
#include "db/invariants.h"

namespace perfeval {
namespace db {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

bool SimplePredicate::MightMatch(double page_min, double page_max) const {
  switch (op) {
    case CmpOp::kEq:
      return value >= page_min && value <= page_max;
    case CmpOp::kNe:
      return !(page_min == page_max && page_min == value);
    case CmpOp::kLt:
      return page_min < value;
    case CmpOp::kLe:
      return page_min <= value;
    case CmpOp::kGt:
      return page_max > value;
    case CmpOp::kGe:
      return page_max >= value;
  }
  return true;
}

bool Expr::EvalBool(const Table& table, size_t row) const {
  // Kleene three-valued logic inside the expression tree (EvalRow returns
  // NULL for UNKNOWN), collapsed to "not selected" only here at the filter
  // boundary. NOT over a null-condition row therefore also drops the row,
  // so COUNT(P) + COUNT(NOT P) == COUNT(*) only holds for NULL-free
  // inputs; with NULLs the rows where P is UNKNOWN form the third
  // partition leg: COUNT(P) + COUNT(NOT P) + COUNT(P IS NULL) == COUNT(*).
  Value v = EvalRow(table, row);
  return !v.is_null() && v.AsInt64() != 0;
}

void Expr::EvalNumericBatch(const Table& table,
                            const std::vector<uint32_t>& rows,
                            std::vector<double>* out) const {
  out->resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    (*out)[i] = EvalRow(table, rows[i]).AsDouble();
  }
}

bool Expr::AsSimplePredicate(SimplePredicate*) const { return false; }

bool Expr::AsColumnIndex(size_t*) const { return false; }

bool Expr::AsColumnEquality(size_t*, size_t*) const { return false; }

void Expr::CollectConjuncts(std::vector<ExprPtr>* out,
                            const ExprPtr& self) const {
  out->push_back(self);
}

namespace {

bool CompareValues(CmpOp op, const Value& a, const Value& b) {
  int c = a.Compare(b);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(size_t index, std::string name, DataType type)
      : index_(index), name_(std::move(name)), type_(type) {}

  size_t index() const { return index_; }

  DataType ResultType(const Schema&) const override { return type_; }

  Value EvalRow(const Table& table, size_t row) const override {
    return table.column(index_).GetValue(row);
  }

  void EvalNumericBatch(const Table& table,
                        const std::vector<uint32_t>& rows,
                        std::vector<double>* out) const override {
    const Column& column = table.column(index_);
    out->resize(rows.size());
    switch (column.type()) {
      case DataType::kInt64:
      case DataType::kDate: {
        const std::vector<int64_t>& data = column.ints();
        for (size_t i = 0; i < rows.size(); ++i) {
          (*out)[i] = static_cast<double>(data[rows[i]]);
        }
        break;
      }
      case DataType::kDouble: {
        const std::vector<double>& data = column.doubles();
        for (size_t i = 0; i < rows.size(); ++i) {
          (*out)[i] = data[rows[i]];
        }
        break;
      }
      case DataType::kString:
        PERFEVAL_CHECK(false) << "numeric batch over string column "
                              << name_;
    }
  }

  bool AsColumnIndex(size_t* out) const override {
    *out = index_;
    return true;
  }

  std::string ToString() const override { return name_; }

 private:
  size_t index_;
  std::string name_;
  DataType type_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}

  const Value& value() const { return value_; }

  DataType ResultType(const Schema&) const override { return value_.type(); }

  Value EvalRow(const Table&, size_t) const override { return value_; }

  void EvalNumericBatch(const Table&, const std::vector<uint32_t>& rows,
                        std::vector<double>* out) const override {
    out->assign(rows.size(), value_.AsDouble());
  }

  std::string ToString() const override {
    if (value_.type() == DataType::kString) {
      return "'" + value_.AsString() + "'";
    }
    if (value_.type() == DataType::kDate) {
      return "date '" + value_.ToString() + "'";
    }
    return value_.ToString();
  }

 private:
  Value value_;
};

class CmpExpr : public Expr {
 public:
  CmpExpr(CmpOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  DataType ResultType(const Schema&) const override {
    return DataType::kInt64;
  }

  Value EvalRow(const Table& table, size_t row) const override {
    Value a = lhs_->EvalRow(table, row);
    Value b = rhs_->EvalRow(table, row);
    // Comparing against NULL is UNKNOWN (Kleene three-valued logic), so
    // NOT / AND / OR above this node propagate it instead of treating it
    // as a plain false.
    if (a.is_null() || b.is_null()) {
      return Value::Null(DataType::kInt64);
    }
    return Value::Int64(CompareValues(op_, a, b) ? 1 : 0);
  }

  bool EvalBool(const Table& table, size_t row) const override {
    Value a = lhs_->EvalRow(table, row);
    Value b = rhs_->EvalRow(table, row);
    // At the selection boundary UNKNOWN does not select the row.
    if (a.is_null() || b.is_null()) {
      return false;
    }
    return CompareValues(op_, a, b);
  }

  bool AsSimplePredicate(SimplePredicate* out) const override {
    const auto* col = dynamic_cast<const ColumnRefExpr*>(lhs_.get());
    const auto* lit = dynamic_cast<const LiteralExpr*>(rhs_.get());
    if (col == nullptr || lit == nullptr ||
        lit->value().type() == DataType::kString) {
      return false;
    }
    out->column = col->index();
    out->op = op_;
    out->value = lit->value().AsDouble();
    return true;
  }

  bool AsColumnEquality(size_t* left, size_t* right) const override {
    if (op_ != CmpOp::kEq) {
      return false;
    }
    size_t l = 0;
    size_t r = 0;
    if (!lhs_->AsColumnIndex(&l) || !rhs_->AsColumnIndex(&r)) {
      return false;
    }
    *left = l;
    *right = r;
    return true;
  }

  std::string ToString() const override {
    return lhs_->ToString() + " " + CmpOpName(op_) + " " + rhs_->ToString();
  }

 private:
  CmpOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class AndExpr : public Expr {
 public:
  AndExpr(ExprPtr lhs, ExprPtr rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  DataType ResultType(const Schema&) const override {
    return DataType::kInt64;
  }

  Value EvalRow(const Table& table, size_t row) const override {
    // Kleene AND: FALSE dominates UNKNOWN.
    Value a = lhs_->EvalRow(table, row);
    if (!a.is_null() && a.AsInt64() == 0) {
      return Value::Int64(0);
    }
    Value b = rhs_->EvalRow(table, row);
    if (!b.is_null() && b.AsInt64() == 0) {
      return Value::Int64(0);
    }
    if (a.is_null() || b.is_null()) {
      return Value::Null(DataType::kInt64);
    }
    return Value::Int64(1);
  }

  bool EvalBool(const Table& table, size_t row) const override {
    // Collapsing Kleene's UNKNOWN to "not selected" commutes with AND, so
    // the short-circuit over the children's collapsed values is exact.
    return lhs_->EvalBool(table, row) && rhs_->EvalBool(table, row);
  }

  void CollectConjuncts(std::vector<ExprPtr>* out,
                        const ExprPtr&) const override {
    lhs_->CollectConjuncts(out, lhs_);
    rhs_->CollectConjuncts(out, rhs_);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
  }

 private:
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class OrExpr : public Expr {
 public:
  OrExpr(ExprPtr lhs, ExprPtr rhs)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  DataType ResultType(const Schema&) const override {
    return DataType::kInt64;
  }

  Value EvalRow(const Table& table, size_t row) const override {
    // Kleene OR: TRUE dominates UNKNOWN.
    Value a = lhs_->EvalRow(table, row);
    if (!a.is_null() && a.AsInt64() != 0) {
      return Value::Int64(1);
    }
    Value b = rhs_->EvalRow(table, row);
    if (!b.is_null() && b.AsInt64() != 0) {
      return Value::Int64(1);
    }
    if (a.is_null() || b.is_null()) {
      return Value::Null(DataType::kInt64);
    }
    return Value::Int64(0);
  }

  bool EvalBool(const Table& table, size_t row) const override {
    // Collapsing UNKNOWN to "not selected" commutes with OR too.
    return lhs_->EvalBool(table, row) || rhs_->EvalBool(table, row);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
  }

 private:
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}

  DataType ResultType(const Schema&) const override {
    return DataType::kInt64;
  }

  Value EvalRow(const Table& table, size_t row) const override {
    // NOT UNKNOWN is UNKNOWN — negation must see the operand's three-
    // valued result, not its collapsed boolean, or NOT(x > 0) would turn
    // a NULL x into a selected row.
    Value v = operand_->EvalRow(table, row);
    if (v.is_null()) {
      return Value::Null(DataType::kInt64);
    }
    return Value::Int64(v.AsInt64() != 0 ? 0 : 1);
  }

  bool EvalBool(const Table& table, size_t row) const override {
    Value v = operand_->EvalRow(table, row);
    return !v.is_null() && v.AsInt64() == 0;
  }

  std::string ToString() const override {
    return "NOT (" + operand_->ToString() + ")";
  }

 private:
  ExprPtr operand_;
};

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
    // Integer-typed operands stay in checked int64 arithmetic (division
    // excepted: it produces a double ratio). Probing the children with an
    // empty schema is safe: every node's ResultType ignores it except
    // ColumnRefExpr, which resolved its type at construction.
    Schema empty;
    int_path_ = op_ != ArithOp::kDiv &&
                lhs_->ResultType(empty) == DataType::kInt64 &&
                rhs_->ResultType(empty) == DataType::kInt64;
  }

  DataType ResultType(const Schema&) const override {
    return int_path_ ? DataType::kInt64 : DataType::kDouble;
  }

  Value EvalRow(const Table& table, size_t row) const override {
    Value a = lhs_->EvalRow(table, row);
    Value b = rhs_->EvalRow(table, row);
    // NULL is absorbing in arithmetic.
    if (a.is_null() || b.is_null()) {
      return Value::Null(ResultType(table.schema()));
    }
    if (int_path_) {
      return Value::Int64(ApplyInt(a.AsInt64(), b.AsInt64()));
    }
    return Value::Double(Apply(a.AsDouble(), b.AsDouble()));
  }

  void EvalNumericBatch(const Table& table,
                        const std::vector<uint32_t>& rows,
                        std::vector<double>* out) const override {
    if (int_path_) {
      // Keep the vectorized path on the exact same checked int64
      // computation as EvalRow — an unchecked double fallback here would
      // make overflow detection depend on the execution mode.
      out->resize(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        (*out)[i] = static_cast<double>(EvalRow(table, rows[i]).AsInt64());
      }
      return;
    }
    std::vector<double> lhs_values;
    std::vector<double> rhs_values;
    lhs_->EvalNumericBatch(table, rows, &lhs_values);
    rhs_->EvalNumericBatch(table, rows, &rhs_values);
    out->resize(rows.size());
    switch (op_) {
      case ArithOp::kAdd:
        for (size_t i = 0; i < rows.size(); ++i) {
          (*out)[i] = lhs_values[i] + rhs_values[i];
        }
        break;
      case ArithOp::kSub:
        for (size_t i = 0; i < rows.size(); ++i) {
          (*out)[i] = lhs_values[i] - rhs_values[i];
        }
        break;
      case ArithOp::kMul:
        for (size_t i = 0; i < rows.size(); ++i) {
          (*out)[i] = lhs_values[i] * rhs_values[i];
        }
        break;
      case ArithOp::kDiv:
        for (size_t i = 0; i < rows.size(); ++i) {
          (*out)[i] = lhs_values[i] / rhs_values[i];
        }
        break;
    }
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + ArithOpName(op_) + " " +
           rhs_->ToString() + ")";
  }

 private:
  double Apply(double a, double b) const {
    switch (op_) {
      case ArithOp::kAdd:
        return a + b;
      case ArithOp::kSub:
        return a - b;
      case ArithOp::kMul:
        return a * b;
      case ArithOp::kDiv:
        return a / b;
    }
    return 0.0;
  }

  int64_t ApplyInt(int64_t a, int64_t b) const {
    switch (op_) {
      case ArithOp::kAdd:
        return CheckedAdd(a, b, "integer +");
      case ArithOp::kSub:
        return CheckedSub(a, b, "integer -");
      case ArithOp::kMul:
        return CheckedMul(a, b, "integer *");
      case ArithOp::kDiv:
        break;  // never on the int path.
    }
    PERFEVAL_CHECK(false) << "int arithmetic path on division";
    return 0;
  }

  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
  bool int_path_ = false;
};

/// SQL LIKE matcher: '%' matches any run, '_' any single character.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer algorithm with backtracking on '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') {
    ++p;
  }
  return p == pattern.size();
}

class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr operand, std::string pattern)
      : operand_(std::move(operand)), pattern_(std::move(pattern)) {}

  DataType ResultType(const Schema&) const override {
    return DataType::kInt64;
  }

  Value EvalRow(const Table& table, size_t row) const override {
    Value v = operand_->EvalRow(table, row);
    if (v.is_null()) {  // NULL LIKE p is UNKNOWN, so NOT LIKE stays NULL.
      return Value::Null(DataType::kInt64);
    }
    return Value::Int64(LikeMatch(v.AsString(), pattern_) ? 1 : 0);
  }

  bool EvalBool(const Table& table, size_t row) const override {
    Value v = operand_->EvalRow(table, row);
    return !v.is_null() && LikeMatch(v.AsString(), pattern_);
  }

  std::string ToString() const override {
    return operand_->ToString() + " LIKE '" + pattern_ + "'";
  }

 private:
  ExprPtr operand_;
  std::string pattern_;
};

class InStringsExpr : public Expr {
 public:
  InStringsExpr(ExprPtr operand, std::vector<std::string> values)
      : operand_(std::move(operand)),
        values_(values.begin(), values.end()),
        display_(std::move(values)) {}

  DataType ResultType(const Schema&) const override {
    return DataType::kInt64;
  }

  Value EvalRow(const Table& table, size_t row) const override {
    Value v = operand_->EvalRow(table, row);
    if (v.is_null()) {  // NULL IN (...) is UNKNOWN.
      return Value::Null(DataType::kInt64);
    }
    return Value::Int64(values_.count(v.AsString()) > 0 ? 1 : 0);
  }

  bool EvalBool(const Table& table, size_t row) const override {
    Value v = operand_->EvalRow(table, row);
    return !v.is_null() && values_.count(v.AsString()) > 0;
  }

  std::string ToString() const override {
    std::string out = operand_->ToString() + " IN (";
    for (size_t i = 0; i < display_.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += "'" + display_[i] + "'";
    }
    return out + ")";
  }

 private:
  ExprPtr operand_;
  std::unordered_set<std::string> values_;
  std::vector<std::string> display_;
};

class ContainsExpr : public Expr {
 public:
  ContainsExpr(ExprPtr operand, std::string needle)
      : operand_(std::move(operand)), needle_(std::move(needle)) {}

  DataType ResultType(const Schema&) const override {
    return DataType::kInt64;
  }

  Value EvalRow(const Table& table, size_t row) const override {
    Value v = operand_->EvalRow(table, row);
    if (v.is_null()) {  // NULL never "contains" anything: UNKNOWN.
      return Value::Null(DataType::kInt64);
    }
    return Value::Int64(
        v.AsString().find(needle_) != std::string::npos ? 1 : 0);
  }

  bool EvalBool(const Table& table, size_t row) const override {
    Value v = operand_->EvalRow(table, row);
    return !v.is_null() &&
           v.AsString().find(needle_) != std::string::npos;
  }

  std::string ToString() const override {
    return operand_->ToString() + " LIKE '%" + needle_ + "%'";
  }

 private:
  ExprPtr operand_;
  std::string needle_;
};

class YearExpr : public Expr {
 public:
  explicit YearExpr(ExprPtr operand) : operand_(std::move(operand)) {}

  DataType ResultType(const Schema&) const override {
    return DataType::kInt64;
  }

  Value EvalRow(const Table& table, size_t row) const override {
    Value v = operand_->EvalRow(table, row);
    if (v.is_null()) {
      return Value::Null(DataType::kInt64);
    }
    int year = 0;
    int month = 0;
    int day = 0;
    YmdFromDate(v.AsDate(), &year, &month, &day);
    return Value::Int64(year);
  }

  void EvalNumericBatch(const Table& table,
                        const std::vector<uint32_t>& rows,
                        std::vector<double>* out) const override {
    std::vector<double> dates;
    operand_->EvalNumericBatch(table, rows, &dates);
    out->resize(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      int year = 0;
      int month = 0;
      int day = 0;
      YmdFromDate(static_cast<int32_t>(dates[i]), &year, &month, &day);
      (*out)[i] = static_cast<double>(year);
    }
  }

  std::string ToString() const override {
    return "year(" + operand_->ToString() + ")";
  }

 private:
  ExprPtr operand_;
};

class IfExpr : public Expr {
 public:
  IfExpr(ExprPtr condition, ExprPtr then_expr, ExprPtr else_expr)
      : condition_(std::move(condition)),
        then_(std::move(then_expr)),
        else_(std::move(else_expr)) {}

  DataType ResultType(const Schema& schema) const override {
    return then_->ResultType(schema);
  }

  Value EvalRow(const Table& table, size_t row) const override {
    return condition_->EvalBool(table, row) ? then_->EvalRow(table, row)
                                            : else_->EvalRow(table, row);
  }

  void EvalNumericBatch(const Table& table,
                        const std::vector<uint32_t>& rows,
                        std::vector<double>* out) const override {
    std::vector<double> then_values;
    std::vector<double> else_values;
    then_->EvalNumericBatch(table, rows, &then_values);
    else_->EvalNumericBatch(table, rows, &else_values);
    out->resize(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      (*out)[i] = condition_->EvalBool(table, rows[i]) ? then_values[i]
                                                       : else_values[i];
    }
  }

  std::string ToString() const override {
    return "CASE WHEN " + condition_->ToString() + " THEN " +
           then_->ToString() + " ELSE " + else_->ToString() + " END";
  }

 private:
  ExprPtr condition_;
  ExprPtr then_;
  ExprPtr else_;
};

class InIntsExpr : public Expr {
 public:
  InIntsExpr(ExprPtr operand, std::vector<int64_t> values)
      : operand_(std::move(operand)),
        values_(values.begin(), values.end()),
        display_(std::move(values)) {}

  DataType ResultType(const Schema&) const override {
    return DataType::kInt64;
  }

  Value EvalRow(const Table& table, size_t row) const override {
    Value v = operand_->EvalRow(table, row);
    if (v.is_null()) {  // NULL IN (...) is UNKNOWN.
      return Value::Null(DataType::kInt64);
    }
    return Value::Int64(values_.count(v.AsInt64()) > 0 ? 1 : 0);
  }

  bool EvalBool(const Table& table, size_t row) const override {
    Value v = operand_->EvalRow(table, row);
    return !v.is_null() && values_.count(v.AsInt64()) > 0;
  }

  std::string ToString() const override {
    std::string out = operand_->ToString() + " IN (";
    for (size_t i = 0; i < display_.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += StrFormat("%lld", static_cast<long long>(display_[i]));
    }
    return out + ")";
  }

 private:
  ExprPtr operand_;
  std::unordered_set<int64_t> values_;
  std::vector<int64_t> display_;
};

class SubstrExpr : public Expr {
 public:
  SubstrExpr(ExprPtr operand, size_t pos, size_t len)
      : operand_(std::move(operand)), pos_(pos), len_(len) {
    PERFEVAL_CHECK_GE(pos_, 1u) << "SUBSTRING positions are 1-based";
  }

  DataType ResultType(const Schema&) const override {
    return DataType::kString;
  }

  Value EvalRow(const Table& table, size_t row) const override {
    Value v = operand_->EvalRow(table, row);
    if (v.is_null()) {
      return Value::Null(DataType::kString);
    }
    const std::string s = v.AsString();
    size_t start = pos_ - 1;
    if (start >= s.size()) {
      return Value::String("");
    }
    return Value::String(s.substr(start, len_));
  }

  std::string ToString() const override {
    return StrFormat("substring(%s from %zu for %zu)",
                     operand_->ToString().c_str(), pos_, len_);
  }

 private:
  ExprPtr operand_;
  size_t pos_;
  size_t len_;
};

/// Shared inner loops of the branch-free kernels. `get(r)` reads the
/// column value as double; the compiled loops carry no data-dependent
/// branch — the row id is written unconditionally and the write cursor
/// advances by the predicate's truth value.
template <typename Getter, typename Pred>
size_t EmitMatchingRange(Getter get, Pred pred, size_t begin, size_t end,
                         uint32_t* dst) {
  size_t kept = 0;
  for (size_t r = begin; r < end; ++r) {
    dst[kept] = static_cast<uint32_t>(r);
    kept += static_cast<size_t>(pred(get(r)));
  }
  return kept;
}

template <typename Getter, typename Pred>
size_t CompactMatching(Getter get, Pred pred, uint32_t* rows, size_t n) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t r = rows[i];
    rows[kept] = r;
    kept += static_cast<size_t>(pred(get(r)));
  }
  return kept;
}

/// Dispatches `op` to a monomorphized loop: the comparison is a template
/// parameter, so each case compiles to a tight two-instruction body.
template <typename Getter, typename Loop>
size_t DispatchCmp(Getter get, CmpOp op, double v, Loop loop) {
  switch (op) {
    case CmpOp::kEq:
      return loop(get, [v](double x) { return x == v; });
    case CmpOp::kNe:
      return loop(get, [v](double x) { return x != v; });
    case CmpOp::kLt:
      return loop(get, [v](double x) { return x < v; });
    case CmpOp::kLe:
      return loop(get, [v](double x) { return x <= v; });
    case CmpOp::kGt:
      return loop(get, [v](double x) { return x > v; });
    case CmpOp::kGe:
      return loop(get, [v](double x) { return x >= v; });
  }
  return 0;
}

template <typename Getter>
size_t FilterRangeTyped(Getter get, CmpOp op, double value, size_t begin,
                        size_t end, uint32_t* dst) {
  return DispatchCmp(get, op, value, [begin, end, dst](auto g, auto pred) {
    return EmitMatchingRange(g, pred, begin, end, dst);
  });
}

template <typename Getter>
size_t RefineTyped(Getter get, CmpOp op, double value, uint32_t* rows,
                   size_t n) {
  return DispatchCmp(get, op, value, [rows, n](auto g, auto pred) {
    return CompactMatching(g, pred, rows, n);
  });
}

}  // namespace

void FilterColumnRange(const Column& column, CmpOp op, double value,
                       size_t begin, size_t end, std::vector<uint32_t>* out) {
  size_t base = out->size();
  out->resize(base + (end - begin));
  uint32_t* dst = out->data() + base;
  size_t kept;
  if (column.type() == DataType::kDouble) {
    const double* data = column.doubles().data();
    kept = FilterRangeTyped([data](size_t r) { return data[r]; }, op, value,
                            begin, end, dst);
  } else {
    const int64_t* data = column.ints().data();
    kept = FilterRangeTyped(
        [data](size_t r) { return static_cast<double>(data[r]); }, op, value,
        begin, end, dst);
  }
  out->resize(base + kept);
}

void RefineSelection(const Column& column, CmpOp op, double value,
                     std::vector<uint32_t>* rows) {
  size_t kept;
  if (column.type() == DataType::kDouble) {
    const double* data = column.doubles().data();
    kept = RefineTyped([data](size_t r) { return data[r]; }, op, value,
                       rows->data(), rows->size());
  } else {
    const int64_t* data = column.ints().data();
    kept = RefineTyped(
        [data](size_t r) { return static_cast<double>(data[r]); }, op, value,
        rows->data(), rows->size());
  }
  rows->resize(kept);
}

ExprPtr Col(const Schema& schema, const std::string& name) {
  size_t index = schema.MustIndexOf(name);
  return std::make_shared<ColumnRefExpr>(index, name,
                                         schema.column(index).type);
}

ExprPtr LitInt(int64_t v) {
  return std::make_shared<LiteralExpr>(Value::Int64(v));
}
ExprPtr LitDouble(double v) {
  return std::make_shared<LiteralExpr>(Value::Double(v));
}
ExprPtr LitString(std::string v) {
  return std::make_shared<LiteralExpr>(Value::String(std::move(v)));
}
ExprPtr LitDate(const std::string& ymd) {
  int32_t days = 0;
  PERFEVAL_CHECK(ParseDate(ymd, &days)) << "bad date literal " << ymd;
  return std::make_shared<LiteralExpr>(Value::Date(days));
}

ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CmpExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kEq, std::move(lhs), std::move(rhs));
}
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kNe, std::move(lhs), std::move(rhs));
}
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kLt, std::move(lhs), std::move(rhs));
}
ExprPtr Le(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kLe, std::move(lhs), std::move(rhs));
}
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kGt, std::move(lhs), std::move(rhs));
}
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kGe, std::move(lhs), std::move(rhs));
}

ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<AndExpr>(std::move(lhs), std::move(rhs));
}
ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<OrExpr>(std::move(lhs), std::move(rhs));
}
ExprPtr Not(ExprPtr operand) {
  return std::make_shared<NotExpr>(std::move(operand));
}

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Add(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kAdd, std::move(lhs), std::move(rhs));
}
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kSub, std::move(lhs), std::move(rhs));
}
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kMul, std::move(lhs), std::move(rhs));
}
ExprPtr Div(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kDiv, std::move(lhs), std::move(rhs));
}

ExprPtr Like(ExprPtr operand, std::string pattern) {
  return std::make_shared<LikeExpr>(std::move(operand), std::move(pattern));
}

ExprPtr InStrings(ExprPtr operand, std::vector<std::string> values) {
  return std::make_shared<InStringsExpr>(std::move(operand),
                                         std::move(values));
}

ExprPtr Contains(ExprPtr operand, std::string needle) {
  return std::make_shared<ContainsExpr>(std::move(operand),
                                        std::move(needle));
}

ExprPtr Year(ExprPtr date_operand) {
  return std::make_shared<YearExpr>(std::move(date_operand));
}

ExprPtr If(ExprPtr condition, ExprPtr then_expr, ExprPtr else_expr) {
  return std::make_shared<IfExpr>(std::move(condition), std::move(then_expr),
                                  std::move(else_expr));
}

ExprPtr InInts(ExprPtr operand, std::vector<int64_t> values) {
  return std::make_shared<InIntsExpr>(std::move(operand), std::move(values));
}

ExprPtr Substr(ExprPtr operand, size_t pos, size_t len) {
  return std::make_shared<SubstrExpr>(std::move(operand), pos, len);
}

}  // namespace db
}  // namespace perfeval
