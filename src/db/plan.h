#ifndef PERFEVAL_DB_PLAN_H_
#define PERFEVAL_DB_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "db/expr.h"
#include "db/join.h"
#include "db/morsel.h"
#include "db/profile.h"
#include "db/storage.h"
#include "db/table.h"

namespace perfeval {
namespace db {

class Database;

/// How operators execute (paper, slides 37–45, "Of apples and oranges").
/// kDebug interprets tuple-at-a-time with per-tuple virtual dispatch and
/// validation — the behaviour of an un-optimized build. kOptimized runs
/// vectorized tight loops. Having both modes in one binary makes the
/// DBG/OPT experiment repeatable without recompiling.
enum class ExecMode {
  kDebug,
  kOptimized,
};

const char* ExecModeName(ExecMode mode);

/// Accumulated over every parallel region of one query execution: the
/// measured wall time spent inside the regions and, per region, the
/// longest per-worker CPU busy time (the region's critical path). On a
/// host with enough idle cores wall ≈ critical path; on an oversubscribed
/// host (the workers time-slice one core) the pair is what lets a bench
/// report the modeled parallel time honestly instead of pretending the
/// measured wall clock shows scaling. See QueryResult::ModeledServerNs().
struct ParallelSim {
  int64_t region_wall_ns = 0;      ///< measured wall time inside regions.
  int64_t region_critical_ns = 0;  ///< sum over regions of max worker busy.
  int64_t regions = 0;             ///< parallel regions entered.
};

/// Per-execution context handed down the plan tree.
struct ExecContext {
  ExecMode mode = ExecMode::kOptimized;
  Database* database = nullptr;        ///< catalog lookup (required).
  StorageManager* storage = nullptr;   ///< optional: page I/O accounting.
  Profiler* profiler = nullptr;        ///< optional: operator traces.
  bool use_zone_maps = true;           ///< page skipping in FilterScan.
  /// Intra-query parallelism: scan/filter/aggregate/join/sort fan work out
  /// over this many workers (<= 1 runs inline). A pure concurrency knob —
  /// per the repo's determinism invariant it may change wall-clock time
  /// but never a result relation or the reported StorageStats: morsel
  /// boundaries are thread-count-independent, partial states are reduced
  /// in morsel order, and I/O is accounted from the coordinator in chunk
  /// order.
  int threads = 1;
  /// Morsel sizing and the adaptive go-parallel decision. Defaults match
  /// MorselPolicy::Hardware(); tests override it to place the serial/
  /// parallel boundary wherever they need it. Fields never depend on
  /// `threads`, so changing `threads` can never move a morsel boundary.
  MorselPolicy morsel;
  /// Optional: accumulates parallel-region wall/critical-path times for
  /// the whole execution (filled by the morsel dispatch in plan.cc).
  ParallelSim* parallel_sim = nullptr;
  /// Physical algorithm for equi-join nodes (HashJoin / HashJoin2). For
  /// each algorithm the join output is deterministic at any `threads`
  /// setting; different algorithms may emit matches in different (but
  /// fixed) orders. See db/join.h.
  JoinAlgo join_algo = JoinAlgo::kRadix;
  /// Radix fan-out (log2 partitions) for JoinAlgo::kRadix; <= 0 sizes
  /// partitions to the hwsim L2 profile (ChooseRadixBits).
  int radix_bits = 0;
  /// Checked execution: operators assert their own invariants (selection
  /// vectors strictly increasing, zone maps consistent with page contents,
  /// join match-count conservation, sort output a permutation of its
  /// input, group output in first-occurrence order) and throw QueryError
  /// on violation. Orthogonal to `mode` so the fast vectorized paths are
  /// what gets checked; costs O(input) per operator. Checked (non-
  /// wrapping) int64 arithmetic is always on, independent of this flag.
  bool check = false;
};

/// An intermediate result: a table plus an optional selection vector.
/// Filters refine the selection without copying data; materializing
/// operators (Project, Join, Aggregate, Sort) produce fresh tables.
struct Relation {
  std::shared_ptr<const Table> table;
  /// Row ids into `table`; nullptr means "all rows".
  std::shared_ptr<const std::vector<uint32_t>> selection;

  size_t num_rows() const {
    return selection ? selection->size() : table->num_rows();
  }
  uint32_t RowAt(size_t i) const {
    return selection ? (*selection)[i] : static_cast<uint32_t>(i);
  }
  /// The selection as an explicit vector (identity when selection is null).
  std::vector<uint32_t> RowIds() const;
};

/// Aggregate functions.
enum class AggOp { kSum, kAvg, kMin, kMax, kCount, kCountDistinct };
const char* AggOpName(AggOp op);

/// One output aggregate: `op` applied to `expr` (ignored for kCount),
/// emitted under `output_name`.
struct AggSpec {
  AggOp op = AggOp::kCount;
  ExprPtr expr;  ///< may be null for kCount.
  std::string output_name;
};

/// One sort key.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// The operator kind of a plan node, for plan introspection.
enum class PlanKind {
  kScan,
  kFilterScan,
  kFilter,
  kProject,
  kHashJoin,
  kMergeJoin,
  kAggregate,
  kSort,
  kLimit,
  kTopN,
};

/// A structural description of one plan node — everything an independent
/// interpreter needs to re-execute the node's logical operation. Returned
/// by PlanNode::Spec(); the concrete node classes stay private to plan.cc.
/// Only the fields relevant to `kind` are populated.
struct PlanSpec {
  PlanKind kind = PlanKind::kScan;
  std::string table_name;              ///< kScan / kFilterScan.
  std::vector<std::string> columns;    ///< kScan / kFilterScan (may be empty).
  ExprPtr predicate;                   ///< kFilterScan / kFilter.
  std::vector<ExprPtr> exprs;          ///< kProject.
  std::vector<std::string> names;      ///< kProject output names.
  std::vector<std::string> left_keys;  ///< joins (1 or 2 key columns).
  std::vector<std::string> right_keys;  ///< joins.
  std::vector<std::string> group_by;   ///< kAggregate.
  std::vector<AggSpec> aggregates;     ///< kAggregate.
  std::vector<SortKey> sort_keys;      ///< kSort / kTopN.
  size_t limit = 0;                    ///< kLimit / kTopN.
};

/// A physical plan operator. Plans are immutable trees built by the factory
/// functions below; Execute() runs operator-at-a-time (full intermediate
/// results, MonetDB style).
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  /// Executes the subtree. Records an OpTrace per node when profiling.
  virtual Relation Execute(ExecContext& ctx) const = 0;

  /// One-line operator description for EXPLAIN.
  virtual std::string Describe() const = 0;

  /// The node's logical operation, for independent re-execution (the
  /// reference interpreter in db/reference.h).
  virtual PlanSpec Spec() const = 0;

  virtual std::vector<const PlanNode*> Children() const { return {}; }

  /// The children as shared plans, so a rewriter (the cost-based
  /// optimizer) can rebuild a tree around existing subtrees without
  /// cloning them. Same order as Children().
  virtual std::vector<std::shared_ptr<const PlanNode>> SharedChildren()
      const {
    return {};
  }
};

using PlanPtr = std::shared_ptr<const PlanNode>;

/// Output column type of one aggregate over `input_schema`: counts are
/// int64; SUM/MIN/MAX of an int64-typed expression stay int64 (computed
/// with checked accumulators); everything else — including AVG, which is
/// a ratio — is double. Shared by AggregateNode and the SQL planner so
/// the planned output schema always matches execution.
DataType AggOutputType(const AggSpec& spec, const Schema& input_schema);

// ---- Plan factories ----

/// Scans base table `table_name`, touching the pages of `columns_used`
/// through the buffer pool (all columns when empty).
PlanPtr Scan(const std::string& table_name,
             std::vector<std::string> columns_used = {});

/// Fused scan + filter over a base table with zone-map page skipping for
/// simple predicates.
PlanPtr FilterScan(const std::string& table_name,
                   std::vector<std::string> columns_used, ExprPtr predicate);

/// Filters an arbitrary child relation.
PlanPtr Filter(PlanPtr child, ExprPtr predicate);

/// Projects expressions into a new materialized table. `names` labels the
/// output columns; sizes must match.
PlanPtr Project(PlanPtr child, std::vector<ExprPtr> exprs,
                std::vector<std::string> names);

/// Hash join on int64 equality keys. Output schema = left columns followed
/// by right columns (TPC-H names are globally unique so no renaming is
/// needed). The right (second) input is the build side.
PlanPtr HashJoin(PlanPtr left, PlanPtr right, std::string left_key,
                 std::string right_key);

/// Hash join on a composite (two-column) int64 equality key, e.g. TPC-H
/// Q9's lineitem-partsupp join on (partkey, suppkey). Both key columns must
/// hold non-negative values below 2^31.
PlanPtr HashJoin2(PlanPtr left, PlanPtr right, std::string left_key1,
                  std::string right_key1, std::string left_key2,
                  std::string right_key2);

/// Equi-join with the physical algorithm pinned per node (the cost-based
/// optimizer's output form): unlike HashJoin/HashJoin2, which follow
/// ExecContext::join_algo at run time, this node always executes `algo`.
/// 1 or 2 key columns; composite keys have the HashJoin2 31-bit bound.
PlanPtr HashJoinWith(PlanPtr left, PlanPtr right,
                     std::vector<std::string> left_keys,
                     std::vector<std::string> right_keys, JoinAlgo algo);

/// Sort-merge join on one int64 equality key. Detects already-sorted
/// inputs (clustered keys such as TPC-H's l_orderkey) and skips the sort —
/// the classic alternative to HashJoin; bench_join_crossover measures
/// where each wins.
PlanPtr MergeJoin(PlanPtr left, PlanPtr right, std::string left_key,
                  std::string right_key);

/// Hash aggregation with optional group-by columns.
PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                  std::vector<AggSpec> aggregates);

/// Full sort by the given keys.
PlanPtr Sort(PlanPtr child, std::vector<SortKey> keys);

/// First `n` rows.
PlanPtr Limit(PlanPtr child, size_t n);

/// Top-N: the first `n` rows of the input as ordered by `keys`, computed
/// with a bounded partial sort (O(rows log n)) instead of a full sort —
/// equivalent to Sort + Limit; bench_join_crossover quantifies the gap.
PlanPtr TopN(PlanPtr child, std::vector<SortKey> keys, size_t n);

/// EXPLAIN: multi-line indented plan rendering (paper, slide 52).
std::string Explain(const PlanPtr& plan);

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_PLAN_H_
