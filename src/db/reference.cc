#include "db/reference.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "db/database.h"
#include "db/error.h"
#include "db/invariants.h"
#include "db/sort.h"

namespace perfeval {
namespace db {
namespace {

using TablePtr = std::shared_ptr<const Table>;

/// Materializes `rows` of `in` into a fresh table, one Value at a time
/// (NULLs ride along through AppendValue).
TablePtr GatherAll(const Table& in, const std::vector<uint32_t>& rows) {
  auto out = std::make_shared<Table>(in.schema());
  out->ReserveRows(rows.size());
  for (size_t c = 0; c < in.num_columns(); ++c) {
    Column& dst = out->column(c);
    const Column& src = in.column(c);
    for (uint32_t r : rows) {
      dst.AppendValue(src.GetValue(r));
    }
  }
  out->FinishBulkLoad();
  return out;
}

/// Filters with the plain row loop: EvalBool already implements the
/// engine's semantics (Kleene 3VL inside the tree, UNKNOWN → not
/// selected at this boundary).
TablePtr FilterRows(const TablePtr& in, const Expr& predicate) {
  std::vector<uint32_t> rows;
  for (size_t r = 0; r < in->num_rows(); ++r) {
    if (predicate.EvalBool(*in, r)) {
      rows.push_back(static_cast<uint32_t>(r));
    }
  }
  return GatherAll(*in, rows);
}

int64_t JoinKeyAt(const Column& column, uint32_t row,
                  const std::string& name) {
  if (column.type() != DataType::kInt64) {
    throw QueryError(StatusCode::kInvalidArgument,
                     "join key column " + name + " is not int64");
  }
  if (column.IsNull(row)) {
    throw QueryError(StatusCode::kInvalidArgument,
                     "join key column " + name + " contains NULL (row " +
                         std::to_string(row) +
                         "); NULL join keys are unsupported");
  }
  return column.GetInt64(row);
}

/// Naive equi-join on 1 or 2 int64 key columns: build a key → row-list map
/// from the right side, probe left rows in order. Match order is
/// left-major, right rows in table order — result comparisons that care
/// about order must impose one (ORDER BY) or ignore it.
TablePtr JoinTables(const TablePtr& left, const TablePtr& right,
                    const std::vector<std::string>& left_keys,
                    const std::vector<std::string>& right_keys) {
  using Key = std::pair<int64_t, int64_t>;
  std::map<Key, std::vector<uint32_t>> build;
  const Column& rk0 = right->ColumnByName(right_keys[0]);
  const Column* rk1 =
      right_keys.size() > 1 ? &right->ColumnByName(right_keys[1]) : nullptr;
  for (size_t r = 0; r < right->num_rows(); ++r) {
    Key key{JoinKeyAt(rk0, static_cast<uint32_t>(r), right_keys[0]),
            rk1 != nullptr
                ? JoinKeyAt(*rk1, static_cast<uint32_t>(r), right_keys[1])
                : 0};
    build[key].push_back(static_cast<uint32_t>(r));
  }

  std::vector<uint32_t> out_left;
  std::vector<uint32_t> out_right;
  const Column& lk0 = left->ColumnByName(left_keys[0]);
  const Column* lk1 =
      left_keys.size() > 1 ? &left->ColumnByName(left_keys[1]) : nullptr;
  for (size_t r = 0; r < left->num_rows(); ++r) {
    Key key{JoinKeyAt(lk0, static_cast<uint32_t>(r), left_keys[0]),
            lk1 != nullptr
                ? JoinKeyAt(*lk1, static_cast<uint32_t>(r), left_keys[1])
                : 0};
    auto it = build.find(key);
    if (it == build.end()) {
      continue;
    }
    for (uint32_t rr : it->second) {
      out_left.push_back(static_cast<uint32_t>(r));
      out_right.push_back(rr);
    }
  }

  std::vector<ColumnSpec> specs = left->schema().columns();
  for (const ColumnSpec& spec : right->schema().columns()) {
    specs.push_back(spec);
  }
  auto out = std::make_shared<Table>(Schema(std::move(specs)));
  out->ReserveRows(out_left.size());
  for (size_t c = 0; c < left->num_columns(); ++c) {
    Column& dst = out->column(c);
    const Column& src = left->column(c);
    for (uint32_t r : out_left) {
      dst.AppendValue(src.GetValue(r));
    }
  }
  for (size_t c = 0; c < right->num_columns(); ++c) {
    Column& dst = out->column(left->num_columns() + c);
    const Column& src = right->column(c);
    for (uint32_t r : out_right) {
      dst.AppendValue(src.GetValue(r));
    }
  }
  out->FinishBulkLoad();
  return out;
}

TablePtr ProjectRows(const TablePtr& in, const std::vector<ExprPtr>& exprs,
                     const std::vector<std::string>& names) {
  std::vector<ColumnSpec> specs;
  specs.reserve(exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    specs.push_back({names[i], exprs[i]->ResultType(in->schema())});
  }
  auto out = std::make_shared<Table>(Schema(std::move(specs)));
  out->ReserveRows(in->num_rows());
  for (size_t i = 0; i < exprs.size(); ++i) {
    Column& dst = out->column(i);
    for (size_t r = 0; r < in->num_rows(); ++r) {
      dst.AppendValue(exprs[i]->EvalRow(*in, r));
    }
  }
  out->FinishBulkLoad();
  return out;
}

/// Flat (non-morsel) accumulator for one (group, aggregate) pair.
struct RefAggState {
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  int64_t isum = 0;
  int64_t imin = 0;
  int64_t imax = 0;
  int64_t count = 0;
  std::map<std::string, bool> distinct;
};

TablePtr AggregateRows(const TablePtr& in,
                       const std::vector<std::string>& group_by,
                       const std::vector<AggSpec>& aggregates) {
  const Table& table = *in;
  std::vector<size_t> group_cols;
  for (const std::string& name : group_by) {
    group_cols.push_back(table.schema().MustIndexOf(name));
  }
  std::vector<uint8_t> int_agg(aggregates.size(), 0);
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const AggSpec& spec = aggregates[a];
    int_agg[a] = (spec.op == AggOp::kSum || spec.op == AggOp::kAvg ||
                  spec.op == AggOp::kMin || spec.op == AggOp::kMax) &&
                         spec.expr != nullptr &&
                         spec.expr->ResultType(table.schema()) ==
                             DataType::kInt64
                     ? 1
                     : 0;
  }

  // One serial pass; groups appear in first-occurrence order, doubles
  // accumulate in flat input order.
  std::unordered_map<std::string, size_t> group_index;
  std::vector<uint32_t> first_rows;
  std::vector<std::vector<RefAggState>> states(aggregates.size());
  std::string key;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    key.clear();
    for (size_t c : group_cols) {
      key += table.column(c).GetValue(r).ToString();
      key += '\x1f';
    }
    auto [it, inserted] = group_index.try_emplace(key, group_index.size());
    if (inserted) {
      first_rows.push_back(static_cast<uint32_t>(r));
      for (size_t a = 0; a < aggregates.size(); ++a) {
        states[a].emplace_back();
      }
    }
    size_t g = it->second;
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const AggSpec& spec = aggregates[a];
      RefAggState& state = states[a][g];
      if (spec.op == AggOp::kCount && spec.expr == nullptr) {
        ++state.count;
        continue;
      }
      Value v = spec.expr->EvalRow(table, r);
      if (v.is_null()) {
        continue;  // SQL aggregates skip NULL inputs.
      }
      switch (spec.op) {
        case AggOp::kCount:
          ++state.count;
          break;
        case AggOp::kCountDistinct:
          state.distinct[v.ToString()] = true;
          break;
        default:
          if (int_agg[a] != 0) {
            int64_t i = v.AsInt64();
            if (state.count == 0) {
              state.imin = i;
              state.imax = i;
            } else {
              state.imin = std::min(state.imin, i);
              state.imax = std::max(state.imax, i);
            }
            state.isum = CheckedAdd(state.isum, i, "SUM accumulator");
          } else {
            double d = v.AsDouble();
            if (state.count == 0) {
              state.min = d;
              state.max = d;
            } else {
              state.min = std::min(state.min, d);
              state.max = std::max(state.max, d);
            }
            state.sum += d;
          }
          ++state.count;
          break;
      }
    }
  }
  if (group_cols.empty() && first_rows.empty()) {
    first_rows.push_back(0);  // Global aggregate over zero rows.
    for (size_t a = 0; a < aggregates.size(); ++a) {
      states[a].emplace_back();
    }
  }

  std::vector<ColumnSpec> specs;
  for (size_t c : group_cols) {
    specs.push_back(table.schema().column(c));
  }
  for (const AggSpec& spec : aggregates) {
    specs.push_back({spec.output_name, AggOutputType(spec, table.schema())});
  }
  auto out = std::make_shared<Table>(Schema(std::move(specs)));
  size_t emitted = group_cols.empty() ? 1 : first_rows.size();
  out->ReserveRows(emitted);
  for (size_t g = 0; g < emitted; ++g) {
    for (size_t gc = 0; gc < group_cols.size(); ++gc) {
      out->column(gc).AppendValue(
          table.column(group_cols[gc]).GetValue(first_rows[g]));
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const RefAggState& state = states[a][g];
      Column& dst = out->column(group_cols.size() + a);
      bool is_int = int_agg[a] != 0;
      switch (aggregates[a].op) {
        case AggOp::kSum:
          if (state.count == 0) {
            dst.AppendValue(Value::Null(dst.type()));
          } else if (is_int) {
            dst.AppendInt64(state.isum);
          } else {
            dst.AppendDouble(state.sum);
          }
          break;
        case AggOp::kAvg:
          if (state.count == 0) {
            dst.AppendValue(Value::Null(dst.type()));
          } else if (is_int) {
            dst.AppendDouble(static_cast<double>(state.isum) /
                             static_cast<double>(state.count));
          } else {
            dst.AppendDouble(state.sum / static_cast<double>(state.count));
          }
          break;
        case AggOp::kMin:
          if (state.count == 0) {
            dst.AppendValue(Value::Null(dst.type()));
          } else if (is_int) {
            dst.AppendInt64(state.imin);
          } else {
            dst.AppendDouble(state.min);
          }
          break;
        case AggOp::kMax:
          if (state.count == 0) {
            dst.AppendValue(Value::Null(dst.type()));
          } else if (is_int) {
            dst.AppendInt64(state.imax);
          } else {
            dst.AppendDouble(state.max);
          }
          break;
        case AggOp::kCount:
          dst.AppendInt64(state.count);
          break;
        case AggOp::kCountDistinct:
          dst.AppendInt64(static_cast<int64_t>(state.distinct.size()));
          break;
      }
    }
  }
  out->FinishBulkLoad();
  return out;
}

TablePtr SortRows(const TablePtr& in, const std::vector<SortKey>& keys,
                  bool top_n, size_t n) {
  std::vector<uint32_t> rows(in->num_rows());
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<uint32_t>(i);
  }
  RowComparator less(*in, keys);
  std::stable_sort(rows.begin(), rows.end(), less);
  if (top_n && rows.size() > n) {
    rows.resize(n);
  }
  return GatherAll(*in, rows);
}

TablePtr Exec(const PlanNode& node, const Database& database) {
  PlanSpec spec = node.Spec();
  std::vector<const PlanNode*> children = node.Children();
  switch (spec.kind) {
    case PlanKind::kScan:
      return database.GetTableShared(spec.table_name);
    case PlanKind::kFilterScan:
      return FilterRows(database.GetTableShared(spec.table_name),
                        *spec.predicate);
    case PlanKind::kFilter:
      return FilterRows(Exec(*children[0], database), *spec.predicate);
    case PlanKind::kProject:
      return ProjectRows(Exec(*children[0], database), spec.exprs,
                         spec.names);
    case PlanKind::kHashJoin:
    case PlanKind::kMergeJoin:
      // Equi-join semantics are algorithm-independent; one naive
      // implementation stands in for hash, radix and merge.
      return JoinTables(Exec(*children[0], database),
                        Exec(*children[1], database), spec.left_keys,
                        spec.right_keys);
    case PlanKind::kAggregate:
      return AggregateRows(Exec(*children[0], database), spec.group_by,
                           spec.aggregates);
    case PlanKind::kSort:
      return SortRows(Exec(*children[0], database), spec.sort_keys,
                      /*top_n=*/false, 0);
    case PlanKind::kTopN:
      return SortRows(Exec(*children[0], database), spec.sort_keys,
                      /*top_n=*/true, spec.limit);
    case PlanKind::kLimit: {
      TablePtr in = Exec(*children[0], database);
      std::vector<uint32_t> rows;
      for (size_t r = 0; r < std::min(in->num_rows(), spec.limit); ++r) {
        rows.push_back(static_cast<uint32_t>(r));
      }
      return GatherAll(*in, rows);
    }
  }
  throw QueryError(StatusCode::kInternal, "unknown plan kind");
}

/// Exact three-way cell order for the canonical row sort: NULL smallest,
/// then by native value. Doubles compare exactly here — near-ties that
/// sort differently in the two tables still land within double_tol of
/// each other position-wise.
int CompareCell(const Column& column, uint32_t a, uint32_t b) {
  bool a_null = column.IsNull(a);
  bool b_null = column.IsNull(b);
  if (a_null || b_null) {
    return a_null == b_null ? 0 : (a_null ? -1 : 1);
  }
  switch (column.type()) {
    case DataType::kInt64: {
      int64_t x = column.GetInt64(a);
      int64_t y = column.GetInt64(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kDate: {
      int32_t x = column.GetDate(a);
      int32_t y = column.GetDate(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kDouble: {
      double x = column.GetDouble(a);
      double y = column.GetDouble(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kString:
      return column.GetString(a).compare(column.GetString(b));
  }
  return 0;
}

std::vector<uint32_t> CanonicalOrder(const Table& table) {
  std::vector<uint32_t> rows(table.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<uint32_t>(i);
  }
  std::stable_sort(rows.begin(), rows.end(), [&](uint32_t a, uint32_t b) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      int cmp = CompareCell(table.column(c), a, b);
      if (cmp != 0) {
        return cmp < 0;
      }
    }
    return false;
  });
  return rows;
}

std::string DescribeCell(const Column& column, uint32_t row) {
  return column.GetValue(row).ToString();
}

}  // namespace

std::shared_ptr<const Table> ReferenceExecute(const PlanNode& plan,
                                              const Database& database) {
  return Exec(plan, database);
}

std::string DiffTables(const Table& actual, const Table& expected,
                       double double_tol, bool ignore_row_order) {
  if (actual.num_columns() != expected.num_columns()) {
    return StrFormat("column count mismatch: %zu vs %zu",
                     actual.num_columns(), expected.num_columns());
  }
  for (size_t c = 0; c < actual.num_columns(); ++c) {
    const ColumnSpec& a = actual.schema().column(c);
    const ColumnSpec& e = expected.schema().column(c);
    if (a.type != e.type) {
      return StrFormat("column %zu (%s) type mismatch", c, a.name.c_str());
    }
  }
  if (actual.num_rows() != expected.num_rows()) {
    return StrFormat("row count mismatch: %zu vs %zu", actual.num_rows(),
                     expected.num_rows());
  }

  std::vector<uint32_t> a_rows;
  std::vector<uint32_t> e_rows;
  if (ignore_row_order) {
    a_rows = CanonicalOrder(actual);
    e_rows = CanonicalOrder(expected);
  } else {
    a_rows.resize(actual.num_rows());
    for (size_t i = 0; i < a_rows.size(); ++i) {
      a_rows[i] = static_cast<uint32_t>(i);
    }
    e_rows = a_rows;
  }

  for (size_t i = 0; i < a_rows.size(); ++i) {
    for (size_t c = 0; c < actual.num_columns(); ++c) {
      const Column& ac = actual.column(c);
      const Column& ec = expected.column(c);
      uint32_t ar = a_rows[i];
      uint32_t er = e_rows[i];
      bool a_null = ac.IsNull(ar);
      bool e_null = ec.IsNull(er);
      if (a_null != e_null) {
        return StrFormat("row %zu column %s: %s vs %s", i,
                         actual.schema().column(c).name.c_str(),
                         DescribeCell(ac, ar).c_str(),
                         DescribeCell(ec, er).c_str());
      }
      if (a_null) {
        continue;
      }
      bool equal;
      if (ac.type() == DataType::kDouble) {
        double x = ac.GetDouble(ar);
        double y = ec.GetDouble(er);
        double scale = std::max(1.0, std::max(std::fabs(x), std::fabs(y)));
        equal = (std::isnan(x) && std::isnan(y)) ||
                std::fabs(x - y) <= double_tol * scale;
      } else {
        equal = ac.GetValue(ar).ToString() == ec.GetValue(er).ToString();
      }
      if (!equal) {
        return StrFormat("row %zu column %s: %s vs %s", i,
                         actual.schema().column(c).name.c_str(),
                         DescribeCell(ac, ar).c_str(),
                         DescribeCell(ec, er).c_str());
      }
    }
  }
  return "";
}

}  // namespace db
}  // namespace perfeval
