#include "db/csv_loader.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace perfeval {
namespace db {
namespace {

/// Splits one CSV record honoring quotes. Records may span lines when a
/// quoted field contains '\n'; the caller passes the full text, an
/// advancing cursor, and a running physical line counter (1-based, kept
/// in step with the cursor so error messages can point at the file).
/// `*saw_quote` reports whether the record used any quoting — a line
/// holding only `""` yields the same single empty field as a truly blank
/// line, and the caller must not skip it as blank.
Result<std::vector<std::string>> ReadRecord(const std::string& text,
                                            size_t* cursor, size_t* line,
                                            bool* saw_quote) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t quote_line = 0;   ///< line where the open quote started.
  size_t quote_field = 0;  ///< 1-based field index of that quote.
  *saw_quote = false;
  size_t i = *cursor;
  const size_t n = text.size();
  for (; i < n; ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') {
          ++*line;
        }
        field += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      *saw_quote = true;
      quote_line = *line;
      quote_field = fields.size() + 1;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++*line;
      ++i;
      break;
    } else if (c == '\r') {
      // swallow (handles \r\n).
    } else {
      field += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        StrFormat("unterminated quoted field in CSV: quote opened at "
                  "line %zu, field %zu",
                  quote_line, quote_field));
  }
  fields.push_back(std::move(field));
  *cursor = i;
  return fields;
}

bool IsInt(const std::string& s) { return ParseInt64(s).has_value(); }
bool IsDouble(const std::string& s) { return ParseDouble(s).has_value(); }
bool IsDate(const std::string& s) {
  int32_t days = 0;
  return ParseDate(s, &days);
}

DataType InferColumnType(const std::vector<std::vector<std::string>>& rows,
                         size_t column) {
  bool all_int = true;
  bool all_date = true;
  bool all_double = true;
  size_t non_empty = 0;
  for (const std::vector<std::string>& row : rows) {
    const std::string& value = row[column];
    if (value.empty()) {
      continue;  // empty fields load as NULL; they don't vote on the type.
    }
    ++non_empty;
    all_int &= IsInt(value);
    all_date &= IsDate(value);
    all_double &= IsDouble(value);
  }
  if (non_empty == 0) {
    return DataType::kString;
  }
  if (all_int) {
    return DataType::kInt64;
  }
  if (all_date) {
    return DataType::kDate;
  }
  if (all_double) {
    return DataType::kDouble;
  }
  return DataType::kString;
}

Result<Value> ParseTyped(const std::string& text, DataType type,
                         size_t row_number, size_t line_number,
                         const std::string& column) {
  auto fail = [&](const char* what) {
    return Status::InvalidArgument(
        StrFormat("row %zu (line %zu), column '%s': '%s' is not a valid %s",
                  row_number, line_number, column.c_str(), text.c_str(),
                  what));
  };
  if (text.empty() && type != DataType::kString) {
    // An empty numeric/date field is NULL (a string field stays "").
    return Value::Null(type);
  }
  switch (type) {
    case DataType::kInt64: {
      std::optional<int64_t> v = ParseInt64(text);
      if (!v) {
        return fail("int64");
      }
      return Value::Int64(*v);
    }
    case DataType::kDouble: {
      std::optional<double> v = ParseDouble(text);
      if (!v) {
        return fail("double");
      }
      return Value::Double(*v);
    }
    case DataType::kDate: {
      int32_t days = 0;
      if (!ParseDate(text, &days)) {
        return fail("date (YYYY-MM-DD)");
      }
      return Value::Date(days);
    }
    case DataType::kString:
      return Value::String(text);
  }
  return fail("value");
}

}  // namespace

Result<std::shared_ptr<Table>> ParseCsvText(const std::string& text,
                                            const Schema* schema) {
  size_t cursor = 0;
  size_t line = 1;
  bool saw_quote = false;
  PERFEVAL_ASSIGN_OR_RETURN(std::vector<std::string> header,
                            ReadRecord(text, &cursor, &line, &saw_quote));
  if (header.size() == 1 && header[0].empty() && !saw_quote) {
    return Status::InvalidArgument("CSV has no header line");
  }
  if (schema != nullptr) {
    if (schema->num_columns() != header.size()) {
      return Status::InvalidArgument(StrFormat(
          "schema has %zu columns but the CSV header has %zu",
          schema->num_columns(), header.size()));
    }
    for (size_t c = 0; c < header.size(); ++c) {
      if (Trim(header[c]) != schema->column(c).name) {
        return Status::InvalidArgument(
            "CSV header column '" + header[c] +
            "' does not match schema column '" + schema->column(c).name +
            "'");
      }
    }
  }

  std::vector<std::vector<std::string>> records;
  // Physical line each record starts on — quoted fields may span lines,
  // so the row number alone does not locate a record in the file.
  std::vector<size_t> record_lines;
  while (cursor < text.size()) {
    size_t record_line = line;
    PERFEVAL_ASSIGN_OR_RETURN(std::vector<std::string> record,
                              ReadRecord(text, &cursor, &line, &saw_quote));
    if (record.size() == 1 && record[0].empty() && !saw_quote) {
      continue;  // blank line — but `""` is a real one-field record.
    }
    if (record.size() != header.size()) {
      return Status::InvalidArgument(StrFormat(
          "row %zu (line %zu) has %zu fields, expected %zu",
          records.size() + 2, record_line, record.size(), header.size()));
    }
    records.push_back(std::move(record));
    record_lines.push_back(record_line);
  }

  Schema resolved;
  if (schema != nullptr) {
    resolved = *schema;
  } else {
    std::vector<ColumnSpec> specs;
    for (size_t c = 0; c < header.size(); ++c) {
      specs.push_back({Trim(header[c]), InferColumnType(records, c)});
    }
    resolved = Schema(std::move(specs));
  }

  auto table = std::make_shared<Table>(resolved);
  table->ReserveRows(records.size());
  for (size_t r = 0; r < records.size(); ++r) {
    std::vector<Value> row;
    row.reserve(resolved.num_columns());
    for (size_t c = 0; c < resolved.num_columns(); ++c) {
      PERFEVAL_ASSIGN_OR_RETURN(
          Value value,
          ParseTyped(records[r][c], resolved.column(c).type, r + 2,
                     record_lines[r], resolved.column(c).name));
      row.push_back(std::move(value));
    }
    table->AppendRow(row);
  }
  return table;
}

namespace {

/// RFC-4180 quoting: fields holding the delimiter, a quote, or a line
/// break are wrapped in quotes with `"` doubled. Everything else is
/// written bare (so an empty field round-trips back to NULL for
/// numeric/date columns).
void AppendCsvField(const std::string& field, std::string* out) {
  bool needs_quotes = field.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quotes) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') {
      *out += '"';
    }
    *out += c;
  }
  *out += '"';
}

std::string RenderCsvCell(const Column& column, size_t row) {
  if (column.IsNull(row)) {
    return "";
  }
  switch (column.type()) {
    case DataType::kInt64:
      return StrFormat("%lld",
                       static_cast<long long>(column.GetInt64(row)));
    case DataType::kDouble:
      // Shortest round-trippable rendering: %.17g survives the
      // text → double → text cycle bit-exactly.
      return StrFormat("%.17g", column.GetDouble(row));
    case DataType::kDate:
      return FormatDate(column.GetDate(row));
    case DataType::kString:
      return column.GetString(row);
  }
  return "";
}

}  // namespace

std::string WriteCsvText(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) {
      out += ',';
    }
    AppendCsvField(schema.column(c).name, &out);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) {
        out += ',';
      }
      AppendCsvField(RenderCsvCell(table.column(c), r), &out);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open CSV file for writing: " + path);
  }
  file << WriteCsvText(table);
  file.close();
  if (!file) {
    return Status::IoError("failed writing CSV file: " + path);
  }
  return Status::OK();
}

Result<std::shared_ptr<Table>> LoadCsv(const std::string& path,
                                       const Schema& schema) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvText(buffer.str(), &schema);
}

Result<std::shared_ptr<Table>> LoadCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvText(buffer.str(), nullptr);
}

}  // namespace db
}  // namespace perfeval
