#include "db/csv_loader.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace perfeval {
namespace db {
namespace {

/// Splits one CSV record honoring quotes. Records may span lines when a
/// quoted field contains '\n'; the caller passes the full text and an
/// advancing cursor.
Result<std::vector<std::string>> ReadRecord(const std::string& text,
                                            size_t* cursor) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *cursor;
  const size_t n = text.size();
  for (; i < n; ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // swallow (handles \r\n).
    } else {
      field += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field in CSV");
  }
  fields.push_back(std::move(field));
  *cursor = i;
  return fields;
}

bool IsInt(const std::string& s) { return ParseInt64(s).has_value(); }
bool IsDouble(const std::string& s) { return ParseDouble(s).has_value(); }
bool IsDate(const std::string& s) {
  int32_t days = 0;
  return ParseDate(s, &days);
}

DataType InferColumnType(const std::vector<std::vector<std::string>>& rows,
                         size_t column) {
  bool all_int = true;
  bool all_date = true;
  bool all_double = true;
  for (const std::vector<std::string>& row : rows) {
    const std::string& value = row[column];
    all_int &= IsInt(value);
    all_date &= IsDate(value);
    all_double &= IsDouble(value);
  }
  if (rows.empty()) {
    return DataType::kString;
  }
  if (all_int) {
    return DataType::kInt64;
  }
  if (all_date) {
    return DataType::kDate;
  }
  if (all_double) {
    return DataType::kDouble;
  }
  return DataType::kString;
}

Result<Value> ParseTyped(const std::string& text, DataType type,
                         size_t row_number, const std::string& column) {
  auto fail = [&](const char* what) {
    return Status::InvalidArgument(
        StrFormat("row %zu, column '%s': '%s' is not a valid %s",
                  row_number, column.c_str(), text.c_str(), what));
  };
  switch (type) {
    case DataType::kInt64: {
      std::optional<int64_t> v = ParseInt64(text);
      if (!v) {
        return fail("int64");
      }
      return Value::Int64(*v);
    }
    case DataType::kDouble: {
      std::optional<double> v = ParseDouble(text);
      if (!v) {
        return fail("double");
      }
      return Value::Double(*v);
    }
    case DataType::kDate: {
      int32_t days = 0;
      if (!ParseDate(text, &days)) {
        return fail("date (YYYY-MM-DD)");
      }
      return Value::Date(days);
    }
    case DataType::kString:
      return Value::String(text);
  }
  return fail("value");
}

}  // namespace

Result<std::shared_ptr<Table>> ParseCsvText(const std::string& text,
                                            const Schema* schema) {
  size_t cursor = 0;
  PERFEVAL_ASSIGN_OR_RETURN(std::vector<std::string> header,
                            ReadRecord(text, &cursor));
  if (header.size() == 1 && header[0].empty()) {
    return Status::InvalidArgument("CSV has no header line");
  }
  if (schema != nullptr) {
    if (schema->num_columns() != header.size()) {
      return Status::InvalidArgument(StrFormat(
          "schema has %zu columns but the CSV header has %zu",
          schema->num_columns(), header.size()));
    }
    for (size_t c = 0; c < header.size(); ++c) {
      if (Trim(header[c]) != schema->column(c).name) {
        return Status::InvalidArgument(
            "CSV header column '" + header[c] +
            "' does not match schema column '" + schema->column(c).name +
            "'");
      }
    }
  }

  std::vector<std::vector<std::string>> records;
  while (cursor < text.size()) {
    PERFEVAL_ASSIGN_OR_RETURN(std::vector<std::string> record,
                              ReadRecord(text, &cursor));
    if (record.size() == 1 && record[0].empty()) {
      continue;  // blank line.
    }
    if (record.size() != header.size()) {
      return Status::InvalidArgument(StrFormat(
          "row %zu has %zu fields, expected %zu", records.size() + 2,
          record.size(), header.size()));
    }
    records.push_back(std::move(record));
  }

  Schema resolved;
  if (schema != nullptr) {
    resolved = *schema;
  } else {
    std::vector<ColumnSpec> specs;
    for (size_t c = 0; c < header.size(); ++c) {
      specs.push_back({Trim(header[c]), InferColumnType(records, c)});
    }
    resolved = Schema(std::move(specs));
  }

  auto table = std::make_shared<Table>(resolved);
  table->ReserveRows(records.size());
  for (size_t r = 0; r < records.size(); ++r) {
    std::vector<Value> row;
    row.reserve(resolved.num_columns());
    for (size_t c = 0; c < resolved.num_columns(); ++c) {
      PERFEVAL_ASSIGN_OR_RETURN(
          Value value,
          ParseTyped(records[r][c], resolved.column(c).type, r + 2,
                     resolved.column(c).name));
      row.push_back(std::move(value));
    }
    table->AppendRow(row);
  }
  return table;
}

Result<std::shared_ptr<Table>> LoadCsv(const std::string& path,
                                       const Schema& schema) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvText(buffer.str(), &schema);
}

Result<std::shared_ptr<Table>> LoadCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvText(buffer.str(), nullptr);
}

}  // namespace db
}  // namespace perfeval
