#ifndef PERFEVAL_DB_BACKEND_KIND_H_
#define PERFEVAL_DB_BACKEND_KIND_H_

#include <string>

#include "common/result.h"

namespace perfeval {
namespace db {

/// Which execution backend serves queries. The knob travels
/// DatabaseOptions -> SQL shell (`\backend col|row`) -> bench
/// (`--dbBackend=`), so the same logical plan can be raced through two
/// genuinely different physical designs under one harness — the paper's
/// hamsterdb-vs-berkeleydb shape reproduced internally.
///
///  - kColumnar: the operator-at-a-time vectorized executor over columnar
///    storage with selection vectors (src/db/plan.cc) — the engine every
///    prior A-bench measured.
///  - kRowStore: engine::RowStoreBackend — tables packed as fixed-stride
///    row tuples over a shared string heap, executed row-at-a-time with
///    batching (no selection vectors, tuple-at-a-time CPU cost, row-major
///    I/O). A different design point, not a wrapper over the reference
///    interpreter.
enum class BackendKind {
  kColumnar,
  kRowStore,
};

const char* BackendKindName(BackendKind kind);

/// Parses "col" / "columnar" / "row" / "rowstore".
Result<BackendKind> ParseBackendKind(const std::string& text);

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_BACKEND_KIND_H_
