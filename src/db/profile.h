#ifndef PERFEVAL_DB_PROFILE_H_
#define PERFEVAL_DB_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace perfeval {
namespace db {

/// One operator's execution record.
struct OpTrace {
  std::string op;        ///< e.g. "FilterScan(lineitem)".
  size_t rows_in = 0;
  size_t rows_out = 0;
  int64_t wall_ns = 0;   ///< measured CPU-side time in the operator.
  int64_t stall_ns = 0;  ///< simulated I/O stall charged inside it.
  /// Workers the operator's parallel region actually used after the
  /// adaptive go-parallel decision (1 = it ran serially; 0 = the operator
  /// has no parallel region). Observable proof that small inputs stay
  /// serial even when many threads were requested.
  int threads_used = 0;
};

/// Per-operator trace of a query execution — the engine's answer to the
/// paper's "use timings provided by the tested software" (slides 28–29,
/// MonetDB's TRACE) and "find out where the time goes and why" (slide 18).
class Profiler {
 public:
  void Record(OpTrace trace) { traces_.push_back(std::move(trace)); }

  const std::vector<OpTrace>& traces() const { return traces_; }
  void Clear() { traces_.clear(); }

  int64_t TotalWallNs() const;
  int64_t TotalStallNs() const;

  /// MonetDB-TRACE-like rendering: one line per operator with times and
  /// cardinalities.
  std::string ToString() const;

 private:
  std::vector<OpTrace> traces_;
};

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_PROFILE_H_
