#include "db/profile.h"

#include "common/string_util.h"

namespace perfeval {
namespace db {

int64_t Profiler::TotalWallNs() const {
  int64_t total = 0;
  for (const OpTrace& trace : traces_) {
    total += trace.wall_ns;
  }
  return total;
}

int64_t Profiler::TotalStallNs() const {
  int64_t total = 0;
  for (const OpTrace& trace : traces_) {
    total += trace.stall_ns;
  }
  return total;
}

std::string Profiler::ToString() const {
  std::string out =
      StrFormat("%-40s %10s %10s %12s %12s %4s\n", "operator", "rows in",
                "rows out", "cpu (ms)", "stall (ms)", "thr");
  for (const OpTrace& trace : traces_) {
    out += StrFormat("%-40s %10zu %10zu %12.3f %12.3f %4d\n",
                     trace.op.c_str(), trace.rows_in, trace.rows_out,
                     trace.wall_ns / 1e6, trace.stall_ns / 1e6,
                     trace.threads_used);
  }
  out += StrFormat("%-40s %10s %10s %12.3f %12.3f\n", "total", "", "",
                   TotalWallNs() / 1e6, TotalStallNs() / 1e6);
  return out;
}

}  // namespace db
}  // namespace perfeval
