#include "db/table.h"

#include "common/string_util.h"

namespace perfeval {
namespace db {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t Schema::MustIndexOf(const std::string& name) const {
  int index = IndexOf(name);
  PERFEVAL_CHECK_GE(index, 0) << "no column named " << name;
  return static_cast<size_t>(index);
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.emplace_back(schema_.column(i).type);
  }
}

void Table::AppendRow(const std::vector<Value>& values) {
  PERFEVAL_CHECK_EQ(values.size(), columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendValue(values[i]);
  }
  ++num_rows_;
}

void Table::AppendTable(const Table& other) {
  PERFEVAL_CHECK_EQ(columns_.size(), other.columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendColumn(other.columns_[i]);
  }
  num_rows_ += other.num_rows_;
}

void Table::FinishBulkLoad() {
  if (columns_.empty()) {
    num_rows_ = 0;
    return;
  }
  num_rows_ = columns_[0].size();
  for (const Column& column : columns_) {
    PERFEVAL_CHECK_EQ(column.size(), num_rows_)
        << "bulk load produced ragged columns";
  }
}

void Table::ReserveRows(size_t n) {
  for (Column& column : columns_) {
    column.Reserve(n);
  }
}

size_t Table::ByteSize() const {
  size_t bytes = 0;
  for (const Column& column : columns_) {
    bytes += column.ByteSize();
  }
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<size_t> widths(num_columns());
  size_t rows_to_show = std::min(num_rows_, max_rows);
  for (size_t c = 0; c < num_columns(); ++c) {
    widths[c] = schema_.column(c).name.size();
    for (size_t r = 0; r < rows_to_show; ++r) {
      widths[c] = std::max(widths[c], ValueAt(r, c).ToString().size());
    }
  }
  std::string out;
  for (size_t c = 0; c < num_columns(); ++c) {
    if (c > 0) {
      out += " | ";
    }
    out += PadRight(schema_.column(c).name, widths[c]);
  }
  out += "\n";
  for (size_t r = 0; r < rows_to_show; ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      if (c > 0) {
        out += " | ";
      }
      out += PadRight(ValueAt(r, c).ToString(), widths[c]);
    }
    out += "\n";
  }
  if (rows_to_show < num_rows_) {
    out += StrFormat("... (%zu rows total)\n", num_rows_);
  }
  return out;
}

}  // namespace db
}  // namespace perfeval
