#ifndef PERFEVAL_DB_SCAN_IO_H_
#define PERFEVAL_DB_SCAN_IO_H_

#include <functional>
#include <string>
#include <vector>

#include "db/expr.h"
#include "db/plan.h"
#include "db/storage.h"
#include "db/table.h"

namespace perfeval {
namespace db {

/// The scan layer's I/O accounting, factored out of the Scan/FilterScan
/// operators so it can be *replayed* without executing any compute.
///
/// Why replay exists: a sharded deployment partitions a table's rows across
/// N databases, which changes the physical page geometry (ceil(rows/page)
/// per shard, per-shard buffer pools, per-shard stream heads) — so summing
/// per-shard StorageStats can never equal the single-node numbers. The
/// shard coordinator instead keeps one StorageManager registered with the
/// *global* (unpartitioned) layout and replays the logical scan I/O of each
/// query against it, in the exact order the single-node engine would have
/// issued it. Because both sides call the same functions below, the merged
/// logical StorageStats are bit-identical to single-node by construction
/// (DESIGN.md S16).

/// Everything the scan I/O path needs to know about one base table.
struct ScanTableInfo {
  uint32_t table_id = 0;
  const Schema* schema = nullptr;
  size_t num_rows = 0;
};

/// Catalog abstraction for ReplayScanIo: the engine resolves tables through
/// db::Database; the shard coordinator resolves them through its snapshot
/// of the global layout.
class ScanIoCatalog {
 public:
  virtual ~ScanIoCatalog() = default;
  virtual ScanTableInfo Lookup(const std::string& table_name) const = 0;
};

/// The simple (zone-map-prunable) conjuncts of a predicate, in conjunct
/// order — the list FilterScan consults for page skipping. Shared so the
/// replay prunes exactly the chunks the engine would prune.
std::vector<SimplePredicate> SimpleConjuncts(const ExprPtr& predicate);

/// Scan: touches every page of the named columns (all columns when the
/// list is empty), in column order, chunks ascending.
void TouchScanColumns(StorageManager* storage, const ScanTableInfo& table,
                      const std::vector<std::string>& columns);

/// FilterScan's page walk: for every chunk of the table, consult the zone
/// maps of the simple conjuncts' columns; a prunable chunk is skipped
/// entirely (no I/O, no callback), a surviving chunk's pages are touched
/// via TouchMorsel (column order given, from the coordinating thread) and
/// reported to `on_chunk(row_begin, row_end)` — which the engine uses to
/// assemble compute morsels and the replay ignores.
void FilterScanChunkWalk(
    StorageManager* storage, const ScanTableInfo& table,
    const std::vector<uint32_t>& column_ids,
    const std::vector<SimplePredicate>& simple,
    const std::function<void(size_t, size_t)>& on_chunk);

/// Replays the scan-layer I/O of `plan` against `storage`: walks the tree
/// in execution order (depth-first, left child before right) and performs
/// the Scan/FilterScan page touches each leaf would perform, with the same
/// zone-map pruning decisions. Non-leaf operators do no I/O in this engine
/// (intermediates are in-memory), so this reproduces the complete
/// single-node I/O sequence of the plan.
void ReplayScanIo(const PlanNode& plan, const ScanIoCatalog& catalog,
                  StorageManager* storage, bool use_zone_maps = true);

inline void ReplayScanIo(const PlanPtr& plan, const ScanIoCatalog& catalog,
                         StorageManager* storage, bool use_zone_maps = true) {
  ReplayScanIo(*plan, catalog, storage, use_zone_maps);
}

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_SCAN_IO_H_
