#include "db/sort.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sched/parallel_for.h"

namespace perfeval {
namespace db {
namespace {

/// Rows per leaf chunk of the parallel merge sort. Fixed — never derived
/// from the thread count — and large enough that the per-chunk
/// stable_sort amortizes the merge passes.
constexpr size_t kSortChunkRows = 1 << 14;

}  // namespace

RowComparator::RowComparator(const Table& table,
                             const std::vector<SortKey>& keys) {
  keys_.reserve(keys.size());
  for (const SortKey& spec : keys) {
    const Column& column = table.ColumnByName(spec.column);
    Key key;
    key.type = column.type();
    key.ascending = spec.ascending;
    if (column.has_nulls()) {
      key.nulls = column.null_mask().data();
    }
    switch (column.type()) {
      case DataType::kInt64:
      case DataType::kDate:
        key.ints = column.ints().data();
        break;
      case DataType::kDouble:
        key.doubles = column.doubles().data();
        break;
      case DataType::kString:
        key.strings = column.strings().data();
        break;
    }
    keys_.push_back(key);
  }
}

int RowComparator::CompareOne(const Key& key, uint32_t a, uint32_t b) {
  if (key.nulls != nullptr) {
    // NULL payload slots are placeholders; order NULL below every value.
    bool a_null = key.nulls[a] != 0;
    bool b_null = key.nulls[b] != 0;
    if (a_null || b_null) {
      return a_null == b_null ? 0 : (a_null ? -1 : 1);
    }
  }
  switch (key.type) {
    case DataType::kInt64:
    case DataType::kDate: {
      int64_t x = key.ints[a];
      int64_t y = key.ints[b];
      return x < y ? -1 : (x == y ? 0 : 1);
    }
    case DataType::kDouble: {
      // NaN is ordered explicitly — greater than every number, tying with
      // itself — because the raw `<`/`==` fallthrough answered "greater"
      // for BOTH Compare(NaN, x) and Compare(x, NaN). That asymmetry
      // breaks strict weak ordering the moment a descending key direction
      // flips the sign, which is undefined behaviour for std::stable_sort
      // and made the checked-mode "output ordered" invariant fire on
      // correct permutations.
      double x = key.doubles[a];
      double y = key.doubles[b];
      bool x_nan = std::isnan(x);
      bool y_nan = std::isnan(y);
      if (x_nan || y_nan) {
        return x_nan == y_nan ? 0 : (x_nan ? 1 : -1);
      }
      return x < y ? -1 : (x == y ? 0 : 1);
    }
    case DataType::kString: {
      const std::string& x = key.strings[a];
      const std::string& y = key.strings[b];
      return x < y ? -1 : (x == y ? 0 : 1);
    }
  }
  return 0;
}

void StableSortRows(const RowComparator& comparator, int threads,
                    std::vector<uint32_t>* rows) {
  size_t n = rows->size();
  if (threads <= 1 || n <= kSortChunkRows * 2) {
    std::stable_sort(rows->begin(), rows->end(), comparator);
    return;
  }
  size_t num_chunks = (n + kSortChunkRows - 1) / kSortChunkRows;
  sched::ParallelFor(threads, num_chunks, [&](size_t c) {
    size_t begin = c * kSortChunkRows;
    size_t end = std::min(n, begin + kSortChunkRows);
    std::stable_sort(rows->begin() + static_cast<long>(begin),
                     rows->begin() + static_cast<long>(end), comparator);
  });
  // Bottom-up pairwise merges; each level's pairs are independent so they
  // run in parallel. std::merge is stable (left range wins ties), so the
  // final order equals one std::stable_sort over the whole range.
  std::vector<uint32_t> scratch(n);
  std::vector<uint32_t>* src = rows;
  std::vector<uint32_t>* dst = &scratch;
  for (size_t width = kSortChunkRows; width < n; width *= 2) {
    size_t num_pairs = (n + 2 * width - 1) / (2 * width);
    sched::ParallelFor(threads, num_pairs, [&](size_t p) {
      size_t begin = p * 2 * width;
      size_t mid = std::min(n, begin + width);
      size_t end = std::min(n, begin + 2 * width);
      std::merge(src->begin() + static_cast<long>(begin),
                 src->begin() + static_cast<long>(mid),
                 src->begin() + static_cast<long>(mid),
                 src->begin() + static_cast<long>(end),
                 dst->begin() + static_cast<long>(begin), comparator);
    });
    std::swap(src, dst);
  }
  if (src != rows) {
    *rows = std::move(scratch);
  }
}

}  // namespace db
}  // namespace perfeval
