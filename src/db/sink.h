#ifndef PERFEVAL_DB_SINK_H_
#define PERFEVAL_DB_SINK_H_

#include <cstdint>
#include <string>

#include "db/table.h"

namespace perfeval {
namespace db {

/// Where query results go. The paper's slide-23 table shows that *where the
/// output went* changes measured client time — Q16's 1.2MB result costs
/// twice as much printed to a terminal as written to a file. We model the
/// three destinations it compares:
///  - kDiscard: result computed, never rendered (server-side-only timing).
///  - kFile:    rendered to text, charged a buffered-write cost per byte.
///  - kTerminal: rendered to text, charged a terminal-emulator cost per
///               byte plus a per-line flush cost.
/// Rendering cost is real CPU (string formatting happens); the device cost
/// is simulated stall, consistent with the disk substitution (DESIGN.md).
enum class SinkKind {
  kDiscard,
  kFile,
  kTerminal,
};

const char* SinkKindName(SinkKind kind);

/// Cost model of the output devices.
struct SinkModel {
  double file_ns_per_byte = 25.0;       ///< buffered local file write.
  double terminal_ns_per_byte = 600.0;  ///< terminal emulator rendering.
  int64_t terminal_ns_per_line = 50'000;  ///< per-line scroll/flush.
};

/// Result of sending a table to a sink.
struct SinkReport {
  size_t bytes = 0;      ///< rendered result size (0 for kDiscard).
  size_t lines = 0;
  int64_t stall_ns = 0;  ///< simulated device time.
};

/// Renders `table` as text and charges the sink's cost model.
/// The rendered text itself is thrown away (we only need its size and the
/// CPU cost of producing it).
SinkReport SendToSink(const Table& table, SinkKind kind,
                      const SinkModel& model = SinkModel());

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_SINK_H_
