#ifndef PERFEVAL_DB_SORT_H_
#define PERFEVAL_DB_SORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/plan.h"
#include "db/table.h"

namespace perfeval {
namespace db {

/// Columnar comparator kernel over a table's sort-key columns: the typed
/// column vectors are resolved once at construction, so a comparison is a
/// few array loads instead of two Value materializations per key (the
/// per-comparison allocation churn of the old Sort path). Shared by Sort,
/// TopN and the parallel merge sort.
///
/// Ordering semantics: doubles by `<`/`==` with NaN ordered as the
/// greatest double and tying with itself (a proper total order — the raw
/// `<`/`==` fallthrough is asymmetric for NaN, which violates the strict
/// weak ordering std::stable_sort requires once a descending key flips
/// the sign), strings lexicographically. Int64/date keys compare
/// natively instead of through the double cast, which is identical for
/// every value below 2^53. NULL sorts as the smallest value of its type
/// (before the key's direction flip, so NULLs come first ascending and
/// last descending); two NULLs tie.
class RowComparator {
 public:
  RowComparator(const Table& table, const std::vector<SortKey>& keys);

  /// Strict-weak "row a sorts before row b" under the key list.
  bool Less(uint32_t a, uint32_t b) const {
    for (const Key& key : keys_) {
      int c = CompareOne(key, a, b);
      if (c != 0) {
        return key.ascending ? c < 0 : c > 0;
      }
    }
    return false;
  }

  bool operator()(uint32_t a, uint32_t b) const { return Less(a, b); }

 private:
  struct Key {
    DataType type;
    const int64_t* ints = nullptr;
    const double* doubles = nullptr;
    const std::string* strings = nullptr;
    const uint8_t* nulls = nullptr;  ///< null mask, or nullptr if none.
    bool ascending = true;
  };

  static int CompareOne(const Key& key, uint32_t a, uint32_t b);

  std::vector<Key> keys_;
};

/// Stable-sorts `rows` by `comparator` — byte-identical to
/// std::stable_sort at any `threads` setting. Parallel path: fixed-size
/// chunks (never derived from the thread count) stable-sort in parallel,
/// then pairwise stable merges (left range wins ties) reproduce the
/// serial result; chunk boundaries cannot leak into the output because a
/// stable sort's output is a pure function of input order and comparator.
void StableSortRows(const RowComparator& comparator, int threads,
                    std::vector<uint32_t>* rows);

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_SORT_H_
