#ifndef PERFEVAL_DB_VALUE_H_
#define PERFEVAL_DB_VALUE_H_

#include <string>
#include <variant>

#include "common/check.h"
#include "db/types.h"

namespace perfeval {
namespace db {

/// A single typed scalar. Used at API boundaries (literals, row access,
/// query results); the hot execution paths operate on raw column vectors
/// instead.
class Value {
 public:
  Value() : type_(DataType::kInt64), data_(int64_t{0}) {}

  static Value Int64(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) { return Value(DataType::kDouble, v); }
  static Value String(std::string v) {
    return Value(DataType::kString, std::move(v));
  }
  static Value Date(int32_t days) {
    return Value(DataType::kDate, static_cast<int64_t>(days));
  }
  /// The SQL NULL of a given declared type. Accessing the payload of a
  /// NULL aborts; callers must test is_null() first.
  static Value Null(DataType type) {
    Value v = (type == DataType::kDouble) ? Value(type, 0.0)
              : (type == DataType::kString)
                  ? Value(type, std::string())
                  : Value(type, int64_t{0});
    v.null_ = true;
    return v;
  }

  DataType type() const { return type_; }
  bool is_null() const { return null_; }

  int64_t AsInt64() const {
    PERFEVAL_CHECK(!null_) << "AsInt64 on NULL";
    PERFEVAL_CHECK(type_ == DataType::kInt64 || type_ == DataType::kDate);
    return std::get<int64_t>(data_);
  }
  double AsDouble() const {
    PERFEVAL_CHECK(!null_) << "AsDouble on NULL";
    if (type_ == DataType::kDouble) {
      return std::get<double>(data_);
    }
    PERFEVAL_CHECK(type_ != DataType::kString) << "string is not numeric";
    return static_cast<double>(std::get<int64_t>(data_));
  }
  const std::string& AsString() const {
    PERFEVAL_CHECK(!null_) << "AsString on NULL";
    PERFEVAL_CHECK(type_ == DataType::kString);
    return std::get<std::string>(data_);
  }
  int32_t AsDate() const {
    PERFEVAL_CHECK(!null_) << "AsDate on NULL";
    PERFEVAL_CHECK(type_ == DataType::kDate);
    return static_cast<int32_t>(std::get<int64_t>(data_));
  }

  /// Total order within a type; numeric types compare numerically across
  /// kInt64/kDouble/kDate (integers natively, so values beyond 2^53 stay
  /// exact). Comparing a string with a numeric or a NULL aborts — NULL has
  /// no order; expression code handles NULL before comparing.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Human-readable rendering ("42", "3.14", "abc", "1998-09-02", "NULL").
  std::string ToString() const;

 private:
  Value(DataType type, int64_t v) : type_(type), data_(v) {}
  Value(DataType type, double v) : type_(type), data_(v) {}
  Value(DataType type, std::string v) : type_(type), data_(std::move(v)) {}

  DataType type_;
  bool null_ = false;
  std::variant<int64_t, double, std::string> data_;
};

}  // namespace db
}  // namespace perfeval

#endif  // PERFEVAL_DB_VALUE_H_
