#include "db/plan.h"

#include <algorithm>
#include <charconv>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/string_util.h"
#include "core/timer.h"
#include "db/database.h"
#include "db/error.h"
#include "db/invariants.h"
#include "db/join.h"
#include "db/scan_io.h"
#include "db/sort.h"
#include "sched/parallel_for.h"

namespace perfeval {
namespace db {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kDebug:
      return "debug (tuple-at-a-time, checked)";
    case ExecMode::kOptimized:
      return "optimized (vectorized)";
  }
  return "unknown";
}

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum:
      return "sum";
    case AggOp::kAvg:
      return "avg";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
    case AggOp::kCount:
      return "count";
    case AggOp::kCountDistinct:
      return "count_distinct";
  }
  return "?";
}

std::vector<uint32_t> Relation::RowIds() const {
  if (selection) {
    return *selection;
  }
  std::vector<uint32_t> ids(table->num_rows());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<uint32_t>(i);
  }
  return ids;
}

namespace {

/// Dispatches `count` morsels for an operator over `input_rows` input
/// rows. The worker count is the policy's adaptive decision — 1 below the
/// serial cutoff, where fan-out overhead would exceed the work itself (the
/// sf=0.01 regression A7 used to document) — and never influences morsel
/// boundaries, so every floating-point reduction order is identical at any
/// `threads` setting and in both execution modes.
///
/// QueryError containment: morsel work can throw (checked int64
/// aggregation, checked-mode assertions), but an exception escaping a
/// sched::ParallelFor worker lambda would std::terminate the process. Each
/// morsel's error is captured in its own slot and the lowest-index one is
/// rethrown on the coordinator — deterministic at any thread count.
///
/// Parallel regions additionally record their wall time and critical path
/// (max per-worker thread-CPU busy time) into ctx.parallel_sim. Returns
/// the worker count used, for OpTrace::threads_used.
int ParallelMorsels(ExecContext& ctx, size_t input_rows, size_t count,
                    const std::function<void(size_t)>& fn) {
  int threads = ctx.morsel.EffectiveThreads(input_rows, ctx.threads);
  if (threads <= 1 || count <= 1) {
    for (size_t m = 0; m < count; ++m) {
      fn(m);  // runs on the coordinator; exceptions propagate directly.
    }
    return 1;
  }
  std::vector<std::unique_ptr<QueryError>> errors(count);
  sched::ParallelForStats stats;
  core::WallTimer timer;
  sched::ParallelFor(
      threads, count,
      [&](size_t m) {
        try {
          fn(m);
        } catch (const QueryError& e) {
          errors[m] = std::make_unique<QueryError>(e);
        }
      },
      &stats);
  if (ctx.parallel_sim != nullptr) {
    int64_t wall = timer.ElapsedNs();
    // A worker's CPU time cannot exceed the region's wall time; clamping
    // guards against thread-CPU clock granularity making the modeled
    // critical path longer than what was measured.
    int64_t critical = std::min(stats.MaxBusyNs(), wall);
    ctx.parallel_sim->region_wall_ns += wall;
    ctx.parallel_sim->region_critical_ns += critical;
    ++ctx.parallel_sim->regions;
  }
  for (const std::unique_ptr<QueryError>& e : errors) {
    if (e != nullptr) {
      throw *e;
    }
  }
  return stats.workers_spawned;
}

/// RAII operator trace: measures wall time and attributes storage stalls.
class TraceScope {
 public:
  TraceScope(ExecContext& ctx, std::string op, size_t rows_in)
      : ctx_(ctx), op_(std::move(op)), rows_in_(rows_in) {
    stall_before_ = ctx_.storage ? ctx_.storage->total_stall_ns() : 0;
  }

  /// Workers the operator's parallel region used (the ParallelMorsels
  /// return value); left at 0 for operators without a parallel region.
  void set_threads_used(int threads) { threads_used_ = threads; }

  void Finish(size_t rows_out) {
    if (ctx_.profiler == nullptr) {
      return;
    }
    OpTrace trace;
    trace.op = std::move(op_);
    trace.rows_in = rows_in_;
    trace.rows_out = rows_out;
    trace.wall_ns = timer_.ElapsedNs();
    trace.stall_ns =
        (ctx_.storage ? ctx_.storage->total_stall_ns() : 0) - stall_before_;
    trace.threads_used = threads_used_;
    ctx_.profiler->Record(std::move(trace));
  }

 private:
  ExecContext& ctx_;
  std::string op_;
  size_t rows_in_;
  int64_t stall_before_;
  int threads_used_ = 0;
  core::WallTimer timer_;
};

/// Gather: new table containing `rows` of `source` in order. Optimized
/// mode runs typed tight loops, morsel-parallel when the adaptive policy
/// decides the input is big enough — each morsel fills a disjoint index
/// range of the pre-sized output vectors, a pure scatter-by-index, so the
/// result is byte-identical at any thread count. Debug mode goes
/// tuple-at-a-time through the generic Value path with per-row validation
/// (the interpreted, assertion-heavy code path of an un-optimized build).
std::shared_ptr<Table> GatherRows(ExecContext& ctx, const Table& source,
                                  const std::vector<uint32_t>& rows) {
  auto out = std::make_shared<Table>(source.schema());
  // The typed fast path copies raw payload vectors, which would silently
  // turn NULLs into their placeholder values; nullable sources take the
  // Value path, which preserves the null mask.
  if (ctx.mode == ExecMode::kDebug || source.has_nulls()) {
    out->ReserveRows(rows.size());
    for (uint32_t r : rows) {
      PERFEVAL_CHECK_LT(r, source.num_rows());
      std::vector<Value> row;
      row.reserve(source.num_columns());
      for (size_t c = 0; c < source.num_columns(); ++c) {
        row.push_back(source.column(c).GetValue(r));
      }
      out->AppendRow(row);
    }
    return out;
  }
  size_t n = rows.size();
  size_t morsel_rows = std::max<size_t>(1, ctx.morsel.morsel_rows);
  size_t num_morsels = ctx.morsel.NumMorsels(n);
  auto for_each_range = [&](auto&& fill) {
    ParallelMorsels(ctx, n, num_morsels, [&](size_t m) {
      size_t begin = m * morsel_rows;
      fill(begin, std::min(n, begin + morsel_rows));
    });
  };
  for (size_t c = 0; c < source.num_columns(); ++c) {
    const Column& in = source.column(c);
    Column& dst = out->column(c);
    switch (in.type()) {
      case DataType::kInt64:
      case DataType::kDate: {
        const std::vector<int64_t>& data = in.ints();
        std::vector<int64_t>& target = dst.mutable_ints();
        target.resize(n);
        for_each_range([&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            target[i] = data[rows[i]];
          }
        });
        break;
      }
      case DataType::kDouble: {
        const std::vector<double>& data = in.doubles();
        std::vector<double>& target = dst.mutable_doubles();
        target.resize(n);
        for_each_range([&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            target[i] = data[rows[i]];
          }
        });
        break;
      }
      case DataType::kString: {
        const std::vector<std::string>& data = in.strings();
        std::vector<std::string>& target = dst.mutable_strings();
        target.resize(n);
        for_each_range([&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            target[i] = data[rows[i]];
          }
        });
        break;
      }
    }
  }
  out->FinishBulkLoad();
  return out;
}

/// One predicate compiled once per operator: the flattened conjuncts plus
/// their `column <op> constant` forms where available. Compiling once —
/// instead of re-walking the expression tree in every morsel — keeps the
/// per-morsel work purely computational.
struct CompiledPredicate {
  ExprPtr predicate;                    ///< whole tree (row paths).
  std::vector<ExprPtr> conjuncts;
  std::vector<SimplePredicate> simple;  ///< parallel to `conjuncts`.
  std::vector<uint8_t> is_simple;       ///< parallel to `conjuncts`.
};

CompiledPredicate CompilePredicate(const ExprPtr& predicate) {
  CompiledPredicate out;
  out.predicate = predicate;
  predicate->CollectConjuncts(&out.conjuncts, predicate);
  out.simple.resize(out.conjuncts.size());
  out.is_simple.assign(out.conjuncts.size(), 0);
  for (size_t i = 0; i < out.conjuncts.size(); ++i) {
    out.is_simple[i] =
        out.conjuncts[i]->AsSimplePredicate(&out.simple[i]) ? 1 : 0;
  }
  return out;
}

/// Applies a compiled predicate to `rows` in place. Optimized mode runs
/// the branch-free selection kernels for simple conjuncts and a row loop
/// for the rest; debug mode interprets the whole predicate
/// tuple-at-a-time. Nullable tables also take the row path — the kernels
/// read raw payload vectors and would compare NULL placeholders as real
/// values, while EvalBool collapses UNKNOWN to false (NULL never matches).
void ApplyPredicate(const ExecContext& ctx, const Table& table,
                    const CompiledPredicate& pred,
                    std::vector<uint32_t>* rows) {
  if (ctx.mode == ExecMode::kDebug) {
    size_t kept = 0;
    for (uint32_t r : *rows) {
      PERFEVAL_CHECK_LT(r, table.num_rows());  // per-tuple validation.
      if (pred.predicate->EvalBool(table, r)) {
        (*rows)[kept++] = r;
      }
    }
    rows->resize(kept);
    return;
  }
  if (table.has_nulls()) {
    size_t kept = 0;
    for (uint32_t r : *rows) {
      if (pred.predicate->EvalBool(table, r)) {
        (*rows)[kept++] = r;
      }
    }
    rows->resize(kept);
    return;
  }
  for (size_t i = 0; i < pred.conjuncts.size(); ++i) {
    if (pred.is_simple[i] != 0) {
      const SimplePredicate& sp = pred.simple[i];
      RefineSelection(table.column(sp.column), sp.op, sp.value, rows);
    } else {
      size_t kept = 0;
      for (uint32_t r : *rows) {
        if (pred.conjuncts[i]->EvalBool(table, r)) {
          (*rows)[kept++] = r;
        }
      }
      rows->resize(kept);
    }
    if (rows->empty()) {
      break;
    }
  }
}

/// Evaluates a compiled predicate over the dense row range [begin, end),
/// appending survivors to `*out` in row order. Equivalent to materializing
/// the identity range and calling ApplyPredicate, but the optimized
/// null-free path feeds the range straight through the first simple
/// conjunct's branch-free kernel, so the identity vector never exists.
void FilterRowRange(const ExecContext& ctx, const Table& table,
                    const CompiledPredicate& pred, size_t begin, size_t end,
                    std::vector<uint32_t>* out) {
  if (ctx.mode == ExecMode::kOptimized && !table.has_nulls() &&
      !pred.conjuncts.empty() && pred.is_simple[0] != 0) {
    const SimplePredicate& first = pred.simple[0];
    FilterColumnRange(table.column(first.column), first.op, first.value,
                      begin, end, out);
    for (size_t i = 1; i < pred.conjuncts.size() && !out->empty(); ++i) {
      if (pred.is_simple[i] != 0) {
        const SimplePredicate& sp = pred.simple[i];
        RefineSelection(table.column(sp.column), sp.op, sp.value, out);
      } else {
        size_t kept = 0;
        for (uint32_t r : *out) {
          if (pred.conjuncts[i]->EvalBool(table, r)) {
            (*out)[kept++] = r;
          }
        }
        out->resize(kept);
      }
    }
    return;
  }
  out->reserve(out->size() + (end - begin));
  for (size_t r = begin; r < end; ++r) {
    out->push_back(static_cast<uint32_t>(r));
  }
  ApplyPredicate(ctx, table, pred, out);
}

/// Touches the buffer-pool pages of the named columns (all when empty).
/// Delegates to the shared scan-I/O walk (db/scan_io.h) so the shard
/// coordinator's logical replay issues identical touches by construction.
void TouchColumns(ExecContext& ctx, const std::string& table_name,
                  const Table& table,
                  const std::vector<std::string>& columns) {
  if (ctx.storage == nullptr || ctx.database == nullptr) {
    return;
  }
  ScanTableInfo info{ctx.database->TableId(table_name), &table.schema(),
                     table.num_rows()};
  TouchScanColumns(ctx.storage, info, columns);
}

class ScanNode : public PlanNode {
 public:
  ScanNode(std::string table_name, std::vector<std::string> columns)
      : table_name_(std::move(table_name)), columns_(std::move(columns)) {}

  Relation Execute(ExecContext& ctx) const override {
    PERFEVAL_CHECK(ctx.database != nullptr);
    std::shared_ptr<const Table> table =
        ctx.database->GetTableShared(table_name_);
    TraceScope trace(ctx, "Scan(" + table_name_ + ")", table->num_rows());
    TouchColumns(ctx, table_name_, *table, columns_);
    Relation out;
    out.table = table;
    trace.Finish(out.num_rows());
    return out;
  }

  std::string Describe() const override {
    return "Scan " + table_name_;
  }

  PlanSpec Spec() const override {
    PlanSpec spec;
    spec.kind = PlanKind::kScan;
    spec.table_name = table_name_;
    spec.columns = columns_;
    return spec;
  }

 private:
  std::string table_name_;
  std::vector<std::string> columns_;
};

class FilterScanNode : public PlanNode {
 public:
  FilterScanNode(std::string table_name, std::vector<std::string> columns,
                 ExprPtr predicate)
      : table_name_(std::move(table_name)),
        columns_(std::move(columns)),
        predicate_(std::move(predicate)) {}

  Relation Execute(ExecContext& ctx) const override {
    PERFEVAL_CHECK(ctx.database != nullptr);
    std::shared_ptr<const Table> table =
        ctx.database->GetTableShared(table_name_);
    TraceScope trace(ctx, "FilterScan(" + table_name_ + ")",
                     table->num_rows());

    // Zone-map page skipping: a chunk participates only when all simple
    // conjuncts might match its [min, max]. The compiled form also feeds
    // the per-morsel filter kernels below.
    CompiledPredicate pred = CompilePredicate(predicate_);
    std::vector<SimplePredicate> simple;
    for (size_t i = 0; i < pred.conjuncts.size(); ++i) {
      if (pred.is_simple[i] != 0) {
        simple.push_back(pred.simple[i]);
      }
    }

    size_t num_rows = table->num_rows();
    // Two granularities, decoupled on purpose: pruning and I/O accounting
    // stay page-granular (zone maps and the buffer pool live per page),
    // while compute morsels follow the cache-calibrated policy — adjacent
    // surviving pages are coalesced up to policy.morsel_rows so the old
    // one-page-per-morsel dispatch overhead is gone. Neither granularity
    // depends on ctx.threads.
    size_t page_rows = ctx.storage != nullptr ? ctx.storage->rows_per_page()
                                              : ctx.morsel.morsel_rows;
    page_rows = std::max<size_t>(page_rows, 1);
    size_t compute_rows = std::max<size_t>(ctx.morsel.morsel_rows, 1);
    bool zone_maps = ctx.use_zone_maps && ctx.storage != nullptr &&
                     !simple.empty() && num_rows > 0;
    uint32_t table_id =
        ctx.storage != nullptr ? ctx.database->TableId(table_name_) : 0;

    struct Morsel {
      size_t begin = 0;
      size_t end = 0;
    };
    std::vector<Morsel> morsels;
    morsels.reserve(num_rows / compute_rows + 1);
    // Appends [begin, end) to the compute-morsel list, gluing it onto the
    // previous morsel when adjacent and still under the policy size.
    auto add_range = [&](size_t begin, size_t end) {
      if (!morsels.empty() && morsels.back().end == begin &&
          end - morsels.back().begin <= compute_rows) {
        morsels.back().end = end;
        return;
      }
      morsels.push_back({begin, end});
    };
    if (ctx.check && zone_maps) {
      // Checked mode: every zone map consulted for pruning must agree with
      // the actual page contents — a stale map silently drops live rows.
      size_t num_chunks = (num_rows + page_rows - 1) / page_rows;
      for (const SimplePredicate& sp : simple) {
        const Column& column = table->column(sp.column);
        for (uint32_t chunk = 0; chunk < num_chunks; ++chunk) {
          size_t begin = static_cast<size_t>(chunk) * page_rows;
          CheckZoneMapConsistent(
              column, begin, std::min(num_rows, begin + page_rows),
              ctx.storage->GetZoneMap(
                  table_id, static_cast<uint32_t>(sp.column), chunk),
              "FilterScan " + table_name_ + "." +
                  table->schema().column(sp.column).name);
        }
      }
    }
    if (zone_maps) {
      std::vector<uint32_t> column_ids;
      column_ids.reserve(columns_.size());
      for (const std::string& name : columns_) {
        column_ids.push_back(
            static_cast<uint32_t>(table->schema().MustIndexOf(name)));
      }
      // Prune, touch, and enumerate surviving chunks through the shared
      // walk (db/scan_io.h) — the same code the shard coordinator replays,
      // so sharded logical I/O matches this path by construction.
      ScanTableInfo info{table_id, &table->schema(), num_rows};
      FilterScanChunkWalk(ctx.storage, info, column_ids, simple, add_range);
    } else {
      TouchColumns(ctx, table_name_, *table, columns_);
      for (size_t begin = 0; begin < num_rows; begin += compute_rows) {
        morsels.push_back({begin, std::min(num_rows, begin + compute_rows)});
      }
    }

    // Compute: each morsel evaluates the predicate into its own selection
    // vector; workers claim morsels from a shared counter, and the partial
    // selections are concatenated in chunk order afterwards.
    std::vector<std::vector<uint32_t>> partial(morsels.size());
    int used = ParallelMorsels(ctx, num_rows, morsels.size(), [&](size_t m) {
      FilterRowRange(ctx, *table, pred, morsels[m].begin, morsels[m].end,
                     &partial[m]);
    });
    trace.set_threads_used(used);

    auto candidates = std::make_shared<std::vector<uint32_t>>();
    size_t total = 0;
    for (const std::vector<uint32_t>& rows : partial) {
      total += rows.size();
    }
    candidates->reserve(total);
    for (const std::vector<uint32_t>& rows : partial) {
      candidates->insert(candidates->end(), rows.begin(), rows.end());
    }
    if (ctx.check) {
      CheckSelectionStrictlyIncreasing(*candidates, "FilterScan");
    }
    Relation out;
    out.table = table;
    out.selection = candidates;
    trace.Finish(out.num_rows());
    return out;
  }

  std::string Describe() const override {
    return "FilterScan " + table_name_ + " [" + predicate_->ToString() + "]";
  }

  PlanSpec Spec() const override {
    PlanSpec spec;
    spec.kind = PlanKind::kFilterScan;
    spec.table_name = table_name_;
    spec.columns = columns_;
    spec.predicate = predicate_;
    return spec;
  }

 private:
  std::string table_name_;
  std::vector<std::string> columns_;
  ExprPtr predicate_;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Relation Execute(ExecContext& ctx) const override {
    Relation input = child_->Execute(ctx);
    TraceScope trace(ctx, "Filter", input.num_rows());
    std::vector<uint32_t> ids = input.RowIds();
    auto rows = std::make_shared<std::vector<uint32_t>>();
    CompiledPredicate pred = CompilePredicate(predicate_);
    size_t morsel_rows = std::max<size_t>(ctx.morsel.morsel_rows, 1);
    size_t num_morsels = ctx.morsel.NumMorsels(ids.size());
    if (ctx.morsel.EffectiveThreads(ids.size(), ctx.threads) <= 1 ||
        num_morsels <= 1) {
      *rows = std::move(ids);
      ApplyPredicate(ctx, *input.table, pred, rows.get());
      trace.set_threads_used(1);
    } else {
      // Policy-sized morsels over the input selection; per-morsel survivor
      // vectors concatenated in morsel order reproduce the serial output
      // exactly (the predicate is per-row, so no cross-morsel state).
      std::vector<std::vector<uint32_t>> partial(num_morsels);
      int used = ParallelMorsels(ctx, ids.size(), num_morsels, [&](size_t m) {
        size_t begin = m * morsel_rows;
        size_t end = std::min(ids.size(), begin + morsel_rows);
        partial[m].assign(ids.begin() + static_cast<long>(begin),
                          ids.begin() + static_cast<long>(end));
        ApplyPredicate(ctx, *input.table, pred, &partial[m]);
      });
      trace.set_threads_used(used);
      size_t total = 0;
      for (const std::vector<uint32_t>& survivors : partial) {
        total += survivors.size();
      }
      rows->reserve(total);
      for (const std::vector<uint32_t>& survivors : partial) {
        rows->insert(rows->end(), survivors.begin(), survivors.end());
      }
    }
    if (ctx.check) {
      // A filter may only drop rows: its output must be a subsequence of
      // the input selection (identity when the child had no selection).
      CheckSelectionSubsequence(*rows, input.selection.get(),
                                input.table->num_rows(), "Filter");
    }
    Relation out;
    out.table = input.table;
    out.selection = rows;
    trace.Finish(out.num_rows());
    return out;
  }

  std::string Describe() const override {
    return "Filter [" + predicate_->ToString() + "]";
  }

  PlanSpec Spec() const override {
    PlanSpec spec;
    spec.kind = PlanKind::kFilter;
    spec.predicate = predicate_;
    return spec;
  }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

  std::vector<PlanPtr> SharedChildren() const override { return {child_}; }

 private:
  PlanPtr child_;
  ExprPtr predicate_;
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanPtr child, std::vector<ExprPtr> exprs,
              std::vector<std::string> names)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        names_(std::move(names)) {
    PERFEVAL_CHECK_EQ(exprs_.size(), names_.size());
  }

  Relation Execute(ExecContext& ctx) const override {
    Relation input = child_->Execute(ctx);
    TraceScope trace(ctx, "Project", input.num_rows());
    std::vector<uint32_t> rows = input.RowIds();

    std::vector<ColumnSpec> specs;
    specs.reserve(exprs_.size());
    for (size_t i = 0; i < exprs_.size(); ++i) {
      specs.push_back(
          {names_[i], exprs_[i]->ResultType(input.table->schema())});
    }
    auto out_table = std::make_shared<Table>(Schema(std::move(specs)));
    out_table->ReserveRows(rows.size());

    for (size_t i = 0; i < exprs_.size(); ++i) {
      Column& dst = out_table->column(i);
      DataType type = out_table->schema().column(i).type;
      // Nullable input takes the row path: the numeric batch kernels read
      // raw payload vectors and would project NULL placeholders as zeros.
      if (ctx.mode == ExecMode::kOptimized && type == DataType::kDouble &&
          !input.table->has_nulls()) {
        std::vector<double> values;
        exprs_[i]->EvalNumericBatch(*input.table, rows, &values);
        for (double v : values) {
          dst.AppendDouble(v);
        }
      } else {
        for (uint32_t r : rows) {
          dst.AppendValue(exprs_[i]->EvalRow(*input.table, r));
        }
      }
    }
    out_table->FinishBulkLoad();
    Relation out;
    out.table = out_table;
    trace.Finish(out.num_rows());
    return out;
  }

  std::string Describe() const override {
    std::string out = "Project [";
    for (size_t i = 0; i < exprs_.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += names_[i] + "=" + exprs_[i]->ToString();
    }
    return out + "]";
  }

  PlanSpec Spec() const override {
    PlanSpec spec;
    spec.kind = PlanKind::kProject;
    spec.exprs = exprs_;
    spec.names = names_;
    return spec;
  }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

  std::vector<PlanPtr> SharedChildren() const override { return {child_}; }

 private:
  PlanPtr child_;
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
};

/// Extracts the (possibly composite) int64 join key for every row in
/// `rows`. Composite keys pack two 31-bit non-negative columns as
/// (k1 << 32) | k2 — order-preserving, so the same packing serves hash,
/// radix and merge algorithms. Debug mode interprets tuple-at-a-time with
/// validation; optimized mode fills the output morsel-parallel (disjoint
/// index ranges, so the result is identical at any thread count).
std::vector<int64_t> ExtractKeys(ExecContext& ctx, const Relation& rel,
                                 const std::vector<std::string>& names,
                                 const std::vector<uint32_t>& rows) {
  PERFEVAL_CHECK(names.size() == 1 || names.size() == 2);
  // The key kernels read raw int64 vectors, where a NULL is
  // indistinguishable from its placeholder value; rather than silently
  // joining on placeholders, NULL join keys are rejected up front.
  for (const std::string& name : names) {
    const Column& column = rel.table->ColumnByName(name);
    if (column.has_nulls()) {
      for (uint32_t r : rows) {
        if (column.IsNull(r)) {
          throw QueryError(
              StatusCode::kInvalidArgument,
              "join key column " + name + " contains NULL (row " +
                  StrFormat("%u", r) + "); NULL join keys are unsupported");
        }
      }
    }
  }
  std::vector<int64_t> keys(rows.size());
  if (ctx.mode == ExecMode::kDebug) {
    for (size_t i = 0; i < rows.size(); ++i) {
      uint32_t r = rows[i];
      PERFEVAL_CHECK_LT(r, rel.table->num_rows());
      if (names.size() == 1) {
        keys[i] = rel.table->ColumnByName(names[0]).GetValue(r).AsInt64();
        continue;
      }
      int64_t k1 = rel.table->ColumnByName(names[0]).GetValue(r).AsInt64();
      int64_t k2 = rel.table->ColumnByName(names[1]).GetValue(r).AsInt64();
      PERFEVAL_CHECK(k1 >= 0 && k1 < (int64_t{1} << 31) && k2 >= 0 &&
                     k2 < (int64_t{1} << 31))
          << "composite join keys must fit in 31 bits";
      keys[i] = (k1 << 32) | k2;
    }
    return keys;
  }
  std::vector<const std::vector<int64_t>*> cols;
  for (const std::string& name : names) {
    const Column& column = rel.table->ColumnByName(name);
    PERFEVAL_CHECK(column.type() == DataType::kInt64)
        << "hash join requires int64 keys (" << name << ")";
    cols.push_back(&column.ints());
  }
  size_t n = rows.size();
  size_t morsel_rows = std::max<size_t>(ctx.morsel.morsel_rows, 1);
  size_t num_morsels = ctx.morsel.NumMorsels(n);
  auto fill = [&](size_t begin, size_t end) {
    if (names.size() == 1) {
      const std::vector<int64_t>& data = *cols[0];
      for (size_t i = begin; i < end; ++i) {
        keys[i] = data[rows[i]];
      }
      return;
    }
    const std::vector<int64_t>& data1 = *cols[0];
    const std::vector<int64_t>& data2 = *cols[1];
    for (size_t i = begin; i < end; ++i) {
      int64_t k1 = data1[rows[i]];
      int64_t k2 = data2[rows[i]];
      PERFEVAL_CHECK(k1 >= 0 && k1 < (int64_t{1} << 31) && k2 >= 0 &&
                     k2 < (int64_t{1} << 31))
          << "composite join keys must fit in 31 bits";
      keys[i] = (k1 << 32) | k2;
    }
  };
  ParallelMorsels(ctx, n, num_morsels, [&](size_t m) {
    size_t begin = m * morsel_rows;
    fill(begin, std::min(n, begin + morsel_rows));
  });
  return keys;
}

class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanPtr left, PlanPtr right,
               std::vector<std::string> left_keys,
               std::vector<std::string> right_keys,
               std::optional<JoinAlgo> algo = std::nullopt)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        algo_(algo) {
    PERFEVAL_CHECK_EQ(left_keys_.size(), right_keys_.size());
    PERFEVAL_CHECK_GE(left_keys_.size(), 1u);
    PERFEVAL_CHECK_LE(left_keys_.size(), 2u);
  }

  Relation Execute(ExecContext& ctx) const override {
    // A per-node algorithm pinned by the optimizer wins over the session
    // knob; with no override every join follows ctx.join_algo as before.
    JoinAlgo algo = algo_.value_or(ctx.join_algo);
    Relation left = left_->Execute(ctx);
    Relation right = right_->Execute(ctx);
    TraceScope trace(
        ctx,
        std::string("HashJoin(") + left_keys_[0] + "=" + right_keys_[0] +
            ", " + JoinAlgoName(algo) + ")",
        left.num_rows() + right.num_rows());

    // Key extraction: the (possibly composite) join key per qualifying
    // row, plus the row ids, as flat arrays — the match kernels in
    // db/join.cc are all driven from these. Debug mode derives keys
    // tuple-at-a-time through the generic Value accessor with per-row
    // validation (the interpreted path); optimized mode reads raw key
    // vectors morsel-parallel. Both produce identical keys.
    std::vector<uint32_t> probe_rows = left.RowIds();
    std::vector<uint32_t> build_rows = right.RowIds();
    std::vector<int64_t> probe_keys =
        ExtractKeys(ctx, left, left_keys_, probe_rows);
    std::vector<int64_t> build_keys =
        ExtractKeys(ctx, right, right_keys_, build_rows);

    // The join kernels have their own internal parallelism; the adaptive
    // policy gates it on the combined input size the same way the morsel
    // dispatch does, so small joins never pay the fan-out overhead.
    int join_threads = ctx.morsel.EffectiveThreads(
        probe_rows.size() + build_rows.size(), ctx.threads);
    trace.set_threads_used(join_threads);
    JoinMatches matches =
        JoinMatch(algo, build_keys, build_rows, probe_keys,
                  probe_rows, ctx.radix_bits, join_threads);
    const std::vector<uint32_t>& out_left = matches.probe_rows;
    const std::vector<uint32_t>& out_right = matches.build_rows;
    if (ctx.check) {
      // Match-count conservation: whatever order an algorithm emits in,
      // the number of matches is fixed by the key multiplicities.
      if (out_left.size() != out_right.size()) {
        throw QueryError::Invariant(
            "HashJoin: probe/build match vectors differ in length");
      }
      CheckJoinMatchConservation(probe_keys, build_keys, out_left.size(),
                                 "HashJoin");
    }

    // Materialize: left columns then right columns.
    std::vector<ColumnSpec> specs;
    for (const ColumnSpec& spec : left.table->schema().columns()) {
      specs.push_back(spec);
    }
    for (const ColumnSpec& spec : right.table->schema().columns()) {
      specs.push_back(spec);
    }
    auto out_table = std::make_shared<Table>(Schema(std::move(specs)));
    out_table->ReserveRows(out_left.size());
    std::shared_ptr<Table> left_part = GatherRows(ctx, *left.table, out_left);
    std::shared_ptr<Table> right_part =
        GatherRows(ctx, *right.table, out_right);
    for (size_t c = 0; c < left_part->num_columns(); ++c) {
      out_table->column(c) = left_part->column(c);
    }
    for (size_t c = 0; c < right_part->num_columns(); ++c) {
      out_table->column(left_part->num_columns() + c) =
          right_part->column(c);
    }
    out_table->FinishBulkLoad();

    Relation out;
    out.table = out_table;
    trace.Finish(out.num_rows());
    return out;
  }

  std::string Describe() const override {
    std::string out = "HashJoin [";
    for (size_t i = 0; i < left_keys_.size(); ++i) {
      if (i > 0) {
        out += " AND ";
      }
      out += left_keys_[i] + " = " + right_keys_[i];
    }
    out += "]";
    if (algo_.has_value()) {
      out += std::string(" algo=") + JoinAlgoName(*algo_);
    }
    return out;
  }

  PlanSpec Spec() const override {
    PlanSpec spec;
    spec.kind = PlanKind::kHashJoin;
    spec.left_keys = left_keys_;
    spec.right_keys = right_keys_;
    return spec;
  }

  std::vector<const PlanNode*> Children() const override {
    return {left_.get(), right_.get()};
  }

  std::vector<PlanPtr> SharedChildren() const override {
    return {left_, right_};
  }

 private:
  PlanPtr left_;
  PlanPtr right_;
  std::vector<std::string> left_keys_;
  std::vector<std::string> right_keys_;
  std::optional<JoinAlgo> algo_;  ///< optimizer-pinned; nullopt = ctx knob.
};


/// Sort-merge equi-join on a single int64 key. Inputs that are already
/// sorted on the key (clustered storage) skip the sort entirely.
class MergeJoinNode : public PlanNode {
 public:
  MergeJoinNode(PlanPtr left, PlanPtr right, std::string left_key,
                std::string right_key)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_key_(std::move(left_key)),
        right_key_(std::move(right_key)) {}

  Relation Execute(ExecContext& ctx) const override {
    Relation left = left_->Execute(ctx);
    Relation right = right_->Execute(ctx);
    TraceScope trace(ctx,
                     "MergeJoin(" + left_key_ + "=" + right_key_ + ")",
                     left.num_rows() + right.num_rows());

    using Keyed = std::vector<std::pair<int64_t, uint32_t>>;
    auto extract = [&ctx](const Relation& rel,
                          const std::string& name) -> Keyed {
      const Column& column = rel.table->ColumnByName(name);
      PERFEVAL_CHECK(column.type() == DataType::kInt64)
          << "merge join requires int64 keys (" << name << ")";
      if (column.has_nulls()) {
        // The base column's null mask covers rows a selection vector may
        // have already filtered out; only a NULL in a *visible* row is an
        // error. (Rejecting on has_nulls() alone made the merge join
        // refuse inputs like Filter(k >= 0) -> MergeJoin, which the hash
        // join and the reference interpreter accept.)
        for (size_t i = 0; i < rel.num_rows(); ++i) {
          uint32_t r = rel.RowAt(i);
          if (column.IsNull(r)) {
            throw QueryError(
                StatusCode::kInvalidArgument,
                "join key column " + name + " contains NULL (row " +
                    StrFormat("%u", r) +
                    "); NULL join keys are unsupported");
          }
        }
      }
      Keyed keyed;
      keyed.reserve(rel.num_rows());
      bool sorted = true;
      int64_t previous = INT64_MIN;
      if (ctx.mode == ExecMode::kDebug) {
        for (size_t i = 0; i < rel.num_rows(); ++i) {
          uint32_t r = rel.RowAt(i);
          PERFEVAL_CHECK_LT(r, rel.table->num_rows());
          int64_t key = column.GetValue(r).AsInt64();
          sorted &= key >= previous;
          previous = key;
          keyed.emplace_back(key, r);
        }
      } else {
        const std::vector<int64_t>& data = column.ints();
        for (size_t i = 0; i < rel.num_rows(); ++i) {
          uint32_t r = rel.RowAt(i);
          int64_t key = data[r];
          sorted &= key >= previous;
          previous = key;
          keyed.emplace_back(key, r);
        }
      }
      if (!sorted) {
        std::sort(keyed.begin(), keyed.end());
      }
      return keyed;
    };
    Keyed lk = extract(left, left_key_);
    Keyed rk = extract(right, right_key_);

    // Merge equal-key blocks (cross product within a block).
    std::vector<uint32_t> out_left;
    std::vector<uint32_t> out_right;
    size_t i = 0;
    size_t j = 0;
    while (i < lk.size() && j < rk.size()) {
      if (lk[i].first < rk[j].first) {
        ++i;
      } else if (lk[i].first > rk[j].first) {
        ++j;
      } else {
        int64_t key = lk[i].first;
        size_t i_end = i;
        while (i_end < lk.size() && lk[i_end].first == key) {
          ++i_end;
        }
        size_t j_end = j;
        while (j_end < rk.size() && rk[j_end].first == key) {
          ++j_end;
        }
        for (size_t a = i; a < i_end; ++a) {
          for (size_t b = j; b < j_end; ++b) {
            out_left.push_back(lk[a].second);
            out_right.push_back(rk[b].second);
          }
        }
        i = i_end;
        j = j_end;
      }
    }
    if (ctx.check) {
      std::vector<int64_t> probe_keys;
      probe_keys.reserve(lk.size());
      for (const auto& [key, row] : lk) {
        probe_keys.push_back(key);
      }
      std::vector<int64_t> build_keys;
      build_keys.reserve(rk.size());
      for (const auto& [key, row] : rk) {
        build_keys.push_back(key);
      }
      CheckJoinMatchConservation(probe_keys, build_keys, out_left.size(),
                                 "MergeJoin");
    }

    std::vector<ColumnSpec> specs = left.table->schema().columns();
    for (const ColumnSpec& spec : right.table->schema().columns()) {
      specs.push_back(spec);
    }
    auto out_table = std::make_shared<Table>(Schema(std::move(specs)));
    std::shared_ptr<Table> left_part = GatherRows(ctx, *left.table, out_left);
    std::shared_ptr<Table> right_part =
        GatherRows(ctx, *right.table, out_right);
    for (size_t c = 0; c < left_part->num_columns(); ++c) {
      out_table->column(c) = left_part->column(c);
    }
    for (size_t c = 0; c < right_part->num_columns(); ++c) {
      out_table->column(left_part->num_columns() + c) =
          right_part->column(c);
    }
    out_table->FinishBulkLoad();

    Relation out;
    out.table = out_table;
    trace.Finish(out.num_rows());
    return out;
  }

  std::string Describe() const override {
    return "MergeJoin [" + left_key_ + " = " + right_key_ + "]";
  }

  PlanSpec Spec() const override {
    PlanSpec spec;
    spec.kind = PlanKind::kMergeJoin;
    spec.left_keys = {left_key_};
    spec.right_keys = {right_key_};
    return spec;
  }

  std::vector<const PlanNode*> Children() const override {
    return {left_.get(), right_.get()};
  }

  std::vector<PlanPtr> SharedChildren() const override {
    return {left_, right_};
  }

 private:
  PlanPtr left_;
  PlanPtr right_;
  std::string left_key_;
  std::string right_key_;
};

/// Accumulator state for one (group, aggregate) pair. Doubles accumulate
/// in `sum`/`min`/`max`; int64-typed aggregates use the exact integer
/// accumulators `isum`/`imin`/`imax` with checked addition — summing
/// int64 through a double silently loses precision past 2^53 and a bare
/// int64 sum silently wraps, both of which turn benchmark output into
/// plausible-looking garbage.
struct AggState {
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  int64_t isum = 0;
  int64_t imin = 0;
  int64_t imax = 0;
  int64_t count = 0;
  std::unordered_map<std::string, bool> distinct;

  void AddNumeric(double v) {
    if (count == 0) {
      min = v;
      max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    sum += v;
    ++count;
  }

  void AddInt(int64_t v) {
    if (count == 0) {
      imin = v;
      imax = v;
    } else {
      imin = std::min(imin, v);
      imax = std::max(imax, v);
    }
    isum = CheckedAdd(isum, v, "SUM accumulator");
    ++count;
  }

  /// Folds another partial state in. Callers merge partials in morsel
  /// order, so `sum` accumulates in a fixed order at any thread count.
  void MergeFrom(const AggState& other) {
    if (other.count > 0) {
      if (count == 0) {
        min = other.min;
        max = other.max;
        imin = other.imin;
        imax = other.imax;
      } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
        imin = std::min(imin, other.imin);
        imax = std::max(imax, other.imax);
      }
    }
    sum += other.sum;
    isum = CheckedAdd(isum, other.isum, "SUM accumulator");
    count += other.count;
    distinct.insert(other.distinct.begin(), other.distinct.end());
  }
};

/// One morsel's partial aggregation: local groups in first-occurrence
/// order (int keys on the single-int-key fast path, composite string keys
/// otherwise) plus one accumulator per (aggregate, local group). Built by
/// exactly one worker; merged on the coordinator in morsel order.
struct MorselAggState {
  std::vector<int64_t> int_keys;
  std::vector<std::string> str_keys;
  std::vector<uint32_t> first_rows;
  std::vector<std::vector<AggState>> states;  ///< [aggregate][local group].
};

/// Appends row `r`'s composite group key (one '\x1f'-terminated field per
/// group column) to `*key`. Byte-identical to concatenating
/// `GetValue(r).ToString()` per column — Value renders int64 as plain
/// decimal and strings verbatim — but the common null-free string/int64
/// fields skip the Value round trip. Shared by the morsel accumulator and
/// the checked-mode recompute so both sides always agree on group
/// identity.
void AppendGroupKey(const Table& table, const std::vector<size_t>& group_cols,
                    uint32_t r, std::string* key) {
  for (size_t c : group_cols) {
    const Column& column = table.column(c);
    if (!column.IsNull(r)) {
      if (column.type() == DataType::kString) {
        *key += column.strings()[r];
        *key += '\x1f';
        continue;
      }
      if (column.type() == DataType::kInt64) {
        char buf[24];
        auto [end, ec] =
            std::to_chars(buf, buf + sizeof(buf), column.ints()[r]);
        key->append(buf, end);
        *key += '\x1f';
        continue;
      }
    }
    *key += column.GetValue(r).ToString();
    *key += '\x1f';
  }
}

class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::vector<std::string> group_by,
                std::vector<AggSpec> aggregates)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)) {}

  Relation Execute(ExecContext& ctx) const override {
    Relation input = child_->Execute(ctx);
    TraceScope trace(ctx, "Aggregate", input.num_rows());
    const Table& table = *input.table;
    std::vector<uint32_t> rows = input.RowIds();

    std::vector<size_t> group_cols;
    for (const std::string& name : group_by_) {
      group_cols.push_back(table.schema().MustIndexOf(name));
    }
    // Optimized mode has a fast path for the common single-int-key
    // grouping; the general path builds a composite string key per tuple
    // (which also covers NULL group keys — they render as "NULL").
    bool int_fast_path =
        ctx.mode == ExecMode::kOptimized && group_cols.size() == 1 &&
        table.column(group_cols[0]).type() == DataType::kInt64 &&
        !table.column(group_cols[0]).has_nulls();
    // Which aggregates run on the exact int64 accumulators.
    std::vector<uint8_t> int_agg(aggregates_.size(), 0);
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const AggSpec& spec = aggregates_[a];
      int_agg[a] = (spec.op == AggOp::kSum || spec.op == AggOp::kAvg ||
                    spec.op == AggOp::kMin || spec.op == AggOp::kMax) &&
                           spec.expr != nullptr &&
                           spec.expr->ResultType(table.schema()) ==
                               DataType::kInt64
                       ? 1
                       : 0;
    }
    // Aggregates over a bare column reference can read the raw payload
    // vector in their tight loops; -1 means "go through the expression".
    std::vector<int> agg_col(aggregates_.size(), -1);
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      size_t idx = 0;
      if (aggregates_[a].expr != nullptr &&
          aggregates_[a].expr->AsColumnIndex(&idx)) {
        agg_col[a] = static_cast<int>(idx);
      }
    }

    // Accumulate per-morsel partial states. Every mode and thread count
    // goes through the same morsel structure and the same in-order merge,
    // so floating-point sums (non-associative) come out bit-identical at
    // any `threads` setting and across kDebug/kOptimized.
    size_t morsel_rows = std::max<size_t>(ctx.morsel.morsel_rows, 1);
    size_t num_morsels = ctx.morsel.NumMorsels(rows.size());
    std::vector<MorselAggState> partials(num_morsels);
    int used = ParallelMorsels(ctx, rows.size(), num_morsels, [&](size_t m) {
      size_t begin = m * morsel_rows;
      size_t end = std::min(rows.size(), begin + morsel_rows);
      AccumulateMorsel(ctx, table, group_cols, int_fast_path, int_agg,
                       agg_col, &rows[begin], end - begin, &partials[m]);
    });
    trace.set_threads_used(used);

    // Merge partials in morsel order. Groups are created in global
    // first-occurrence order — the order the serial scan would discover
    // them — which fixes both the output row order and the accumulation
    // order of every group's state.
    std::vector<uint32_t> first_row_of_group;
    std::vector<std::vector<AggState>> states(aggregates_.size());
    std::unordered_map<int64_t, size_t> int_index;
    std::unordered_map<std::string, size_t> str_index;
    for (MorselAggState& part : partials) {
      for (size_t g = 0; g < part.first_rows.size(); ++g) {
        size_t global;
        bool created;
        if (int_fast_path) {
          auto [it, inserted] =
              int_index.try_emplace(part.int_keys[g], int_index.size());
          global = it->second;
          created = inserted;
        } else {
          auto [it, inserted] = str_index.try_emplace(
              std::move(part.str_keys[g]), str_index.size());
          global = it->second;
          created = inserted;
        }
        if (created) {
          first_row_of_group.push_back(part.first_rows[g]);
          for (size_t a = 0; a < aggregates_.size(); ++a) {
            states[a].emplace_back();
          }
        }
        for (size_t a = 0; a < aggregates_.size(); ++a) {
          states[a][global].MergeFrom(part.states[a][g]);
        }
      }
    }
    if (group_cols.empty() && first_row_of_group.empty()) {
      // Global aggregate over zero rows still yields one group.
      first_row_of_group.push_back(0);
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        states[a].emplace_back();
      }
    }

    if (ctx.check) {
      // Recompute first-occurrence order with a plain serial scan over the
      // same row ids and require the parallel merge to have produced it.
      std::vector<uint32_t> expected;
      if (int_fast_path) {
        std::unordered_map<int64_t, size_t> seen;
        const std::vector<int64_t>& keys =
            table.column(group_cols[0]).ints();
        for (uint32_t r : rows) {
          if (seen.try_emplace(keys[r], seen.size()).second) {
            expected.push_back(r);
          }
        }
      } else if (!group_cols.empty()) {
        std::unordered_map<std::string, size_t> seen;
        std::string key;
        for (uint32_t r : rows) {
          key.clear();
          AppendGroupKey(table, group_cols, r, &key);
          if (seen.try_emplace(key, seen.size()).second) {
            expected.push_back(r);
          }
        }
      }
      if (!group_cols.empty()) {
        CheckFirstOccurrenceOrder(expected, first_row_of_group, "Aggregate");
      }
    }

    // Output schema: group columns keep their types; aggregate output
    // types come from AggOutputType (counts and int SUM/MIN/MAX are
    // int64, everything else double).
    std::vector<ColumnSpec> specs;
    for (size_t c : group_cols) {
      specs.push_back(table.schema().column(c));
    }
    for (const AggSpec& spec : aggregates_) {
      specs.push_back({spec.output_name,
                       AggOutputType(spec, table.schema())});
    }
    auto out_table = std::make_shared<Table>(Schema(std::move(specs)));
    size_t emitted_groups =
        group_cols.empty() ? 1 : first_row_of_group.size();
    out_table->ReserveRows(emitted_groups);
    for (size_t g = 0; g < emitted_groups; ++g) {
      for (size_t gc = 0; gc < group_cols.size(); ++gc) {
        out_table->column(gc).AppendValue(
            table.column(group_cols[gc]).GetValue(first_row_of_group[g]));
      }
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        const AggState& state = states[a][g];
        Column& dst = out_table->column(group_cols.size() + a);
        bool is_int = int_agg[a] != 0;
        switch (aggregates_[a].op) {
          case AggOp::kSum:
            // SUM/AVG/MIN/MAX over zero accumulated rows is NULL, not a
            // fabricated 0 / 0.0 — the old behaviour made empty groups
            // indistinguishable from groups summing to zero.
            if (state.count == 0) {
              dst.AppendValue(Value::Null(dst.type()));
            } else if (is_int) {
              dst.AppendInt64(state.isum);
            } else {
              dst.AppendDouble(state.sum);
            }
            break;
          case AggOp::kAvg:
            if (state.count == 0) {
              dst.AppendValue(Value::Null(dst.type()));
            } else if (is_int) {
              dst.AppendDouble(static_cast<double>(state.isum) /
                               static_cast<double>(state.count));
            } else {
              dst.AppendDouble(state.sum /
                               static_cast<double>(state.count));
            }
            break;
          case AggOp::kMin:
            if (state.count == 0) {
              dst.AppendValue(Value::Null(dst.type()));
            } else if (is_int) {
              dst.AppendInt64(state.imin);
            } else {
              dst.AppendDouble(state.min);
            }
            break;
          case AggOp::kMax:
            if (state.count == 0) {
              dst.AppendValue(Value::Null(dst.type()));
            } else if (is_int) {
              dst.AppendInt64(state.imax);
            } else {
              dst.AppendDouble(state.max);
            }
            break;
          case AggOp::kCount:
            dst.AppendInt64(state.count);
            break;
          case AggOp::kCountDistinct:
            dst.AppendInt64(static_cast<int64_t>(state.distinct.size()));
            break;
        }
      }
    }
    out_table->FinishBulkLoad();

    Relation out;
    out.table = out_table;
    trace.Finish(out.num_rows());
    return out;
  }

  std::string Describe() const override {
    std::string out = "Aggregate [group by: ";
    out += Join(group_by_, ", ");
    out += "; aggs: ";
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += std::string(AggOpName(aggregates_[i].op));
      if (aggregates_[i].expr) {
        out += "(" + aggregates_[i].expr->ToString() + ")";
      }
    }
    return out + "]";
  }

  PlanSpec Spec() const override {
    PlanSpec spec;
    spec.kind = PlanKind::kAggregate;
    spec.group_by = group_by_;
    spec.aggregates = aggregates_;
    return spec;
  }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

  std::vector<PlanPtr> SharedChildren() const override { return {child_}; }

 private:
  /// Builds one morsel's partial state from `rows[0..n)`: local dense
  /// group ids in first-occurrence order, then one accumulator per
  /// (aggregate, local group). Runs on a worker thread; reads only shared
  /// immutable data and writes only `*out`.
  ///
  /// A global aggregate (no group columns) skips the hash maps entirely —
  /// one local group with the empty key — which unlocks the tight
  /// single-accumulator loops below. Every fast path is written to
  /// reproduce the generic path's accumulation order and floating-point
  /// semantics exactly (AddNumeric's running `sum += v`, its min/max
  /// comparison order) so kDebug and kOptimized still agree bit-for-bit.
  void AccumulateMorsel(const ExecContext& ctx, const Table& table,
                        const std::vector<size_t>& group_cols,
                        bool int_fast_path,
                        const std::vector<uint8_t>& int_agg,
                        const std::vector<int>& agg_col,
                        const uint32_t* rows, size_t n,
                        MorselAggState* out) const {
    bool single_group = group_cols.empty();
    std::vector<size_t> row_group;
    if (single_group) {
      out->str_keys.emplace_back();  // one global group, empty key.
      out->first_rows.push_back(rows[0]);
    } else if (int_fast_path) {
      row_group.resize(n);
      std::unordered_map<int64_t, size_t> group_index;
      group_index.reserve(n / 4 + 16);
      const std::vector<int64_t>& keys = table.column(group_cols[0]).ints();
      for (size_t i = 0; i < n; ++i) {
        uint32_t r = rows[i];
        auto [it, inserted] =
            group_index.try_emplace(keys[r], group_index.size());
        if (inserted) {
          out->int_keys.push_back(keys[r]);
          out->first_rows.push_back(r);
        }
        row_group[i] = it->second;
      }
    } else {
      row_group.resize(n);
      std::unordered_map<std::string, size_t> group_index;
      std::string key;
      for (size_t i = 0; i < n; ++i) {
        uint32_t r = rows[i];
        key.clear();
        AppendGroupKey(table, group_cols, r, &key);
        auto [it, inserted] =
            group_index.try_emplace(key, group_index.size());
        if (inserted) {
          out->str_keys.push_back(key);
          out->first_rows.push_back(r);
        }
        row_group[i] = it->second;
      }
    }
    size_t num_groups = out->first_rows.size();
    out->states.assign(aggregates_.size(),
                       std::vector<AggState>(num_groups));
    std::vector<uint32_t> batch_rows;
    bool nullable = table.has_nulls();
    bool vectorized = ctx.mode == ExecMode::kOptimized && !nullable;
    auto gid = [&](size_t i) { return single_group ? size_t{0} : row_group[i]; };
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const AggSpec& spec = aggregates_[a];
      std::vector<AggState>& agg_states = out->states[a];
      // The aggregate's input as a raw payload vector, when it is a bare
      // column reference of the right type; nullptr takes the expression
      // path.
      const std::vector<int64_t>* int_data = nullptr;
      const std::vector<double>* dbl_data = nullptr;
      if (vectorized && agg_col[a] >= 0) {
        const Column& column = table.column(static_cast<size_t>(agg_col[a]));
        if (column.type() == DataType::kInt64) {
          int_data = &column.ints();
        } else if (column.type() == DataType::kDouble) {
          dbl_data = &column.doubles();
        }
      }
      if (spec.op == AggOp::kCount) {
        if (spec.expr != nullptr && nullable) {
          // COUNT(expr) counts rows where expr is non-NULL. The fast
          // unconditional count below is identical on null-free tables.
          for (size_t i = 0; i < n; ++i) {
            if (!spec.expr->EvalRow(table, rows[i]).is_null()) {
              ++agg_states[gid(i)].count;
            }
          }
        } else if (single_group) {
          agg_states[0].count += static_cast<int64_t>(n);
        } else {
          for (size_t i = 0; i < n; ++i) {
            ++agg_states[gid(i)].count;
          }
        }
      } else if (spec.op == AggOp::kCountDistinct) {
        for (size_t i = 0; i < n; ++i) {
          Value v = spec.expr->EvalRow(table, rows[i]);
          if (v.is_null()) {
            continue;  // NULL contributes no distinct value.
          }
          agg_states[gid(i)].distinct[v.ToString()] = true;
        }
      } else if (int_agg[a] != 0) {
        if (single_group && int_data != nullptr && n > 0) {
          // Tight single-accumulator loop with the overflow check hoisted
          // out: a first pass finds the morsel's min/max, and when
          // n * max|v| provably fits in int64 the sum cannot overflow at
          // any prefix, so the hot loop needs no per-row check. Otherwise
          // fall back to per-row CheckedAdd — same error text, and same
          // first-overflowing-prefix behaviour as the generic path.
          const std::vector<int64_t>& data = *int_data;
          int64_t mn = data[rows[0]];
          int64_t mx = mn;
          for (size_t i = 1; i < n; ++i) {
            int64_t v = data[rows[i]];
            mn = v < mn ? v : mn;
            mx = v > mx ? v : mx;
          }
          auto abs_u64 = [](int64_t v) {
            return v < 0 ? uint64_t{0} - static_cast<uint64_t>(v)
                         : static_cast<uint64_t>(v);
          };
          uint64_t max_abs = std::max(abs_u64(mn), abs_u64(mx));
          AggState& st = agg_states[0];
          if (max_abs == 0 ||
              static_cast<uint64_t>(n) <=
                  static_cast<uint64_t>(INT64_MAX) / max_abs) {
            int64_t sum = 0;
            for (size_t i = 0; i < n; ++i) {
              sum += data[rows[i]];
            }
            st.isum = sum;
            st.imin = mn;
            st.imax = mx;
            st.count = static_cast<int64_t>(n);
          } else {
            for (size_t i = 0; i < n; ++i) {
              st.AddInt(data[rows[i]]);
            }
          }
        } else {
          // Exact int64 accumulation with overflow checking; EvalRow keeps
          // the arithmetic inside the expression checked in both modes.
          for (size_t i = 0; i < n; ++i) {
            Value v = spec.expr->EvalRow(table, rows[i]);
            if (v.is_null()) {
              continue;  // SQL aggregates skip NULL inputs.
            }
            agg_states[gid(i)].AddInt(v.AsInt64());
          }
        }
      } else if (vectorized) {
        if (single_group && n > 0) {
          // Single-accumulator double loop: read the raw column when the
          // input is a bare double column, otherwise evaluate the
          // expression batch once; then accumulate with AddNumeric's exact
          // order (running sum, then min/max compares) in scalar locals.
          std::vector<double> values;
          const double* v = nullptr;
          if (dbl_data != nullptr) {
            // Gather through the selection without materializing.
            double sum = 0.0;
            const std::vector<double>& data = *dbl_data;
            double mn = data[rows[0]];
            double mx = mn;
            for (size_t i = 0; i < n; ++i) {
              double x = data[rows[i]];
              mn = x < mn ? x : mn;
              mx = x > mx ? x : mx;
              sum += x;
            }
            AggState& st = agg_states[0];
            st.sum = sum;
            st.min = mn;
            st.max = mx;
            st.count = static_cast<int64_t>(n);
            continue;
          }
          if (batch_rows.empty()) {
            batch_rows.assign(rows, rows + n);
          }
          spec.expr->EvalNumericBatch(table, batch_rows, &values);
          v = values.data();
          double sum = 0.0;
          double mn = v[0];
          double mx = v[0];
          for (size_t i = 0; i < n; ++i) {
            double x = v[i];
            mn = x < mn ? x : mn;
            mx = x > mx ? x : mx;
            sum += x;
          }
          AggState& st = agg_states[0];
          st.sum = sum;
          st.min = mn;
          st.max = mx;
          st.count = static_cast<int64_t>(n);
        } else {
          if (batch_rows.empty() && n > 0) {
            batch_rows.assign(rows, rows + n);
          }
          std::vector<double> values;
          spec.expr->EvalNumericBatch(table, batch_rows, &values);
          for (size_t i = 0; i < n; ++i) {
            agg_states[gid(i)].AddNumeric(values[i]);
          }
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          Value v = spec.expr->EvalRow(table, rows[i]);
          if (v.is_null()) {
            continue;  // SQL aggregates skip NULL inputs.
          }
          agg_states[gid(i)].AddNumeric(v.AsDouble());
        }
      }
    }
  }

  PlanPtr child_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggregates_;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Relation Execute(ExecContext& ctx) const override {
    Relation input = child_->Execute(ctx);
    TraceScope trace(ctx, "Sort", input.num_rows());
    const Table& table = *input.table;
    std::vector<uint32_t> rows = input.RowIds();

    RowComparator comparator(table, keys_);
    std::vector<uint32_t> original;
    if (ctx.check) {
      original = rows;
    }
    // The parallel merge sort in db/sort.cc produces the same permutation
    // at any thread count; the adaptive policy just decides whether the
    // fan-out is worth it for this input size.
    int sort_threads = ctx.morsel.EffectiveThreads(rows.size(), ctx.threads);
    trace.set_threads_used(sort_threads);
    StableSortRows(comparator, sort_threads, &rows);
    if (ctx.check) {
      CheckPermutation(original, rows, "Sort");
      for (size_t i = 1; i < rows.size(); ++i) {
        if (comparator(rows[i], rows[i - 1])) {
          throw QueryError::Invariant(StrFormat(
              "Sort: output not ordered at position %zu", i));
        }
      }
    }

    Relation out;
    out.table = GatherRows(ctx, table, rows);
    trace.Finish(out.num_rows());
    return out;
  }

  std::string Describe() const override {
    std::string out = "Sort [";
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += keys_[i].column + (keys_[i].ascending ? " asc" : " desc");
    }
    return out + "]";
  }

  PlanSpec Spec() const override {
    PlanSpec spec;
    spec.kind = PlanKind::kSort;
    spec.sort_keys = keys_;
    return spec;
  }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

  std::vector<PlanPtr> SharedChildren() const override { return {child_}; }

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr child, size_t n) : child_(std::move(child)), n_(n) {}

  Relation Execute(ExecContext& ctx) const override {
    Relation input = child_->Execute(ctx);
    TraceScope trace(ctx, "Limit", input.num_rows());
    std::vector<uint32_t> rows = input.RowIds();
    if (rows.size() > n_) {
      rows.resize(n_);
    }
    Relation out;
    out.table = GatherRows(ctx, *input.table, rows);
    trace.Finish(out.num_rows());
    return out;
  }

  std::string Describe() const override {
    return StrFormat("Limit %zu", n_);
  }

  PlanSpec Spec() const override {
    PlanSpec spec;
    spec.kind = PlanKind::kLimit;
    spec.limit = n_;
    return spec;
  }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

  std::vector<PlanPtr> SharedChildren() const override { return {child_}; }

 private:
  PlanPtr child_;
  size_t n_;
};


/// Bounded top-n by sort keys: partial_sort keeps only the first n rows.
class TopNNode : public PlanNode {
 public:
  TopNNode(PlanPtr child, std::vector<SortKey> keys, size_t n)
      : child_(std::move(child)), keys_(std::move(keys)), n_(n) {}

  Relation Execute(ExecContext& ctx) const override {
    Relation input = child_->Execute(ctx);
    TraceScope trace(ctx, "TopN", input.num_rows());
    const Table& table = *input.table;
    std::vector<uint32_t> rows = input.RowIds();

    // Reuses the columnar comparator kernel from the parallel sort; the
    // bounded partial_sort itself stays serial (O(rows log n) is already
    // cheap relative to a full sort). Ties break on the row id — input
    // row ids are strictly increasing, so this is exactly the order a
    // stable full sort + truncate would produce. Without the tie-break
    // the unstable partial_sort is free to emit EITHER of two key-equal
    // rows into the cut at position n, and TopN(k) could disagree with
    // Sort+Limit(k) on which rows survive.
    RowComparator less(table, keys_);
    auto stable_less = [&less](uint32_t a, uint32_t b) {
      if (less(a, b)) {
        return true;
      }
      return !less(b, a) && a < b;
    };
    if (rows.size() > n_) {
      std::partial_sort(rows.begin(),
                        rows.begin() + static_cast<long>(n_), rows.end(),
                        stable_less);
      rows.resize(n_);
    } else {
      std::sort(rows.begin(), rows.end(), stable_less);
    }
    if (ctx.check) {
      for (size_t i = 1; i < rows.size(); ++i) {
        if (less(rows[i], rows[i - 1])) {
          throw QueryError::Invariant(StrFormat(
              "TopN: output not ordered at position %zu", i));
        }
      }
    }

    Relation out;
    out.table = GatherRows(ctx, table, rows);
    trace.Finish(out.num_rows());
    return out;
  }

  std::string Describe() const override {
    std::string out = StrFormat("TopN %zu [", n_);
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += keys_[i].column + (keys_[i].ascending ? " asc" : " desc");
    }
    return out + "]";
  }

  PlanSpec Spec() const override {
    PlanSpec spec;
    spec.kind = PlanKind::kTopN;
    spec.sort_keys = keys_;
    spec.limit = n_;
    return spec;
  }

  std::vector<const PlanNode*> Children() const override {
    return {child_.get()};
  }

  std::vector<PlanPtr> SharedChildren() const override { return {child_}; }

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
  size_t n_;
};

void ExplainInto(const PlanNode* node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node->Describe());
  out->append("\n");
  for (const PlanNode* child : node->Children()) {
    ExplainInto(child, depth + 1, out);
  }
}

}  // namespace

DataType AggOutputType(const AggSpec& spec, const Schema& input_schema) {
  switch (spec.op) {
    case AggOp::kCount:
    case AggOp::kCountDistinct:
      return DataType::kInt64;
    case AggOp::kSum:
    case AggOp::kMin:
    case AggOp::kMax:
      if (spec.expr != nullptr &&
          spec.expr->ResultType(input_schema) == DataType::kInt64) {
        return DataType::kInt64;
      }
      return DataType::kDouble;
    case AggOp::kAvg:
      return DataType::kDouble;
  }
  return DataType::kDouble;
}

PlanPtr Scan(const std::string& table_name,
             std::vector<std::string> columns_used) {
  return std::make_shared<ScanNode>(table_name, std::move(columns_used));
}

PlanPtr FilterScan(const std::string& table_name,
                   std::vector<std::string> columns_used,
                   ExprPtr predicate) {
  return std::make_shared<FilterScanNode>(
      table_name, std::move(columns_used), std::move(predicate));
}

PlanPtr Filter(PlanPtr child, ExprPtr predicate) {
  return std::make_shared<FilterNode>(std::move(child), std::move(predicate));
}

PlanPtr Project(PlanPtr child, std::vector<ExprPtr> exprs,
                std::vector<std::string> names) {
  return std::make_shared<ProjectNode>(std::move(child), std::move(exprs),
                                       std::move(names));
}

PlanPtr HashJoin(PlanPtr left, PlanPtr right, std::string left_key,
                 std::string right_key) {
  return std::make_shared<HashJoinNode>(
      std::move(left), std::move(right),
      std::vector<std::string>{std::move(left_key)},
      std::vector<std::string>{std::move(right_key)});
}

PlanPtr HashJoin2(PlanPtr left, PlanPtr right, std::string left_key1,
                  std::string right_key1, std::string left_key2,
                  std::string right_key2) {
  return std::make_shared<HashJoinNode>(
      std::move(left), std::move(right),
      std::vector<std::string>{std::move(left_key1), std::move(left_key2)},
      std::vector<std::string>{std::move(right_key1),
                               std::move(right_key2)});
}

PlanPtr HashJoinWith(PlanPtr left, PlanPtr right,
                     std::vector<std::string> left_keys,
                     std::vector<std::string> right_keys, JoinAlgo algo) {
  return std::make_shared<HashJoinNode>(std::move(left), std::move(right),
                                        std::move(left_keys),
                                        std::move(right_keys), algo);
}


PlanPtr MergeJoin(PlanPtr left, PlanPtr right, std::string left_key,
                  std::string right_key) {
  return std::make_shared<MergeJoinNode>(std::move(left), std::move(right),
                                         std::move(left_key),
                                         std::move(right_key));
}

PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                  std::vector<AggSpec> aggregates) {
  return std::make_shared<AggregateNode>(
      std::move(child), std::move(group_by), std::move(aggregates));
}

PlanPtr Sort(PlanPtr child, std::vector<SortKey> keys) {
  return std::make_shared<SortNode>(std::move(child), std::move(keys));
}

PlanPtr Limit(PlanPtr child, size_t n) {
  return std::make_shared<LimitNode>(std::move(child), n);
}


PlanPtr TopN(PlanPtr child, std::vector<SortKey> keys, size_t n) {
  return std::make_shared<TopNNode>(std::move(child), std::move(keys), n);
}

std::string Explain(const PlanPtr& plan) {
  std::string out;
  ExplainInto(plan.get(), 0, &out);
  return out;
}

}  // namespace db
}  // namespace perfeval
