#include "db/storage.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace perfeval {
namespace db {
namespace {

/// Exact bytes of rows [begin, end) of a column, consistent with
/// Column::ByteSize(): fixed-width payloads plus, for strings, the actual
/// per-row footprint.
size_t ChunkByteSize(const Column& column, size_t begin, size_t end) {
  switch (column.type()) {
    case DataType::kInt64:
    case DataType::kDate:
      return (end - begin) * sizeof(int64_t);
    case DataType::kDouble:
      return (end - begin) * sizeof(double);
    case DataType::kString: {
      size_t bytes = 0;
      for (size_t r = begin; r < end; ++r) {
        bytes += column.GetString(r).size() + sizeof(std::string);
      }
      return bytes;
    }
  }
  return 0;
}

}  // namespace

std::string StorageStats::ToString() const {
  std::string out = StrFormat(
      "pages: %lld hits, %lld misses; %lld bytes read; %.3f ms stall",
      static_cast<long long>(page_hits), static_cast<long long>(page_misses),
      static_cast<long long>(bytes_read), stall_ns / 1e6);
  if (bytes_written != 0 || fsyncs != 0 || write_stall_ns != 0) {
    out += StrFormat("; %lld bytes written, %lld fsyncs, %.3f ms write stall",
                     static_cast<long long>(bytes_written),
                     static_cast<long long>(fsyncs), write_stall_ns / 1e6);
  }
  return out;
}

StorageManager::StorageManager(DiskModel disk, size_t buffer_pool_pages,
                               size_t rows_per_page)
    : disk_(disk),
      buffer_pool_pages_(buffer_pool_pages),
      rows_per_page_(rows_per_page) {
  PERFEVAL_CHECK_GE(buffer_pool_pages_, 1u);
  PERFEVAL_CHECK_GE(rows_per_page_, 1u);
}

void StorageManager::RegisterTable(uint32_t table_id, const Table& table) {
  std::vector<ColumnMeta> metas;
  metas.reserve(table.num_columns());
  size_t rows = table.num_rows();
  size_t num_chunks = (rows + rows_per_page_ - 1) / rows_per_page_;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    ColumnMeta meta;
    meta.num_chunks = num_chunks;
    meta.chunk_bytes.resize(num_chunks, 0);
    meta.zone_maps.resize(num_chunks);
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      size_t begin = chunk * rows_per_page_;
      size_t end = std::min(rows, begin + rows_per_page_);
      meta.chunk_bytes[chunk] = ChunkByteSize(column, begin, end);
      if (!IsNumeric(column.type())) {
        continue;
      }
      ZoneMap& zm = meta.zone_maps[chunk];
      // NaN-safe min/max fold: NaN poisons std::min/std::max (the result
      // depends on operand order), so NaN values are excluded from the
      // bounds and flagged instead; a zone holding a NaN is never pruned.
      // NULL rows get the same treatment: their payload slot is a
      // placeholder that must not enter the bounds, and predicates over
      // the zone cannot prune rows the row-path may still need to see.
      bool seen = false;
      for (size_t r = begin; r < end; ++r) {
        if (column.IsNull(r)) {
          zm.has_nan = true;
          continue;
        }
        double v = column.GetNumeric(r);
        if (std::isnan(v)) {
          zm.has_nan = true;
          continue;
        }
        if (!seen) {
          zm.min = v;
          zm.max = v;
          seen = true;
        } else {
          if (v < zm.min) zm.min = v;
          if (v > zm.max) zm.max = v;
        }
      }
      zm.valid = seen;
    }
    metas.push_back(std::move(meta));
  }
  tables_[table_id] = std::move(metas);
}

void StorageManager::ReplaceTable(uint32_t table_id, const Table& table) {
  PERFEVAL_CHECK(tables_.find(table_id) != tables_.end())
      << "ReplaceTable on unregistered table " << table_id;
  RegisterTable(table_id, table);
  // Evict the stale pages: the page keys of the new version alias the old
  // ones, and the old zone maps / byte counts no longer describe them.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (static_cast<uint32_t>(*it >> 40) == table_id) {
      resident_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = stream_heads_.begin(); it != stream_heads_.end();) {
    if (static_cast<uint32_t>(it->first >> 32) == table_id) {
      it = stream_heads_.erase(it);
    } else {
      ++it;
    }
  }
}

const StorageManager::ColumnMeta& StorageManager::GetColumnMeta(
    uint32_t table_id, uint32_t column_id) const {
  auto it = tables_.find(table_id);
  PERFEVAL_CHECK(it != tables_.end()) << "table " << table_id
                                      << " not registered";
  PERFEVAL_CHECK_LT(column_id, it->second.size());
  return it->second[column_id];
}

size_t StorageManager::NumChunks(uint32_t table_id,
                                 uint32_t column_id) const {
  return GetColumnMeta(table_id, column_id).num_chunks;
}

const ZoneMap& StorageManager::GetZoneMap(uint32_t table_id,
                                          uint32_t column_id,
                                          uint32_t chunk) const {
  const ColumnMeta& meta = GetColumnMeta(table_id, column_id);
  PERFEVAL_CHECK_LT(chunk, meta.zone_maps.size());
  return meta.zone_maps[chunk];
}

void StorageManager::TouchPageLocked(const PageId& page) {
  uint64_t key = page.Key();
  uint64_t stream = (static_cast<uint64_t>(page.table_id) << 32) |
                    page.column_id;
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    // Hit: move to MRU position. The stream head advances on hits too —
    // a warm page in the middle of a sequential scan must not make the
    // next miss look like a random access and pay a spurious seek.
    lru_.splice(lru_.begin(), lru_, it->second);
    stream_heads_[stream] = page.chunk;
    ++stats_.page_hits;
    return;
  }
  // Miss: charge the disk model. Sequential pages of the same column skip
  // the seek (per-column stream heads model OS readahead per file).
  const ColumnMeta& meta = GetColumnMeta(page.table_id, page.column_id);
  PERFEVAL_CHECK_LT(page.chunk, meta.num_chunks);
  size_t bytes = meta.chunk_bytes[page.chunk];
  auto head = stream_heads_.find(stream);
  bool sequential = head != stream_heads_.end() &&
                    page.chunk == head->second + 1;
  int64_t stall = static_cast<int64_t>(bytes * disk_.ns_per_byte);
  if (!sequential) {
    stall += disk_.seek_ns;
  }
  stream_heads_[stream] = page.chunk;
  ++stats_.page_misses;
  stats_.bytes_read += static_cast<int64_t>(bytes);
  stats_.stall_ns += stall;
  total_stall_ns_.fetch_add(stall, std::memory_order_relaxed);

  // Insert at MRU; evict from LRU tail as needed.
  lru_.push_front(key);
  resident_[key] = lru_.begin();
  while (resident_.size() > buffer_pool_pages_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);
  }
}

void StorageManager::TouchPage(const PageId& page) {
  std::lock_guard<std::mutex> lock(mu_);
  TouchPageLocked(page);
}

void StorageManager::TouchColumnRange(uint32_t table_id, uint32_t column_id,
                                      size_t row_begin, size_t row_end) {
  if (row_end <= row_begin) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t first_chunk = static_cast<uint32_t>(row_begin / rows_per_page_);
  uint32_t last_chunk =
      static_cast<uint32_t>((row_end - 1) / rows_per_page_);
  for (uint32_t chunk = first_chunk; chunk <= last_chunk; ++chunk) {
    TouchPageLocked(PageId{table_id, column_id, chunk});
  }
}

StorageStats StorageManager::TouchMorsel(
    uint32_t table_id, const std::vector<uint32_t>& column_ids,
    size_t row_begin, size_t row_end) {
  if (row_end <= row_begin || column_ids.empty()) {
    return StorageStats();
  }
  std::lock_guard<std::mutex> lock(mu_);
  StorageStats before = stats_;
  uint32_t first_chunk = static_cast<uint32_t>(row_begin / rows_per_page_);
  uint32_t last_chunk =
      static_cast<uint32_t>((row_end - 1) / rows_per_page_);
  for (uint32_t column_id : column_ids) {
    for (uint32_t chunk = first_chunk; chunk <= last_chunk; ++chunk) {
      TouchPageLocked(PageId{table_id, column_id, chunk});
    }
  }
  StorageStats delta;
  delta.page_hits = stats_.page_hits - before.page_hits;
  delta.page_misses = stats_.page_misses - before.page_misses;
  delta.bytes_read = stats_.bytes_read - before.bytes_read;
  delta.stall_ns = stats_.stall_ns - before.stall_ns;
  return delta;
}

void StorageManager::TouchColumn(uint32_t table_id, uint32_t column_id) {
  size_t chunks = NumChunks(table_id, column_id);
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t chunk = 0; chunk < chunks; ++chunk) {
    TouchPageLocked(PageId{table_id, column_id, chunk});
  }
}

void StorageManager::FlushCaches() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  resident_.clear();
  stream_heads_.clear();
}

StorageStats StorageManager::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void StorageManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = StorageStats();
}

}  // namespace db
}  // namespace perfeval
