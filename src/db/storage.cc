#include "db/storage.h"

#include <algorithm>

#include "common/string_util.h"

namespace perfeval {
namespace db {

std::string StorageStats::ToString() const {
  return StrFormat(
      "pages: %lld hits, %lld misses; %lld bytes read; %.3f ms stall",
      static_cast<long long>(page_hits), static_cast<long long>(page_misses),
      static_cast<long long>(bytes_read), stall_ns / 1e6);
}

StorageManager::StorageManager(DiskModel disk, size_t buffer_pool_pages,
                               size_t rows_per_page)
    : disk_(disk),
      buffer_pool_pages_(buffer_pool_pages),
      rows_per_page_(rows_per_page) {
  PERFEVAL_CHECK_GE(buffer_pool_pages_, 1u);
  PERFEVAL_CHECK_GE(rows_per_page_, 1u);
}

void StorageManager::RegisterTable(uint32_t table_id, const Table& table) {
  std::vector<ColumnMeta> metas;
  metas.reserve(table.num_columns());
  size_t rows = table.num_rows();
  size_t num_chunks = (rows + rows_per_page_ - 1) / rows_per_page_;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& column = table.column(c);
    ColumnMeta meta;
    meta.num_chunks = num_chunks;
    meta.bytes_per_chunk =
        rows == 0 ? 0 : column.ByteSize() / std::max<size_t>(num_chunks, 1);
    meta.zone_maps.resize(num_chunks);
    if (IsNumeric(column.type())) {
      for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
        size_t begin = chunk * rows_per_page_;
        size_t end = std::min(rows, begin + rows_per_page_);
        ZoneMap& zm = meta.zone_maps[chunk];
        zm.valid = begin < end;
        if (zm.valid) {
          zm.min = column.GetNumeric(begin);
          zm.max = zm.min;
          for (size_t r = begin + 1; r < end; ++r) {
            double v = column.GetNumeric(r);
            zm.min = std::min(zm.min, v);
            zm.max = std::max(zm.max, v);
          }
        }
      }
    }
    metas.push_back(std::move(meta));
  }
  tables_[table_id] = std::move(metas);
}

const StorageManager::ColumnMeta& StorageManager::GetColumnMeta(
    uint32_t table_id, uint32_t column_id) const {
  auto it = tables_.find(table_id);
  PERFEVAL_CHECK(it != tables_.end()) << "table " << table_id
                                      << " not registered";
  PERFEVAL_CHECK_LT(column_id, it->second.size());
  return it->second[column_id];
}

size_t StorageManager::NumChunks(uint32_t table_id,
                                 uint32_t column_id) const {
  return GetColumnMeta(table_id, column_id).num_chunks;
}

const ZoneMap& StorageManager::GetZoneMap(uint32_t table_id,
                                          uint32_t column_id,
                                          uint32_t chunk) const {
  const ColumnMeta& meta = GetColumnMeta(table_id, column_id);
  PERFEVAL_CHECK_LT(chunk, meta.zone_maps.size());
  return meta.zone_maps[chunk];
}

void StorageManager::TouchPage(const PageId& page) {
  uint64_t key = page.Key();
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    // Hit: move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.page_hits;
    return;
  }
  // Miss: charge the disk model. Sequential pages of the same column skip
  // the seek (per-column stream heads model OS readahead per file).
  const ColumnMeta& meta = GetColumnMeta(page.table_id, page.column_id);
  uint64_t stream = (static_cast<uint64_t>(page.table_id) << 32) |
                    page.column_id;
  auto head = stream_heads_.find(stream);
  bool sequential = head != stream_heads_.end() &&
                    page.chunk == head->second + 1;
  int64_t stall = static_cast<int64_t>(
      meta.bytes_per_chunk * disk_.ns_per_byte);
  if (!sequential) {
    stall += disk_.seek_ns;
  }
  stream_heads_[stream] = page.chunk;
  ++stats_.page_misses;
  stats_.bytes_read += static_cast<int64_t>(meta.bytes_per_chunk);
  stats_.stall_ns += stall;
  total_stall_ns_ += stall;

  // Insert at MRU; evict from LRU tail as needed.
  lru_.push_front(key);
  resident_[key] = lru_.begin();
  while (resident_.size() > buffer_pool_pages_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);
  }
}

void StorageManager::TouchColumnRange(uint32_t table_id, uint32_t column_id,
                                      size_t row_begin, size_t row_end) {
  if (row_end <= row_begin) {
    return;
  }
  uint32_t first_chunk = static_cast<uint32_t>(row_begin / rows_per_page_);
  uint32_t last_chunk =
      static_cast<uint32_t>((row_end - 1) / rows_per_page_);
  for (uint32_t chunk = first_chunk; chunk <= last_chunk; ++chunk) {
    TouchPage(PageId{table_id, column_id, chunk});
  }
}

void StorageManager::TouchColumn(uint32_t table_id, uint32_t column_id) {
  size_t chunks = NumChunks(table_id, column_id);
  for (uint32_t chunk = 0; chunk < chunks; ++chunk) {
    TouchPage(PageId{table_id, column_id, chunk});
  }
}

void StorageManager::FlushCaches() {
  lru_.clear();
  resident_.clear();
  stream_heads_.clear();
}

}  // namespace db
}  // namespace perfeval
