#ifndef PERFEVAL_SERVE_LATENCY_H_
#define PERFEVAL_SERVE_LATENCY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stats/confidence.h"

namespace perfeval {
namespace serve {

/// Log2-bucketed latency histogram (HdrHistogram-style): values below
/// kSubBuckets are counted exactly; above that, each power-of-two octave is
/// split into kSubBuckets linear sub-buckets, bounding the relative
/// quantization error at 1/kSubBuckets (6.25%). Recording is O(1) with no
/// allocation, so the serving path can record every request — the paper's
/// slide-22/23 response-time metrics reported as a distribution, not the
/// single mean slide 140 warns against.
///
/// Not thread-safe: each client/worker records into its own histogram and
/// the collector Merge()s them — the same partial-then-merge discipline the
/// morsel executor uses, so recording never serializes the load path.
class LatencyHistogram {
 public:
  /// Sub-buckets per octave; must be a power of two.
  static constexpr int64_t kSubBuckets = 16;

  LatencyHistogram();

  /// Records one latency. Negative values clamp to 0 (a clock step on a
  /// sub-resolution interval), values above ~2^62 ns saturate the top
  /// bucket.
  void Record(int64_t ns);

  /// Adds every count of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  int64_t TotalCount() const { return total_count_; }
  /// Exact (unquantized) extremes and sum of the recorded values.
  int64_t MinNs() const;
  int64_t MaxNs() const { return max_ns_; }
  double MeanNs() const;

  /// Value at percentile p in [0, 100]: the representative (bucket
  /// midpoint) of the bucket holding the p-th of the recorded values;
  /// p=0 / p=100 return the exact min/max. Requires a non-empty histogram.
  double ValueAtPercentile(double p) const;

  /// Bootstrap confidence interval for the percentile, resampling the
  /// bucketed distribution (each observation enters at its bucket
  /// representative) through stats::BootstrapPercentileCI. Deterministic in
  /// `seed`. `resamples` trades precision for time when many intervals are
  /// extracted per run. Requires >= 2 recorded values.
  stats::ConfidenceInterval PercentileCI(double p, double confidence,
                                         uint64_t seed,
                                         int resamples = 1000) const;

  /// The recorded distribution expanded to one representative value per
  /// observation, in ascending order — the sample vector the bootstrap
  /// resamples. O(TotalCount()) memory.
  std::vector<double> RepresentativeValues() const;

  /// "n=… p50=… p90=… p99=… p99.9=… max=…" with millisecond units.
  std::string SummaryString() const;

  /// Bucket index of `ns` — exposed for tests of the bucketing math.
  static size_t BucketIndex(int64_t ns);
  /// Inclusive lower edge and midpoint representative of bucket `index`.
  static int64_t BucketLowerNs(size_t index);
  static double BucketMidNs(size_t index);

 private:
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
  int64_t min_ns_ = 0;
  int64_t max_ns_ = 0;
  double sum_ns_ = 0.0;
};

}  // namespace serve
}  // namespace perfeval

#endif  // PERFEVAL_SERVE_LATENCY_H_
