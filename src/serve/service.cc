#include "serve/service.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "db/error.h"
#include "repro/fingerprint.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace serve {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShed:
      return "shed";
    case OverloadPolicy::kTimeout:
      return "timeout";
  }
  return "unknown";
}

const Response& PendingResponse::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return response_;
}

bool PendingResponse::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void PendingResponse::Fulfill(Response response) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PERFEVAL_CHECK(!done_) << "response fulfilled twice";
    response_ = std::move(response);
    complete_steady_ns_ = SteadyNowNs();
    done_ = true;
  }
  cv_.notify_all();
}

QueryService::QueryService(db::Database* database, ServiceOptions options)
    : database_(database), options_(options) {
  PERFEVAL_CHECK(database_ != nullptr);
  PERFEVAL_CHECK_GE(options_.queue_capacity, 1u);
  if (options_.workers < 1) {
    options_.workers = 1;
  }
  pool_ = std::make_unique<sched::WorkerPool>(options_.workers);
}

QueryService::~QueryService() { Shutdown(); }

uint64_t QueryService::FingerprintTable(const db::Table& table) {
  std::string rendered;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      rendered += table.ValueAt(r, c).ToString();
      rendered += '|';
    }
    rendered += '\n';
  }
  return repro::Fnv1a64(rendered);
}

ResponseHandle QueryService::Submit(Request request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto handle = std::make_shared<PendingResponse>();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutdown_ && queued_ >= options_.queue_capacity) {
      switch (options_.overload) {
        case OverloadPolicy::kBlock:
          slot_free_.wait(lock, [this] {
            return shutdown_ || queued_ < options_.queue_capacity;
          });
          break;
        case OverloadPolicy::kShed:
          break;  // fall through to the capacity re-check below.
        case OverloadPolicy::kTimeout:
          slot_free_.wait_for(
              lock, std::chrono::nanoseconds(options_.admission_timeout_ns),
              [this] {
                return shutdown_ || queued_ < options_.queue_capacity;
              });
          break;
      }
    }
    if (shutdown_) {
      lock.unlock();
      Response response;
      response.status =
          Status::FailedPrecondition("service is shut down");
      response.seed = request.seed;
      handle->Fulfill(std::move(response));
      return handle;
    }
    if (queued_ >= options_.queue_capacity) {
      lock.unlock();
      shed_.fetch_add(1, std::memory_order_relaxed);
      Response response;
      response.status = Status::Overloaded(
          "admission queue full (" + std::to_string(options_.queue_capacity) +
          " queued, policy " + OverloadPolicyName(options_.overload) + ")");
      response.seed = request.seed;
      handle->Fulfill(std::move(response));
      return handle;
    }
    ++queued_;
    // Enqueue while still holding mu_: Shutdown() flips shutdown_ under the
    // same mutex before closing the pool, so a Push can never race a
    // Close.
    admitted_.fetch_add(1, std::memory_order_relaxed);
    int64_t admit_ns = SteadyNowNs();
    pool_->Submit(
        [this, request = std::move(request), handle, admit_ns]() mutable {
          RunRequest(std::move(request), handle, admit_ns);
        });
  }
  return handle;
}

void QueryService::RunRequest(Request request, ResponseHandle handle,
                              int64_t admit_ns) {
  int64_t start_ns = SteadyNowNs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    PERFEVAL_CHECK_GE(queued_, 1u);
    --queued_;
  }
  slot_free_.notify_one();
  started_.fetch_add(1, std::memory_order_relaxed);

  Response response;
  response.seed = request.seed;
  response.server.queue_wait_ns = start_ns - admit_ns;

  if (request.deadline_ns > 0 &&
      response.server.queue_wait_ns > request.deadline_ns) {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    response.status = Status::DeadlineExceeded(
        "deadline passed after " +
        std::to_string(response.server.queue_wait_ns) + "ns in queue");
    handle->Fulfill(std::move(response));
    return;
  }

  if (request.before_execute) {
    request.before_execute();
  }

  // WorkerPool jobs must not throw: QueryError (checked arithmetic,
  // invariant violations) is converted to an error response here, the same
  // boundary conversion sql::RunQuery performs.
  try {
    db::PlanPtr plan = request.plan;
    if (!plan) {
      plan = workload::GetTpchQuery(request.query).Build(*database_);
    }
    db::QueryResult result =
        database_->Run(plan, options_.mode, options_.sink);
    response.server.exec_ns = result.server.ObservedRealNs();
    response.table = result.table;
    if (options_.fingerprint_results && result.table != nullptr) {
      response.fingerprint = FingerprintTable(*result.table);
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
  } catch (const db::QueryError& e) {
    response.status = e.ToStatus();
  }
  handle->Fulfill(std::move(response));
}

Response QueryService::Execute(Request request) {
  return Submit(std::move(request))->Wait();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  slot_free_.notify_all();
  pool_->Drain();
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.started = started_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace serve
}  // namespace perfeval
