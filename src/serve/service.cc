#include "serve/service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "db/error.h"
#include "repro/fingerprint.h"
#include "workload/tpch_queries.h"

namespace perfeval {
namespace serve {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShed:
      return "shed";
    case OverloadPolicy::kTimeout:
      return "timeout";
  }
  return "unknown";
}

const Response& PendingResponse::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return response_;
}

bool PendingResponse::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void PendingResponse::Fulfill(Response response) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PERFEVAL_CHECK(!done_) << "response fulfilled twice";
    response_ = std::move(response);
    complete_steady_ns_ = SteadyNowNs();
    done_ = true;
  }
  cv_.notify_all();
}

QueryService::QueryService(db::Database* database, ServiceOptions options)
    : QueryService(
          [database](const Request& request, db::ExecMode mode,
                     db::SinkKind sink) {
            PERFEVAL_CHECK(database != nullptr);
            db::PlanPtr plan = request.plan;
            if (!plan) {
              plan = workload::GetTpchQuery(request.query).Build(*database);
            }
            return database->Run(plan, mode, sink);
          },
          std::move(options)) {
  PERFEVAL_CHECK(database != nullptr);
}

QueryService::QueryService(ExecutorFn executor, ServiceOptions options)
    : executor_(std::move(executor)), options_(std::move(options)) {
  PERFEVAL_CHECK(executor_ != nullptr);
  PERFEVAL_CHECK_GE(options_.queue_capacity, 1u);
  if (options_.workers < 1) {
    options_.workers = 1;
  }
  pool_ = std::make_unique<sched::WorkerPool>(options_.workers);
}

QueryService::~QueryService() { Shutdown(); }

uint64_t QueryService::FingerprintTable(const db::Table& table) {
  std::string rendered;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      rendered += table.ValueAt(r, c).ToString();
      rendered += '|';
    }
    rendered += '\n';
  }
  return repro::Fnv1a64(rendered);
}

ResponseHandle QueryService::Submit(Request request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto handle = std::make_shared<PendingResponse>();
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Tenant quota: checked before any capacity wait — a tenant at its
    // quota is rejected immediately, never parked in (or blocking for) the
    // shared queue.
    if (!shutdown_ && !request.tenant.empty()) {
      auto quota = options_.tenant_quotas.find(request.tenant);
      if (quota != options_.tenant_quotas.end() &&
          tenant_outstanding_[request.tenant] >= quota->second) {
        lock.unlock();
        quota_rejected_.fetch_add(1, std::memory_order_relaxed);
        Response response;
        response.status = Status::Overloaded(
            "tenant '" + request.tenant + "' at quota (" +
            std::to_string(quota->second) + " outstanding)");
        response.seed = request.seed;
        handle->Fulfill(std::move(response));
        return handle;
      }
    }
    if (!shutdown_ && queued_ >= options_.queue_capacity) {
      switch (options_.overload) {
        case OverloadPolicy::kBlock:
          slot_free_.wait(lock, [this] {
            return shutdown_ || queued_ < options_.queue_capacity;
          });
          break;
        case OverloadPolicy::kShed:
          break;  // fall through to the capacity re-check below.
        case OverloadPolicy::kTimeout:
          slot_free_.wait_for(
              lock, std::chrono::nanoseconds(options_.admission_timeout_ns),
              [this] {
                return shutdown_ || queued_ < options_.queue_capacity;
              });
          break;
      }
    }
    if (shutdown_) {
      lock.unlock();
      Response response;
      response.status =
          Status::FailedPrecondition("service is shut down");
      response.seed = request.seed;
      handle->Fulfill(std::move(response));
      return handle;
    }
    if (queued_ >= options_.queue_capacity) {
      lock.unlock();
      shed_.fetch_add(1, std::memory_order_relaxed);
      Response response;
      response.status = Status::Overloaded(
          "admission queue full (" + std::to_string(options_.queue_capacity) +
          " queued, policy " + OverloadPolicyName(options_.overload) + ")");
      response.seed = request.seed;
      handle->Fulfill(std::move(response));
      return handle;
    }
    ++queued_;
    if (!request.tenant.empty() &&
        options_.tenant_quotas.count(request.tenant) != 0) {
      ++tenant_outstanding_[request.tenant];
    }
    // Enqueue while still holding mu_: Shutdown() flips shutdown_ under the
    // same mutex before closing the pool, so a Push can never race a
    // Close.
    admitted_.fetch_add(1, std::memory_order_relaxed);
    int64_t admit_ns = SteadyNowNs();
    pool_->Submit(
        [this, request = std::move(request), handle, admit_ns]() mutable {
          RunRequest(std::move(request), handle, admit_ns);
        });
  }
  return handle;
}

void QueryService::ReleaseTenantSlot(const std::string& tenant) {
  if (tenant.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_outstanding_.find(tenant);
  if (it != tenant_outstanding_.end() && it->second > 0) {
    --it->second;
  }
}

void QueryService::RunRequest(Request request, ResponseHandle handle,
                              int64_t admit_ns) {
  int64_t start_ns = SteadyNowNs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    PERFEVAL_CHECK_GE(queued_, 1u);
    --queued_;
  }
  slot_free_.notify_one();
  started_.fetch_add(1, std::memory_order_relaxed);
  inflight_.fetch_add(1, std::memory_order_relaxed);

  Response response;
  response.seed = request.seed;
  response.server.queue_wait_ns = start_ns - admit_ns;

  if (request.deadline_ns > 0 &&
      response.server.queue_wait_ns > request.deadline_ns) {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    response.status = Status::DeadlineExceeded(
        "deadline passed after " +
        std::to_string(response.server.queue_wait_ns) + "ns in queue");
  } else {
    if (request.before_execute) {
      request.before_execute();
    }
    // WorkerPool jobs must not throw: QueryError (checked arithmetic,
    // invariant violations) is converted to an error response here, the
    // same boundary conversion sql::RunQuery performs.
    try {
      db::ExecMode mode = request.mode.value_or(options_.mode);
      db::QueryResult result = executor_(request, mode, options_.sink);
      response.server.exec_ns = result.server.ObservedRealNs();
      response.table = result.table;
      if (options_.fingerprint_results && result.table != nullptr) {
        response.fingerprint = FingerprintTable(*result.table);
      }
      executed_.fetch_add(1, std::memory_order_relaxed);
      if (options_.realize_stall_scale > 0.0 && result.storage.stall_ns > 0) {
        // Turn the DiskModel's simulated stall into real wall time, so a
        // slow shard's tail is observable on the client's clock (A10
        // straggler injection). exec_ns already counts the stall — the
        // observed clock includes simulated time — so nothing is added to
        // the server split here.
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            static_cast<int64_t>(static_cast<double>(result.storage.stall_ns) *
                                 options_.realize_stall_scale)));
      }
    } catch (const db::QueryError& e) {
      response.status = e.ToStatus();
    }
  }
  // Bookkeeping before Fulfill: a synchronous client that resubmits the
  // instant Wait() returns must find its quota slot already free.
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  ReleaseTenantSlot(request.tenant);
  handle->Fulfill(std::move(response));
}

Response QueryService::Execute(Request request) {
  return Submit(std::move(request))->Wait();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  slot_free_.notify_all();
  pool_->Drain();
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.quota_rejected = quota_rejected_.load(std::memory_order_relaxed);
  s.started = started_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  return s;
}

QueueSnapshot QueryService::queue_snapshot() const {
  QueueSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.queued = queued_;
  }
  snap.inflight = inflight_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace serve
}  // namespace perfeval
