#ifndef PERFEVAL_SERVE_LOADGEN_H_
#define PERFEVAL_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/latency.h"
#include "serve/service.h"

namespace perfeval {
namespace serve {

/// The two textbook load-driver shapes (Schroeder et al., "Open Versus
/// Closed: A Cautionary Tale"):
///  - closed-loop: a fixed population of clients, each thinking, issuing
///    one request, and waiting for the response. Arrival rate adapts to
///    service speed, so a slow server silently stops being offered load —
///    the coordinated-omission failure mode;
///  - open-loop: requests arrive on a virtual Poisson schedule regardless
///    of service state. A late dispatch is charged from the *intended*
///    arrival time, so queueing that a closed driver would hide shows up
///    in the measured tail.
enum class LoadMode {
  kClosed,
  kOpen,
};

const char* LoadModeName(LoadMode mode);

/// Configuration of one load-generation run.
struct LoadOptions {
  LoadMode mode = LoadMode::kClosed;
  /// Total requests in the run (across all clients).
  int requests = 256;
  /// Closed-loop client population. Open-loop runs dispatch from a single
  /// virtual timeline regardless of this setting.
  int clients = 4;
  /// Closed-loop mean think time between a response and the client's next
  /// request, exponentially distributed; 0 disables thinking.
  double think_ms_mean = 0.0;
  /// Open-loop offered load: Poisson arrival rate, requests per second.
  double offered_qps = 100.0;
  /// Base seed of the run; request r of stream s draws everything it
  /// randomizes from MixSeed(run_seed, s, r), so the whole schedule is a
  /// pure function of (options) — independent of workers and wall clock.
  uint64_t run_seed = 1;
  /// TPC-H query numbers sampled per request; all 22 when empty.
  std::vector<int> query_mix;
  /// Tenant name stamped on every request (admission-quota identity);
  /// empty = untenanted. Does not change the schedule — only the Request.
  std::string tenant;
};

/// One scheduled request: everything decided before the run starts.
struct PlannedRequest {
  int index = 0;   ///< 0-based global request index.
  int stream = 0;  ///< closed-loop: owning client; open-loop: 0.
  int query = 1;   ///< TPC-H query number.
  uint64_t seed = 0;  ///< MixSeed(run_seed, stream, index).
  /// Open-loop: intended arrival on the virtual timeline (ns from run
  /// start). Closed-loop: -1 (arrival is response-dependent by design).
  int64_t intended_ns = -1;
  /// Closed-loop: think time before this request, ns. Open-loop: 0.
  int64_t think_ns = 0;
};

/// Builds the full request schedule for `options`: a pure function — same
/// options, same schedule, bit for bit, at any worker count, on any
/// machine. This is the replay invariant serve_test locks down.
std::vector<PlannedRequest> BuildSchedule(const LoadOptions& options);

/// Outcome of one request as the client observed it.
struct RequestOutcome {
  PlannedRequest spec;
  Status status;
  uint64_t fingerprint = 0;
  ServerTiming server;
  int64_t dispatch_ns = 0;  ///< actual submit time on the run timeline.
  int64_t complete_ns = 0;  ///< response fulfillment on the run timeline.
  /// Client-observed latency: open-loop from the intended arrival
  /// (coordinated omission charged, not hidden), closed-loop from
  /// dispatch.
  int64_t client_latency_ns = 0;
};

/// Everything one run measured.
struct LoadResult {
  std::vector<RequestOutcome> outcomes;  ///< in request-index order.
  double wall_ms = 0.0;       ///< first dispatch to last completion.
  double achieved_qps = 0.0;  ///< completed OK requests per second.
  double qph = 0.0;           ///< the same rate in queries/hour.
  int64_t errors = 0;         ///< non-OK responses (shed, deadline, ...).
  /// Distributions over requests that completed OK. Client latency is the
  /// full client view; queue/exec are the server-side split.
  LatencyHistogram client_latency;
  LatencyHistogram queue_wait;
  LatencyHistogram exec_time;
};

/// Drives a QueryService with the schedule of `options` and measures
/// client-observed latency per request.
class LoadGenerator {
 public:
  LoadGenerator(QueryService* service, LoadOptions options);

  /// Runs the whole schedule to completion. May be called repeatedly; each
  /// call replays the identical schedule.
  LoadResult Run();

  const LoadOptions& options() const { return options_; }

 private:
  LoadResult RunClosed(const std::vector<PlannedRequest>& schedule);
  LoadResult RunOpen(const std::vector<PlannedRequest>& schedule);

  QueryService* service_;
  LoadOptions options_;
};

}  // namespace serve
}  // namespace perfeval

#endif  // PERFEVAL_SERVE_LOADGEN_H_
