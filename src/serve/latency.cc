#include "serve/latency.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"
#include "stats/bootstrap.h"

namespace perfeval {
namespace serve {
namespace {

// Values saturate here so the top octave stays addressable: 2^62 - 1 ns is
// about 146 years of latency, comfortably "stuck".
constexpr int64_t kMaxTrackable = (int64_t{1} << 62) - 1;

// Octaves 4..62 of 16 sub-buckets each, after the 16 exact small values.
constexpr size_t kNumBuckets = 16 * 60;

}  // namespace

LatencyHistogram::LatencyHistogram() : counts_(kNumBuckets, 0) {}

size_t LatencyHistogram::BucketIndex(int64_t ns) {
  if (ns < 0) {
    ns = 0;
  }
  if (ns > kMaxTrackable) {
    ns = kMaxTrackable;
  }
  if (ns < kSubBuckets) {
    return static_cast<size_t>(ns);
  }
  int b = std::bit_width(static_cast<uint64_t>(ns)) - 1;  // floor(log2 ns)
  int64_t sub = (ns >> (b - 4)) & (kSubBuckets - 1);
  return static_cast<size_t>(16 * (b - 3) + sub);
}

int64_t LatencyHistogram::BucketLowerNs(size_t index) {
  if (index < static_cast<size_t>(kSubBuckets)) {
    return static_cast<int64_t>(index);
  }
  int b = static_cast<int>(index / 16) + 3;
  int64_t sub = static_cast<int64_t>(index % 16);
  return (int64_t{1} << b) + (sub << (b - 4));
}

double LatencyHistogram::BucketMidNs(size_t index) {
  int64_t lower = BucketLowerNs(index);
  int64_t width = index < static_cast<size_t>(kSubBuckets)
                      ? 1
                      : int64_t{1} << (static_cast<int>(index / 16) - 1);
  // Integer values in this bucket span [lower, lower + width - 1], so the
  // representative is the midpoint of that inclusive range — for the exact
  // (width-1) buckets that is the recorded value itself.
  return static_cast<double>(lower) + static_cast<double>(width - 1) / 2.0;
}

void LatencyHistogram::Record(int64_t ns) {
  if (ns < 0) {
    ns = 0;
  }
  size_t index = BucketIndex(ns);
  counts_[index] += 1;
  if (total_count_ == 0 || ns < min_ns_) {
    min_ns_ = ns;
  }
  if (total_count_ == 0 || ns > max_ns_) {
    max_ns_ = ns;
  }
  sum_ns_ += static_cast<double>(ns);
  total_count_ += 1;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.total_count_ == 0) {
    return;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (total_count_ == 0 || other.min_ns_ < min_ns_) {
    min_ns_ = other.min_ns_;
  }
  if (total_count_ == 0 || other.max_ns_ > max_ns_) {
    max_ns_ = other.max_ns_;
  }
  sum_ns_ += other.sum_ns_;
  total_count_ += other.total_count_;
}

int64_t LatencyHistogram::MinNs() const { return min_ns_; }

double LatencyHistogram::MeanNs() const {
  PERFEVAL_CHECK_GT(total_count_, 0) << "mean of empty histogram";
  return sum_ns_ / static_cast<double>(total_count_);
}

double LatencyHistogram::ValueAtPercentile(double p) const {
  PERFEVAL_CHECK_GT(total_count_, 0) << "percentile of empty histogram";
  PERFEVAL_CHECK_GE(p, 0.0);
  PERFEVAL_CHECK_LE(p, 100.0);
  if (p <= 0.0) {
    return static_cast<double>(min_ns_);
  }
  if (p >= 100.0) {
    return static_cast<double>(max_ns_);
  }
  int64_t target = static_cast<int64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total_count_)));
  target = std::max<int64_t>(target, 1);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      // The representative can overshoot the true extremes by up to half a
      // bucket; clamp so reported percentiles never leave [min, max].
      return std::clamp(BucketMidNs(i), static_cast<double>(min_ns_),
                        static_cast<double>(max_ns_));
    }
  }
  return static_cast<double>(max_ns_);
}

std::vector<double> LatencyHistogram::RepresentativeValues() const {
  std::vector<double> values;
  values.reserve(static_cast<size_t>(total_count_));
  for (size_t i = 0; i < counts_.size(); ++i) {
    double mid = std::clamp(BucketMidNs(i), static_cast<double>(min_ns_),
                            static_cast<double>(max_ns_));
    for (int64_t c = 0; c < counts_[i]; ++c) {
      values.push_back(mid);
    }
  }
  return values;
}

stats::ConfidenceInterval LatencyHistogram::PercentileCI(
    double p, double confidence, uint64_t seed, int resamples) const {
  PERFEVAL_CHECK_GE(total_count_, 2) << "bootstrap needs >= 2 observations";
  return stats::BootstrapPercentileCI(RepresentativeValues(), p, confidence,
                                      seed, resamples);
}

std::string LatencyHistogram::SummaryString() const {
  if (total_count_ == 0) {
    return "n=0";
  }
  return StrFormat(
      "n=%lld p50=%.3fms p90=%.3fms p99=%.3fms p99.9=%.3fms max=%.3fms",
      static_cast<long long>(total_count_), ValueAtPercentile(50.0) / 1e6,
      ValueAtPercentile(90.0) / 1e6, ValueAtPercentile(99.0) / 1e6,
      ValueAtPercentile(99.9) / 1e6, static_cast<double>(max_ns_) / 1e6);
}

}  // namespace serve
}  // namespace perfeval
