#include "serve/loadgen.h"

#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "core/metrics.h"
#include "sched/worker_pool.h"

namespace perfeval {
namespace serve {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<int> EffectiveMix(const LoadOptions& options) {
  std::vector<int> mix = options.query_mix;
  if (mix.empty()) {
    mix.resize(22);
    std::iota(mix.begin(), mix.end(), 1);
  }
  for (int q : mix) {
    PERFEVAL_CHECK_GE(q, 1);
    PERFEVAL_CHECK_LE(q, 22);
  }
  return mix;
}

Request ToRequest(const PlannedRequest& spec, const std::string& tenant) {
  Request request;
  request.query = spec.query;
  request.seed = spec.seed;
  request.tenant = tenant;
  return request;
}

/// Folds one finished request into the shared result vectors. `partial`
/// holds the thread-local histograms merged after the run.
struct PartialResult {
  LatencyHistogram client_latency;
  LatencyHistogram queue_wait;
  LatencyHistogram exec_time;
  int64_t errors = 0;

  void Record(const RequestOutcome& outcome) {
    if (!outcome.status.ok()) {
      ++errors;
      return;
    }
    client_latency.Record(outcome.client_latency_ns);
    queue_wait.Record(outcome.server.queue_wait_ns);
    exec_time.Record(outcome.server.exec_ns);
  }
};

LoadResult Assemble(std::vector<RequestOutcome> outcomes,
                    std::vector<PartialResult> partials) {
  LoadResult result;
  result.outcomes = std::move(outcomes);
  for (PartialResult& partial : partials) {
    result.client_latency.Merge(partial.client_latency);
    result.queue_wait.Merge(partial.queue_wait);
    result.exec_time.Merge(partial.exec_time);
    result.errors += partial.errors;
  }
  int64_t last_complete_ns = 0;
  for (const RequestOutcome& outcome : result.outcomes) {
    last_complete_ns = std::max(last_complete_ns, outcome.complete_ns);
  }
  result.wall_ms = static_cast<double>(last_complete_ns) / 1e6;
  double completed =
      static_cast<double>(result.client_latency.TotalCount());
  result.qph = core::QueriesPerHour(completed, result.wall_ms);
  result.achieved_qps = result.qph / 3600.0;
  return result;
}

}  // namespace

const char* LoadModeName(LoadMode mode) {
  switch (mode) {
    case LoadMode::kClosed:
      return "closed";
    case LoadMode::kOpen:
      return "open";
  }
  return "unknown";
}

std::vector<PlannedRequest> BuildSchedule(const LoadOptions& options) {
  PERFEVAL_CHECK_GE(options.requests, 1);
  PERFEVAL_CHECK_GE(options.clients, 1);
  PERFEVAL_CHECK_GE(options.think_ms_mean, 0.0);
  std::vector<int> mix = EffectiveMix(options);
  std::vector<PlannedRequest> schedule(
      static_cast<size_t>(options.requests));
  if (options.mode == LoadMode::kOpen) {
    PERFEVAL_CHECK_GT(options.offered_qps, 0.0);
    // Poisson arrivals: i.i.d. exponential gaps at the offered rate,
    // accumulated into a virtual timeline fixed before the run starts.
    double rate_per_ns = options.offered_qps / 1e9;
    int64_t arrival_ns = 0;
    for (int i = 0; i < options.requests; ++i) {
      PlannedRequest& spec = schedule[static_cast<size_t>(i)];
      spec.index = i;
      spec.stream = 0;
      spec.seed = MixSeed(options.run_seed, 0, static_cast<uint64_t>(i));
      Pcg32 rng(spec.seed);
      spec.query = mix[rng.NextBounded(static_cast<uint32_t>(mix.size()))];
      arrival_ns +=
          static_cast<int64_t>(std::llround(rng.NextExponential(rate_per_ns)));
      spec.intended_ns = arrival_ns;
    }
  } else {
    for (int i = 0; i < options.requests; ++i) {
      PlannedRequest& spec = schedule[static_cast<size_t>(i)];
      spec.index = i;
      spec.stream = i % options.clients;
      spec.seed = MixSeed(options.run_seed,
                          static_cast<uint64_t>(spec.stream),
                          static_cast<uint64_t>(i));
      Pcg32 rng(spec.seed);
      spec.query = mix[rng.NextBounded(static_cast<uint32_t>(mix.size()))];
      if (options.think_ms_mean > 0.0) {
        double mean_ns = options.think_ms_mean * 1e6;
        spec.think_ns = static_cast<int64_t>(
            std::llround(rng.NextExponential(1.0 / mean_ns)));
      }
    }
  }
  return schedule;
}

LoadGenerator::LoadGenerator(QueryService* service, LoadOptions options)
    : service_(service), options_(std::move(options)) {
  PERFEVAL_CHECK(service_ != nullptr);
}

LoadResult LoadGenerator::Run() {
  std::vector<PlannedRequest> schedule = BuildSchedule(options_);
  return options_.mode == LoadMode::kOpen ? RunOpen(schedule)
                                          : RunClosed(schedule);
}

LoadResult LoadGenerator::RunClosed(
    const std::vector<PlannedRequest>& schedule) {
  int clients = options_.clients;
  std::vector<RequestOutcome> outcomes(schedule.size());
  std::vector<PartialResult> partials(static_cast<size_t>(clients));
  int64_t run_start_ns = SteadyNowNs();
  {
    // One worker per client; each client owns its outcome slots (the
    // indices congruent to its id), so clients never write shared state.
    sched::WorkerPool pool(clients);
    for (int c = 0; c < clients; ++c) {
      pool.Submit([this, c, clients, run_start_ns, &schedule, &outcomes,
                   &partials] {
        PartialResult& partial = partials[static_cast<size_t>(c)];
        for (size_t i = static_cast<size_t>(c); i < schedule.size();
             i += static_cast<size_t>(clients)) {
          const PlannedRequest& spec = schedule[i];
          if (spec.think_ns > 0) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(spec.think_ns));
          }
          RequestOutcome& outcome = outcomes[i];
          outcome.spec = spec;
          outcome.dispatch_ns = SteadyNowNs() - run_start_ns;
          Response response =
              service_->Execute(ToRequest(spec, options_.tenant));
          outcome.complete_ns = SteadyNowNs() - run_start_ns;
          outcome.status = response.status;
          outcome.fingerprint = response.fingerprint;
          outcome.server = response.server;
          outcome.client_latency_ns =
              outcome.complete_ns - outcome.dispatch_ns;
          partial.Record(outcome);
        }
      });
    }
    pool.Drain();
  }
  return Assemble(std::move(outcomes), std::move(partials));
}

LoadResult LoadGenerator::RunOpen(
    const std::vector<PlannedRequest>& schedule) {
  std::vector<RequestOutcome> outcomes(schedule.size());
  std::vector<ResponseHandle> handles(schedule.size());
  int64_t run_start_ns = SteadyNowNs();
  auto run_start_tp = std::chrono::steady_clock::now();
  for (size_t i = 0; i < schedule.size(); ++i) {
    const PlannedRequest& spec = schedule[i];
    // Dispatch at the intended arrival; when the service (or this
    // dispatcher) falls behind, the request goes out late but its latency
    // is still charged from intended_ns below — the coordinated-omission
    // correction.
    std::this_thread::sleep_until(
        run_start_tp + std::chrono::nanoseconds(spec.intended_ns));
    outcomes[i].spec = spec;
    outcomes[i].dispatch_ns = SteadyNowNs() - run_start_ns;
    handles[i] = service_->Submit(ToRequest(spec, options_.tenant));
  }
  std::vector<PartialResult> partials(1);
  for (size_t i = 0; i < schedule.size(); ++i) {
    RequestOutcome& outcome = outcomes[i];
    const Response& response = handles[i]->Wait();
    outcome.complete_ns = handles[i]->complete_steady_ns() - run_start_ns;
    outcome.status = response.status;
    outcome.fingerprint = response.fingerprint;
    outcome.server = response.server;
    outcome.client_latency_ns = outcome.complete_ns - outcome.spec.intended_ns;
    partials[0].Record(outcome);
  }
  return Assemble(std::move(outcomes), std::move(partials));
}

}  // namespace serve
}  // namespace perfeval
