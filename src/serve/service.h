#ifndef PERFEVAL_SERVE_SERVICE_H_
#define PERFEVAL_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/status.h"
#include "db/database.h"
#include "sched/worker_pool.h"

namespace perfeval {
namespace serve {

/// What happens when a request arrives and the admission queue is full.
/// The three classic server answers; which one a service uses changes what
/// a load generator measures (a blocked producer is coordinated omission).
enum class OverloadPolicy {
  kBlock,    ///< producer waits for a queue slot (back-pressure).
  kShed,     ///< reject immediately with kOverloaded.
  kTimeout,  ///< wait up to admission_timeout_ns, then kOverloaded.
};

const char* OverloadPolicyName(OverloadPolicy policy);

/// Configuration of a QueryService instance.
struct ServiceOptions {
  /// Executor width: sched::WorkerPool threads draining the admission
  /// queue. A pure concurrency knob — response relations and fingerprints
  /// are identical at any setting (serve_test replays a schedule at 1/4/8
  /// workers and compares fingerprints bit for bit).
  int workers = 4;
  /// Admitted-but-not-yet-running requests allowed before the overload
  /// policy engages. Bounded by design: an unbounded queue hides overload
  /// until memory runs out.
  size_t queue_capacity = 64;
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// kTimeout policy: how long Submit may wait for a queue slot.
  int64_t admission_timeout_ns = 10'000'000;
  db::ExecMode mode = db::ExecMode::kOptimized;
  db::SinkKind sink = db::SinkKind::kDiscard;
  /// FNV-1a fingerprint of every rendered result relation (costs a render
  /// per request; the determinism tests need it, a pure latency sweep can
  /// turn it off).
  bool fingerprint_results = true;
  /// Per-tenant admission quotas: max outstanding (admitted but not yet
  /// completed) requests per tenant name. A tenant at its quota is rejected
  /// immediately with kOverloaded — quota rejection never blocks, even
  /// under OverloadPolicy::kBlock, so one greedy tenant cannot occupy the
  /// whole admission queue. Tenants absent from the map (and requests with
  /// an empty tenant) are unlimited.
  std::map<std::string, size_t> tenant_quotas;
  /// When > 0, the worker sleeps `simulated storage stall * scale` after
  /// executing a request, turning the DiskModel's modeled stall into real
  /// wall time. The straggler-injection bench uses it so a slow shard's
  /// tail is physically observable by clients; 0 keeps the stall purely
  /// simulated (the default, and what every latency bench before A10
  /// measured).
  double realize_stall_scale = 0.0;
};

/// One query request. Either a TPC-H query number (built against the
/// service's catalog on the worker) or an explicit plan.
struct Request {
  int query = 1;             ///< TPC-H query number 1..22, when plan unset.
  db::PlanPtr plan;          ///< overrides `query` when set.
  uint64_t seed = 0;         ///< deterministic identity, echoed in Response.
  /// Server-side deadline relative to admission; 0 = none. A request whose
  /// deadline passes while queued is never executed — the worker discards
  /// it with kDeadlineExceeded (executing work nobody waits for anymore
  /// only digs the overload hole deeper).
  int64_t deadline_ns = 0;
  /// Test hook, run on the worker after the deadline check and before
  /// execution. Lets tests hold a worker mid-request deterministically.
  std::function<void()> before_execute;
  /// Admission-quota identity; empty = no tenant (never quota-limited).
  std::string tenant;
  /// Per-request execution-mode override (the sharded oracle sweeps modes
  /// through one service); unset uses ServiceOptions::mode.
  std::optional<db::ExecMode> mode;
};

/// Server-side timing split (paper, slides 23–29: server vs client time
/// are different metrics and must be reported as such): time queued before
/// a worker picked the request up, and execution time once running.
/// Client-observed latency is measured by the LoadGenerator on its own
/// (real) clock; exec_ns runs on the engine's observed clock, which adds
/// simulated I/O stall to real time, so on a cold buffer pool the server
/// split can legitimately exceed what the client's wall clock saw.
struct ServerTiming {
  int64_t queue_wait_ns = 0;  ///< admission -> dequeue by a worker.
  int64_t exec_ns = 0;  ///< plan execution (CPU + simulated I/O stall).
  int64_t TotalNs() const { return queue_wait_ns + exec_ns; }
};

/// Outcome of one request.
struct Response {
  Status status;              ///< OK, kOverloaded, or kDeadlineExceeded.
  uint64_t seed = 0;          ///< Request::seed, echoed back.
  uint64_t fingerprint = 0;   ///< FNV-1a of the rendered result; 0 if none.
  ServerTiming server;
  std::shared_ptr<const db::Table> table;  ///< set when executed.
};

/// A submitted request's completion slot: fulfilled exactly once by a
/// worker (or synchronously when shed at admission), waitable by the
/// client. Also records the steady-clock completion instant so load
/// generators can charge latency from the *intended* arrival time.
class PendingResponse {
 public:
  /// Blocks until the response is ready, then returns it.
  const Response& Wait();

  bool Done() const;

  /// steady_clock time_since_epoch (ns) at fulfillment. Valid after Wait().
  int64_t complete_steady_ns() const { return complete_steady_ns_; }

 private:
  friend class QueryService;
  void Fulfill(Response response);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Response response_;
  int64_t complete_steady_ns_ = 0;
};

using ResponseHandle = std::shared_ptr<PendingResponse>;

/// Monotonically increasing request accounting, snapshot-readable while
/// the service runs.
struct ServiceStats {
  int64_t submitted = 0;         ///< Submit() calls.
  int64_t admitted = 0;          ///< entered the queue.
  int64_t shed = 0;              ///< rejected kOverloaded at admission.
  int64_t quota_rejected = 0;    ///< rejected at a tenant quota.
  int64_t started = 0;           ///< dequeued by a worker.
  int64_t deadline_expired = 0;  ///< discarded unexecuted.
  int64_t executed = 0;          ///< ran to completion.
};

/// Instantaneous occupancy of the service, readable while it runs. The
/// shard coordinator attaches one per shard to every scatter-gather result
/// so stragglers are attributable (was the slow shard queueing or
/// executing?).
struct QueueSnapshot {
  size_t queued = 0;    ///< admitted, waiting for a worker.
  size_t inflight = 0;  ///< dequeued, currently executing.
};

/// A concurrent query service over db::Database (DESIGN.md S14): bounded
/// admission queue, sched::WorkerPool executor, per-request deadlines and
/// an overload policy. The measurable server the paper's slide-22
/// throughput/response-time metrics assume — every response carries the
/// server-side queue/exec split, and the engine underneath guarantees
/// result determinism at any worker count.
class QueryService {
 public:
  /// Executes one admitted request. Receives the effective mode (the
  /// request's override or the service default) and the service sink;
  /// everything else comes from the request. May throw db::QueryError.
  using ExecutorFn =
      std::function<db::QueryResult(const Request&, db::ExecMode,
                                    db::SinkKind)>;

  QueryService(db::Database* database, ServiceOptions options);

  /// A service whose executor is not a local database — the shard
  /// front-end runs scatter-gather across a cluster behind this seam while
  /// keeping the admission queue, overload policies, deadlines, quotas and
  /// stats identical to the single-node service (and LoadGenerator works
  /// against either unchanged).
  QueryService(ExecutorFn executor, ServiceOptions options);

  /// Shuts down (drains all admitted requests) if the caller has not.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits a request. Always returns a handle; a shed or post-shutdown
  /// request's handle is already fulfilled with the error status. May
  /// block, per the overload policy, when the admission queue is full.
  ResponseHandle Submit(Request request);

  /// Submit + Wait: the synchronous client call of a closed-loop driver.
  Response Execute(Request request);

  /// Closes admission and drains the queue; every admitted request is
  /// fulfilled when this returns. Idempotent.
  void Shutdown();

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

  /// Instantaneous queue depth + in-flight count (racy by nature — a
  /// request can move from queued to inflight between the two reads; the
  /// snapshot is for attribution, not accounting).
  QueueSnapshot queue_snapshot() const;

  /// FNV-1a fingerprint of a result relation (row-major rendered values) —
  /// the identity the replay tests compare across worker counts.
  static uint64_t FingerprintTable(const db::Table& table);

 private:
  void RunRequest(Request request, ResponseHandle handle, int64_t admit_ns);
  /// Frees the tenant's quota slot (no-op for untracked tenants).
  void ReleaseTenantSlot(const std::string& tenant);

  ExecutorFn executor_;
  ServiceOptions options_;

  mutable std::mutex mu_;  // guards queued_, shutdown_, tenant_outstanding_.
  std::condition_variable slot_free_;
  size_t queued_ = 0;
  bool shutdown_ = false;
  /// Outstanding (admitted, not yet completed) requests per quota-tracked
  /// tenant.
  std::map<std::string, size_t> tenant_outstanding_;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> quota_rejected_{0};
  std::atomic<int64_t> started_{0};
  std::atomic<int64_t> deadline_expired_{0};
  std::atomic<int64_t> executed_{0};
  std::atomic<size_t> inflight_{0};

  std::unique_ptr<sched::WorkerPool> pool_;
};

}  // namespace serve
}  // namespace perfeval

#endif  // PERFEVAL_SERVE_SERVICE_H_
