#ifndef PERFEVAL_NETSIM_TRAFFIC_H_
#define PERFEVAL_NETSIM_TRAFFIC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"

namespace perfeval {
namespace netsim {

/// An address reference pattern: which memory module each processor asks
/// for in a given cycle. The two patterns of the paper's slide-86 example
/// (Jain's memory-interconnect study): Random and Matrix.
class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  /// Destination module for `processor` issuing in `cycle`.
  virtual int Destination(int processor, int64_t cycle, Pcg32& rng) = 0;

  virtual std::string name() const = 0;
};

/// Uniformly random destinations — independent references.
class RandomPattern : public TrafficPattern {
 public:
  explicit RandomPattern(int num_modules) : num_modules_(num_modules) {}

  int Destination(int, int64_t, Pcg32& rng) override {
    return static_cast<int>(
        rng.NextBounded(static_cast<uint32_t>(num_modules_)));
  }

  std::string name() const override { return "Random"; }

 private:
  int num_modules_;
};

/// Matrix-workload references: processors sweep memory in lockstep strides
/// (processor i touches module (i + t) mod N in cycle t) — a rotating
/// permutation, conflict-free on a crossbar — with a small fraction of
/// irregular accesses (index vectors, pointers) that are uniformly random.
/// The structure is what makes "address pattern" the dominant factor in the
/// paper's slide-92 allocation-of-variation table.
class MatrixPattern : public TrafficPattern {
 public:
  /// `irregular_fraction`: probability of a random (non-strided) access.
  MatrixPattern(int num_modules, int row_length,
                double irregular_fraction = 0.05)
      : num_modules_(num_modules),
        row_length_(row_length),
        irregular_fraction_(irregular_fraction) {}

  int Destination(int processor, int64_t cycle, Pcg32& rng) override {
    if (rng.NextBernoulli(irregular_fraction_)) {
      return static_cast<int>(
          rng.NextBounded(static_cast<uint32_t>(num_modules_)));
    }
    // Row-major sweep: stride 1 in module space, one rotation per cycle.
    return static_cast<int>((processor + cycle) %
                            static_cast<int64_t>(num_modules_));
  }

  std::string name() const override { return "Matrix"; }

 private:
  int num_modules_;
  int row_length_;  ///< kept for column-walk experiments (see tests).
  double irregular_fraction_;
};

std::unique_ptr<TrafficPattern> MakeRandomPattern(int num_modules);
std::unique_ptr<TrafficPattern> MakeMatrixPattern(int num_modules,
                                                  int row_length);

}  // namespace netsim
}  // namespace perfeval

#endif  // PERFEVAL_NETSIM_TRAFFIC_H_
