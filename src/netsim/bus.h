#ifndef PERFEVAL_NETSIM_BUS_H_
#define PERFEVAL_NETSIM_BUS_H_

#include "netsim/network.h"

namespace perfeval {
namespace netsim {

/// A single shared bus: the cheapest interconnect — one transaction per
/// cycle regardless of destination, round-robin among requesters. The
/// baseline that makes the crossbar/Omega comparison three-sided:
/// throughput is capped at 1/N per processor, so it collapses as the
/// system grows.
class SharedBus : public Interconnect {
 public:
  SharedBus() = default;

  void Arbitrate(const std::vector<Request>& requests,
                 std::vector<bool>* granted) override;

  /// One bus transaction + one memory cycle.
  int PathCycles() const override { return 2; }

  std::string name() const override { return "Bus"; }

 private:
  int rr_pointer_ = 0;
};

}  // namespace netsim
}  // namespace perfeval

#endif  // PERFEVAL_NETSIM_BUS_H_
