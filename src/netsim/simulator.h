#ifndef PERFEVAL_NETSIM_SIMULATOR_H_
#define PERFEVAL_NETSIM_SIMULATOR_H_

#include <memory>
#include <string>

#include "netsim/network.h"
#include "netsim/traffic.h"

namespace perfeval {
namespace netsim {

/// The three response variables of the paper's slide-86 example.
struct NetworkMetrics {
  std::string network;
  std::string pattern;
  double throughput = 0.0;        ///< T: grants per processor per cycle.
  double transit_p90_cycles = 0;  ///< N: 90th percentile transit time.
  double avg_response_cycles = 0; ///< R: mean issue-to-completion time.
  int64_t total_requests = 0;
  int64_t granted_requests = 0;

  std::string ToString() const;
};

/// Simulation parameters.
struct SimulationConfig {
  int num_processors = 16;        ///< == number of memory modules.
  int64_t warmup_cycles = 200;
  int64_t measured_cycles = 5000;
  int matrix_row_length = 4;      ///< stride of MatrixPattern column walks.
  uint64_t seed = 7;
};

/// Cycle-accurate simulation: every processor keeps one outstanding
/// request; blocked requests retry (keeping their destination) until
/// granted. Returns T, N and R measured over the post-warmup window.
NetworkMetrics Simulate(Interconnect* network, TrafficPattern* pattern,
                        const SimulationConfig& config);

/// Convenience: runs one of the four paper cells by name.
/// `network_name` in {"Crossbar", "Omega"}; `pattern_name` in
/// {"Random", "Matrix"}.
NetworkMetrics SimulateCell(const std::string& network_name,
                            const std::string& pattern_name,
                            const SimulationConfig& config);

}  // namespace netsim
}  // namespace perfeval

#endif  // PERFEVAL_NETSIM_SIMULATOR_H_
