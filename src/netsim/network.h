#ifndef PERFEVAL_NETSIM_NETWORK_H_
#define PERFEVAL_NETSIM_NETWORK_H_

#include <string>
#include <vector>

namespace perfeval {
namespace netsim {

/// One in-flight memory request.
struct Request {
  int processor = 0;
  int destination = 0;
  int64_t issue_cycle = 0;
};

/// A processor-to-memory interconnection network. Each cycle the simulator
/// offers the set of pending requests; the network grants the subset that
/// can be routed without conflict. Blocked requests retry in later cycles.
class Interconnect {
 public:
  virtual ~Interconnect() = default;

  /// Marks each request granted (true) or blocked (false) this cycle.
  /// `granted` is resized to requests.size().
  virtual void Arbitrate(const std::vector<Request>& requests,
                         std::vector<bool>* granted) = 0;

  /// Cycles a granted request spends inside the network plus memory
  /// (excludes queueing/blocked cycles).
  virtual int PathCycles() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace netsim
}  // namespace perfeval

#endif  // PERFEVAL_NETSIM_NETWORK_H_
