#include "netsim/bus.h"

#include <cstdint>

namespace perfeval {
namespace netsim {

void SharedBus::Arbitrate(const std::vector<Request>& requests,
                          std::vector<bool>* granted) {
  granted->assign(requests.size(), false);
  if (requests.empty()) {
    return;
  }
  // Grant the requester whose processor id comes first at-or-after the
  // round-robin pointer.
  size_t winner = 0;
  int best_rank = INT32_MAX;
  for (size_t i = 0; i < requests.size(); ++i) {
    int p = requests[i].processor;
    int rank = p - rr_pointer_;
    if (rank < 0) {
      rank += 1 << 20;  // wrap far behind.
    }
    if (rank < best_rank) {
      best_rank = rank;
      winner = i;
    }
  }
  (*granted)[winner] = true;
  rr_pointer_ = requests[winner].processor + 1;
}

}  // namespace netsim
}  // namespace perfeval
