#include "netsim/crossbar.h"

#include "common/check.h"

namespace perfeval {
namespace netsim {

Crossbar::Crossbar(int num_modules) : num_modules_(num_modules) {
  PERFEVAL_CHECK_GT(num_modules_, 0);
  rr_pointer_.assign(static_cast<size_t>(num_modules_), 0);
}

void Crossbar::Arbitrate(const std::vector<Request>& requests,
                         std::vector<bool>* granted) {
  granted->assign(requests.size(), false);
  // Per-module round-robin: the winner is the contender whose processor
  // index comes first at-or-after the module's pointer; the pointer then
  // advances past the winner, so persistent contenders alternate fairly.
  std::vector<int> winner(static_cast<size_t>(num_modules_), -1);
  for (size_t i = 0; i < requests.size(); ++i) {
    const Request& req = requests[i];
    PERFEVAL_CHECK_LT(req.destination, num_modules_);
    size_t module = static_cast<size_t>(req.destination);
    int& current = winner[module];
    if (current < 0) {
      current = static_cast<int>(i);
      continue;
    }
    auto rank = [&](int processor) {
      int p = processor % num_modules_;
      int r = p - rr_pointer_[module];
      return r < 0 ? r + num_modules_ : r;
    };
    if (rank(req.processor) < rank(requests[current].processor)) {
      current = static_cast<int>(i);
    }
  }
  for (int module = 0; module < num_modules_; ++module) {
    int index = winner[static_cast<size_t>(module)];
    if (index >= 0) {
      (*granted)[static_cast<size_t>(index)] = true;
      rr_pointer_[static_cast<size_t>(module)] =
          (requests[static_cast<size_t>(index)].processor + 1) %
          num_modules_;
    }
  }
}

}  // namespace netsim
}  // namespace perfeval
