#include "netsim/simulator.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "netsim/bus.h"
#include "netsim/crossbar.h"
#include "netsim/omega.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace netsim {

std::string NetworkMetrics::ToString() const {
  return StrFormat("%-9s %-7s T=%.4f N=%.0f R=%.3f", network.c_str(),
                   pattern.c_str(), throughput, transit_p90_cycles,
                   avg_response_cycles);
}

NetworkMetrics Simulate(Interconnect* network, TrafficPattern* pattern,
                        const SimulationConfig& config) {
  PERFEVAL_CHECK(network != nullptr);
  PERFEVAL_CHECK(pattern != nullptr);
  PERFEVAL_CHECK_GT(config.num_processors, 0);

  Pcg32 rng(config.seed);
  const int n = config.num_processors;
  // Per-processor outstanding request (every processor always has one; a
  // completed request is immediately replaced next cycle).
  std::vector<Request> pending(static_cast<size_t>(n));
  std::vector<bool> has_request(static_cast<size_t>(n), false);

  std::vector<double> transit_times;
  int64_t granted_count = 0;
  int64_t issued_count = 0;

  int64_t total_cycles = config.warmup_cycles + config.measured_cycles;
  std::vector<Request> offered;
  std::vector<bool> granted;
  std::vector<size_t> offered_index;

  for (int64_t cycle = 0; cycle < total_cycles; ++cycle) {
    bool measuring = cycle >= config.warmup_cycles;
    // Issue new requests for idle processors.
    for (int p = 0; p < n; ++p) {
      if (!has_request[static_cast<size_t>(p)]) {
        pending[static_cast<size_t>(p)] = Request{
            p, pattern->Destination(p, cycle, rng), cycle};
        has_request[static_cast<size_t>(p)] = true;
        if (measuring) {
          ++issued_count;
        }
      }
    }
    // Offer all pending requests.
    offered.clear();
    offered_index.clear();
    for (int p = 0; p < n; ++p) {
      if (has_request[static_cast<size_t>(p)]) {
        offered.push_back(pending[static_cast<size_t>(p)]);
        offered_index.push_back(static_cast<size_t>(p));
      }
    }
    network->Arbitrate(offered, &granted);
    for (size_t i = 0; i < offered.size(); ++i) {
      if (!granted[i]) {
        continue;
      }
      const Request& req = offered[i];
      has_request[offered_index[i]] = false;
      if (measuring) {
        ++granted_count;
        double transit = static_cast<double>(cycle - req.issue_cycle) +
                         network->PathCycles();
        transit_times.push_back(transit);
      }
    }
  }

  NetworkMetrics metrics;
  metrics.network = network->name();
  metrics.pattern = pattern->name();
  metrics.total_requests = issued_count;
  metrics.granted_requests = granted_count;
  metrics.throughput = static_cast<double>(granted_count) /
                       (static_cast<double>(config.measured_cycles) * n);
  if (!transit_times.empty()) {
    metrics.transit_p90_cycles = stats::Percentile(transit_times, 90.0);
    metrics.avg_response_cycles = stats::Mean(transit_times);
  }
  return metrics;
}

std::unique_ptr<TrafficPattern> MakeRandomPattern(int num_modules) {
  return std::make_unique<RandomPattern>(num_modules);
}

std::unique_ptr<TrafficPattern> MakeMatrixPattern(int num_modules,
                                                  int row_length) {
  return std::make_unique<MatrixPattern>(num_modules, row_length);
}

NetworkMetrics SimulateCell(const std::string& network_name,
                            const std::string& pattern_name,
                            const SimulationConfig& config) {
  std::unique_ptr<Interconnect> network;
  if (network_name == "Crossbar") {
    network = std::make_unique<Crossbar>(config.num_processors);
  } else if (network_name == "Bus") {
    network = std::make_unique<SharedBus>();
  } else if (network_name == "Omega") {
    network = std::make_unique<OmegaNetwork>(config.num_processors);
  } else {
    PERFEVAL_CHECK(false) << "unknown network " << network_name;
  }
  std::unique_ptr<TrafficPattern> pattern;
  if (pattern_name == "Random") {
    pattern = MakeRandomPattern(config.num_processors);
  } else if (pattern_name == "Matrix") {
    pattern = MakeMatrixPattern(config.num_processors,
                                config.matrix_row_length);
  } else {
    PERFEVAL_CHECK(false) << "unknown pattern " << pattern_name;
  }
  return Simulate(network.get(), pattern.get(), config);
}

}  // namespace netsim
}  // namespace perfeval
