#include "netsim/omega.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/check.h"

namespace perfeval {
namespace netsim {
namespace {

/// Perfect shuffle: rotate the wire label left by one bit (width bits).
int Shuffle(int wire, int width) {
  int msb = (wire >> (width - 1)) & 1;
  return ((wire << 1) & ((1 << width) - 1)) | msb;
}

}  // namespace

OmegaNetwork::OmegaNetwork(int num_modules) : num_modules_(num_modules) {
  PERFEVAL_CHECK_GE(num_modules_, 2);
  PERFEVAL_CHECK(std::has_single_bit(static_cast<unsigned>(num_modules_)))
      << "Omega network size must be a power of two";
  num_stages_ = std::bit_width(static_cast<unsigned>(num_modules_)) - 1;
}

void OmegaNetwork::Arbitrate(const std::vector<Request>& requests,
                             std::vector<bool>* granted) {
  granted->assign(requests.size(), false);
  // Circuit-switched greedy setup in rotating-priority order: a request is
  // granted when every stage's outgoing wire on its path is still free.
  std::vector<std::vector<bool>> wire_busy(
      static_cast<size_t>(num_stages_),
      std::vector<bool>(static_cast<size_t>(num_modules_), false));

  std::vector<size_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0);
  // Rotate processing order for fairness.
  if (!order.empty()) {
    size_t shift =
        static_cast<size_t>(priority_offset_) % order.size();
    std::rotate(order.begin(), order.begin() + static_cast<long>(shift),
                order.end());
  }
  ++priority_offset_;

  for (size_t index : order) {
    const Request& req = requests[index];
    PERFEVAL_CHECK_LT(req.destination, num_modules_);
    // Trace the path.
    int wire = req.processor % num_modules_;
    std::vector<int> path(static_cast<size_t>(num_stages_));
    bool free = true;
    for (int stage = 0; stage < num_stages_; ++stage) {
      int shuffled = Shuffle(wire, num_stages_);
      int dst_bit = (req.destination >> (num_stages_ - 1 - stage)) & 1;
      wire = (shuffled & ~1) | dst_bit;
      path[static_cast<size_t>(stage)] = wire;
      if (wire_busy[static_cast<size_t>(stage)][static_cast<size_t>(wire)]) {
        free = false;
        break;
      }
    }
    if (!free) {
      continue;
    }
    for (int stage = 0; stage < num_stages_; ++stage) {
      wire_busy[static_cast<size_t>(stage)]
               [static_cast<size_t>(path[static_cast<size_t>(stage)])] =
                   true;
    }
    (*granted)[index] = true;
  }
}

}  // namespace netsim
}  // namespace perfeval
