#ifndef PERFEVAL_NETSIM_OMEGA_H_
#define PERFEVAL_NETSIM_OMEGA_H_

#include "netsim/network.h"

namespace perfeval {
namespace netsim {

/// An N x N Omega multistage interconnection network: log2(N) stages of
/// 2x2 switches connected by perfect shuffles. Cheaper than a crossbar
/// (N/2 * log2 N switches vs N^2 crosspoints) but *blocking*: two requests
/// can conflict inside a switch even when they target different memory
/// modules — which is why it loses to the crossbar under both traffic
/// patterns in the paper's slide-92 table.
class OmegaNetwork : public Interconnect {
 public:
  /// `num_modules` must be a power of two >= 2.
  explicit OmegaNetwork(int num_modules);

  void Arbitrate(const std::vector<Request>& requests,
                 std::vector<bool>* granted) override;

  /// One cycle per stage + one memory cycle.
  int PathCycles() const override { return num_stages_ + 1; }

  std::string name() const override { return "Omega"; }

  int num_stages() const { return num_stages_; }

 private:
  int num_modules_;
  int num_stages_;
  int priority_offset_ = 0;
};

}  // namespace netsim
}  // namespace perfeval

#endif  // PERFEVAL_NETSIM_OMEGA_H_
