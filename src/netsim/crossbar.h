#ifndef PERFEVAL_NETSIM_CROSSBAR_H_
#define PERFEVAL_NETSIM_CROSSBAR_H_

#include <vector>

#include "netsim/network.h"

namespace perfeval {
namespace netsim {

/// An N x N crossbar: any one-to-one processor/module assignment routes in
/// one pass; the only conflicts are two processors addressing the same
/// memory module in the same cycle (output-port conflict). Round-robin
/// priority rotates fairness across processors.
class Crossbar : public Interconnect {
 public:
  explicit Crossbar(int num_modules);

  void Arbitrate(const std::vector<Request>& requests,
                 std::vector<bool>* granted) override;

  /// One switch traversal + one memory cycle.
  int PathCycles() const override { return 2; }

  std::string name() const override { return "Crossbar"; }

 private:
  int num_modules_;
  /// Per-module round-robin pointer: next processor index with top
  /// priority at that module.
  std::vector<int> rr_pointer_;
};

}  // namespace netsim
}  // namespace perfeval

#endif  // PERFEVAL_NETSIM_CROSSBAR_H_
