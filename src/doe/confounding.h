#ifndef PERFEVAL_DOE_CONFOUNDING_H_
#define PERFEVAL_DOE_CONFOUNDING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace perfeval {
namespace doe {

/// An effect in a 2^k experiment is identified by the set of factors whose
/// interaction it is, encoded as a bitmask: bit i set <=> factor i
/// participates. Mask 0 is the identity I (the mean); a single bit is a main
/// effect; multiple bits are an interaction. Multiplying effects is XOR,
/// because every factor column squares to I (its entries are +-1).
using EffectMask = uint32_t;

/// Letter name of an effect: "I", "A", "B", "AB", "ACD", ... Factor i maps
/// to letter 'A' + i. Supports up to 26 factors.
std::string EffectName(EffectMask mask);

/// Name using caller-supplied factor names, joined with '*': "cache*memory".
std::string EffectName(EffectMask mask,
                       const std::vector<std::string>& factor_names);

/// Parses "I", "A", "ABD" back into a mask. Returns false on invalid input.
bool ParseEffectName(const std::string& name, EffectMask* mask);

/// Number of factors in an effect (popcount). The "order" of an interaction.
int EffectOrder(EffectMask mask);

/// One generator of a fractional design: the sign column of `new_factor` is
/// taken from the interaction column `base_mask` of the base (full
/// factorial) factors — e.g. D=ABC is {new_factor: 3, base_mask: A|B|C}.
struct Generator {
  size_t new_factor = 0;
  EffectMask base_mask = 0;
};

/// A 2^(k-p) fractional factorial design specification (paper, slides
/// 95–109): k two-level factors tested in 2^(k-p) runs. The first k-p
/// factors form a full factorial; each of the remaining p factors is aliased
/// to an interaction of the base factors via a Generator.
///
/// The class implements the confounding algebra the paper walks through for
/// D=ABC: defining words, alias sets, and design resolution, so two
/// candidate fractions can be compared before any experiment is run.
class FractionalDesignSpec {
 public:
  /// `k` total factors, `generators.size()` of which are aliased.
  /// Requirements: every generator's new_factor is in [k-p, k); base masks
  /// involve only base factors (bits < k-p) and at least two of them;
  /// new_factor values are distinct.
  FractionalDesignSpec(size_t k, std::vector<Generator> generators);

  size_t k() const { return k_; }
  size_t p() const { return generators_.size(); }
  size_t num_runs() const { return size_t{1} << (k_ - p()); }
  const std::vector<Generator>& generators() const { return generators_; }

  /// The defining contrast subgroup: all 2^p products of the defining words
  /// (including I). For D=ABC (k=4): {I, ABCD}.
  std::vector<EffectMask> DefiningWords() const;

  /// All effects confounded with `effect` in this design (its alias set),
  /// sorted ascending by interaction order then mask. Includes `effect`.
  std::vector<EffectMask> AliasSet(EffectMask effect) const;

  /// Design resolution: the smallest order among non-identity defining
  /// words. Resolution III confounds main effects with 2-way interactions;
  /// resolution IV confounds main effects only with 3-way ones — hence the
  /// paper's preference for D=ABC (IV) over D=AB (III).
  int Resolution() const;

  /// Multi-line description of every alias relation among effects up to
  /// `max_order` (e.g. "A = BCD", "AB = CD").
  std::string DescribeAliases(int max_order) const;

 private:
  size_t k_;
  std::vector<Generator> generators_;
};

/// Returns true when `a` should be preferred over `b` under the sparsity-of-
/// effects principle (slide 108): higher resolution wins; ties broken by
/// fewer low-order words in the defining subgroup (aberration).
bool PreferDesign(const FractionalDesignSpec& a,
                  const FractionalDesignSpec& b);

}  // namespace doe
}  // namespace perfeval

#endif  // PERFEVAL_DOE_CONFOUNDING_H_
