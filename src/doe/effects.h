#ifndef PERFEVAL_DOE_EFFECTS_H_
#define PERFEVAL_DOE_EFFECTS_H_

#include <map>
#include <string>
#include <vector>

#include "doe/sign_table.h"

namespace perfeval {
namespace doe {

/// The fitted nonlinear regression model of a 2^k design (paper, slides
/// 70–80):
///   y = q0 + qA xA + qB xB + qAB xA xB + ...
/// Coefficients are keyed by EffectMask; q[0] is the mean response q0.
class EffectModel {
 public:
  EffectModel() = default;
  explicit EffectModel(std::map<EffectMask, double> coefficients)
      : coefficients_(std::move(coefficients)) {}

  /// q0, the mean response.
  double mean() const { return Coefficient(0); }

  /// Coefficient of `effect`; 0.0 when absent from the model.
  double Coefficient(EffectMask effect) const;

  const std::map<EffectMask, double>& coefficients() const {
    return coefficients_;
  }

  /// Predicted response for a run whose factor signs are given by the
  /// table row (sum of coefficient * column sign).
  double Predict(const SignTable& table, size_t run) const;

  /// Multi-line "qA = 20 (effect of A)" rendering.
  std::string ToString() const;

 private:
  std::map<EffectMask, double> coefficients_;
};

/// Estimates all 2^k coefficients from one response per run via the sign
/// table method (slide 78): q_e = (column_e . y) / 2^k. The table must be a
/// full factorial and y must have one entry per run.
EffectModel EstimateEffects(const SignTable& table,
                            const std::vector<double>& y);

/// Estimate from a fractional table: only the k main-effect columns (plus
/// the mean) are estimable; each estimate is really the confounded sum of
/// its alias set. y must have one entry per run.
EffectModel EstimateMainEffectsFractional(const SignTable& table,
                                          const std::vector<double>& y);

/// Replicated 2^k experiment: `y[run]` holds r >= 1 repeated measurements.
/// Effects are estimated from run means; the caller can then attribute the
/// residual within-run variation to experimental error via
/// AllocateVariationReplicated (allocation.h).
EffectModel EstimateEffectsReplicated(
    const SignTable& table, const std::vector<std::vector<double>>& y);

}  // namespace doe
}  // namespace perfeval

#endif  // PERFEVAL_DOE_EFFECTS_H_
