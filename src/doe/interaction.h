#ifndef PERFEVAL_DOE_INTERACTION_H_
#define PERFEVAL_DOE_INTERACTION_H_

#include <vector>

#include "core/metrics.h"
#include "doe/sign_table.h"

namespace perfeval {
namespace doe {

/// Builds the paper's slide-58 interaction plot for factors `a` and `b` of
/// a full-factorial 2^k experiment: one series per level of B, each with
/// two points (mean response at A = -1 and A = +1). Parallel lines mean no
/// interaction; different slopes mean the effect of A depends on the level
/// of B. Series are named "<b_name> low/high"; x values are -1 and +1.
std::vector<core::Series> InteractionPlot(const SignTable& table,
                                          const std::vector<double>& y,
                                          size_t factor_a, size_t factor_b,
                                          const std::string& b_name = "B");

/// The difference in A-slope between B's levels — zero iff the lines are
/// parallel. Equals 2*qAB of the fitted model for a 2^2 design.
double InteractionSlopeGap(const SignTable& table,
                           const std::vector<double>& y, size_t factor_a,
                           size_t factor_b);

}  // namespace doe
}  // namespace perfeval

#endif  // PERFEVAL_DOE_INTERACTION_H_
