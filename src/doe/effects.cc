#include "doe/effects.h"

#include "common/check.h"
#include "common/string_util.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace doe {

double EffectModel::Coefficient(EffectMask effect) const {
  auto it = coefficients_.find(effect);
  return it == coefficients_.end() ? 0.0 : it->second;
}

double EffectModel::Predict(const SignTable& table, size_t run) const {
  double y = 0.0;
  for (const auto& [effect, q] : coefficients_) {
    y += q * table.ColumnSign(run, effect);
  }
  return y;
}

std::string EffectModel::ToString() const {
  std::string out;
  for (const auto& [effect, q] : coefficients_) {
    out += StrFormat("q%-6s = %12.6g\n", EffectName(effect).c_str(), q);
  }
  return out;
}

EffectModel EstimateEffects(const SignTable& table,
                            const std::vector<double>& y) {
  PERFEVAL_CHECK_EQ(y.size(), table.num_runs());
  PERFEVAL_CHECK_EQ(size_t{1} << table.num_factors(), table.num_runs())
      << "EstimateEffects requires a full factorial table";
  std::map<EffectMask, double> coefficients;
  size_t n = table.num_runs();
  for (EffectMask effect = 0; effect < (EffectMask{1} << table.num_factors());
       ++effect) {
    double dot = 0.0;
    for (size_t run = 0; run < n; ++run) {
      dot += table.ColumnSign(run, effect) * y[run];
    }
    coefficients[effect] = dot / static_cast<double>(n);
  }
  return EffectModel(std::move(coefficients));
}

EffectModel EstimateMainEffectsFractional(const SignTable& table,
                                          const std::vector<double>& y) {
  PERFEVAL_CHECK_EQ(y.size(), table.num_runs());
  std::map<EffectMask, double> coefficients;
  size_t n = table.num_runs();
  // Mean.
  coefficients[0] = stats::Mean(y);
  for (size_t factor = 0; factor < table.num_factors(); ++factor) {
    EffectMask effect = EffectMask{1} << factor;
    double dot = 0.0;
    for (size_t run = 0; run < n; ++run) {
      dot += table.ColumnSign(run, effect) * y[run];
    }
    coefficients[effect] = dot / static_cast<double>(n);
  }
  return EffectModel(std::move(coefficients));
}

EffectModel EstimateEffectsReplicated(
    const SignTable& table, const std::vector<std::vector<double>>& y) {
  PERFEVAL_CHECK_EQ(y.size(), table.num_runs());
  std::vector<double> means(y.size());
  for (size_t run = 0; run < y.size(); ++run) {
    PERFEVAL_CHECK(!y[run].empty()) << "run " << run << " has no samples";
    means[run] = stats::Mean(y[run]);
  }
  return EstimateEffects(table, means);
}

}  // namespace doe
}  // namespace perfeval
