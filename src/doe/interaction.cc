#include "doe/interaction.h"

#include "common/check.h"

namespace perfeval {
namespace doe {
namespace {

/// Mean response over runs where factor_a has sign `sa` and factor_b has
/// sign `sb`.
double CellMean(const SignTable& table, const std::vector<double>& y,
                size_t factor_a, size_t factor_b, int sa, int sb) {
  double sum = 0.0;
  int count = 0;
  for (size_t run = 0; run < table.num_runs(); ++run) {
    if (table.FactorSign(run, factor_a) == sa &&
        table.FactorSign(run, factor_b) == sb) {
      sum += y[run];
      ++count;
    }
  }
  PERFEVAL_CHECK_GT(count, 0);
  return sum / count;
}

}  // namespace

std::vector<core::Series> InteractionPlot(const SignTable& table,
                                          const std::vector<double>& y,
                                          size_t factor_a, size_t factor_b,
                                          const std::string& b_name) {
  PERFEVAL_CHECK_EQ(y.size(), table.num_runs());
  PERFEVAL_CHECK_LT(factor_a, table.num_factors());
  PERFEVAL_CHECK_LT(factor_b, table.num_factors());
  PERFEVAL_CHECK_NE(factor_a, factor_b);
  std::vector<core::Series> out;
  for (int sb : {-1, 1}) {
    core::Series series;
    series.name = b_name + (sb < 0 ? " low" : " high");
    for (int sa : {-1, 1}) {
      series.Append(sa, CellMean(table, y, factor_a, factor_b, sa, sb));
    }
    out.push_back(std::move(series));
  }
  return out;
}

double InteractionSlopeGap(const SignTable& table,
                           const std::vector<double>& y, size_t factor_a,
                           size_t factor_b) {
  std::vector<core::Series> plot =
      InteractionPlot(table, y, factor_a, factor_b);
  double slope_low = (plot[0].y[1] - plot[0].y[0]) / 2.0;
  double slope_high = (plot[1].y[1] - plot[1].y[0]) / 2.0;
  return slope_high - slope_low;
}

}  // namespace doe
}  // namespace perfeval
