#include "doe/significance.h"

#include "common/check.h"
#include "doe/effects.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace doe {

stats::AnovaTable Anova2k(const SignTable& table,
                          const std::vector<std::vector<double>>& y,
                          double alpha,
                          const std::vector<std::string>& factor_names) {
  PERFEVAL_CHECK_EQ(y.size(), table.num_runs());
  PERFEVAL_CHECK_EQ(size_t{1} << table.num_factors(), table.num_runs());
  size_t replications = y[0].size();
  PERFEVAL_CHECK_GE(replications, 2u)
      << "significance testing needs replicated runs";
  for (const std::vector<double>& run : y) {
    PERFEVAL_CHECK_EQ(run.size(), replications);
  }

  std::vector<double> means(y.size());
  for (size_t run = 0; run < y.size(); ++run) {
    means[run] = stats::Mean(y[run]);
  }
  EffectModel model = EstimateEffects(table, means);

  double sse = 0.0;
  for (size_t run = 0; run < y.size(); ++run) {
    for (double obs : y[run]) {
      sse += (obs - means[run]) * (obs - means[run]);
    }
  }
  double scale = static_cast<double>(table.num_runs()) *
                 static_cast<double>(replications);
  double df_error = static_cast<double>(table.num_runs()) *
                    (static_cast<double>(replications) - 1.0);
  double mse = sse / df_error;

  stats::AnovaTable out;
  out.alpha = alpha;
  double ss_effects_total = 0.0;
  for (const auto& [effect, q] : model.coefficients()) {
    if (effect == 0) {
      continue;
    }
    stats::AnovaRow row;
    row.source = factor_names.empty() ? EffectName(effect)
                                      : EffectName(effect, factor_names);
    row.sum_of_squares = scale * q * q;
    row.degrees_of_freedom = 1.0;
    row.mean_square = row.sum_of_squares;
    if (mse > 0.0) {
      row.f_statistic = row.mean_square / mse;
      row.p_value = 1.0 - stats::FCdf(row.f_statistic, 1.0, df_error);
    } else {
      row.f_statistic = row.sum_of_squares > 0.0 ? 1e308 : 0.0;
      row.p_value = row.sum_of_squares > 0.0 ? 0.0 : 1.0;
    }
    row.significant = row.p_value < alpha;
    ss_effects_total += row.sum_of_squares;
    out.rows.push_back(std::move(row));
  }

  stats::AnovaRow error;
  error.source = "error";
  error.sum_of_squares = sse;
  error.degrees_of_freedom = df_error;
  error.mean_square = mse;
  out.rows.push_back(error);

  stats::AnovaRow total;
  total.source = "total";
  total.sum_of_squares = ss_effects_total + sse;
  total.degrees_of_freedom = scale - 1.0;
  out.rows.push_back(total);
  return out;
}

}  // namespace doe
}  // namespace perfeval
