#ifndef PERFEVAL_DOE_SIGNIFICANCE_H_
#define PERFEVAL_DOE_SIGNIFICANCE_H_

#include <vector>

#include "doe/sign_table.h"
#include "stats/anova.h"

namespace perfeval {
namespace doe {

/// ANOVA for a replicated 2^k design: every effect's variation is tested
/// against the experimental-error mean square. This closes the loop on the
/// paper's common mistake #1 (slide 59): "the variation due to a factor
/// must be compared to that due of errors" — allocation of variation says
/// how big an effect is, this says whether it is distinguishable from
/// noise at all.
///
/// `y[run]` holds r >= 2 replicated measurements per run of a full
/// factorial sign table. Rows: one per non-identity effect (named with
/// letters, or `factor_names` when given), then "error" and "total".
stats::AnovaTable Anova2k(const SignTable& table,
                          const std::vector<std::vector<double>>& y,
                          double alpha = 0.05,
                          const std::vector<std::string>& factor_names = {});

}  // namespace doe
}  // namespace perfeval

#endif  // PERFEVAL_DOE_SIGNIFICANCE_H_
