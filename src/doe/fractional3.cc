#include "doe/fractional3.h"

#include "common/check.h"

namespace perfeval {
namespace doe {

bool IsPrime(size_t m) {
  if (m < 2) {
    return false;
  }
  for (size_t d = 2; d * d <= m; ++d) {
    if (m % d == 0) {
      return false;
    }
  }
  return true;
}

Design LatinSquareFractional(std::vector<Factor> factors) {
  PERFEVAL_CHECK_GE(factors.size(), 2u);
  size_t m = factors[0].num_levels();
  PERFEVAL_CHECK(IsPrime(m)) << "Latin-square construction needs prime m";
  PERFEVAL_CHECK_LE(factors.size(), m + 1)
      << "at most m+1 factors fit in m^2 runs";
  for (const Factor& factor : factors) {
    PERFEVAL_CHECK_EQ(factor.num_levels(), m)
        << "all factors must have " << m << " levels";
  }
  std::vector<DesignPoint> points;
  points.reserve(m * m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      DesignPoint point;
      point.levels.resize(factors.size());
      point.levels[0] = i;
      point.levels[1] = j;
      for (size_t t = 2; t < factors.size(); ++t) {
        point.levels[t] = (i + (t - 1) * j) % m;
      }
      points.push_back(point);
    }
  }
  return Design(std::move(factors), std::move(points),
                "latin-square-fractional");
}

Design PaperSlide67Design() {
  std::vector<Factor> factors;
  factors.emplace_back("CPU",
                       std::vector<std::string>{"6800", "Z80", "8086"});
  factors.emplace_back("Memory",
                       std::vector<std::string>{"512K", "2M", "8M"});
  factors.emplace_back(
      "Workload",
      std::vector<std::string>{"Managerial", "Scientific", "Secretarial"});
  factors.emplace_back(
      "Education",
      std::vector<std::string>{"High school", "Postgraduate", "College"});
  return LatinSquareFractional(std::move(factors));
}

}  // namespace doe
}  // namespace perfeval
