#ifndef PERFEVAL_DOE_FACTOR_H_
#define PERFEVAL_DOE_FACTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"

namespace perfeval {
namespace doe {

/// A factor is any variable that affects the response variable (paper,
/// slide 57): a parameter to be set or an environment variable. Its levels
/// are the values it can take in an experiment.
class Factor {
 public:
  Factor(std::string name, std::vector<std::string> level_names)
      : name_(std::move(name)), level_names_(std::move(level_names)) {
    PERFEVAL_CHECK_GE(level_names_.size(), 1u)
        << "factor " << name_ << " needs at least one level";
  }

  /// Convenience constructor for a two-level (-1/+1) factor, the building
  /// block of 2^k designs.
  static Factor TwoLevel(std::string name, std::string low,
                         std::string high) {
    return Factor(std::move(name), {std::move(low), std::move(high)});
  }

  const std::string& name() const { return name_; }
  size_t num_levels() const { return level_names_.size(); }

  const std::string& level_name(size_t index) const {
    PERFEVAL_CHECK_LT(index, level_names_.size());
    return level_names_[index];
  }
  const std::vector<std::string>& level_names() const { return level_names_; }

 private:
  std::string name_;
  std::vector<std::string> level_names_;
};

}  // namespace doe
}  // namespace perfeval

#endif  // PERFEVAL_DOE_FACTOR_H_
