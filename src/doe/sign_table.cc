#include "doe/sign_table.h"

#include "common/check.h"
#include "common/string_util.h"

namespace perfeval {
namespace doe {

SignTable::SignTable(size_t num_runs, size_t num_factors,
                     std::vector<int8_t> factor_signs)
    : num_runs_(num_runs),
      num_factors_(num_factors),
      factor_signs_(std::move(factor_signs)) {
  PERFEVAL_CHECK_EQ(factor_signs_.size(), num_runs_ * num_factors_);
}

SignTable SignTable::FullFactorial(size_t k) {
  PERFEVAL_CHECK_GE(k, 1u);
  PERFEVAL_CHECK_LE(k, 26u);
  size_t runs = size_t{1} << k;
  std::vector<int8_t> signs(runs * k);
  for (size_t run = 0; run < runs; ++run) {
    for (size_t factor = 0; factor < k; ++factor) {
      signs[run * k + factor] =
          (run & (size_t{1} << factor)) ? int8_t{1} : int8_t{-1};
    }
  }
  return SignTable(runs, k, std::move(signs));
}

SignTable SignTable::Fractional(const FractionalDesignSpec& spec) {
  size_t base = spec.k() - spec.p();
  SignTable base_table = FullFactorial(base);
  size_t runs = base_table.num_runs();
  std::vector<int8_t> signs(runs * spec.k());
  for (size_t run = 0; run < runs; ++run) {
    for (size_t factor = 0; factor < base; ++factor) {
      signs[run * spec.k() + factor] =
          static_cast<int8_t>(base_table.FactorSign(run, factor));
    }
    for (const Generator& g : spec.generators()) {
      signs[run * spec.k() + g.new_factor] =
          static_cast<int8_t>(base_table.ColumnSign(run, g.base_mask));
    }
  }
  return SignTable(runs, spec.k(), std::move(signs));
}

int SignTable::FactorSign(size_t run, size_t factor) const {
  PERFEVAL_CHECK_LT(run, num_runs_);
  PERFEVAL_CHECK_LT(factor, num_factors_);
  return factor_signs_[run * num_factors_ + factor];
}

int SignTable::ColumnSign(size_t run, EffectMask effect) const {
  PERFEVAL_CHECK_LT(run, num_runs_);
  int sign = 1;
  for (size_t factor = 0; factor < num_factors_; ++factor) {
    if (effect & (EffectMask{1} << factor)) {
      sign *= FactorSign(run, factor);
    }
  }
  return sign;
}

std::vector<int> SignTable::Column(EffectMask effect) const {
  std::vector<int> column(num_runs_);
  for (size_t run = 0; run < num_runs_; ++run) {
    column[run] = ColumnSign(run, effect);
  }
  return column;
}

bool SignTable::IsZeroSum(EffectMask effect) const {
  int sum = 0;
  for (size_t run = 0; run < num_runs_; ++run) {
    sum += ColumnSign(run, effect);
  }
  return sum == 0;
}

bool SignTable::AreOrthogonal(EffectMask a, EffectMask b) const {
  int dot = 0;
  for (size_t run = 0; run < num_runs_; ++run) {
    dot += ColumnSign(run, a) * ColumnSign(run, b);
  }
  return dot == 0;
}

bool SignTable::IsProper() const {
  for (size_t f1 = 0; f1 < num_factors_; ++f1) {
    EffectMask m1 = EffectMask{1} << f1;
    if (!IsZeroSum(m1)) {
      return false;
    }
    for (size_t f2 = f1 + 1; f2 < num_factors_; ++f2) {
      EffectMask m2 = EffectMask{1} << f2;
      if (!AreOrthogonal(m1, m2)) {
        return false;
      }
    }
  }
  return true;
}

std::string SignTable::ToTable(const std::vector<EffectMask>& columns) const {
  std::string out = PadLeft("run", 4);
  out += "  " + PadLeft("I", 4);
  for (EffectMask effect : columns) {
    out += "  " + PadLeft(EffectName(effect), 4);
  }
  out += "\n";
  for (size_t run = 0; run < num_runs_; ++run) {
    out += PadLeft(StrFormat("%zu", run + 1), 4);
    out += "  " + PadLeft("1", 4);
    for (EffectMask effect : columns) {
      out += "  " + PadLeft(ColumnSign(run, effect) > 0 ? "1" : "-1", 4);
    }
    out += "\n";
  }
  return out;
}

}  // namespace doe
}  // namespace perfeval
