#ifndef PERFEVAL_DOE_ALLOCATION_H_
#define PERFEVAL_DOE_ALLOCATION_H_

#include <string>
#include <vector>

#include "doe/effects.h"
#include "doe/sign_table.h"

namespace perfeval {
namespace doe {

/// One component of the total variation, attributed to an effect or to
/// experimental error.
struct VariationComponent {
  EffectMask effect = 0;  ///< Meaningless when is_error is true.
  bool is_error = false;
  double sum_of_squares = 0.0;
  double fraction = 0.0;  ///< share of SST in [0, 1].
};

/// Allocation of variation for a 2^k design (paper, slides 81–93):
/// SST = sum_i (y_i - mean)^2 is distributed among the factors as
/// SST = 2^k qA^2 + 2^k qB^2 + ... ; the fraction explained by an effect
/// measures its importance.
struct VariationAllocation {
  double total_sum_of_squares = 0.0;
  std::vector<VariationComponent> components;  ///< sorted by fraction desc.

  /// Fraction explained by `effect` (0 when absent).
  double FractionFor(EffectMask effect) const;

  /// Fraction attributed to experimental error (0 without replication).
  double ErrorFraction() const;

  /// Table such as the paper's slide 92: one row per effect,
  /// "qA 17.2%" etc.
  std::string ToTable() const;
};

/// Unreplicated allocation: one response per run of a full factorial table.
VariationAllocation AllocateVariation(const SignTable& table,
                                      const std::vector<double>& y);

/// Replicated allocation: r responses per run. The within-run scatter forms
/// the experimental-error component SSE, so effect importance can be judged
/// against measurement noise (the paper's "common mistake #1", slide 59:
/// variation due to experimental error is ignored).
VariationAllocation AllocateVariationReplicated(
    const SignTable& table, const std::vector<std::vector<double>>& y);

}  // namespace doe
}  // namespace perfeval

#endif  // PERFEVAL_DOE_ALLOCATION_H_
