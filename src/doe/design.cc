#include "doe/design.h"

#include <map>

#include "common/check.h"
#include "common/string_util.h"

namespace perfeval {
namespace doe {

Design::Design(std::vector<Factor> factors, std::vector<DesignPoint> points,
               std::string name)
    : factors_(std::move(factors)),
      points_(std::move(points)),
      name_(std::move(name)) {
  for (const DesignPoint& point : points_) {
    PERFEVAL_CHECK_EQ(point.levels.size(), factors_.size());
    for (size_t f = 0; f < factors_.size(); ++f) {
      PERFEVAL_CHECK_LT(point.levels[f], factors_[f].num_levels());
    }
  }
}

const std::string& Design::LevelNameAt(size_t run_index,
                                       size_t factor_index) const {
  PERFEVAL_CHECK_LT(run_index, points_.size());
  PERFEVAL_CHECK_LT(factor_index, factors_.size());
  return factors_[factor_index].level_name(
      points_[run_index].levels[factor_index]);
}

bool Design::CoversAllLevels() const {
  for (size_t f = 0; f < factors_.size(); ++f) {
    std::vector<bool> seen(factors_[f].num_levels(), false);
    for (const DesignPoint& point : points_) {
      seen[point.levels[f]] = true;
    }
    for (bool covered : seen) {
      if (!covered) {
        return false;
      }
    }
  }
  return true;
}

bool Design::IsPairwiseBalanced() const {
  for (size_t f1 = 0; f1 < factors_.size(); ++f1) {
    for (size_t f2 = f1 + 1; f2 < factors_.size(); ++f2) {
      std::map<std::pair<size_t, size_t>, int64_t> counts;
      for (const DesignPoint& point : points_) {
        ++counts[{point.levels[f1], point.levels[f2]}];
      }
      size_t expected_pairs =
          factors_[f1].num_levels() * factors_[f2].num_levels();
      // A balanced design need not cover every pair (fractional designs do
      // not), but the pairs it covers must appear equally often and the
      // per-factor marginals must be flat. Check equal counts among present
      // pairs and flat marginals.
      int64_t first = counts.begin()->second;
      for (const auto& [pair, count] : counts) {
        (void)pair;
        if (count != first && counts.size() == expected_pairs) {
          return false;
        }
      }
      // Flat marginals per factor.
      for (size_t f : {f1, f2}) {
        std::map<size_t, int64_t> marginal;
        for (const DesignPoint& point : points_) {
          ++marginal[point.levels[f]];
        }
        int64_t m0 = marginal.begin()->second;
        for (const auto& [level, count] : marginal) {
          (void)level;
          if (count != m0) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

std::string Design::ToTable() const {
  std::vector<size_t> widths(factors_.size());
  for (size_t f = 0; f < factors_.size(); ++f) {
    widths[f] = factors_[f].name().size();
    for (const std::string& level : factors_[f].level_names()) {
      widths[f] = std::max(widths[f], level.size());
    }
  }
  std::string out = PadLeft("run", 4);
  for (size_t f = 0; f < factors_.size(); ++f) {
    out += "  " + PadRight(factors_[f].name(), widths[f]);
  }
  out += "\n";
  for (size_t r = 0; r < points_.size(); ++r) {
    out += PadLeft(StrFormat("%zu", r + 1), 4);
    for (size_t f = 0; f < factors_.size(); ++f) {
      out += "  " + PadRight(LevelNameAt(r, f), widths[f]);
    }
    out += "\n";
  }
  return out;
}

Design SimpleDesign(std::vector<Factor> factors) {
  PERFEVAL_CHECK(!factors.empty());
  std::vector<DesignPoint> points;
  DesignPoint baseline;
  baseline.levels.assign(factors.size(), 0);
  points.push_back(baseline);
  for (size_t f = 0; f < factors.size(); ++f) {
    for (size_t level = 1; level < factors[f].num_levels(); ++level) {
      DesignPoint point = baseline;
      point.levels[f] = level;
      points.push_back(point);
    }
  }
  return Design(std::move(factors), std::move(points), "simple");
}

Design FullFactorialDesign(std::vector<Factor> factors) {
  PERFEVAL_CHECK(!factors.empty());
  std::vector<DesignPoint> points;
  DesignPoint current;
  current.levels.assign(factors.size(), 0);
  for (;;) {
    points.push_back(current);
    // Odometer increment, factor 0 fastest.
    size_t f = 0;
    while (f < factors.size()) {
      if (++current.levels[f] < factors[f].num_levels()) {
        break;
      }
      current.levels[f] = 0;
      ++f;
    }
    if (f == factors.size()) {
      break;
    }
  }
  return Design(std::move(factors), std::move(points), "full-factorial");
}

Design TwoLevelFullFactorial(std::vector<Factor> factors) {
  for (const Factor& factor : factors) {
    PERFEVAL_CHECK_EQ(factor.num_levels(), 2u)
        << "2^k design requires two-level factors; factor " << factor.name()
        << " has " << factor.num_levels();
  }
  Design design = FullFactorialDesign(std::move(factors));
  return Design(design.factors(), design.points(), "2^k");
}

int64_t SimpleDesignRuns(const std::vector<size_t>& levels_per_factor) {
  int64_t runs = 1;
  for (size_t n : levels_per_factor) {
    PERFEVAL_CHECK_GE(n, 1u);
    runs += static_cast<int64_t>(n) - 1;
  }
  return runs;
}

int64_t FullFactorialRuns(const std::vector<size_t>& levels_per_factor) {
  int64_t runs = 1;
  for (size_t n : levels_per_factor) {
    PERFEVAL_CHECK_GE(n, 1u);
    runs *= static_cast<int64_t>(n);
  }
  return runs;
}

int64_t TwoLevelRuns(size_t num_factors) {
  PERFEVAL_CHECK_LT(num_factors, 63u);
  return static_cast<int64_t>(1) << num_factors;
}

int64_t FractionalRuns(size_t num_factors, size_t p) {
  PERFEVAL_CHECK_LT(p, num_factors);
  PERFEVAL_CHECK_LT(num_factors - p, 63u);
  return static_cast<int64_t>(1) << (num_factors - p);
}

}  // namespace doe
}  // namespace perfeval
