#include "doe/allocation.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace doe {
namespace {

void SortComponents(std::vector<VariationComponent>* components) {
  std::sort(components->begin(), components->end(),
            [](const VariationComponent& a, const VariationComponent& b) {
              return a.fraction > b.fraction;
            });
}

}  // namespace

double VariationAllocation::FractionFor(EffectMask effect) const {
  for (const VariationComponent& c : components) {
    if (!c.is_error && c.effect == effect) {
      return c.fraction;
    }
  }
  return 0.0;
}

double VariationAllocation::ErrorFraction() const {
  for (const VariationComponent& c : components) {
    if (c.is_error) {
      return c.fraction;
    }
  }
  return 0.0;
}

std::string VariationAllocation::ToTable() const {
  std::string out = StrFormat("%-10s %12s %9s\n", "effect", "SS", "%var");
  for (const VariationComponent& c : components) {
    std::string label = c.is_error ? "error" : "q" + EffectName(c.effect);
    out += StrFormat("%-10s %12.6g %8.1f%%\n", label.c_str(),
                     c.sum_of_squares, c.fraction * 100.0);
  }
  out += StrFormat("%-10s %12.6g %8.1f%%\n", "SST", total_sum_of_squares,
                   100.0);
  return out;
}

VariationAllocation AllocateVariation(const SignTable& table,
                                      const std::vector<double>& y) {
  PERFEVAL_CHECK_EQ(y.size(), table.num_runs());
  PERFEVAL_CHECK_EQ(size_t{1} << table.num_factors(), table.num_runs());
  EffectModel model = EstimateEffects(table, y);
  double mean = model.mean();
  double sst = 0.0;
  for (double value : y) {
    sst += (value - mean) * (value - mean);
  }
  VariationAllocation allocation;
  allocation.total_sum_of_squares = sst;
  double n = static_cast<double>(table.num_runs());
  for (const auto& [effect, q] : model.coefficients()) {
    if (effect == 0) {
      continue;
    }
    VariationComponent component;
    component.effect = effect;
    component.sum_of_squares = n * q * q;
    component.fraction = sst > 0.0 ? component.sum_of_squares / sst : 0.0;
    allocation.components.push_back(component);
  }
  SortComponents(&allocation.components);
  return allocation;
}

VariationAllocation AllocateVariationReplicated(
    const SignTable& table, const std::vector<std::vector<double>>& y) {
  PERFEVAL_CHECK_EQ(y.size(), table.num_runs());
  size_t replications = y[0].size();
  PERFEVAL_CHECK_GE(replications, 1u);
  for (const std::vector<double>& run : y) {
    PERFEVAL_CHECK_EQ(run.size(), replications)
        << "all runs must have equal replication";
  }
  std::vector<double> means(y.size());
  for (size_t run = 0; run < y.size(); ++run) {
    means[run] = stats::Mean(y[run]);
  }
  EffectModel model = EstimateEffects(table, means);
  double grand_mean = model.mean();

  double sst = 0.0;
  double sse = 0.0;
  for (size_t run = 0; run < y.size(); ++run) {
    for (double obs : y[run]) {
      sst += (obs - grand_mean) * (obs - grand_mean);
      sse += (obs - means[run]) * (obs - means[run]);
    }
  }

  VariationAllocation allocation;
  allocation.total_sum_of_squares = sst;
  double scale = static_cast<double>(table.num_runs()) *
                 static_cast<double>(replications);
  for (const auto& [effect, q] : model.coefficients()) {
    if (effect == 0) {
      continue;
    }
    VariationComponent component;
    component.effect = effect;
    component.sum_of_squares = scale * q * q;
    component.fraction = sst > 0.0 ? component.sum_of_squares / sst : 0.0;
    allocation.components.push_back(component);
  }
  VariationComponent error;
  error.is_error = true;
  error.sum_of_squares = sse;
  error.fraction = sst > 0.0 ? sse / sst : 0.0;
  allocation.components.push_back(error);
  SortComponents(&allocation.components);
  return allocation;
}

}  // namespace doe
}  // namespace perfeval
