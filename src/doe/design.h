#ifndef PERFEVAL_DOE_DESIGN_H_
#define PERFEVAL_DOE_DESIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "doe/factor.h"

namespace perfeval {
namespace doe {

/// One run of an experiment: a level index for each factor.
struct DesignPoint {
  std::vector<size_t> levels;
};

/// A design is the choice of experiments — which factor-level combinations
/// to run (paper, slide 57). Designs are produced by the builder functions
/// below and consumed by the harness (core::Runner) and the analysis code
/// (doe::effects, doe::allocation).
class Design {
 public:
  Design(std::vector<Factor> factors, std::vector<DesignPoint> points,
         std::string name);

  const std::string& name() const { return name_; }
  const std::vector<Factor>& factors() const { return factors_; }
  const std::vector<DesignPoint>& points() const { return points_; }
  size_t num_runs() const { return points_.size(); }
  size_t num_factors() const { return factors_.size(); }

  /// Level name of factor `factor_index` in run `run_index`.
  const std::string& LevelNameAt(size_t run_index, size_t factor_index) const;

  /// True when every level of every factor appears in at least one run.
  bool CoversAllLevels() const;

  /// True when, for every pair of factors, every pair of levels appears
  /// equally often (pairwise orthogonality / balance — the property the
  /// paper's fractional design on slide 67 is built to keep).
  bool IsPairwiseBalanced() const;

  /// Text table: header row of factor names, one row per run.
  std::string ToTable() const;

 private:
  std::vector<Factor> factors_;
  std::vector<DesignPoint> points_;
  std::string name_;
};

/// Simple one-at-a-time design (slide 60): fix the baseline configuration
/// (level 0 of every factor) and vary one factor at a time.
/// Produces 1 + sum(ni - 1) runs. Cannot identify interactions.
Design SimpleDesign(std::vector<Factor> factors);

/// Full factorial design (slide 63): all level combinations, prod(ni) runs.
/// (The slide's "1 + prod" is a typo for prod; see EXPERIMENTS.md T7.)
Design FullFactorialDesign(std::vector<Factor> factors);

/// 2^k design (slide 66): all factors restricted to two levels.
/// All factors must have exactly two levels.
Design TwoLevelFullFactorial(std::vector<Factor> factors);

/// Number of runs each classical design would need — used for design-size
/// comparisons before committing to an experiment (slide 56: 5 parameters
/// with 10..40 values => 10^5 full-factorial runs).
int64_t SimpleDesignRuns(const std::vector<size_t>& levels_per_factor);
int64_t FullFactorialRuns(const std::vector<size_t>& levels_per_factor);
int64_t TwoLevelRuns(size_t num_factors);            // 2^k
int64_t FractionalRuns(size_t num_factors, size_t p);  // 2^(k-p)

}  // namespace doe
}  // namespace perfeval

#endif  // PERFEVAL_DOE_DESIGN_H_
