#ifndef PERFEVAL_DOE_FRACTIONAL3_H_
#define PERFEVAL_DOE_FRACTIONAL3_H_

#include "doe/design.h"

namespace perfeval {
namespace doe {

/// Multi-level fractional factorial design built from mutually orthogonal
/// Latin squares (the construction behind the paper's slide-67 example:
/// 4 factors x 3 levels in 9 experiments instead of 81).
///
/// For `m` prime and k <= m + 1 factors of m levels each, produces m^2 runs:
/// run (i, j) assigns factor 0 level i, factor 1 level j and factor t >= 2
/// level (i + (t-1) * j) mod m. The result is pairwise balanced: every level
/// pair of every factor pair appears exactly once.
///
/// All factors must have exactly `m` levels, m must be prime, and
/// factors.size() <= m + 1.
Design LatinSquareFractional(std::vector<Factor> factors);

/// The classical L9 orthogonal array (3^4 in 9 runs) with the paper's
/// slide-67 factor catalogue: CPU {6800, Z80, 8086}, Memory {512K, 2M, 8M},
/// Workload {Managerial, Scientific, Secretarial}, Education
/// {High school, Postgraduate, College}.
Design PaperSlide67Design();

/// True when `m` is prime (used to validate Latin-square constructions).
bool IsPrime(size_t m);

}  // namespace doe
}  // namespace perfeval

#endif  // PERFEVAL_DOE_FRACTIONAL3_H_
