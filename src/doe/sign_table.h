#ifndef PERFEVAL_DOE_SIGN_TABLE_H_
#define PERFEVAL_DOE_SIGN_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "doe/confounding.h"

namespace perfeval {
namespace doe {

/// The sign table of a two-level design (paper, slides 78–80 and 100–107):
/// one row per run, a +-1 sign for every factor, from which the sign of any
/// interaction column is the product of the member factors' signs.
///
/// Rows follow the paper's standard order: factor A varies fastest
/// (run r, factor i sign = +1 iff bit i of r is set).
class SignTable {
 public:
  /// Full 2^k factorial table.
  static SignTable FullFactorial(size_t k);

  /// 2^(k-p) fractional table: base factors form a full 2^(k-p) factorial,
  /// each generated factor's column equals its generator interaction column
  /// (slide 100's construction method).
  static SignTable Fractional(const FractionalDesignSpec& spec);

  size_t num_runs() const { return num_runs_; }
  size_t num_factors() const { return num_factors_; }

  /// Sign (+1/-1) of factor `factor` in run `run`.
  int FactorSign(size_t run, size_t factor) const;

  /// Sign of the `effect` column (product of member factor signs) in `run`.
  /// Effect 0 (I) is +1 everywhere.
  int ColumnSign(size_t run, EffectMask effect) const;

  /// Entire column for `effect`, one entry per run.
  std::vector<int> Column(EffectMask effect) const;

  /// True when the column sums to zero — both levels equally tested
  /// (slide 103: "7 zero-sum columns").
  bool IsZeroSum(EffectMask effect) const;

  /// True when the two columns are orthogonal (dot product zero).
  bool AreOrthogonal(EffectMask a, EffectMask b) const;

  /// True when all non-identity single-factor columns are zero-sum and
  /// pairwise orthogonal — the defining property of a usable sign table
  /// (slide 100: "each column has sum zero; columns should be orthogonal").
  bool IsProper() const;

  /// Text rendering with I and the requested effect columns.
  std::string ToTable(const std::vector<EffectMask>& columns) const;

 private:
  SignTable(size_t num_runs, size_t num_factors,
            std::vector<int8_t> factor_signs);

  size_t num_runs_;
  size_t num_factors_;
  /// Row-major: factor_signs_[run * num_factors_ + factor] in {-1, +1}.
  std::vector<int8_t> factor_signs_;
};

}  // namespace doe
}  // namespace perfeval

#endif  // PERFEVAL_DOE_SIGN_TABLE_H_
