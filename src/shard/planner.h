#ifndef PERFEVAL_SHARD_PLANNER_H_
#define PERFEVAL_SHARD_PLANNER_H_

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/partial_agg.h"
#include "db/plan.h"
#include "db/table.h"
#include "shard/partition.h"

namespace perfeval {
namespace shard {

/// Where a plan node's output lives in a sharded deployment.
enum class Site {
  kReplicated,   ///< identical on every shard — computable on any one.
  kPartitioned,  ///< a disjoint slice per shard; union == single-node.
  kCoordinator,  ///< only the coordinator can produce it.
};

const char* SiteName(Site site);

/// One node's placement annotation: its site, its output schema, and which
/// output columns carry a partition key (column index -> domain name).
/// Key domains are what prove co-location: a P⨝P equi-join stays
/// shard-local iff some join-key pair shares a domain on both sides.
struct SiteAnnotation {
  Site site = Site::kReplicated;
  db::Schema schema;
  std::map<size_t, std::string> key_domains;
};

/// Annotates `plan` bottom-up against the partition scheme. `catalog`
/// resolves base-table schemas (any database holding the full logical
/// schema works — shard databases do, since partitioning never changes a
/// schema). Returns one annotation per node, keyed by node pointer; the
/// root's annotation decides whether the plan needs the coordinator at
/// all.
std::map<const db::PlanNode*, SiteAnnotation> AnnotateSites(
    const db::PlanPtr& plan, const PartitionScheme& scheme,
    const db::Database& catalog);

/// One shard-executable fragment of a distributed plan.
struct FragmentPlan {
  /// The subtree each shard executes (aliases into the original tree, or a
  /// partial-aggregate wrapper around it).
  db::PlanPtr plan;
  /// True when the subtree is fully replicated: executing it on shard 0
  /// alone yields the complete result (running it everywhere would
  /// duplicate rows).
  bool replicated_only = false;
  /// Schema of the gathered fragment table the residual scans ("__frag<k>"
  /// in the coordinator's scratch catalog). For a split aggregate this is
  /// the ORIGINAL aggregate's output schema (post-merge, post-finalize).
  db::Schema output_schema;
  /// Engaged when the fragment is a decomposed aggregate: each shard runs
  /// the partial aggregate; the coordinator concatenates partials in shard
  /// order, runs the merge aggregate, and applies the finalize projection.
  std::optional<db::AggSplit> agg_split;
  /// The aggregate's group-by columns (agg_split fragments only).
  std::vector<std::string> group_by;
};

/// A plan decomposed for scatter-gather execution.
struct DistributedPlan {
  std::vector<FragmentPlan> fragments;
  /// The coordinator-side remainder, reading fragment k through a
  /// Scan("__frag<k>") leaf. Always set — a fully shard-executable plan
  /// reduces to residual = Scan("__frag0").
  db::PlanPtr residual;
  /// The undistributed input plan (the coordinator replays its scan I/O
  /// against the global layout for logical StorageStats).
  db::PlanPtr original;
};

/// The scratch-catalog name of fragment `k`.
std::string FragmentTableName(size_t k);

/// Decomposes `plan` into shard fragments plus a coordinator residual.
///
/// Placement rules (bottom-up): scans of partitioned tables are
/// kPartitioned keyed by their partition column; replicated scans are
/// kReplicated; filters/projections preserve their child's site (projections
/// keep key domains through identity column references); a join of two
/// partitioned inputs stays kPartitioned only when co-located (shared key
/// domain), a partitioned⨝replicated join stays kPartitioned, and anything
/// else — aggregates over partitioned data, sorts, limits, non-co-located
/// joins — moves to the coordinator. At each site boundary the maximal
/// shard-executable subtree becomes one fragment; aggregates over
/// partitioned children are split into partial/merge/finalize when their
/// functions decompose (everything but COUNT DISTINCT, which gathers its
/// child's rows instead).
DistributedPlan PlanDistributed(const db::PlanPtr& plan,
                                const PartitionScheme& scheme,
                                const db::Database& catalog);

}  // namespace shard
}  // namespace perfeval

#endif  // PERFEVAL_SHARD_PLANNER_H_
