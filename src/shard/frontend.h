#ifndef PERFEVAL_SHARD_FRONTEND_H_
#define PERFEVAL_SHARD_FRONTEND_H_

#include <memory>
#include <utility>

#include "serve/service.h"
#include "shard/cluster.h"

namespace perfeval {
namespace shard {

/// A QueryService executor that runs requests scatter-gather across
/// `cluster` instead of on a local database. Requests carrying an explicit
/// plan run it; plan-less requests build the TPC-H query numbered
/// `Request::query` against shard 0's catalog (every shard shares the
/// logical schema). The service sink is ignored — rendering-channel
/// modeling stays a single-node concern.
serve::QueryService::ExecutorFn MakeClusterExecutor(ShardCluster* cluster);

/// The cluster's front-end tier: one serve::QueryService whose executor is
/// the scatter-gather coordinator. Everything the single-node service
/// provides — bounded admission queue, overload policy, deadlines,
/// per-tenant quotas, fingerprints, server-timing splits, queue snapshots
/// — applies unchanged to distributed execution, and serve::LoadGenerator
/// drives it exactly like a single-node service.
class FrontEnd {
 public:
  /// `cluster` must outlive the front end.
  FrontEnd(ShardCluster* cluster, serve::ServiceOptions options);

  serve::QueryService& service() { return *service_; }

  serve::ResponseHandle Submit(serve::Request request) {
    return service_->Submit(std::move(request));
  }
  serve::Response Execute(serve::Request request) {
    return service_->Execute(std::move(request));
  }
  void Shutdown() { service_->Shutdown(); }

 private:
  std::unique_ptr<serve::QueryService> service_;
};

}  // namespace shard
}  // namespace perfeval

#endif  // PERFEVAL_SHARD_FRONTEND_H_
