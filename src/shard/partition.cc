#include "shard/partition.h"

#include "common/check.h"

namespace perfeval {
namespace shard {
namespace {

/// Domain salts: arbitrary fixed constants. Equal domain <=> equal salt is
/// what keeps co-partitioned joins shard-local; the constants themselves
/// only need to be stable (the partitioner's reference-vector test pins
/// the underlying hash).
constexpr uint64_t kOrderkeySalt = 0x06d6e4b10c0ffee1ULL;
constexpr uint64_t kCustkeySalt = 0xc7574aa5deadbeefULL;

}  // namespace

TablePartitionSpec PartitionScheme::SpecFor(
    const std::string& table_name) const {
  auto it = tables.find(table_name);
  if (it == tables.end()) {
    return TablePartitionSpec{};  // replicated by default.
  }
  return it->second;
}

PartitionScheme TpchPartitionScheme() {
  PartitionScheme scheme;
  scheme.tables["orders"] = {"o_orderkey", "orderkey", kOrderkeySalt};
  scheme.tables["lineitem"] = {"l_orderkey", "orderkey", kOrderkeySalt};
  scheme.tables["customer"] = {"c_custkey", "custkey", kCustkeySalt};
  for (const char* replicated :
       {"region", "nation", "supplier", "part", "partsupp"}) {
    scheme.tables[replicated] = TablePartitionSpec{};
  }
  return scheme;
}

std::vector<std::shared_ptr<db::Table>> PartitionTable(
    const db::Table& table, const TablePartitionSpec& spec, int num_shards) {
  PERFEVAL_CHECK_GE(num_shards, 1);
  PERFEVAL_CHECK(spec.partitioned());
  size_t key_col = table.schema().MustIndexOf(spec.key_column);
  const db::Column& keys = table.column(key_col);
  PERFEVAL_CHECK(keys.type() == db::DataType::kInt64)
      << "partition key " << spec.key_column << " must be int64";
  PERFEVAL_CHECK(!keys.has_nulls())
      << "partition key " << spec.key_column << " must be NULL-free";

  HashPartitioner partitioner(num_shards, spec.domain_salt);
  std::vector<int> shard_of(table.num_rows());
  std::vector<size_t> shard_rows(static_cast<size_t>(num_shards), 0);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    int s = partitioner.ShardOf(keys.GetInt64(r));
    shard_of[r] = s;
    ++shard_rows[static_cast<size_t>(s)];
  }

  std::vector<std::shared_ptr<db::Table>> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto t = std::make_shared<db::Table>(table.schema());
    t->ReserveRows(shard_rows[static_cast<size_t>(s)]);
    shards.push_back(std::move(t));
  }
  // Column-wise fill, rows in original order per shard.
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const db::Column& src = table.column(c);
    for (size_t r = 0; r < table.num_rows(); ++r) {
      shards[static_cast<size_t>(shard_of[r])]->column(c).AppendValue(
          src.GetValue(r));
    }
  }
  for (auto& t : shards) {
    t->FinishBulkLoad();
  }
  return shards;
}

}  // namespace shard
}  // namespace perfeval
