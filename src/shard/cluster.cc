#include "shard/cluster.h"

#include <utility>

#include "common/check.h"
#include "core/measurement.h"
#include "db/partial_agg.h"

namespace perfeval {
namespace shard {

ShardCluster::ShardCluster(ShardClusterOptions options)
    : options_(std::move(options)) {
  PERFEVAL_CHECK_GE(options_.num_shards, 1);
  for (int s = 0; s < options_.num_shards; ++s) {
    db::DatabaseOptions db_options = options_.shard_db;
    auto it = options_.shard_disk_override.find(s);
    if (it != options_.shard_disk_override.end()) {
      db_options.disk = it->second;
    }
    dbs_.push_back(std::make_unique<db::Database>(db_options));
    services_.push_back(std::make_unique<serve::QueryService>(
        dbs_.back().get(), options_.shard_service));
  }
  replay_storage_ = std::make_unique<db::StorageManager>(
      options_.reference.disk, options_.reference.buffer_pool_pages,
      options_.reference.rows_per_page);
}

ShardCluster::~ShardCluster() {
  // Drain the shard services while their databases are still alive
  // (members destroy in reverse order anyway; this makes it explicit).
  for (auto& service : services_) {
    service->Shutdown();
  }
}

void ShardCluster::AddTable(const std::string& name,
                            std::shared_ptr<db::Table> table) {
  PERFEVAL_CHECK(catalog_.find(name) == catalog_.end())
      << "duplicate table " << name;
  TablePartitionSpec spec = options_.scheme.SpecFor(name);
  if (spec.partitioned()) {
    std::vector<std::shared_ptr<db::Table>> slices =
        PartitionTable(*table, spec, options_.num_shards);
    for (int s = 0; s < options_.num_shards; ++s) {
      dbs_[static_cast<size_t>(s)]->RegisterTable(
          name, slices[static_cast<size_t>(s)]);
    }
  } else {
    // Replicated: every shard shares one immutable table object.
    for (auto& db : dbs_) {
      db->RegisterTable(name, table);
    }
  }
  CatalogEntry entry;
  entry.id = next_table_id_++;
  entry.schema = table->schema();
  entry.num_rows = table->num_rows();
  // RegisterTable copies page/zone-map metadata; it does not retain the
  // table, so the generator's full table can be dropped after this call.
  replay_storage_->RegisterTable(entry.id, *table);
  catalog_[name] = std::move(entry);
}

void ShardCluster::LoadTpch(workload::TpchGenerator* gen) {
  for (const char* name : {"region", "nation", "supplier", "customer",
                           "part", "partsupp", "orders", "lineitem"}) {
    AddTable(name, gen->Generate(name));
  }
}

void ShardCluster::FlushCaches() {
  for (auto& db : dbs_) {
    db->FlushCaches();
  }
  replay_storage_->FlushCaches();
}

db::ScanTableInfo ShardCluster::Lookup(const std::string& table_name) const {
  auto it = catalog_.find(table_name);
  PERFEVAL_CHECK(it != catalog_.end())
      << "unknown table in replay: " << table_name;
  return db::ScanTableInfo{it->second.id, &it->second.schema,
                           it->second.num_rows};
}

ShardedResult ShardCluster::Execute(const db::PlanPtr& plan, db::ExecMode mode,
                                    bool use_zone_maps) {
  DistributedPlan dp = PlanDistributed(plan, options_.scheme, *dbs_[0]);

  ShardedResult out;
  out.shards.resize(static_cast<size_t>(options_.num_shards));
  out.num_fragments = dp.fragments.size();

  // Coordinator scratch engine for gathered fragments, partial-aggregate
  // merging and the residual plan. Zero-cost disk: fragment tables are
  // in-memory intermediates, not base data, so they must not charge I/O.
  db::DatabaseOptions scratch_options;
  scratch_options.disk = db::DiskModel{0, 0.0};
  scratch_options.check = options_.shard_db.check;
  db::Database scratch(scratch_options);

  db::QueryResult residual_result;
  out.result.server = core::MeasureOnce([&] {
    // Scatter: every fragment to every shard (replicated fragments to
    // shard 0 only — running them everywhere would duplicate rows).
    std::vector<std::vector<serve::ResponseHandle>> handles(
        dp.fragments.size());
    for (size_t k = 0; k < dp.fragments.size(); ++k) {
      const FragmentPlan& frag = dp.fragments[k];
      int targets = frag.replicated_only ? 1 : options_.num_shards;
      for (int s = 0; s < targets; ++s) {
        serve::Request request;
        request.plan = frag.plan;
        request.mode = mode;
        request.seed = (static_cast<uint64_t>(k) << 8) |
                       static_cast<uint64_t>(s);
        handles[k].push_back(
            services_[static_cast<size_t>(s)]->Submit(request));
      }
    }
    // Occupancy right after the scatter: what each shard's service looks
    // like while this query is outstanding (straggler attribution).
    for (int s = 0; s < options_.num_shards; ++s) {
      out.shards[static_cast<size_t>(s)].queue =
          services_[static_cast<size_t>(s)]->queue_snapshot();
    }

    // Gather in fragment order, shard order within a fragment — the fixed
    // merge discipline every determinism claim rests on.
    for (size_t k = 0; k < dp.fragments.size(); ++k) {
      const FragmentPlan& frag = dp.fragments[k];
      std::vector<const serve::Response*> responses;
      responses.reserve(handles[k].size());
      for (size_t s = 0; s < handles[k].size(); ++s) {
        const serve::Response& r = handles[k][s]->Wait();
        PERFEVAL_CHECK(r.status.ok())
            << "fragment " << k << " failed on shard " << s << ": "
            << r.status.ToString();
        ShardExecution& exec = out.shards[s];
        exec.timing.queue_wait_ns += r.server.queue_wait_ns;
        exec.timing.exec_ns += r.server.exec_ns;
        ++exec.requests;
        responses.push_back(&r);
      }

      if (frag.agg_split.has_value()) {
        // Decomposed aggregate: concatenate the shards' partial states in
        // shard order, merge with the merge aggregate (groups emit in
        // first-occurrence order over that fixed concatenation), then
        // apply the finalize projection (AVG = SUM/COUNT).
        auto partials =
            std::make_shared<db::Table>(frag.agg_split->partial_schema);
        for (const serve::Response* r : responses) {
          partials->AppendTable(*r->table);
        }
        std::string partial_name = FragmentTableName(k) + "_partial";
        scratch.RegisterTable(partial_name, std::move(partials));
        db::QueryResult merged = scratch.Run(
            db::Aggregate(db::Scan(partial_name), frag.group_by,
                          frag.agg_split->merge),
            mode, db::SinkKind::kDiscard);
        scratch.RegisterTable(
            FragmentTableName(k),
            db::FinalizeMergedAggregates(*merged.table, frag.group_by.size(),
                                         frag.agg_split->finalize));
      } else {
        auto gathered = std::make_shared<db::Table>(frag.output_schema);
        for (const serve::Response* r : responses) {
          gathered->AppendTable(*r->table);
        }
        scratch.RegisterTable(FragmentTableName(k), std::move(gathered));
      }
    }

    // Residual: the coordinator-side remainder over the gathered
    // fragment tables ("__frag<k>" scans).
    residual_result = scratch.Run(dp.residual, mode, db::SinkKind::kDiscard);
  });

  out.result.table = residual_result.table;
  out.result.profile = residual_result.profile;

  // Logical-I/O replay against the reference (single-node) layout — the
  // exact page-touch sequence the undistributed plan would have issued,
  // via the same scan_io code path the engine itself uses. Per-query
  // atomic; see the class comment for the concurrency caveat.
  {
    std::lock_guard<std::mutex> lock(replay_mu_);
    db::StorageStats before = replay_storage_->StatsSnapshot();
    db::ReplayScanIo(dp.original, *this, replay_storage_.get(),
                     use_zone_maps);
    db::StorageStats after = replay_storage_->StatsSnapshot();
    out.result.storage.page_hits = after.page_hits - before.page_hits;
    out.result.storage.page_misses = after.page_misses - before.page_misses;
    out.result.storage.bytes_read = after.bytes_read - before.bytes_read;
    out.result.storage.stall_ns = after.stall_ns - before.stall_ns;
  }
  // The coordinator's observed time = measured wall + the logical stall,
  // mirroring how the single-node engine reports simulated I/O.
  out.result.server.simulated_stall_ns = out.result.storage.stall_ns;
  out.result.client = out.result.server;

  int64_t slowest_ns = -1;
  for (int s = 0; s < options_.num_shards; ++s) {
    int64_t total = out.shards[static_cast<size_t>(s)].timing.TotalNs();
    if (total > slowest_ns) {
      slowest_ns = total;
      out.slowest_shard = s;
    }
  }
  return out;
}

}  // namespace shard
}  // namespace perfeval
