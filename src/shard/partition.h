#ifndef PERFEVAL_SHARD_PARTITION_H_
#define PERFEVAL_SHARD_PARTITION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/partition.h"
#include "db/table.h"

namespace perfeval {
namespace shard {

/// How one table is placed across a shard cluster: hash-partitioned on an
/// int64 key column, or replicated in full to every shard.
///
/// Co-partitioning is expressed through `domain`: two tables whose keys
/// share a domain (and therefore a salt) place equal key values on the
/// same shard, so an equi-join on those keys never crosses shards. The
/// TPC-H scheme co-partitions lineitem with orders on the orderkey domain
/// — the join backbone of Q3/Q4/Q5/Q7/Q8/Q9/Q10/Q12/Q18 stays shard-local
/// — and partitions customer on its own custkey domain.
struct TablePartitionSpec {
  /// Partition key column; empty means the table is replicated.
  std::string key_column;
  /// Co-partitioning domain name ("orderkey", "custkey", ...). Tables with
  /// equal domains agree on placement; empty for replicated tables.
  std::string domain;
  /// The HashPartitioner salt of the domain. Equal domain <=> equal salt.
  uint64_t domain_salt = 0;

  bool partitioned() const { return !key_column.empty(); }
};

/// The placement of every table in a schema.
struct PartitionScheme {
  std::map<std::string, TablePartitionSpec> tables;

  /// The spec for `table_name`; a default (replicated) spec when the table
  /// is not listed — unknown tables are safest replicated.
  TablePartitionSpec SpecFor(const std::string& table_name) const;
};

/// The TPC-H placement: lineitem and orders hash-partitioned on
/// l_orderkey/o_orderkey in the shared "orderkey" domain, customer on
/// c_custkey in the "custkey" domain, and the small dimension tables
/// (region, nation, supplier, part, partsupp) replicated.
PartitionScheme TpchPartitionScheme();

/// Splits `table` into `num_shards` disjoint tables by hashing the int64
/// `key_column` with `spec`'s domain salt. Rows keep their relative order
/// within each shard (shard-local scans see the same row order a
/// single-node scan would, restricted to the shard's rows) — assignment is
/// a pure function of the key, independent of load order (the seam
/// common/partition_test locks down).
std::vector<std::shared_ptr<db::Table>> PartitionTable(
    const db::Table& table, const TablePartitionSpec& spec, int num_shards);

}  // namespace shard
}  // namespace perfeval

#endif  // PERFEVAL_SHARD_PARTITION_H_
