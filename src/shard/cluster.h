#ifndef PERFEVAL_SHARD_CLUSTER_H_
#define PERFEVAL_SHARD_CLUSTER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/scan_io.h"
#include "db/storage.h"
#include "serve/service.h"
#include "shard/partition.h"
#include "shard/planner.h"
#include "workload/tpch_gen.h"

namespace perfeval {
namespace shard {

/// Configuration of a shard cluster.
struct ShardClusterOptions {
  int num_shards = 2;
  /// Engine configuration of every shard database (per-shard buffer pool,
  /// threads, join algorithm, ...). The disk model can be overridden per
  /// shard via `shard_disk_override`.
  db::DatabaseOptions shard_db;
  /// The per-shard query service (executor width, admission queue).
  serve::ServiceOptions shard_service;
  /// Geometry of the coordinator's logical-I/O replay: rows_per_page,
  /// buffer_pool_pages and disk model of the *single-node* deployment the
  /// cluster's StorageStats must be comparable to. Results are invariant
  /// to this; only the reported logical I/O numbers depend on it.
  db::DatabaseOptions reference;
  PartitionScheme scheme = TpchPartitionScheme();
  /// Per-shard disk-model overrides — the straggler-injection knob
  /// (bench_shard_scaleout slows one shard down with a spinning-disk
  /// model while the rest run the default).
  std::map<int, db::DiskModel> shard_disk_override;
};

/// Per-shard view of one scatter-gather execution, for straggler
/// attribution: the summed server-side timing of the shard's fragment
/// requests, and the shard service's occupancy sampled right after the
/// scatter.
struct ShardExecution {
  serve::ServerTiming timing;
  serve::QueueSnapshot queue;
  /// Fragment requests this shard executed.
  int requests = 0;
};

/// Outcome of one distributed query.
struct ShardedResult {
  /// The merged result, shaped exactly like a single-node QueryResult:
  /// `table` is the final relation, `storage` the *logical* I/O replayed
  /// against the reference layout (bit-identical to single-node by
  /// construction), `server` the coordinator's measured wall time with
  /// the replayed stall as its simulated component.
  db::QueryResult result;
  std::vector<ShardExecution> shards;
  /// Shard with the largest summed server-side time this query — the
  /// straggler that bounds scatter-gather latency (tail amplification:
  /// the coordinator waits for max-over-shards, not the mean).
  int slowest_shard = 0;
  size_t num_fragments = 0;
};

/// A hash-partitioned cluster of N single-node engines behind one
/// coordinator (DESIGN.md S16).
///
/// Scatter-gather contract: Execute() decomposes the plan with
/// PlanDistributed, submits every fragment to the per-shard
/// serve::QueryService instances, gathers fragment results in fixed
/// (fragment, then shard, then shard-local first-occurrence) order, merges
/// partial aggregates at the coordinator, and runs the residual plan over
/// the gathered fragment tables. Because gather order is fixed and every
/// shard engine is deterministic at any thread count, the merged result is
/// bit-identical at any per-shard thread count; at different shard counts
/// the result relation is equal as a multiset of rows (double aggregates
/// may differ by reassociation within comparison tolerance).
///
/// StorageStats contract: per-shard page geometry differs from single-node
/// (ceil(rows/page) per shard, split buffer pools), so summed shard stats
/// can never equal single-node numbers. The cluster instead replays each
/// query's logical scan I/O — same code path the engine's scan operators
/// use (db/scan_io.h) — against one StorageManager registered with the
/// global unpartitioned layout, making the merged logical StorageStats
/// bit-identical to single-node by construction. The replay is per-query
/// atomic (a mutex), so deltas are meaningful exactly when queries are
/// issued serially — the same caveat db::Database::Run's stats carry under
/// concurrency.
class ShardCluster : public db::ScanIoCatalog {
 public:
  explicit ShardCluster(ShardClusterOptions options);
  ~ShardCluster() override;

  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  /// Adds `table` to the cluster: partitioned tables are split by the
  /// scheme's hash partitioner, replicated tables are shared by every
  /// shard. Also registers the table's *global* layout with the replay
  /// storage manager; tables must be added in the same order a comparable
  /// single-node database would register them (table ids are assigned by
  /// add order on both sides).
  void AddTable(const std::string& name, std::shared_ptr<db::Table> table);

  /// Generates and adds the eight TPC-H tables in the canonical LoadAll
  /// order, so ids and layout match a single-node LoadAll exactly.
  void LoadTpch(workload::TpchGenerator* gen);

  /// Runs `plan` scatter-gather across the cluster.
  ShardedResult Execute(const db::PlanPtr& plan,
                        db::ExecMode mode = db::ExecMode::kOptimized,
                        bool use_zone_maps = true);

  int num_shards() const { return options_.num_shards; }
  db::Database& shard_db(int i) { return *dbs_.at(static_cast<size_t>(i)); }
  serve::QueryService& shard_service(int i) {
    return *services_.at(static_cast<size_t>(i));
  }
  db::StorageManager& replay_storage() { return *replay_storage_; }
  const ShardClusterOptions& options() const { return options_; }

  /// Cold-state reset: empties every shard's buffer pool and the replay
  /// pool (the cross-cluster equivalent of the slide-32 "reboot").
  void FlushCaches();

  /// db::ScanIoCatalog: resolves the global (unpartitioned) layout for the
  /// logical-I/O replay.
  db::ScanTableInfo Lookup(const std::string& table_name) const override;

 private:
  struct CatalogEntry {
    uint32_t id = 0;
    db::Schema schema;
    size_t num_rows = 0;
  };

  ShardClusterOptions options_;
  std::vector<std::unique_ptr<db::Database>> dbs_;
  std::vector<std::unique_ptr<serve::QueryService>> services_;
  std::unique_ptr<db::StorageManager> replay_storage_;
  /// Guards the replay (per-query atomic) so concurrent Execute() calls
  /// never interleave their logical-I/O sequences.
  std::mutex replay_mu_;
  /// Global-layout snapshot per table (std::map nodes are stable, so
  /// Lookup can hand out schema pointers).
  std::map<std::string, CatalogEntry> catalog_;
  uint32_t next_table_id_ = 0;
};

}  // namespace shard
}  // namespace perfeval

#endif  // PERFEVAL_SHARD_CLUSTER_H_
