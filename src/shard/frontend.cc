#include "shard/frontend.h"

#include "workload/tpch_queries.h"

namespace perfeval {
namespace shard {

serve::QueryService::ExecutorFn MakeClusterExecutor(ShardCluster* cluster) {
  return [cluster](const serve::Request& request, db::ExecMode mode,
                   db::SinkKind /*sink*/) -> db::QueryResult {
    db::PlanPtr plan =
        request.plan != nullptr
            ? request.plan
            : workload::GetTpchQuery(request.query)
                  .Build(cluster->shard_db(0));
    return cluster->Execute(plan, mode).result;
  };
}

FrontEnd::FrontEnd(ShardCluster* cluster, serve::ServiceOptions options)
    : service_(std::make_unique<serve::QueryService>(
          MakeClusterExecutor(cluster), std::move(options))) {}

}  // namespace shard
}  // namespace perfeval
