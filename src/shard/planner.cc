#include "shard/planner.h"

#include <utility>

#include "common/check.h"

namespace perfeval {
namespace shard {
namespace {

/// Aliasing handle to a node inside `owner`'s tree: shares ownership of
/// the whole tree while pointing at the subtree. Fragments and rebuilt
/// residual nodes hold these, so the original plan outlives both.
db::PlanPtr Alias(const db::PlanPtr& owner, const db::PlanNode* node) {
  return db::PlanPtr(owner, node);
}

/// Output schema of one node given its children's schemas — mirrors what
/// each operator's Execute produces (scans return the FULL table schema;
/// selections don't reshape; joins concatenate left then right).
db::Schema OutputSchema(const db::PlanSpec& spec,
                        const std::vector<const SiteAnnotation*>& children,
                        const db::Database& catalog) {
  switch (spec.kind) {
    case db::PlanKind::kScan:
    case db::PlanKind::kFilterScan:
      return catalog.GetTable(spec.table_name).schema();
    case db::PlanKind::kFilter:
    case db::PlanKind::kSort:
    case db::PlanKind::kLimit:
    case db::PlanKind::kTopN:
      PERFEVAL_CHECK_EQ(children.size(), 1u);
      return children[0]->schema;
    case db::PlanKind::kProject: {
      PERFEVAL_CHECK_EQ(children.size(), 1u);
      std::vector<db::ColumnSpec> cols;
      for (size_t i = 0; i < spec.exprs.size(); ++i) {
        cols.push_back(
            {spec.names[i], spec.exprs[i]->ResultType(children[0]->schema)});
      }
      return db::Schema(std::move(cols));
    }
    case db::PlanKind::kHashJoin:
    case db::PlanKind::kMergeJoin: {
      PERFEVAL_CHECK_EQ(children.size(), 2u);
      std::vector<db::ColumnSpec> cols = children[0]->schema.columns();
      for (const db::ColumnSpec& c : children[1]->schema.columns()) {
        cols.push_back(c);
      }
      return db::Schema(std::move(cols));
    }
    case db::PlanKind::kAggregate: {
      PERFEVAL_CHECK_EQ(children.size(), 1u);
      std::vector<db::ColumnSpec> cols;
      for (const std::string& g : spec.group_by) {
        cols.push_back(children[0]->schema.column(
            children[0]->schema.MustIndexOf(g)));
      }
      for (const db::AggSpec& agg : spec.aggregates) {
        cols.push_back(
            {agg.output_name, db::AggOutputType(agg, children[0]->schema)});
      }
      return db::Schema(std::move(cols));
    }
  }
  PERFEVAL_CHECK(false) << "unhandled plan kind";
  return db::Schema();
}

/// The co-location test for a P⨝P equi-join: some join-key pair must carry
/// the same partition domain on both sides — equal key values then hash to
/// the same shard, so every match is shard-local.
bool JoinColocated(const db::PlanSpec& spec, const SiteAnnotation& left,
                   const SiteAnnotation& right) {
  for (size_t i = 0; i < spec.left_keys.size(); ++i) {
    int li = left.schema.IndexOf(spec.left_keys[i]);
    int ri = right.schema.IndexOf(spec.right_keys[i]);
    if (li < 0 || ri < 0) {
      continue;
    }
    auto ld = left.key_domains.find(static_cast<size_t>(li));
    auto rd = right.key_domains.find(static_cast<size_t>(ri));
    if (ld != left.key_domains.end() && rd != right.key_domains.end() &&
        ld->second == rd->second) {
      return true;
    }
  }
  return false;
}

void AnnotateRecursive(const db::PlanPtr& owner, const db::PlanNode* node,
                       const PartitionScheme& scheme,
                       const db::Database& catalog,
                       std::map<const db::PlanNode*, SiteAnnotation>* out) {
  std::vector<const db::PlanNode*> children = node->Children();
  std::vector<const SiteAnnotation*> child_annots;
  for (const db::PlanNode* child : children) {
    AnnotateRecursive(owner, child, scheme, catalog, out);
    child_annots.push_back(&out->at(child));
  }
  db::PlanSpec spec = node->Spec();

  SiteAnnotation a;
  a.schema = OutputSchema(spec, child_annots, catalog);
  switch (spec.kind) {
    case db::PlanKind::kScan:
    case db::PlanKind::kFilterScan: {
      TablePartitionSpec placement = scheme.SpecFor(spec.table_name);
      if (placement.partitioned()) {
        a.site = Site::kPartitioned;
        a.key_domains[a.schema.MustIndexOf(placement.key_column)] =
            placement.domain;
      } else {
        a.site = Site::kReplicated;
      }
      break;
    }
    case db::PlanKind::kFilter:
      a.site = child_annots[0]->site;
      a.key_domains = child_annots[0]->key_domains;
      break;
    case db::PlanKind::kProject: {
      a.site = child_annots[0]->site;
      // Key domains survive projection only through identity column
      // references; computed expressions lose the key property.
      for (size_t i = 0; i < spec.exprs.size(); ++i) {
        size_t src = 0;
        if (spec.exprs[i]->AsColumnIndex(&src)) {
          auto it = child_annots[0]->key_domains.find(src);
          if (it != child_annots[0]->key_domains.end()) {
            a.key_domains[i] = it->second;
          }
        }
      }
      break;
    }
    case db::PlanKind::kHashJoin:
    case db::PlanKind::kMergeJoin: {
      const SiteAnnotation& left = *child_annots[0];
      const SiteAnnotation& right = *child_annots[1];
      size_t left_width = left.schema.num_columns();
      auto merge_keys = [&]() {
        a.key_domains = left.key_domains;
        for (const auto& [idx, domain] : right.key_domains) {
          a.key_domains[left_width + idx] = domain;
        }
      };
      if (left.site == Site::kCoordinator ||
          right.site == Site::kCoordinator) {
        a.site = Site::kCoordinator;
      } else if (left.site == Site::kReplicated &&
                 right.site == Site::kReplicated) {
        a.site = Site::kReplicated;
      } else if (left.site == Site::kPartitioned &&
                 right.site == Site::kPartitioned) {
        if (JoinColocated(spec, left, right)) {
          a.site = Site::kPartitioned;
          merge_keys();
        } else {
          a.site = Site::kCoordinator;  // keys land on different shards.
        }
      } else {
        // Partitioned ⨝ replicated: every shard holds the whole replicated
        // side, so the join runs shard-local and stays partitioned by the
        // partitioned side's keys.
        a.site = Site::kPartitioned;
        merge_keys();
      }
      break;
    }
    case db::PlanKind::kAggregate:
      // An aggregate's output is a single global relation: over a
      // replicated child any one shard can produce it; over a partitioned
      // child the groups span shards, so only the coordinator can (via the
      // partial/merge split, decided at fragment-extraction time — never
      // shard-locally, even when the group keys include the partition key,
      // so the merge-order discipline is uniform across queries).
      a.site = child_annots[0]->site == Site::kReplicated
                   ? Site::kReplicated
                   : Site::kCoordinator;
      break;
    case db::PlanKind::kSort:
    case db::PlanKind::kLimit:
    case db::PlanKind::kTopN:
      // Order- and prefix-sensitive: correct on one shard's complete view,
      // impossible on a partitioned slice.
      a.site = child_annots[0]->site == Site::kReplicated
                   ? Site::kReplicated
                   : Site::kCoordinator;
      break;
  }
  (*out)[node] = std::move(a);
}

/// Rebuilds one operator from its spec over new children — the residual's
/// nodes reuse the original ExprPtrs, which stay valid because fragment
/// tables are registered with exactly the schemas the original subtrees
/// produced.
db::PlanPtr Rebuild(const db::PlanSpec& spec,
                    std::vector<db::PlanPtr> children) {
  switch (spec.kind) {
    case db::PlanKind::kScan:
      return db::Scan(spec.table_name, spec.columns);
    case db::PlanKind::kFilterScan:
      return db::FilterScan(spec.table_name, spec.columns, spec.predicate);
    case db::PlanKind::kFilter:
      return db::Filter(std::move(children[0]), spec.predicate);
    case db::PlanKind::kProject:
      return db::Project(std::move(children[0]), spec.exprs, spec.names);
    case db::PlanKind::kHashJoin:
      if (spec.left_keys.size() == 2) {
        return db::HashJoin2(std::move(children[0]), std::move(children[1]),
                             spec.left_keys[0], spec.right_keys[0],
                             spec.left_keys[1], spec.right_keys[1]);
      }
      return db::HashJoin(std::move(children[0]), std::move(children[1]),
                          spec.left_keys[0], spec.right_keys[0]);
    case db::PlanKind::kMergeJoin:
      return db::MergeJoin(std::move(children[0]), std::move(children[1]),
                           spec.left_keys[0], spec.right_keys[0]);
    case db::PlanKind::kAggregate:
      return db::Aggregate(std::move(children[0]), spec.group_by,
                           spec.aggregates);
    case db::PlanKind::kSort:
      return db::Sort(std::move(children[0]), spec.sort_keys);
    case db::PlanKind::kLimit:
      return db::Limit(std::move(children[0]), spec.limit);
    case db::PlanKind::kTopN:
      return db::TopN(std::move(children[0]), spec.sort_keys, spec.limit);
  }
  PERFEVAL_CHECK(false) << "unhandled plan kind";
  return nullptr;
}

class FragmentExtractor {
 public:
  FragmentExtractor(const db::PlanPtr& root,
                    const std::map<const db::PlanNode*, SiteAnnotation>& annot)
      : root_(root), annot_(annot) {}

  DistributedPlan Run() {
    DistributedPlan out;
    out.original = root_;
    out.residual = Rewrite(root_.get(), &out);
    return out;
  }

 private:
  /// Cuts the maximal shard-executable subtree at `node` into a fragment
  /// and returns the residual's Scan leaf over its gathered table.
  db::PlanPtr MakeFragment(const db::PlanNode* node, DistributedPlan* out) {
    const SiteAnnotation& a = annot_.at(node);
    FragmentPlan frag;
    frag.plan = Alias(root_, node);
    frag.replicated_only = a.site == Site::kReplicated;
    frag.output_schema = a.schema;
    out->fragments.push_back(std::move(frag));
    return db::Scan(FragmentTableName(out->fragments.size() - 1));
  }

  db::PlanPtr Rewrite(const db::PlanNode* node, DistributedPlan* out) {
    const SiteAnnotation& a = annot_.at(node);
    if (a.site != Site::kCoordinator) {
      return MakeFragment(node, out);
    }
    db::PlanSpec spec = node->Spec();
    std::vector<const db::PlanNode*> children = node->Children();

    // The one non-structural rewrite: an aggregate over partitioned data
    // ships partial aggregates instead of raw rows whenever its functions
    // decompose. COUNT DISTINCT falls through to the generic path, which
    // gathers the child's rows and aggregates at the coordinator.
    if (spec.kind == db::PlanKind::kAggregate &&
        annot_.at(children[0]).site == Site::kPartitioned) {
      const SiteAnnotation& child = annot_.at(children[0]);
      db::AggSplit split;
      if (db::SplitAggregates(spec.group_by, spec.aggregates, child.schema,
                              &split)) {
        FragmentPlan frag;
        frag.plan = db::Aggregate(Alias(root_, children[0]), spec.group_by,
                                  split.partial);
        frag.replicated_only = false;
        frag.output_schema = a.schema;  // post-merge, post-finalize.
        frag.group_by = spec.group_by;
        frag.agg_split = std::move(split);
        out->fragments.push_back(std::move(frag));
        return db::Scan(FragmentTableName(out->fragments.size() - 1));
      }
    }

    std::vector<db::PlanPtr> rewritten;
    rewritten.reserve(children.size());
    for (const db::PlanNode* child : children) {
      rewritten.push_back(Rewrite(child, out));
    }
    return Rebuild(spec, std::move(rewritten));
  }

  const db::PlanPtr& root_;
  const std::map<const db::PlanNode*, SiteAnnotation>& annot_;
};

}  // namespace

const char* SiteName(Site site) {
  switch (site) {
    case Site::kReplicated:
      return "replicated";
    case Site::kPartitioned:
      return "partitioned";
    case Site::kCoordinator:
      return "coordinator";
  }
  return "?";
}

std::string FragmentTableName(size_t k) {
  return "__frag" + std::to_string(k);
}

std::map<const db::PlanNode*, SiteAnnotation> AnnotateSites(
    const db::PlanPtr& plan, const PartitionScheme& scheme,
    const db::Database& catalog) {
  PERFEVAL_CHECK(plan != nullptr);
  std::map<const db::PlanNode*, SiteAnnotation> out;
  AnnotateRecursive(plan, plan.get(), scheme, catalog, &out);
  return out;
}

DistributedPlan PlanDistributed(const db::PlanPtr& plan,
                                const PartitionScheme& scheme,
                                const db::Database& catalog) {
  std::map<const db::PlanNode*, SiteAnnotation> annot =
      AnnotateSites(plan, scheme, catalog);
  return FragmentExtractor(plan, annot).Run();
}

}  // namespace shard
}  // namespace perfeval
