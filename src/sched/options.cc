#include "sched/options.h"

namespace perfeval {
namespace sched {

core::ScheduleSpec Options::ToScheduleSpec() const {
  core::ScheduleSpec spec;
  spec.jobs = jobs < 1 ? 1 : jobs;
  spec.order = order;
  spec.isolation = isolation;
  spec.seed = seed;
  return spec;
}

Result<core::RunOrder> ParseRunOrder(const std::string& text) {
  if (text == "design") {
    return core::RunOrder::kDesignOrder;
  }
  if (text == "randomized") {
    return core::RunOrder::kRandomized;
  }
  if (text == "interleaved") {
    return core::RunOrder::kInterleaved;
  }
  return Status::InvalidArgument(
      "unknown run order '" + text +
      "' (expected design|randomized|interleaved)");
}

Result<core::IsolationPolicy> ParseIsolationPolicy(const std::string& text) {
  if (text == "concurrent") {
    return core::IsolationPolicy::kConcurrent;
  }
  if (text == "exclusive") {
    return core::IsolationPolicy::kExclusive;
  }
  return Status::InvalidArgument("unknown isolation policy '" + text +
                                 "' (expected concurrent|exclusive)");
}

}  // namespace sched
}  // namespace perfeval
