#ifndef PERFEVAL_SCHED_OPTIONS_H_
#define PERFEVAL_SCHED_OPTIONS_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/result.h"
#include "core/run_protocol.h"

namespace perfeval {
namespace sched {

/// Configuration of a Scheduler. The (jobs, order, isolation, seed)
/// quadruple is the protocol-visible part (core::ScheduleSpec); the rest is
/// identity and observability.
struct Options {
  int jobs = 1;  ///< worker threads; values < 1 are clamped to 1.
  core::RunOrder order = core::RunOrder::kDesignOrder;
  core::IsolationPolicy isolation = core::IsolationPolicy::kExclusive;
  uint64_t seed = 0;  ///< shuffle seed for core::RunOrder::kRandomized.

  /// Hashed into every trial's RNG seed (see sched::TrialSeed), so distinct
  /// experiments draw from distinct streams.
  std::string experiment_id;

  /// When true, a per-trial progress line (completed/total and a
  /// running-mean ETA) is printed to `progress_stream` (default stderr) —
  /// long screenings stay observable.
  bool progress = false;
  std::FILE* progress_stream = nullptr;

  /// The protocol-visible schedule settings, for RunProtocol::Describe().
  core::ScheduleSpec ToScheduleSpec() const;
};

/// Parses a RunOrder name as accepted on bench command lines
/// ("design" | "randomized" | "interleaved").
Result<core::RunOrder> ParseRunOrder(const std::string& text);

/// Parses an IsolationPolicy name ("concurrent" | "exclusive").
Result<core::IsolationPolicy> ParseIsolationPolicy(const std::string& text);

}  // namespace sched
}  // namespace perfeval

#endif  // PERFEVAL_SCHED_OPTIONS_H_
