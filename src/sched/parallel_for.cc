#include "sched/parallel_for.h"

#include <algorithm>
#include <atomic>

#include "sched/worker_pool.h"

namespace perfeval {
namespace sched {

void ParallelFor(int threads, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (threads <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  int workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(threads), count));
  WorkerPool pool(workers);
  for (int w = 0; w < workers; ++w) {
    pool.Submit([&next, count, &fn] {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  pool.Drain();
}

}  // namespace sched
}  // namespace perfeval
