#include "sched/parallel_for.h"

#include <time.h>

#include <algorithm>
#include <atomic>

#include "sched/worker_pool.h"

namespace perfeval {
namespace sched {
namespace {

/// CPU time consumed by the calling thread. Worker busy times are measured
/// with this clock so that on an oversubscribed host (more workers than
/// cores) a worker is not charged for the time it sat descheduled.
int64_t ThreadCpuNs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
    return 0;
  }
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

/// The shared claim counter on its own cache line: the workers hammer it
/// with fetch_add, and without padding it can share a line with caller
/// stack state that the coordinator keeps reading.
struct alignas(64) PaddedCounter {
  std::atomic<size_t> value{0};
};

}  // namespace

void ParallelFor(int threads, size_t count,
                 const std::function<void(size_t)>& fn,
                 ParallelForStats* stats) {
  if (threads <= 1 || count <= 1) {
    if (stats != nullptr) {
      stats->workers.assign(1, ParallelForStats::WorkerStats());
      stats->workers_spawned = 1;
      int64_t start = ThreadCpuNs();
      for (size_t i = 0; i < count; ++i) {
        fn(i);
      }
      stats->workers[0].claimed = count;
      stats->workers[0].busy_ns = ThreadCpuNs() - start;
      return;
    }
    for (size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  PaddedCounter next;
  int workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(threads), count));
  if (stats != nullptr) {
    stats->workers.assign(static_cast<size_t>(workers),
                          ParallelForStats::WorkerStats());
    stats->workers_spawned = workers;
  }
  WorkerPool pool(workers);
  for (int w = 0; w < workers; ++w) {
    ParallelForStats::WorkerStats* slot =
        stats != nullptr ? &stats->workers[static_cast<size_t>(w)] : nullptr;
    pool.Submit([&next, count, &fn, slot] {
      int64_t start = slot != nullptr ? ThreadCpuNs() : 0;
      size_t claimed = 0;
      for (size_t i = next.value.fetch_add(1, std::memory_order_relaxed);
           i < count;
           i = next.value.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
        ++claimed;
      }
      if (slot != nullptr) {
        slot->claimed = claimed;
        slot->busy_ns = ThreadCpuNs() - start;
      }
    });
  }
  pool.Drain();
}

}  // namespace sched
}  // namespace perfeval
