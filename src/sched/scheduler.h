#ifndef PERFEVAL_SCHED_SCHEDULER_H_
#define PERFEVAL_SCHED_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/runner.h"
#include "doe/design.h"
#include "sched/options.h"

namespace perfeval {
namespace sched {

/// The execution order the scheduler will use for `trials`: a permutation
/// of [0, trials.size()). kDesignOrder is the identity, kRandomized a
/// Fisher–Yates shuffle fully determined by `seed` (Kalibera & Jones's
/// recommended assignment procedure), kInterleaved a round-robin over
/// design points so one point's replications never cluster in time.
/// Exposed for tests and for documenting a schedule before running it.
std::vector<size_t> ExecutionOrder(const std::vector<core::TrialSpec>& trials,
                                   core::RunOrder order, uint64_t seed);

/// Parallel experiment scheduler: executes the (design point, replication)
/// trials of an experiment on a fixed-size worker pool while *provably*
/// preserving result determinism:
///
///  - every trial carries its own RNG seed, a pure function of
///    (experiment id, point index, replication index);
///  - results are reassembled into design order before any aggregation,
///    confidence interval or outlier bookkeeping happens;
///
/// so `jobs=1` and `jobs=N` produce bit-identical ExperimentResults under
/// every run order. The isolation policy decides whether trials may share
/// the machine: kConcurrent fans simulation-bound trials (virtual-time
/// responses — hwsim, netsim, the simulated disk) across all workers, while
/// kExclusive serializes timing-sensitive trials on a single slot.
class Scheduler : public core::TrialExecutor {
 public:
  explicit Scheduler(Options options);

  const Options& options() const { return options_; }

  /// Worker threads the pool will actually use (jobs clamped to >= 1, and
  /// to 1 under IsolationPolicy::kExclusive).
  int effective_jobs() const;

  /// Runs `design` under `protocol` on the pool and reassembles the
  /// results into design order. The protocol's ScheduleSpec is overwritten
  /// from the scheduler's options so the result's protocol description
  /// documents the full schedule. A throwing or failing trial turns into a
  /// non-OK Status (the remaining trials still run).
  Result<core::ExperimentResult> Run(const doe::Design& design,
                                     const core::RunProtocol& protocol,
                                     core::ResponseMetric metric,
                                     const core::TrialFunction& run);

  /// Convenience overload for run functions that ignore the trial seed.
  Result<core::ExperimentResult> Run(const doe::Design& design,
                                     const core::RunProtocol& protocol,
                                     core::ResponseMetric metric,
                                     const core::RunFunction& run);

  /// core::TrialExecutor implementation — the low-level entry point used
  /// by core::ExperimentRunner's scheduler-backed path.
  Status ExecuteTrials(
      const std::vector<core::TrialSpec>& trials,
      const std::function<core::Measurement(const core::TrialSpec&)>&
          run_trial,
      const std::function<void(const core::TrialSpec&,
                               const core::Measurement&)>& record) override;

 private:
  Options options_;
};

}  // namespace sched
}  // namespace perfeval

#endif  // PERFEVAL_SCHED_SCHEDULER_H_
