#include "sched/seed.h"

#include "common/random.h"

namespace perfeval {
namespace sched {

uint64_t HashExperimentId(const std::string& experiment_id) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  for (char c : experiment_id) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;  // FNV prime.
  }
  return hash;
}

uint64_t TrialSeed(uint64_t experiment_hash, size_t point_index,
                   int replication) {
  return MixSeed(experiment_hash, point_index,
                 static_cast<uint64_t>(replication));
}

}  // namespace sched
}  // namespace perfeval
