#include "sched/work_queue.h"

#include "common/check.h"

namespace perfeval {
namespace sched {

void WorkQueue::Push(Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PERFEVAL_CHECK(!closed_) << "Push on a closed WorkQueue";
    jobs_.push_back(std::move(job));
  }
  ready_.notify_one();
}

bool WorkQueue::Pop(Job* job) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) {
    return false;
  }
  *job = std::move(jobs_.front());
  jobs_.pop_front();
  return true;
}

void WorkQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

}  // namespace sched
}  // namespace perfeval
