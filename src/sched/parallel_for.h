#ifndef PERFEVAL_SCHED_PARALLEL_FOR_H_
#define PERFEVAL_SCHED_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

namespace perfeval {
namespace sched {

/// Morsel-driven parallel loop: `threads` workers claim indexes [0, count)
/// from a shared atomic counter and invoke `fn(index)` — the dispatch
/// discipline of morsel-driven query execution, reusing the sched worker
/// pool. Claim order is nondeterministic, so callers that need
/// deterministic output must keep per-index ("per-morsel") state and reduce
/// it in index order after the call returns; `fn` itself must be safe to
/// run concurrently for distinct indexes.
///
/// Runs inline on the calling thread when `threads` <= 1 or `count` <= 1,
/// so a threads knob can be wired through unconditionally. All indexes
/// have completed when the call returns.
void ParallelFor(int threads, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace sched
}  // namespace perfeval

#endif  // PERFEVAL_SCHED_PARALLEL_FOR_H_
