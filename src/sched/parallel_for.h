#ifndef PERFEVAL_SCHED_PARALLEL_FOR_H_
#define PERFEVAL_SCHED_PARALLEL_FOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace perfeval {
namespace sched {

/// Per-run accounting of one ParallelFor call, filled when the caller
/// passes a stats object. One slot per worker, each padded to its own
/// cache line — a worker bumping its claim counter must not invalidate a
/// neighbour's line (the same false-sharing hazard the shared claim
/// counter itself is padded against).
struct ParallelForStats {
  struct alignas(64) WorkerStats {
    /// Indexes this worker claimed and ran.
    size_t claimed = 0;
    /// CPU time this worker's thread spent inside its claim loop
    /// (CLOCK_THREAD_CPUTIME_ID). On a host with fewer cores than
    /// workers the per-worker CPU times overlap-free sum to the real
    /// compute; their maximum is the region's critical path on ideal
    /// parallel hardware.
    int64_t busy_ns = 0;
  };

  std::vector<WorkerStats> workers;
  /// Workers actually spawned: min(threads, count), or 1 for the inline
  /// serial path.
  int workers_spawned = 0;

  size_t TotalClaimed() const {
    size_t total = 0;
    for (const WorkerStats& w : workers) {
      total += w.claimed;
    }
    return total;
  }
  int64_t MaxBusyNs() const {
    int64_t max_ns = 0;
    for (const WorkerStats& w : workers) {
      max_ns = w.busy_ns > max_ns ? w.busy_ns : max_ns;
    }
    return max_ns;
  }
};

/// Morsel-driven parallel loop: `threads` workers claim indexes [0, count)
/// from a shared atomic counter and invoke `fn(index)` — the dispatch
/// discipline of morsel-driven query execution, reusing the sched worker
/// pool. Claim order is nondeterministic, so callers that need
/// deterministic output must keep per-index ("per-morsel") state and reduce
/// it in index order after the call returns; `fn` itself must be safe to
/// run concurrently for distinct indexes.
///
/// Runs inline on the calling thread when `threads` <= 1 or `count` <= 1,
/// so a threads knob can be wired through unconditionally. All indexes
/// have completed when the call returns.
///
/// When `stats` is non-null it is overwritten with this run's per-worker
/// claim counts and busy times; the slots are written only by their own
/// worker and must not be read until the call returns.
void ParallelFor(int threads, size_t count,
                 const std::function<void(size_t)>& fn,
                 ParallelForStats* stats = nullptr);

}  // namespace sched
}  // namespace perfeval

#endif  // PERFEVAL_SCHED_PARALLEL_FOR_H_
