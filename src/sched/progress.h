#ifndef PERFEVAL_SCHED_PROGRESS_H_
#define PERFEVAL_SCHED_PROGRESS_H_

#include <chrono>
#include <cstdio>
#include <mutex>

#include "core/runner.h"

namespace perfeval {
namespace sched {

/// Thread-safe per-trial progress reporting: completed/total plus an ETA
/// extrapolated from the running mean trial duration. Progress lines go to
/// a stream (stderr by default), never into results — observability must
/// not perturb what is being measured (paper, slides 23–26: output channels
/// have a cost; keep them off the measured path).
class ProgressMeter {
 public:
  /// Reporting is disabled entirely when `enabled` is false; Complete()
  /// then only counts.
  ProgressMeter(size_t total_trials, bool enabled, std::FILE* stream);

  /// Records one finished trial and (when enabled) prints its line.
  void Complete(const core::TrialSpec& spec);

  size_t completed() const;

 private:
  const size_t total_;
  const bool enabled_;
  std::FILE* const stream_;
  mutable std::mutex mu_;
  size_t completed_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sched
}  // namespace perfeval

#endif  // PERFEVAL_SCHED_PROGRESS_H_
