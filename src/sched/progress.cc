#include "sched/progress.h"

namespace perfeval {
namespace sched {

ProgressMeter::ProgressMeter(size_t total_trials, bool enabled,
                             std::FILE* stream)
    : total_(total_trials),
      enabled_(enabled),
      stream_(stream != nullptr ? stream : stderr),
      start_(std::chrono::steady_clock::now()) {}

void ProgressMeter::Complete(const core::TrialSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  if (!enabled_) {
    return;
  }
  double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  // Running mean trial time — with workers in flight it is an optimistic
  // per-slot estimate, which is what an ETA wants.
  double eta_s = completed_ > 0 && total_ > completed_
                     ? elapsed_s / static_cast<double>(completed_) *
                           static_cast<double>(total_ - completed_)
                     : 0.0;
  std::fprintf(stream_,
               "[sched] %zu/%zu trials done (point %zu rep %d), eta %.1fs\n",
               completed_, total_, spec.point_index, spec.replication,
               eta_s);
  std::fflush(stream_);
}

size_t ProgressMeter::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

}  // namespace sched
}  // namespace perfeval
