#include "sched/worker_pool.h"

namespace perfeval {
namespace sched {

WorkerPool::WorkerPool(int num_workers) {
  if (num_workers < 1) {
    num_workers = 1;
  }
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] {
      WorkQueue::Job job;
      while (queue_.Pop(&job)) {
        job();
      }
    });
  }
}

WorkerPool::~WorkerPool() { Drain(); }

void WorkerPool::Submit(WorkQueue::Job job) { queue_.Push(std::move(job)); }

void WorkerPool::Drain() {
  if (drained_) {
    return;
  }
  drained_ = true;
  queue_.Close();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

}  // namespace sched
}  // namespace perfeval
