#ifndef PERFEVAL_SCHED_SEED_H_
#define PERFEVAL_SCHED_SEED_H_

#include <cstdint>
#include <string>

namespace perfeval {
namespace sched {

/// Stable 64-bit hash of an experiment id (FNV-1a). Used as the base of
/// every trial seed so two experiments never share RNG streams even at the
/// same (point, replication) coordinates.
uint64_t HashExperimentId(const std::string& experiment_id);

/// The deterministic seed of trial (point_index, replication) of the
/// experiment with base hash `experiment_hash`: a pure function of its
/// inputs, independent of worker count, execution order and wall-clock —
/// the repeatability invariant the scheduler is built around.
uint64_t TrialSeed(uint64_t experiment_hash, size_t point_index,
                   int replication);

}  // namespace sched
}  // namespace perfeval

#endif  // PERFEVAL_SCHED_SEED_H_
