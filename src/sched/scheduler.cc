#include "sched/scheduler.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <numeric>
#include <string>
#include <utility>

#include "common/random.h"
#include "common/string_util.h"
#include "sched/progress.h"
#include "sched/seed.h"
#include "sched/worker_pool.h"

namespace perfeval {
namespace sched {

std::vector<size_t> ExecutionOrder(const std::vector<core::TrialSpec>& trials,
                                   core::RunOrder order, uint64_t seed) {
  std::vector<size_t> indices(trials.size());
  std::iota(indices.begin(), indices.end(), size_t{0});
  switch (order) {
    case core::RunOrder::kDesignOrder:
      break;
    case core::RunOrder::kRandomized: {
      // Fisher–Yates with the library RNG: the permutation is a pure
      // function of the seed, so a documented (order, seed) pair makes the
      // assignment procedure repeatable.
      Pcg32 rng(seed, /*stream=*/0x5eedc0de);
      for (size_t i = indices.size(); i > 1; --i) {
        size_t j = rng.NextBounded(static_cast<uint32_t>(i));
        std::swap(indices[i - 1], indices[j]);
      }
      break;
    }
    case core::RunOrder::kInterleaved:
      // Round-robin over points: all rep-0 trials in point order, then all
      // rep-1 trials, ... so replications of one point spread across the
      // experiment's time span instead of clustering.
      std::stable_sort(indices.begin(), indices.end(),
                       [&trials](size_t a, size_t b) {
                         if (trials[a].replication != trials[b].replication) {
                           return trials[a].replication <
                                  trials[b].replication;
                         }
                         return trials[a].point_index < trials[b].point_index;
                       });
      break;
  }
  return indices;
}

Scheduler::Scheduler(Options options) : options_(std::move(options)) {}

int Scheduler::effective_jobs() const {
  if (options_.isolation == core::IsolationPolicy::kExclusive) {
    return 1;  // Timing-sensitive trials own the machine one at a time.
  }
  return options_.jobs < 1 ? 1 : options_.jobs;
}

Result<core::ExperimentResult> Scheduler::Run(
    const doe::Design& design, const core::RunProtocol& protocol,
    core::ResponseMetric metric, const core::TrialFunction& run) {
  core::RunProtocol scheduled = protocol;
  scheduled.schedule = options_.ToScheduleSpec();
  core::ExperimentRunner runner(scheduled, metric);
  runner.set_trial_seed_base(HashExperimentId(options_.experiment_id));
  return runner.Run(design, run, *this);
}

Result<core::ExperimentResult> Scheduler::Run(
    const doe::Design& design, const core::RunProtocol& protocol,
    core::ResponseMetric metric, const core::RunFunction& run) {
  return Run(design, protocol, metric,
             [&run](const doe::DesignPoint& point, const core::TrialSpec&) {
               return run(point);
             });
}

Status Scheduler::ExecuteTrials(
    const std::vector<core::TrialSpec>& trials,
    const std::function<core::Measurement(const core::TrialSpec&)>& run_trial,
    const std::function<void(const core::TrialSpec&,
                             const core::Measurement&)>& record) {
  const std::vector<size_t> order =
      ExecutionOrder(trials, options_.order, options_.seed);
  ProgressMeter progress(trials.size(), options_.progress,
                         options_.progress_stream);
  std::mutex error_mu;
  Status first_error;  // First failure wins; later trials still run.
  WorkerPool pool(effective_jobs());
  for (size_t index : order) {
    const core::TrialSpec& spec = trials[index];
    pool.Submit([&, spec] {
      // The library itself is exception-free, but user run functions may
      // throw; a failing trial must not take down the pool or the
      // remaining trials (its design point simply has no valid result, so
      // the whole experiment reports the failure).
      try {
        core::Measurement m = run_trial(spec);
        record(spec, m);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) {
          first_error = Status::Internal(StrFormat(
              "trial (point %zu, rep %d) threw: %s", spec.point_index,
              spec.replication, e.what()));
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) {
          first_error = Status::Internal(
              StrFormat("trial (point %zu, rep %d) threw a non-exception",
                        spec.point_index, spec.replication));
        }
      }
      progress.Complete(spec);
    });
  }
  pool.Drain();
  return first_error;
}

}  // namespace sched
}  // namespace perfeval
