#ifndef PERFEVAL_SCHED_WORK_QUEUE_H_
#define PERFEVAL_SCHED_WORK_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>

namespace perfeval {
namespace sched {

/// A FIFO of jobs shared between a producer and the worker threads —
/// classic mutex + condition-variable hand-off, no external dependencies.
/// FIFO order is load-bearing: the scheduler encodes the run-order policy
/// (design / randomized / interleaved) in the order it pushes jobs, and the
/// queue must dispatch them in exactly that order.
class WorkQueue {
 public:
  using Job = std::function<void()>;

  /// Enqueues a job. Must not be called after Close().
  void Push(Job job);

  /// Blocks until a job is available or the queue is closed and drained.
  /// Returns false — with `*job` untouched — only when no job will ever
  /// arrive again; worker threads use that as their exit signal.
  bool Pop(Job* job);

  /// Signals that no further Push will happen; wakes all waiting workers.
  void Close();

 private:
  std::mutex mu_;
  std::condition_variable ready_;
  std::deque<Job> jobs_;
  bool closed_ = false;
};

}  // namespace sched
}  // namespace perfeval

#endif  // PERFEVAL_SCHED_WORK_QUEUE_H_
