#ifndef PERFEVAL_SCHED_WORKER_POOL_H_
#define PERFEVAL_SCHED_WORKER_POOL_H_

#include <thread>
#include <vector>

#include "sched/work_queue.h"

namespace perfeval {
namespace sched {

/// A fixed-size pool of std::thread workers draining one WorkQueue. One
/// batch per pool: Submit the jobs, then Drain() once to run them all to
/// completion. Jobs must not throw — the scheduler wraps trial execution in
/// its own failure capture before submitting.
class WorkerPool {
 public:
  /// Spawns `num_workers` (clamped to >= 1) threads immediately.
  explicit WorkerPool(int num_workers);

  /// Joins the workers (calls Drain() if the caller has not).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void Submit(WorkQueue::Job job);

  /// Closes the queue and joins all workers; every submitted job has
  /// finished when this returns. The pool is unusable afterwards.
  void Drain();

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  WorkQueue queue_;
  std::vector<std::thread> workers_;
  bool drained_ = false;
};

}  // namespace sched
}  // namespace perfeval

#endif  // PERFEVAL_SCHED_WORKER_POOL_H_
