#ifndef PERFEVAL_SQL_TOKEN_H_
#define PERFEVAL_SQL_TOKEN_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace perfeval {
namespace sql {

/// Token kinds of the SQL subset.
enum class TokenKind {
  kIdentifier,   ///< table/column names (case-preserving).
  kKeyword,      ///< SELECT, FROM, ... (normalized to upper case).
  kInteger,      ///< 42
  kDouble,       ///< 3.14
  kString,       ///< 'text' (single quotes, '' escapes a quote)
  kSymbol,       ///< ( ) , * + - / = < > <= >= <> . ;
  kEnd,          ///< end of input.
};

const char* TokenKindName(TokenKind kind);

/// One lexed token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< keyword/symbol text, identifier, literal body.
  size_t offset = 0;  ///< byte offset in the source string.

  bool IsKeyword(const std::string& keyword) const {
    return kind == TokenKind::kKeyword && text == keyword;
  }
  bool IsSymbol(const std::string& symbol) const {
    return kind == TokenKind::kSymbol && text == symbol;
  }
};

/// Lexes `source` into tokens (a kEnd token is appended). SQL keywords are
/// recognized case-insensitively and normalized to upper case; anything
/// word-like that is not a keyword is an identifier (lower-cased, since the
/// engine's column names are lower case).
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace sql
}  // namespace perfeval

#endif  // PERFEVAL_SQL_TOKEN_H_
