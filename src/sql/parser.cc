#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/token.h"

namespace perfeval {
namespace sql {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseAnyStatement() {
    Statement stmt;
    if (Current().IsKeyword("INSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      PERFEVAL_ASSIGN_OR_RETURN(stmt.insert, ParseInsertStatement());
      return stmt;
    }
    if (Current().IsKeyword("DELETE")) {
      stmt.kind = Statement::Kind::kDelete;
      PERFEVAL_ASSIGN_OR_RETURN(stmt.delete_from, ParseDeleteStatement());
      return stmt;
    }
    stmt.kind = Statement::Kind::kSelect;
    PERFEVAL_ASSIGN_OR_RETURN(stmt.select, ParseSelectStatement());
    return stmt;
  }

  Result<InsertStatement> ParseInsertStatement() {
    InsertStatement stmt;
    PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    if (Current().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected table name after INSERT INTO");
    }
    stmt.table = Current().text;
    Advance();
    PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    for (;;) {
      if (!Current().IsSymbol("(")) {
        return ErrorHere("expected ( to open a VALUES row");
      }
      Advance();
      std::vector<AstExprPtr> row;
      for (;;) {
        PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr value, ParseValueLiteral());
        row.push_back(std::move(value));
        if (Current().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      if (!Current().IsSymbol(")")) {
        return ErrorHere("expected ) to close a VALUES row");
      }
      Advance();
      stmt.rows.push_back(std::move(row));
      if (Current().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    PERFEVAL_RETURN_IF_ERROR(ExpectStatementEnd());
    return stmt;
  }

  Result<DeleteStatement> ParseDeleteStatement() {
    DeleteStatement stmt;
    PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Current().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected table name after DELETE FROM");
    }
    stmt.table = Current().text;
    Advance();
    if (Current().IsKeyword("WHERE")) {
      Advance();
      PERFEVAL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    PERFEVAL_RETURN_IF_ERROR(ExpectStatementEnd());
    return stmt;
  }

  /// VALUES entry: a literal, optionally sign-prefixed when numeric, or
  /// NULL. Deliberately not ParseExpr: inserted values must be constants.
  Result<AstExprPtr> ParseValueLiteral() {
    const Token& token = Current();
    if (token.IsKeyword("NULL")) {
      Advance();
      return MakeNode(AstExprKind::kNullLit, token.offset);
    }
    bool negative = false;
    if (token.IsSymbol("-") || token.IsSymbol("+")) {
      negative = token.IsSymbol("-");
      Advance();
    }
    const Token& lit = Current();
    if (lit.kind == TokenKind::kInteger) {
      AstExprPtr node = MakeNode(AstExprKind::kIntLit, lit.offset);
      node->int_value = ParseInt64(lit.text).value_or(0);
      if (negative) {
        node->int_value = -node->int_value;
      }
      Advance();
      return node;
    }
    if (lit.kind == TokenKind::kDouble) {
      AstExprPtr node = MakeNode(AstExprKind::kDoubleLit, lit.offset);
      node->double_value = ParseDouble(lit.text).value_or(0.0);
      if (negative) {
        node->double_value = -node->double_value;
      }
      Advance();
      return node;
    }
    if (negative) {
      return ErrorHere("expected number after sign");
    }
    if (lit.kind == TokenKind::kString) {
      AstExprPtr node = MakeNode(AstExprKind::kStringLit, lit.offset);
      node->text = lit.text;
      Advance();
      return node;
    }
    if (lit.IsKeyword("DATE")) {
      Advance();
      if (Current().kind != TokenKind::kString) {
        return ErrorHere("expected 'YYYY-MM-DD' after DATE");
      }
      AstExprPtr node = MakeNode(AstExprKind::kDateLit, lit.offset);
      node->text = Current().text;
      Advance();
      return node;
    }
    return ErrorHere("expected literal value");
  }

  Status ExpectStatementEnd() {
    if (Current().IsSymbol(";")) {
      Advance();
    }
    if (Current().kind != TokenKind::kEnd) {
      return ErrorHere("unexpected trailing input");
    }
    return Status::OK();
  }

  Result<SelectStatement> ParseSelectStatement() {
    SelectStatement stmt;
    if (Current().IsKeyword("EXPLAIN")) {
      stmt.explain = true;
      Advance();
    }
    PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    // Select list.
    if (Current().IsSymbol("*")) {
      stmt.select_star = true;
      Advance();
    } else {
      for (;;) {
        SelectItem item;
        PERFEVAL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Current().IsKeyword("AS")) {
          Advance();
          if (Current().kind != TokenKind::kIdentifier) {
            return ErrorHere("expected alias after AS");
          }
          item.alias = Current().text;
          Advance();
        }
        stmt.items.push_back(std::move(item));
        if (!Current().IsSymbol(",")) {
          break;
        }
        Advance();
      }
    }

    PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Current().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected table name after FROM");
    }
    stmt.from_table = Current().text;
    Advance();

    while (Current().IsKeyword("JOIN") || Current().IsKeyword("INNER")) {
      if (Current().IsKeyword("INNER")) {
        Advance();
        if (!Current().IsKeyword("JOIN")) {
          return ErrorHere("expected JOIN after INNER");
        }
      }
      Advance();  // JOIN
      if (Current().kind != TokenKind::kIdentifier) {
        return ErrorHere("expected table name after JOIN");
      }
      JoinClause join;
      join.table = Current().text;
      Advance();
      PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("ON"));
      PERFEVAL_ASSIGN_OR_RETURN(join.condition, ParseExpr());
      stmt.joins.push_back(std::move(join));
    }

    if (Current().IsKeyword("WHERE")) {
      Advance();
      PERFEVAL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }

    if (Current().IsKeyword("GROUP")) {
      Advance();
      PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        if (Current().kind != TokenKind::kIdentifier) {
          return ErrorHere("expected column name in GROUP BY");
        }
        stmt.group_by.push_back(Current().text);
        Advance();
        if (!Current().IsSymbol(",")) {
          break;
        }
        Advance();
      }
    }

    if (Current().IsKeyword("HAVING")) {
      Advance();
      PERFEVAL_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }

    if (Current().IsKeyword("ORDER")) {
      Advance();
      PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        if (Current().kind != TokenKind::kIdentifier) {
          return ErrorHere("expected column name in ORDER BY");
        }
        OrderItem item;
        item.column = Current().text;
        Advance();
        if (Current().IsKeyword("ASC")) {
          Advance();
        } else if (Current().IsKeyword("DESC")) {
          item.ascending = false;
          Advance();
        }
        stmt.order_by.push_back(std::move(item));
        if (!Current().IsSymbol(",")) {
          break;
        }
        Advance();
      }
    }

    if (Current().IsKeyword("LIMIT")) {
      Advance();
      if (Current().kind != TokenKind::kInteger) {
        return ErrorHere("expected integer after LIMIT");
      }
      stmt.limit = static_cast<size_t>(
          ParseInt64(Current().text).value_or(0));
      Advance();
    }

    if (Current().IsSymbol(";")) {
      Advance();
    }
    if (Current().kind != TokenKind::kEnd) {
      return ErrorHere("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[position_]; }
  void Advance() {
    if (position_ + 1 < tokens_.size()) {
      ++position_;
    }
  }

  Status ErrorHere(const std::string& message) const {
    const Token& token = Current();
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu (near '%s')", message.c_str(),
                  token.offset, token.text.c_str()));
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!Current().IsKeyword(keyword)) {
      return ErrorHere("expected " + keyword);
    }
    Advance();
    return Status::OK();
  }

  static AstExprPtr MakeNode(AstExprKind kind, size_t offset) {
    auto node = std::make_shared<AstExpr>();
    node->kind = kind;
    node->offset = offset;
    return node;
  }

  // expr := or_expr
  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseAnd());
    while (Current().IsKeyword("OR")) {
      size_t offset = Current().offset;
      Advance();
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAnd());
      AstExprPtr node = MakeNode(AstExprKind::kBinary, offset);
      node->text = "OR";
      node->children = {lhs, rhs};
      lhs = node;
    }
    return lhs;
  }

  Result<AstExprPtr> ParseAnd() {
    PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseNot());
    while (Current().IsKeyword("AND")) {
      size_t offset = Current().offset;
      Advance();
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseNot());
      AstExprPtr node = MakeNode(AstExprKind::kBinary, offset);
      node->text = "AND";
      node->children = {lhs, rhs};
      lhs = node;
    }
    return lhs;
  }

  Result<AstExprPtr> ParseNot() {
    if (Current().IsKeyword("NOT")) {
      size_t offset = Current().offset;
      Advance();
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr operand, ParseNot());
      AstExprPtr node = MakeNode(AstExprKind::kNot, offset);
      node->children = {operand};
      return node;
    }
    return ParsePredicate();
  }

  Result<AstExprPtr> ParsePredicate() {
    PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseAdditive());
    // Optional NOT before LIKE/IN.
    bool negated = false;
    if (Current().IsKeyword("NOT")) {
      const Token& next = tokens_[position_ + 1];
      if (next.IsKeyword("LIKE") || next.IsKeyword("IN")) {
        negated = true;
        Advance();
      }
    }
    if (Current().IsKeyword("LIKE")) {
      size_t offset = Current().offset;
      Advance();
      if (Current().kind != TokenKind::kString) {
        return ErrorHere("expected string pattern after LIKE");
      }
      AstExprPtr node = MakeNode(AstExprKind::kLike, offset);
      node->text = Current().text;
      node->children = {lhs};
      Advance();
      return Negate(node, negated);
    }
    if (Current().IsKeyword("IN")) {
      size_t offset = Current().offset;
      Advance();
      if (!Current().IsSymbol("(")) {
        return ErrorHere("expected ( after IN");
      }
      Advance();
      AstExprPtr node = MakeNode(AstExprKind::kInList, offset);
      node->children = {lhs};
      for (;;) {
        if (Current().kind == TokenKind::kString) {
          node->string_list.push_back(Current().text);
        } else if (Current().kind == TokenKind::kInteger) {
          node->int_list.push_back(ParseInt64(Current().text).value_or(0));
        } else {
          return ErrorHere("expected string or integer literal in IN list");
        }
        Advance();
        if (Current().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      if (!node->string_list.empty() && !node->int_list.empty()) {
        return Status::InvalidArgument(StrFormat(
            "IN list at offset %zu mixes strings and integers", offset));
      }
      if (!Current().IsSymbol(")")) {
        return ErrorHere("expected ) after IN list");
      }
      Advance();
      return Negate(node, negated);
    }
    if (Current().IsKeyword("BETWEEN")) {
      size_t offset = Current().offset;
      Advance();
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr lo, ParseAdditive());
      PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("AND"));
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr hi, ParseAdditive());
      AstExprPtr node = MakeNode(AstExprKind::kBetween, offset);
      node->children = {lhs, lo, hi};
      return node;
    }
    static const char* kComparisons[] = {"=", "<>", "<=", ">=", "<", ">"};
    for (const char* op : kComparisons) {
      if (Current().IsSymbol(op)) {
        size_t offset = Current().offset;
        Advance();
        PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAdditive());
        AstExprPtr node = MakeNode(AstExprKind::kBinary, offset);
        node->text = op;
        node->children = {lhs, rhs};
        return node;
      }
    }
    return lhs;
  }

  Result<AstExprPtr> Negate(AstExprPtr node, bool negated) {
    if (!negated) {
      return node;
    }
    AstExprPtr wrapper = MakeNode(AstExprKind::kNot, node->offset);
    wrapper->children = {std::move(node)};
    return wrapper;
  }

  Result<AstExprPtr> ParseAdditive() {
    PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseTerm());
    while (Current().IsSymbol("+") || Current().IsSymbol("-")) {
      std::string op = Current().text;
      size_t offset = Current().offset;
      Advance();
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseTerm());
      AstExprPtr node = MakeNode(AstExprKind::kBinary, offset);
      node->text = op;
      node->children = {lhs, rhs};
      lhs = node;
    }
    return lhs;
  }

  Result<AstExprPtr> ParseTerm() {
    PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseFactor());
    while (Current().IsSymbol("*") || Current().IsSymbol("/")) {
      std::string op = Current().text;
      size_t offset = Current().offset;
      Advance();
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseFactor());
      AstExprPtr node = MakeNode(AstExprKind::kBinary, offset);
      node->text = op;
      node->children = {lhs, rhs};
      lhs = node;
    }
    return lhs;
  }

  Result<AstExprPtr> ParseFactor() {
    const Token& token = Current();
    if (token.IsSymbol("(")) {
      Advance();
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
      if (!Current().IsSymbol(")")) {
        return ErrorHere("expected )");
      }
      Advance();
      return inner;
    }
    if (token.kind == TokenKind::kInteger) {
      AstExprPtr node = MakeNode(AstExprKind::kIntLit, token.offset);
      node->int_value = ParseInt64(token.text).value_or(0);
      Advance();
      return node;
    }
    if (token.kind == TokenKind::kDouble) {
      AstExprPtr node = MakeNode(AstExprKind::kDoubleLit, token.offset);
      node->double_value = ParseDouble(token.text).value_or(0.0);
      Advance();
      return node;
    }
    if (token.kind == TokenKind::kString) {
      AstExprPtr node = MakeNode(AstExprKind::kStringLit, token.offset);
      node->text = token.text;
      Advance();
      return node;
    }
    if (token.IsKeyword("DATE")) {
      Advance();
      if (Current().kind != TokenKind::kString) {
        return ErrorHere("expected 'YYYY-MM-DD' after DATE");
      }
      AstExprPtr node = MakeNode(AstExprKind::kDateLit, token.offset);
      node->text = Current().text;
      Advance();
      return node;
    }
    if (token.IsKeyword("CASE")) {
      Advance();
      PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("WHEN"));
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr condition, ParseExpr());
      PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr then_expr, ParseExpr());
      PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("ELSE"));
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr else_expr, ParseExpr());
      PERFEVAL_RETURN_IF_ERROR(ExpectKeyword("END"));
      AstExprPtr node = MakeNode(AstExprKind::kCase, token.offset);
      node->children = {condition, then_expr, else_expr};
      return node;
    }
    // Aggregates.
    for (const char* agg : {"SUM", "AVG", "MIN", "MAX", "COUNT"}) {
      if (token.IsKeyword(agg)) {
        return ParseAggregate();
      }
    }
    if (token.kind == TokenKind::kIdentifier) {
      // Function call or column reference.
      if (tokens_[position_ + 1].IsSymbol("(")) {
        return ParseFunction();
      }
      AstExprPtr node = MakeNode(AstExprKind::kColumn, token.offset);
      node->text = token.text;
      Advance();
      return node;
    }
    return ErrorHere("expected expression");
  }

  Result<AstExprPtr> ParseAggregate() {
    const Token& name = Current();
    AstExprPtr node = MakeNode(AstExprKind::kAgg, name.offset);
    node->text = ToLower(name.text);
    Advance();
    if (!Current().IsSymbol("(")) {
      return ErrorHere("expected ( after aggregate function");
    }
    Advance();
    if (node->text == "count" && Current().IsSymbol("*")) {
      Advance();
    } else {
      if (Current().IsKeyword("DISTINCT")) {
        if (node->text != "count") {
          return ErrorHere("DISTINCT is only supported inside count()");
        }
        node->distinct = true;
        Advance();
      }
      PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
      node->children = {arg};
    }
    if (!Current().IsSymbol(")")) {
      return ErrorHere("expected ) after aggregate argument");
    }
    Advance();
    return node;
  }

  Result<AstExprPtr> ParseFunction() {
    const Token& name = Current();
    AstExprPtr node = MakeNode(AstExprKind::kFunc, name.offset);
    node->text = name.text;
    Advance();  // name
    Advance();  // (
    if (!Current().IsSymbol(")")) {
      for (;;) {
        PERFEVAL_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
        node->children.push_back(std::move(arg));
        if (Current().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (!Current().IsSymbol(")")) {
      return ErrorHere("expected ) after function arguments");
    }
    Advance();
    return node;
  }

  std::vector<Token> tokens_;
  size_t position_ = 0;
};

}  // namespace

Result<SelectStatement> Parse(const std::string& source) {
  PERFEVAL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseSelectStatement();
}

Result<Statement> ParseSql(const std::string& source) {
  PERFEVAL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseAnyStatement();
}

}  // namespace sql
}  // namespace perfeval
