#include "sql/planner.h"

#include <map>
#include <set>

#include "common/string_util.h"
#include "db/error.h"
#include "opt/optimizer.h"
#include "sql/parser.h"

namespace perfeval {
namespace sql {
namespace {

using db::Schema;

/// A plan under construction together with its output schema.
struct Bound {
  db::PlanPtr plan;
  Schema schema;
};

Status ErrorAt(const AstExpr& node, const std::string& message) {
  return Status::InvalidArgument(
      StrFormat("%s (at offset %zu)", message.c_str(), node.offset));
}

/// Collects every column name referenced under `node`.
void CollectColumns(const AstExprPtr& node, std::set<std::string>* out) {
  if (node == nullptr) {
    return;
  }
  if (node->kind == AstExprKind::kColumn) {
    out->insert(node->text);
  }
  for (const AstExprPtr& child : node->children) {
    CollectColumns(child, out);
  }
}

/// Collects kAgg nodes in evaluation order.
void CollectAggregates(const AstExprPtr& node,
                       std::vector<AstExprPtr>* out) {
  if (node == nullptr) {
    return;
  }
  if (node->kind == AstExprKind::kAgg) {
    out->push_back(node);
    return;  // aggregates do not nest.
  }
  for (const AstExprPtr& child : node->children) {
    CollectAggregates(child, out);
  }
}

/// Splits a predicate into its top-level AND conjuncts.
void SplitConjuncts(const AstExprPtr& node, std::vector<AstExprPtr>* out) {
  if (node == nullptr) {
    return;
  }
  if (node->kind == AstExprKind::kBinary && node->text == "AND") {
    SplitConjuncts(node->children[0], out);
    SplitConjuncts(node->children[1], out);
    return;
  }
  out->push_back(node);
}

AstExprPtr JoinConjuncts(const std::vector<AstExprPtr>& conjuncts) {
  AstExprPtr result;
  for (const AstExprPtr& conjunct : conjuncts) {
    if (!result) {
      result = conjunct;
      continue;
    }
    auto node = std::make_shared<AstExpr>();
    node->kind = AstExprKind::kBinary;
    node->text = "AND";
    node->offset = conjunct->offset;
    node->children = {result, conjunct};
    result = node;
  }
  return result;
}

/// Binds a scalar AST expression against `schema`. `agg_names` maps
/// aggregate nodes to output-column names in `schema` (empty for pre-
/// aggregation binding, where encountering an aggregate is an error).
Result<db::ExprPtr> BindScalar(
    const AstExprPtr& node, const Schema& schema,
    const std::map<const AstExpr*, std::string>& agg_names) {
  switch (node->kind) {
    case AstExprKind::kColumn: {
      if (schema.IndexOf(node->text) < 0) {
        return ErrorAt(*node, "unknown column '" + node->text + "'");
      }
      return db::Col(schema, node->text);
    }
    case AstExprKind::kIntLit:
      return db::LitInt(node->int_value);
    case AstExprKind::kDoubleLit:
      return db::LitDouble(node->double_value);
    case AstExprKind::kStringLit:
      return db::LitString(node->text);
    case AstExprKind::kDateLit: {
      int32_t days = 0;
      if (!db::ParseDate(node->text, &days)) {
        return ErrorAt(*node, "bad date literal '" + node->text + "'");
      }
      return db::LitDate(node->text);
    }
    case AstExprKind::kNullLit:
      return ErrorAt(*node, "NULL literal is only allowed in INSERT VALUES");
    case AstExprKind::kBinary: {
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr lhs, BindScalar(node->children[0], schema, agg_names));
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr rhs, BindScalar(node->children[1], schema, agg_names));
      const std::string& op = node->text;
      if (op == "AND") {
        return db::And(lhs, rhs);
      }
      if (op == "OR") {
        return db::Or(lhs, rhs);
      }
      if (op == "=") {
        return db::Eq(lhs, rhs);
      }
      if (op == "<>") {
        return db::Ne(lhs, rhs);
      }
      if (op == "<") {
        return db::Lt(lhs, rhs);
      }
      if (op == "<=") {
        return db::Le(lhs, rhs);
      }
      if (op == ">") {
        return db::Gt(lhs, rhs);
      }
      if (op == ">=") {
        return db::Ge(lhs, rhs);
      }
      if (op == "+") {
        return db::Add(lhs, rhs);
      }
      if (op == "-") {
        return db::Sub(lhs, rhs);
      }
      if (op == "*") {
        return db::Mul(lhs, rhs);
      }
      if (op == "/") {
        return db::Div(lhs, rhs);
      }
      return ErrorAt(*node, "unsupported operator '" + op + "'");
    }
    case AstExprKind::kNot: {
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr operand,
          BindScalar(node->children[0], schema, agg_names));
      return db::Not(operand);
    }
    case AstExprKind::kLike: {
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr operand,
          BindScalar(node->children[0], schema, agg_names));
      return db::Like(operand, node->text);
    }
    case AstExprKind::kInList: {
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr operand,
          BindScalar(node->children[0], schema, agg_names));
      if (!node->string_list.empty()) {
        return db::InStrings(operand, node->string_list);
      }
      return db::InInts(operand, node->int_list);
    }
    case AstExprKind::kBetween: {
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr operand,
          BindScalar(node->children[0], schema, agg_names));
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr lo, BindScalar(node->children[1], schema, agg_names));
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr hi, BindScalar(node->children[2], schema, agg_names));
      return db::And(db::Ge(operand, lo), db::Le(operand, hi));
    }
    case AstExprKind::kCase: {
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr condition,
          BindScalar(node->children[0], schema, agg_names));
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr then_expr,
          BindScalar(node->children[1], schema, agg_names));
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr else_expr,
          BindScalar(node->children[2], schema, agg_names));
      return db::If(condition, then_expr, else_expr);
    }
    case AstExprKind::kFunc: {
      if (node->text == "year") {
        if (node->children.size() != 1) {
          return ErrorAt(*node, "year() takes one argument");
        }
        PERFEVAL_ASSIGN_OR_RETURN(
            db::ExprPtr arg,
            BindScalar(node->children[0], schema, agg_names));
        return db::Year(arg);
      }
      if (node->text == "substr" || node->text == "substring") {
        if (node->children.size() != 3 ||
            node->children[1]->kind != AstExprKind::kIntLit ||
            node->children[2]->kind != AstExprKind::kIntLit) {
          return ErrorAt(*node,
                         "substr() takes (expr, int position, int length)");
        }
        PERFEVAL_ASSIGN_OR_RETURN(
            db::ExprPtr arg,
            BindScalar(node->children[0], schema, agg_names));
        return db::Substr(arg,
                          static_cast<size_t>(node->children[1]->int_value),
                          static_cast<size_t>(node->children[2]->int_value));
      }
      return ErrorAt(*node, "unknown function '" + node->text + "'");
    }
    case AstExprKind::kAgg: {
      auto it = agg_names.find(node.get());
      if (it == agg_names.end()) {
        return ErrorAt(*node,
                       "aggregate not allowed here (no GROUP BY context)");
      }
      return db::Col(schema, it->second);
    }
  }
  return ErrorAt(*node, "unsupported expression");
}

/// Default output name of a select item: alias, bare column name, or a
/// positional fallback.
std::string ItemName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) {
    return item.alias;
  }
  if (item.expr->kind == AstExprKind::kColumn) {
    return item.expr->text;
  }
  if (item.expr->kind == AstExprKind::kAgg) {
    return item.expr->text + "_" + std::to_string(index + 1);
  }
  return "expr_" + std::to_string(index + 1);
}

db::AggOp AggOpFor(const AstExpr& node) {
  if (node.text == "sum") {
    return db::AggOp::kSum;
  }
  if (node.text == "avg") {
    return db::AggOp::kAvg;
  }
  if (node.text == "min") {
    return db::AggOp::kMin;
  }
  if (node.text == "max") {
    return db::AggOp::kMax;
  }
  return node.distinct ? db::AggOp::kCountDistinct : db::AggOp::kCount;
}

/// The planner proper; holds the statement and catalog.
class Planner {
 public:
  Planner(const SelectStatement& statement, const db::Database& database)
      : stmt_(statement), database_(database) {}

  Result<PlannedQuery> Plan() {
    PERFEVAL_RETURN_IF_ERROR(ResolveTables());
    PERFEVAL_ASSIGN_OR_RETURN(Bound bound, BuildJoinedInput());
    PERFEVAL_RETURN_IF_ERROR(ApplyResidualWhere(&bound));
    bool is_aggregate = !stmt_.group_by.empty() || HasAggregates();
    if (is_aggregate) {
      PERFEVAL_RETURN_IF_ERROR(ApplyAggregation(&bound));
    } else {
      if (stmt_.having != nullptr) {
        return Status::InvalidArgument(
            "HAVING requires GROUP BY or aggregates");
      }
    }
    PERFEVAL_RETURN_IF_ERROR(ApplyOrderProjectLimit(&bound, is_aggregate));
    PlannedQuery out;
    out.plan = bound.plan;
    out.explain = stmt_.explain;
    return out;
  }

 private:
  /// All tables in FROM/JOIN order with their schemas, plus the
  /// column-name -> table index map (must be unambiguous).
  Status ResolveTables() {
    tables_.push_back(stmt_.from_table);
    for (const JoinClause& join : stmt_.joins) {
      tables_.push_back(join.table);
    }
    for (size_t t = 0; t < tables_.size(); ++t) {
      const std::string& table = tables_[t];
      if (!database_.HasTable(table)) {
        return Status::NotFound("no table named '" + table + "'");
      }
      const Schema& schema = database_.GetTable(table).schema();
      for (const db::ColumnSpec& column : schema.columns()) {
        auto [it, inserted] = column_table_.try_emplace(column.name, t);
        if (!inserted && tables_[it->second] != table) {
          return Status::InvalidArgument(
              "ambiguous column name '" + column.name + "' (in both " +
              tables_[it->second] + " and " + table + ")");
        }
      }
    }
    return Status::OK();
  }

  bool HasAggregates() const {
    std::vector<AstExprPtr> aggs;
    for (const SelectItem& item : stmt_.items) {
      CollectAggregates(item.expr, &aggs);
    }
    CollectAggregates(stmt_.having, &aggs);
    return !aggs.empty();
  }

  /// Which base table (index) a conjunct references, or -1 when it spans
  /// several / references unknown names.
  int SingleTableOf(const AstExprPtr& conjunct) const {
    std::set<std::string> columns;
    CollectColumns(conjunct, &columns);
    int table = -1;
    for (const std::string& column : columns) {
      auto it = column_table_.find(column);
      if (it == column_table_.end()) {
        return -1;
      }
      if (table >= 0 && static_cast<size_t>(table) != it->second) {
        return -1;
      }
      table = static_cast<int>(it->second);
    }
    return table;
  }

  /// Columns of base table `index` referenced anywhere in the statement.
  std::vector<std::string> UsedColumnsOf(size_t index) const {
    std::set<std::string> all;
    for (const SelectItem& item : stmt_.items) {
      CollectColumns(item.expr, &all);
    }
    CollectColumns(stmt_.where, &all);
    for (const JoinClause& join : stmt_.joins) {
      CollectColumns(join.condition, &all);
    }
    for (const std::string& g : stmt_.group_by) {
      all.insert(g);
    }
    CollectColumns(stmt_.having, &all);
    for (const OrderItem& item : stmt_.order_by) {
      all.insert(item.column);
    }
    std::vector<std::string> out;
    for (const std::string& column : all) {
      auto it = column_table_.find(column);
      if (it != column_table_.end() && it->second == index) {
        out.push_back(column);
      }
    }
    return out;
  }

  /// Builds the scans (with pushed-down single-table predicates) and the
  /// left-deep join tree; stores residual WHERE conjuncts in residual_.
  Result<Bound> BuildJoinedInput() {
    std::vector<AstExprPtr> where_conjuncts;
    SplitConjuncts(stmt_.where, &where_conjuncts);
    std::vector<std::vector<AstExprPtr>> pushed(tables_.size());
    for (const AstExprPtr& conjunct : where_conjuncts) {
      int table = SingleTableOf(conjunct);
      if (table >= 0) {
        pushed[static_cast<size_t>(table)].push_back(conjunct);
      } else {
        residual_.push_back(conjunct);
      }
    }

    auto build_base = [&](size_t index) -> Result<Bound> {
      const std::string& name = tables_[index];
      const Schema& schema = database_.GetTable(name).schema();
      std::vector<std::string> used = UsedColumnsOf(index);
      if (used.empty()) {
        // A table joined only for its existence still reads its keys via
        // the join condition; empty means "select * from t" style.
        for (const db::ColumnSpec& column : schema.columns()) {
          used.push_back(column.name);
        }
      }
      if (pushed[index].empty()) {
        return Bound{db::Scan(name, used), schema};
      }
      AstExprPtr predicate = JoinConjuncts(pushed[index]);
      PERFEVAL_ASSIGN_OR_RETURN(db::ExprPtr bound,
                                BindScalar(predicate, schema, {}));
      return Bound{db::FilterScan(name, used, bound), schema};
    };

    PERFEVAL_ASSIGN_OR_RETURN(Bound current, build_base(0));
    for (size_t j = 0; j < stmt_.joins.size(); ++j) {
      PERFEVAL_ASSIGN_OR_RETURN(Bound right, build_base(j + 1));
      PERFEVAL_ASSIGN_OR_RETURN(
          current, BuildJoin(current, right, stmt_.joins[j]));
    }
    return current;
  }

  /// One JOIN: extract 1-2 column equalities, keep the rest as filters.
  Result<Bound> BuildJoin(const Bound& left, const Bound& right,
                          const JoinClause& join) {
    std::vector<AstExprPtr> conjuncts;
    SplitConjuncts(join.condition, &conjuncts);
    std::vector<std::pair<std::string, std::string>> equalities;
    std::vector<AstExprPtr> join_residual;
    for (const AstExprPtr& conjunct : conjuncts) {
      bool is_equality =
          conjunct->kind == AstExprKind::kBinary && conjunct->text == "=" &&
          conjunct->children[0]->kind == AstExprKind::kColumn &&
          conjunct->children[1]->kind == AstExprKind::kColumn;
      if (!is_equality) {
        join_residual.push_back(conjunct);
        continue;
      }
      std::string a = conjunct->children[0]->text;
      std::string b = conjunct->children[1]->text;
      bool a_left = left.schema.IndexOf(a) >= 0;
      bool a_right = right.schema.IndexOf(a) >= 0;
      bool b_left = left.schema.IndexOf(b) >= 0;
      bool b_right = right.schema.IndexOf(b) >= 0;
      if (a_left && b_right) {
        equalities.emplace_back(a, b);
      } else if (b_left && a_right) {
        equalities.emplace_back(b, a);
      } else {
        return ErrorAt(*conjunct,
                       "join condition must compare a column of each side");
      }
    }
    if (equalities.empty() || equalities.size() > 2) {
      return ErrorAt(*join.condition,
                     "JOIN needs one or two column equalities");
    }
    std::vector<db::ColumnSpec> specs = left.schema.columns();
    for (const db::ColumnSpec& spec : right.schema.columns()) {
      specs.push_back(spec);
    }
    Bound joined;
    joined.schema = Schema(std::move(specs));
    if (equalities.size() == 1) {
      joined.plan = db::HashJoin(left.plan, right.plan,
                                 equalities[0].first, equalities[0].second);
    } else {
      joined.plan = db::HashJoin2(left.plan, right.plan,
                                  equalities[0].first, equalities[0].second,
                                  equalities[1].first,
                                  equalities[1].second);
    }
    if (!join_residual.empty()) {
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr bound,
          BindScalar(JoinConjuncts(join_residual), joined.schema, {}));
      joined.plan = db::Filter(joined.plan, bound);
    }
    return joined;
  }

  Status ApplyResidualWhere(Bound* bound) {
    if (residual_.empty()) {
      return Status::OK();
    }
    PERFEVAL_ASSIGN_OR_RETURN(
        db::ExprPtr predicate,
        BindScalar(JoinConjuncts(residual_), bound->schema, {}));
    bound->plan = db::Filter(bound->plan, predicate);
    return Status::OK();
  }

  /// Extracts aggregates from SELECT and HAVING, builds the Aggregate
  /// node, applies HAVING, and projects the SELECT list over the result.
  /// GROUP BY keys may be base columns or aliases of computed select items
  /// (e.g. `year(o_orderdate) AS y ... GROUP BY y`); computed keys are
  /// materialized by a pre-aggregation projection.
  Status ApplyAggregation(Bound* bound) {
    PERFEVAL_RETURN_IF_ERROR(MaterializeComputedGroupKeys(bound));
    // Validate group-by columns.
    for (const std::string& g : stmt_.group_by) {
      if (bound->schema.IndexOf(g) < 0) {
        return Status::InvalidArgument("unknown GROUP BY column '" + g +
                                       "'");
      }
    }
    // Collect aggregates from SELECT items and HAVING.
    std::vector<AstExprPtr> agg_nodes;
    for (const SelectItem& item : stmt_.items) {
      CollectAggregates(item.expr, &agg_nodes);
    }
    CollectAggregates(stmt_.having, &agg_nodes);
    if (agg_nodes.empty() && stmt_.group_by.empty()) {
      return Status::InvalidArgument("aggregate query without aggregates");
    }
    // Non-aggregate select items must be (or be built from) group keys.
    for (size_t i = 0; i < stmt_.items.size(); ++i) {
      const SelectItem& item = stmt_.items[i];
      std::vector<AstExprPtr> in_item;
      CollectAggregates(item.expr, &in_item);
      if (!in_item.empty()) {
        continue;
      }
      bool is_group_key = false;
      for (const std::string& g : stmt_.group_by) {
        is_group_key |= g == ItemName(item, i);
      }
      if (is_group_key) {
        continue;  // materialized by the pre-aggregation projection.
      }
      std::set<std::string> columns;
      CollectColumns(item.expr, &columns);
      for (const std::string& column : columns) {
        bool grouped = false;
        for (const std::string& g : stmt_.group_by) {
          grouped |= g == column;
        }
        if (!grouped) {
          return ErrorAt(*item.expr,
                         "column '" + column +
                             "' must appear in GROUP BY or inside an "
                             "aggregate");
        }
      }
    }

    // Build agg specs; name each occurrence. A bare aggregate select item
    // takes its alias/default name so HAVING/ORDER BY can reference it.
    std::map<const AstExpr*, std::string> agg_names;
    std::vector<db::AggSpec> specs;
    size_t counter = 0;
    for (size_t i = 0; i < stmt_.items.size(); ++i) {
      const SelectItem& item = stmt_.items[i];
      if (item.expr->kind == AstExprKind::kAgg) {
        agg_names[item.expr.get()] = ItemName(item, i);
      }
    }
    for (const AstExprPtr& node : agg_nodes) {
      std::string name;
      auto it = agg_names.find(node.get());
      if (it != agg_names.end()) {
        name = it->second;
      } else {
        name = "agg_" + std::to_string(++counter);
        agg_names[node.get()] = name;
      }
      db::AggSpec spec;
      spec.op = AggOpFor(*node);
      spec.output_name = name;
      if (!node->children.empty()) {
        PERFEVAL_ASSIGN_OR_RETURN(
            spec.expr, BindScalar(node->children[0], bound->schema, {}));
      } else if (spec.op != db::AggOp::kCount) {
        return ErrorAt(*node, "aggregate needs an argument");
      }
      specs.push_back(std::move(spec));
    }

    // The Aggregate node's output schema: group columns then agg outputs.
    std::vector<db::ColumnSpec> out_specs;
    for (const std::string& g : stmt_.group_by) {
      out_specs.push_back(
          bound->schema.column(bound->schema.MustIndexOf(g)));
    }
    for (const db::AggSpec& spec : specs) {
      // Shared with AggregateNode so the planned schema always matches
      // execution (int SUM/MIN/MAX stay int64, counts int64, rest double).
      out_specs.push_back({spec.output_name,
                           db::AggOutputType(spec, bound->schema)});
    }
    bound->plan =
        db::Aggregate(bound->plan, stmt_.group_by, std::move(specs));
    bound->schema = Schema(std::move(out_specs));

    if (stmt_.having != nullptr) {
      PERFEVAL_ASSIGN_OR_RETURN(
          db::ExprPtr having,
          BindScalar(stmt_.having, bound->schema, agg_names));
      bound->plan = db::Filter(bound->plan, having);
    }

    // Project the SELECT list over the aggregate output. Items whose name
    // is a group key reference the key column directly (it may have been
    // computed pre-aggregation).
    std::vector<db::ExprPtr> exprs;
    std::vector<std::string> names;
    std::vector<db::ColumnSpec> projected;
    for (size_t i = 0; i < stmt_.items.size(); ++i) {
      const SelectItem& item = stmt_.items[i];
      std::string name = ItemName(item, i);
      bool is_group_key = false;
      for (const std::string& g : stmt_.group_by) {
        is_group_key |= g == name;
      }
      db::ExprPtr expr;
      if (is_group_key) {
        expr = db::Col(bound->schema, name);
      } else {
        PERFEVAL_ASSIGN_OR_RETURN(
            expr, BindScalar(item.expr, bound->schema, agg_names));
      }
      projected.push_back({name, expr->ResultType(bound->schema)});
      exprs.push_back(std::move(expr));
      names.push_back(std::move(name));
    }
    bound->plan = db::Project(bound->plan, std::move(exprs), names);
    bound->schema = Schema(std::move(projected));
    return Status::OK();
  }

  /// For GROUP BY keys that are aliases of computed select items, inserts
  /// a projection that materializes them (keeping every existing column,
  /// which the scans already pruned to the used set).
  Status MaterializeComputedGroupKeys(Bound* bound) {
    std::vector<std::pair<std::string, AstExprPtr>> computed;
    for (const std::string& g : stmt_.group_by) {
      if (bound->schema.IndexOf(g) >= 0) {
        continue;
      }
      const AstExprPtr* source = nullptr;
      for (size_t i = 0; i < stmt_.items.size(); ++i) {
        const SelectItem& item = stmt_.items[i];
        if (ItemName(item, i) != g) {
          continue;
        }
        std::vector<AstExprPtr> aggs;
        CollectAggregates(item.expr, &aggs);
        if (!aggs.empty()) {
          return ErrorAt(*item.expr,
                         "GROUP BY key '" + g + "' contains an aggregate");
        }
        source = &item.expr;
        break;
      }
      if (source == nullptr) {
        return Status::InvalidArgument("unknown GROUP BY column '" + g +
                                       "'");
      }
      computed.emplace_back(g, *source);
    }
    if (computed.empty()) {
      return Status::OK();
    }
    std::vector<db::ExprPtr> exprs;
    std::vector<std::string> names;
    std::vector<db::ColumnSpec> specs;
    for (const db::ColumnSpec& column : bound->schema.columns()) {
      exprs.push_back(db::Col(bound->schema, column.name));
      names.push_back(column.name);
      specs.push_back(column);
    }
    for (const auto& [name, ast] : computed) {
      PERFEVAL_ASSIGN_OR_RETURN(db::ExprPtr expr,
                                BindScalar(ast, bound->schema, {}));
      specs.push_back({name, expr->ResultType(bound->schema)});
      exprs.push_back(std::move(expr));
      names.push_back(name);
    }
    bound->plan = db::Project(bound->plan, std::move(exprs), names);
    bound->schema = Schema(std::move(specs));
    return Status::OK();
  }

  Status ApplyOrderProjectLimit(Bound* bound, bool is_aggregate) {
    // Non-aggregate projection (aggregates already projected).
    if (!is_aggregate && !stmt_.select_star) {
      // ORDER BY keys that are not in the projected output must be sorted
      // before projecting.
      std::vector<db::ColumnSpec> projected;
      std::vector<std::string> names;
      for (size_t i = 0; i < stmt_.items.size(); ++i) {
        names.push_back(ItemName(stmt_.items[i], i));
      }
      bool order_needs_base = false;
      for (const OrderItem& item : stmt_.order_by) {
        bool in_output = false;
        for (const std::string& name : names) {
          in_output |= name == item.column;
        }
        order_needs_base |= !in_output;
      }
      if (order_needs_base && !stmt_.order_by.empty()) {
        PERFEVAL_RETURN_IF_ERROR(ApplySort(bound));
      }
      std::vector<db::ExprPtr> exprs;
      for (size_t i = 0; i < stmt_.items.size(); ++i) {
        PERFEVAL_ASSIGN_OR_RETURN(
            db::ExprPtr expr,
            BindScalar(stmt_.items[i].expr, bound->schema, {}));
        projected.push_back({names[i], expr->ResultType(bound->schema)});
        exprs.push_back(std::move(expr));
      }
      bound->plan = db::Project(bound->plan, std::move(exprs), names);
      bound->schema = Schema(std::move(projected));
      if (!order_needs_base && !stmt_.order_by.empty()) {
        PERFEVAL_RETURN_IF_ERROR(ApplySort(bound));
      }
    } else if (!stmt_.order_by.empty()) {
      PERFEVAL_RETURN_IF_ERROR(ApplySort(bound));
    }
    if (stmt_.limit.has_value()) {
      bound->plan = db::Limit(bound->plan, *stmt_.limit);
    }
    return Status::OK();
  }

  Status ApplySort(Bound* bound) {
    std::vector<db::SortKey> keys;
    for (const OrderItem& item : stmt_.order_by) {
      if (bound->schema.IndexOf(item.column) < 0) {
        return Status::InvalidArgument("unknown ORDER BY column '" +
                                       item.column + "'");
      }
      keys.push_back({item.column, item.ascending});
    }
    bound->plan = db::Sort(bound->plan, std::move(keys));
    return Status::OK();
  }

  const SelectStatement& stmt_;
  const db::Database& database_;
  std::vector<std::string> tables_;
  std::map<std::string, size_t> column_table_;
  std::vector<AstExprPtr> residual_;
};

}  // namespace

Result<db::ExprPtr> BindWhereExpr(const AstExprPtr& expr,
                                  const db::Schema& schema) {
  return BindScalar(expr, schema, {});
}

Result<PlannedQuery> PlanStatement(const SelectStatement& statement,
                                   const db::Database& database) {
  Planner planner(statement, database);
  Result<PlannedQuery> planned = planner.Plan();
  // Opt-in cost-based optimization (`\opt on` / --dbOpt=on): hand the
  // rule-built plan to the optimizer, which re-derives join order and
  // pins a join algorithm per node from the table statistics. EXPLAIN
  // shows the optimized tree; results are oracle-diffed identical.
  if (planned.ok() && database.optimize()) {
    planned.value().plan = opt::Optimize(planned.value().plan, database).plan;
  }
  return planned;
}

Result<PlannedQuery> PlanQuery(const std::string& sql_text,
                               const db::Database& database) {
  PERFEVAL_ASSIGN_OR_RETURN(SelectStatement statement, Parse(sql_text));
  return PlanStatement(statement, database);
}

Result<db::QueryResult> RunQuery(const std::string& sql_text,
                                 db::Database& database, db::ExecMode mode,
                                 db::SinkKind sink) {
  PERFEVAL_ASSIGN_OR_RETURN(PlannedQuery planned,
                            PlanQuery(sql_text, database));
  if (planned.explain) {
    db::QueryResult result;
    auto table = std::make_shared<db::Table>(
        Schema({{"plan", db::DataType::kString}}));
    for (const std::string& line : Split(db::Explain(planned.plan), '\n')) {
      if (!line.empty()) {
        table->AppendRow({db::Value::String(line)});
      }
    }
    result.table = table;
    return result;
  }
  // Execution errors (checked-arithmetic overflow, checked-mode invariant
  // violations, NULL join keys) surface as QueryError exceptions from deep
  // inside operator loops; convert them back to Status at the API boundary.
  try {
    return database.Run(planned.plan, mode, sink);
  } catch (const db::QueryError& e) {
    return e.ToStatus();
  }
}

}  // namespace sql
}  // namespace perfeval
