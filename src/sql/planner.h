#ifndef PERFEVAL_SQL_PLANNER_H_
#define PERFEVAL_SQL_PLANNER_H_

#include <string>

#include "common/result.h"
#include "db/database.h"
#include "db/plan.h"
#include "sql/ast.h"

namespace perfeval {
namespace sql {

/// A bound, executable query.
struct PlannedQuery {
  db::PlanPtr plan;
  bool explain = false;  ///< EXPLAIN queries are described, not executed.
};

/// Binds a parsed statement against `database`'s catalog and builds a
/// physical plan:
///  - single-table WHERE conjuncts are pushed into FilterScans (zone-map
///    eligible), the rest becomes a Filter above the joins;
///  - JOIN ... ON clauses must contain one or two column equalities
///    (hash join / composite hash join); non-equi residues become filters;
///  - aggregates anywhere in the SELECT list or HAVING are extracted into
///    an Aggregate operator, and the surrounding expressions are rewritten
///    over its output (so `100 * sum(a) / sum(b)` works);
///  - ORDER BY binds against the output schema, falling back to pre-
///    projection columns;
///  - column names must be unambiguous across the joined tables (TPC-H
///    style prefixes); ambiguous or unknown names are errors.
Result<PlannedQuery> PlanStatement(const SelectStatement& statement,
                                   const db::Database& database);

/// Parse + plan in one call.
Result<PlannedQuery> PlanQuery(const std::string& sql_text,
                               const db::Database& database);

/// Binds a WHERE-style boolean expression against a single table schema
/// (aggregates are errors). The write path uses this to turn a DELETE's
/// WHERE clause into a row predicate over the merged snapshot.
Result<db::ExprPtr> BindWhereExpr(const AstExprPtr& expr,
                                  const db::Schema& schema);

/// Convenience for tools: parse, plan and run `sql_text`; for EXPLAIN
/// queries the result table has a single "plan" column holding the tree.
Result<db::QueryResult> RunQuery(const std::string& sql_text,
                                 db::Database& database,
                                 db::ExecMode mode = db::ExecMode::kOptimized,
                                 db::SinkKind sink = db::SinkKind::kDiscard);

}  // namespace sql
}  // namespace perfeval

#endif  // PERFEVAL_SQL_PLANNER_H_
