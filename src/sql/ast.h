#ifndef PERFEVAL_SQL_AST_H_
#define PERFEVAL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace perfeval {
namespace sql {

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

/// Expression node kinds of the SQL subset.
enum class AstExprKind {
  kColumn,     ///< text = column name.
  kIntLit,     ///< int_value.
  kDoubleLit,  ///< double_value.
  kStringLit,  ///< text = body.
  kDateLit,    ///< text = "YYYY-MM-DD".
  kNullLit,    ///< SQL NULL (INSERT values only; type comes from the column).
  kBinary,     ///< text = operator ("AND","OR","=","<=","+","*",...),
               ///< children = {lhs, rhs}.
  kNot,        ///< children = {operand}.
  kLike,       ///< children = {operand}; text = pattern.
  kInList,     ///< children = {operand}; string_list or int_list.
  kBetween,    ///< children = {operand, lo, hi}.
  kCase,       ///< children = {condition, then, else}.
  kFunc,       ///< text = function name ("year", "substr");
               ///< children = arguments.
  kAgg,        ///< text = "sum"/"avg"/"min"/"max"/"count";
               ///< children = {argument} (empty for count(*)).
};

/// One parsed expression. A single tagged struct keeps the AST simple; the
/// binder (planner.h) validates shapes.
struct AstExpr {
  AstExprKind kind = AstExprKind::kColumn;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::vector<AstExprPtr> children;
  std::vector<std::string> string_list;  ///< IN ('a', 'b').
  std::vector<int64_t> int_list;         ///< IN (1, 2, 3).
  bool distinct = false;                 ///< count(DISTINCT x).
  size_t offset = 0;                     ///< source offset for errors.
};

/// SELECT-list entry: expression plus optional AS alias.
struct SelectItem {
  AstExprPtr expr;
  std::string alias;
};

/// One JOIN clause: JOIN <table> ON <condition>.
struct JoinClause {
  std::string table;
  AstExprPtr condition;
};

/// One ORDER BY key.
struct OrderItem {
  std::string column;
  bool ascending = true;
};

/// A parsed SELECT statement (the read side).
struct SelectStatement {
  bool explain = false;  ///< EXPLAIN SELECT ...
  bool select_star = false;
  std::vector<SelectItem> items;
  std::string from_table;
  std::vector<JoinClause> joins;
  AstExprPtr where;  ///< null when absent.
  std::vector<std::string> group_by;
  AstExprPtr having;  ///< null when absent.
  std::vector<OrderItem> order_by;
  std::optional<size_t> limit;
};

/// INSERT INTO t VALUES (lit, ...), (lit, ...). Values are literal
/// expressions (optionally sign-prefixed numbers, strings, DATE, NULL);
/// the DML binder (txn/dml.h) coerces them to the column types.
struct InsertStatement {
  std::string table;
  std::vector<std::vector<AstExprPtr>> rows;
};

/// DELETE FROM t [WHERE expr]. An absent WHERE deletes every row.
struct DeleteStatement {
  std::string table;
  AstExprPtr where;  ///< null when absent.
};

/// Any parsed statement: exactly one of the alternatives is populated,
/// per `kind`.
struct Statement {
  enum class Kind { kSelect, kInsert, kDelete };
  Kind kind = Kind::kSelect;
  SelectStatement select;
  InsertStatement insert;
  DeleteStatement delete_from;
};

}  // namespace sql
}  // namespace perfeval

#endif  // PERFEVAL_SQL_AST_H_
