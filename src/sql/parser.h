#ifndef PERFEVAL_SQL_PARSER_H_
#define PERFEVAL_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace perfeval {
namespace sql {

/// Parses one SELECT statement (optionally prefixed with EXPLAIN and/or
/// terminated with ';'). Grammar, in precedence order:
///
///   statement  := [EXPLAIN] SELECT select_list FROM identifier
///                 {JOIN identifier ON expr} [WHERE expr]
///                 [GROUP BY column {, column}] [HAVING expr]
///                 [ORDER BY column [ASC|DESC] {, ...}] [LIMIT integer]
///   select_list:= '*' | select_item {, select_item}
///   select_item:= expr [AS identifier]
///   expr       := or_expr
///   or_expr    := and_expr {OR and_expr}
///   and_expr   := not_expr {AND not_expr}
///   not_expr   := NOT not_expr | predicate
///   predicate  := additive [cmp additive | [NOT] LIKE string
///                 | [NOT] IN '(' literal {, literal} ')'
///                 | BETWEEN additive AND additive]
///   additive   := term {(+|-) term}
///   term       := factor {(*|/) factor}
///   factor     := literal | column | DATE string | function '(' args ')'
///                 | CASE WHEN expr THEN expr ELSE expr END | '(' expr ')'
///
/// Functions: year(x), substr(x, pos, len); aggregates: sum, avg, min,
/// max, count(*), count([DISTINCT] x).
///
/// Errors carry the byte offset of the offending token.
Result<SelectStatement> Parse(const std::string& source);

/// Parses one statement of any kind. Beyond SELECT:
///
///   INSERT INTO identifier VALUES '(' literal {, literal} ')' {, row}
///   DELETE FROM identifier [WHERE expr]
///
/// where INSERT literals are constants ([-] number, string, DATE 'd',
/// NULL). DML statements execute through the write path
/// (txn::ExecuteDml), not through Database::Run.
Result<Statement> ParseSql(const std::string& source);

}  // namespace sql
}  // namespace perfeval

#endif  // PERFEVAL_SQL_PARSER_H_
