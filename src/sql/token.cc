#include "sql/token.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace perfeval {
namespace sql {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* keywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",  "WHERE",  "GROUP", "BY",      "HAVING",
      "ORDER",  "LIMIT", "AS",     "AND",   "OR",      "NOT",
      "JOIN",   "ON",    "ASC",    "DESC",  "LIKE",    "IN",
      "BETWEEN", "DATE", "SUM",    "AVG",   "MIN",     "MAX",
      "COUNT",  "DISTINCT", "CASE", "WHEN", "THEN",    "ELSE",
      "END",    "INNER", "EXPLAIN",
      "INSERT", "INTO",  "VALUES", "DELETE", "NULL"};
  return *keywords;
}

bool IsIdentifierStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentifierChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kDouble:
      return "double";
    case TokenKind::kString:
      return "string";
    case TokenKind::kSymbol:
      return "symbol";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "unknown";
}

Result<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments.
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    size_t start = i;
    if (IsIdentifierStart(c)) {
      while (i < n && IsIdentifierChar(source[i])) {
        ++i;
      }
      std::string word = source.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        tokens.push_back({TokenKind::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenKind::kIdentifier, ToLower(word), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      if (i < n && source[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n &&
               std::isdigit(static_cast<unsigned char>(source[i]))) {
          ++i;
        }
      }
      tokens.push_back({is_double ? TokenKind::kDouble : TokenKind::kInteger,
                        source.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      std::string body;
      ++i;
      bool closed = false;
      while (i < n) {
        if (source[i] == '\'') {
          if (i + 1 < n && source[i + 1] == '\'') {
            body += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        body += source[i];
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(StrFormat(
            "unterminated string literal at offset %zu", start));
      }
      tokens.push_back({TokenKind::kString, body, start});
      continue;
    }
    // Two-character symbols first.
    if (i + 1 < n) {
      std::string two = source.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tokens.push_back(
            {TokenKind::kSymbol, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "(),*+-/=<>.;%";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument(
        StrFormat("unexpected character '%c' at offset %zu", c, start));
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace sql
}  // namespace perfeval
