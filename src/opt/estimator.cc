#include "opt/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace perfeval {
namespace opt {

namespace {

// Textbook (Selinger) fallbacks for predicates the statistics cannot see.
constexpr double kDefaultEqSel = 0.1;
constexpr double kDefaultRangeSel = 1.0 / 3.0;
constexpr double kDefaultOpaqueSel = 0.25;

double Log2Ceil(double n) { return n <= 2.0 ? 1.0 : std::log2(n); }

db::Schema ConcatSchemas(const db::Schema& a, const db::Schema& b) {
  std::vector<db::ColumnSpec> specs = a.columns();
  for (const db::ColumnSpec& spec : b.columns()) {
    specs.push_back(spec);
  }
  return db::Schema(std::move(specs));
}

db::Schema SchemaOf(const db::PlanNode& node, const db::Database& database) {
  db::PlanSpec spec = node.Spec();
  std::vector<const db::PlanNode*> children = node.Children();
  switch (spec.kind) {
    case db::PlanKind::kScan:
    case db::PlanKind::kFilterScan:
      return database.GetTable(spec.table_name).schema();
    case db::PlanKind::kFilter:
    case db::PlanKind::kSort:
    case db::PlanKind::kLimit:
    case db::PlanKind::kTopN:
      return SchemaOf(*children[0], database);
    case db::PlanKind::kProject: {
      db::Schema child = SchemaOf(*children[0], database);
      std::vector<db::ColumnSpec> specs;
      specs.reserve(spec.exprs.size());
      for (size_t i = 0; i < spec.exprs.size(); ++i) {
        specs.push_back({spec.names[i], spec.exprs[i]->ResultType(child)});
      }
      return db::Schema(std::move(specs));
    }
    case db::PlanKind::kHashJoin:
    case db::PlanKind::kMergeJoin:
      return ConcatSchemas(SchemaOf(*children[0], database),
                           SchemaOf(*children[1], database));
    case db::PlanKind::kAggregate: {
      db::Schema child = SchemaOf(*children[0], database);
      std::vector<db::ColumnSpec> specs;
      for (const std::string& g : spec.group_by) {
        specs.push_back(child.column(child.MustIndexOf(g)));
      }
      for (const db::AggSpec& agg : spec.aggregates) {
        specs.push_back({agg.output_name, db::AggOutputType(agg, child)});
      }
      return db::Schema(std::move(specs));
    }
  }
  return db::Schema();
}

const char* OpName(db::PlanKind kind) {
  switch (kind) {
    case db::PlanKind::kScan:
      return "Scan";
    case db::PlanKind::kFilterScan:
      return "FilterScan";
    case db::PlanKind::kFilter:
      return "Filter";
    case db::PlanKind::kProject:
      return "Project";
    case db::PlanKind::kHashJoin:
      return "HashJoin";
    case db::PlanKind::kMergeJoin:
      return "MergeJoin";
    case db::PlanKind::kAggregate:
      return "Aggregate";
    case db::PlanKind::kSort:
      return "Sort";
    case db::PlanKind::kLimit:
      return "Limit";
    case db::PlanKind::kTopN:
      return "TopN";
  }
  return "Unknown";
}

}  // namespace

db::Schema OutputSchema(const db::PlanNode& node,
                        const db::Database& database) {
  return SchemaOf(node, database);
}

StatsCatalog::StatsCatalog(const db::Database& database) {
  for (const std::string& table : database.TableNames()) {
    std::shared_ptr<const db::TableStats> stats =
        database.GetTableStats(table);
    for (const db::ColumnStats& column : stats->columns) {
      auto [it, inserted] = by_column_.try_emplace(column.name, &column);
      if (!inserted) {
        it->second = nullptr;  // ambiguous name: refuse to guess.
      }
    }
    snapshots_.push_back(std::move(stats));
  }
}

const db::ColumnStats* StatsCatalog::Column(const std::string& name) const {
  auto it = by_column_.find(name);
  return it == by_column_.end() ? nullptr : it->second;
}

CardinalityEstimator::CardinalityEstimator(const StatsCatalog& stats,
                                           const CostModel& model,
                                           const db::Database& database,
                                           db::JoinAlgo default_algo)
    : stats_(stats),
      model_(model),
      database_(database),
      default_algo_(default_algo) {}

double CardinalityEstimator::ColumnNdv(const std::string& name,
                                       double rows) const {
  const db::ColumnStats* s = stats_.Column(name);
  if (s == nullptr || s->distinct == 0) {
    return std::max(rows, 1.0);
  }
  return std::clamp(static_cast<double>(s->distinct), 1.0,
                    std::max(rows, 1.0));
}

double CardinalityEstimator::JoinSelectivity(const std::string& left_col,
                                             double left_rows,
                                             const std::string& right_col,
                                             double right_rows) const {
  double ndv = std::max(ColumnNdv(left_col, left_rows),
                        ColumnNdv(right_col, right_rows));
  return 1.0 / std::max(ndv, 1.0);
}

double CardinalityEstimator::Selectivity(const db::ExprPtr& predicate,
                                         const db::Schema& input) const {
  if (predicate == nullptr) {
    return 1.0;
  }
  std::vector<db::ExprPtr> conjuncts;
  predicate->CollectConjuncts(&conjuncts, predicate);
  double sel = 1.0;
  for (const db::ExprPtr& conjunct : conjuncts) {
    db::SimplePredicate simple;
    size_t eq_left = 0;
    size_t eq_right = 0;
    double term;
    if (conjunct->AsSimplePredicate(&simple)) {
      const db::ColumnStats* s =
          simple.column < input.num_columns()
              ? stats_.Column(input.column(simple.column).name)
              : nullptr;
      if (s != nullptr) {
        term = s->Selectivity(simple.op, simple.value);
      } else {
        term = simple.op == db::CmpOp::kEq    ? kDefaultEqSel
               : simple.op == db::CmpOp::kNe ? 1.0 - kDefaultEqSel
                                             : kDefaultRangeSel;
      }
    } else if (conjunct->AsColumnEquality(&eq_left, &eq_right) &&
               eq_left < input.num_columns() &&
               eq_right < input.num_columns()) {
      double ndv = std::max(ColumnNdv(input.column(eq_left).name, 1.0),
                            ColumnNdv(input.column(eq_right).name, 1.0));
      term = ndv > 1.0 ? 1.0 / ndv : kDefaultEqSel;
    } else {
      term = kDefaultOpaqueSel;
    }
    sel *= std::clamp(term, 0.0, 1.0);
  }
  return std::clamp(sel, 0.0, 1.0);
}

double CardinalityEstimator::EstimateRows(const db::PlanNode& node,
                                          db::Schema* schema_out) const {
  SubtreeInfo info = Walk(node, nullptr);
  if (schema_out != nullptr) {
    *schema_out = std::move(info.schema);
  }
  return info.rows;
}

void CardinalityEstimator::EstimatePlan(
    const db::PlanNode& node, std::vector<NodeEstimate>* out) const {
  Walk(node, out);
}

CardinalityEstimator::SubtreeInfo CardinalityEstimator::Walk(
    const db::PlanNode& node, std::vector<NodeEstimate>* out) const {
  db::PlanSpec spec = node.Spec();
  std::vector<const db::PlanNode*> children = node.Children();
  std::vector<SubtreeInfo> child_info;
  child_info.reserve(children.size());
  for (const db::PlanNode* child : children) {
    child_info.push_back(Walk(*child, out));
  }

  SubtreeInfo info;
  double cost = 0.0;
  switch (spec.kind) {
    case db::PlanKind::kScan: {
      info.schema = database_.GetTable(spec.table_name).schema();
      info.rows =
          static_cast<double>(database_.GetTable(spec.table_name).num_rows());
      cost = info.rows * model_.cpu_tuple_ns;
      break;
    }
    case db::PlanKind::kFilterScan: {
      info.schema = database_.GetTable(spec.table_name).schema();
      double base =
          static_cast<double>(database_.GetTable(spec.table_name).num_rows());
      std::vector<db::ExprPtr> conjuncts;
      if (spec.predicate != nullptr) {
        spec.predicate->CollectConjuncts(&conjuncts, spec.predicate);
      }
      info.rows = base * Selectivity(spec.predicate, info.schema);
      cost = base * (model_.cpu_tuple_ns +
                     static_cast<double>(conjuncts.size()) *
                         model_.cpu_term_ns);
      break;
    }
    case db::PlanKind::kFilter: {
      info.schema = child_info[0].schema;
      std::vector<db::ExprPtr> conjuncts;
      if (spec.predicate != nullptr) {
        spec.predicate->CollectConjuncts(&conjuncts, spec.predicate);
      }
      info.rows =
          child_info[0].rows * Selectivity(spec.predicate, info.schema);
      cost = child_info[0].rows * static_cast<double>(
                 std::max<size_t>(conjuncts.size(), 1)) *
             model_.cpu_term_ns;
      break;
    }
    case db::PlanKind::kProject: {
      std::vector<db::ColumnSpec> specs;
      specs.reserve(spec.exprs.size());
      for (size_t i = 0; i < spec.exprs.size(); ++i) {
        specs.push_back(
            {spec.names[i], spec.exprs[i]->ResultType(child_info[0].schema)});
      }
      info.schema = db::Schema(std::move(specs));
      info.rows = child_info[0].rows;
      cost = child_info[0].rows *
             static_cast<double>(spec.exprs.size()) * model_.project_ns;
      break;
    }
    case db::PlanKind::kHashJoin:
    case db::PlanKind::kMergeJoin: {
      info.schema =
          ConcatSchemas(child_info[0].schema, child_info[1].schema);
      double sel = 1.0;
      for (size_t k = 0; k < spec.left_keys.size(); ++k) {
        sel *= JoinSelectivity(spec.left_keys[k], child_info[0].rows,
                               spec.right_keys[k], child_info[1].rows);
      }
      info.rows =
          std::max(child_info[0].rows * child_info[1].rows * sel, 1.0);
      db::JoinAlgo algo = spec.kind == db::PlanKind::kMergeJoin
                              ? db::JoinAlgo::kMerge
                              : default_algo_;
      cost = model_.JoinCost(algo, child_info[0].rows, child_info[1].rows,
                             info.rows);
      break;
    }
    case db::PlanKind::kAggregate: {
      std::vector<db::ColumnSpec> specs;
      for (const std::string& g : spec.group_by) {
        specs.push_back(child_info[0].schema.column(
            child_info[0].schema.MustIndexOf(g)));
      }
      for (const db::AggSpec& agg : spec.aggregates) {
        specs.push_back(
            {agg.output_name, db::AggOutputType(agg, child_info[0].schema)});
      }
      info.schema = db::Schema(std::move(specs));
      if (spec.group_by.empty()) {
        info.rows = 1.0;
      } else {
        double groups = 1.0;
        for (const std::string& g : spec.group_by) {
          groups *= ColumnNdv(g, child_info[0].rows);
        }
        info.rows = std::clamp(groups, 1.0, std::max(child_info[0].rows,
                                                     1.0));
      }
      cost = child_info[0].rows * model_.agg_group_ns *
             static_cast<double>(std::max<size_t>(spec.aggregates.size(), 1));
      break;
    }
    case db::PlanKind::kSort: {
      info.schema = child_info[0].schema;
      info.rows = child_info[0].rows;
      cost = model_.SortCost(child_info[0].rows);
      break;
    }
    case db::PlanKind::kLimit: {
      info.schema = child_info[0].schema;
      info.rows =
          std::min(child_info[0].rows, static_cast<double>(spec.limit));
      cost = info.rows * model_.cpu_tuple_ns;
      break;
    }
    case db::PlanKind::kTopN: {
      info.schema = child_info[0].schema;
      info.rows =
          std::min(child_info[0].rows, static_cast<double>(spec.limit));
      cost = child_info[0].rows *
             Log2Ceil(static_cast<double>(spec.limit) + 2.0) *
             model_.sort_ns;
      break;
    }
  }

  if (out != nullptr) {
    NodeEstimate estimate;
    estimate.kind = spec.kind;
    estimate.op = OpName(spec.kind);
    estimate.rows_out = info.rows;
    estimate.cost_ns = cost;
    out->push_back(std::move(estimate));
  }
  return info;
}

}  // namespace opt
}  // namespace perfeval
