#ifndef PERFEVAL_OPT_COST_MODEL_H_
#define PERFEVAL_OPT_COST_MODEL_H_

#include <cstddef>

#include "db/join.h"
#include "db/storage.h"

namespace perfeval {
namespace opt {

/// The optimizer's cost model: per-row CPU constants (nanoseconds) plus a
/// two-regime cache penalty, in the style of the hwsim join model (one
/// cost per data item touched, a multiplier once the working set leaves
/// L2). The defaults are calibrated against measured TRACE operator times
/// on the development host — A11 (`bench_optimizer --calibrate`) re-fits
/// them with stats::FitLinear and reports measured-vs-default constants —
/// but the model itself is a pure function of its inputs: the same plan
/// and statistics cost the same on every host, so plan choice (and with
/// it every result) is reproducible. Absolute accuracy matters less than
/// *ordering* accuracy; A11's crossover study measures exactly that.
struct CostModel {
  // Per-row CPU constants, in nanoseconds.
  double cpu_tuple_ns = 1.0;     ///< touch one row (scan / gather).
  double cpu_term_ns = 1.5;      ///< evaluate one predicate term on a row.
  double project_ns = 4.0;       ///< evaluate one projection expr on a row.
  double agg_group_ns = 9.0;     ///< one hash-aggregate update.
  double sort_ns = 4.0;          ///< one row, per log2(n) level.
  double hash_build_ns = 14.0;   ///< insert one row into a flat index.
  double hash_probe_ns = 7.0;    ///< probe one row against a flat index.
  double legacy_build_ns = 55.0; ///< node-store build (unordered_map).
  double legacy_probe_ns = 16.0; ///< node-store probe.
  double radix_pass_ns = 5.0;    ///< move one row through one partition pass.
  double join_output_ns = 10.0;  ///< materialize one join output row.

  /// Build sides larger than this no longer fit L2 (rows; matches the
  /// 512 KiB partition target of db::ChooseRadixBits at ~16 bytes/row).
  double l2_build_rows = 32768.0;
  /// Probe-cost multiplier once the build side has left L2. The radix
  /// join partitions specifically to avoid paying this.
  double cache_miss_factor = 2.6;

  /// Simulated disk for cold-scan page costs (DiskModel is the same model
  /// the storage layer charges misses with).
  db::DiskModel disk;
  size_t rows_per_page = 4096;

  static CostModel Default() { return CostModel(); }

  /// Cost of one equi-join: `probe_rows` outer rows joined against
  /// `build_rows` inner rows yielding `out_rows`.
  double JoinCost(db::JoinAlgo algo, double probe_rows, double build_rows,
                  double out_rows) const;

  /// Cost of sorting `rows` rows.
  double SortCost(double rows) const;

  /// Cold page-I/O cost of scanning `rows` rows of `columns` columns
  /// (DiskModel seek + transfer per page).
  double ScanIoCost(double rows, size_t columns) const;
};

}  // namespace opt
}  // namespace perfeval

#endif  // PERFEVAL_OPT_COST_MODEL_H_
