#include "opt/cost_model.h"

#include <algorithm>
#include <cmath>

namespace perfeval {
namespace opt {

namespace {

double Log2Ceil(double n) { return n <= 2.0 ? 1.0 : std::log2(n); }

}  // namespace

double CostModel::JoinCost(db::JoinAlgo algo, double probe_rows,
                           double build_rows, double out_rows) const {
  probe_rows = std::max(probe_rows, 0.0);
  build_rows = std::max(build_rows, 0.0);
  out_rows = std::max(out_rows, 0.0);
  double output = out_rows * join_output_ns;
  bool spills_l2 = build_rows > l2_build_rows;
  double penalty = spills_l2 ? cache_miss_factor : 1.0;
  switch (algo) {
    case db::JoinAlgo::kLegacy:
      // Node-store build (an allocation per distinct key) and a pointer-
      // chasing probe; misses dominate as soon as the table leaves L2.
      return build_rows * legacy_build_ns +
             probe_rows * legacy_probe_ns * penalty + output;
    case db::JoinAlgo::kHash:
      // Flat open-addressing index: cheap build, cheap probe, but every
      // probe is a random access into the whole build side.
      return build_rows * hash_build_ns +
             probe_rows * hash_probe_ns * penalty + output;
    case db::JoinAlgo::kRadix: {
      // Partition both sides once when the build side would spill L2,
      // then build+probe L2-resident partitions without the penalty.
      double pass = spills_l2 ? (probe_rows + build_rows) * radix_pass_ns
                              : 0.0;
      return pass + build_rows * hash_build_ns +
             probe_rows * hash_probe_ns + output;
    }
    case db::JoinAlgo::kMerge:
      // Sort both sides (the detector skips the sort for clustered keys,
      // but the model cannot know that statically), then one linear merge.
      return SortCost(probe_rows) + SortCost(build_rows) +
             (probe_rows + build_rows) * cpu_tuple_ns + output;
  }
  return output;
}

double CostModel::SortCost(double rows) const {
  rows = std::max(rows, 0.0);
  return rows * Log2Ceil(rows) * sort_ns;
}

double CostModel::ScanIoCost(double rows, size_t columns) const {
  if (rows <= 0.0 || columns == 0 || rows_per_page == 0) {
    return 0.0;
  }
  double pages = std::ceil(rows / static_cast<double>(rows_per_page)) *
                 static_cast<double>(columns);
  double bytes_per_page = static_cast<double>(rows_per_page) * 8.0;
  return pages * (static_cast<double>(disk.seek_ns) +
                  bytes_per_page * disk.ns_per_byte);
}

}  // namespace opt
}  // namespace perfeval
