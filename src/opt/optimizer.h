#ifndef PERFEVAL_OPT_OPTIMIZER_H_
#define PERFEVAL_OPT_OPTIMIZER_H_

#include "db/database.h"
#include "db/plan.h"
#include "opt/cost_model.h"
#include "opt/estimator.h"

namespace perfeval {
namespace opt {

/// Outcome of one plan optimization pass.
struct OptimizeResult {
  db::PlanPtr plan;    ///< the optimized plan (== input when untouched).
  int regions = 0;     ///< join regions examined.
  int reordered = 0;   ///< regions whose join order changed.
  bool changed = false;
};

/// Cost-based plan rewrite: finds every maximal region of equi-join nodes
/// (absorbing column-equality filters between them as join edges), derives
/// the join graph, and replaces the region with the cheapest join tree
/// found by dynamic programming over connected subgraphs — picking both
/// the join order and a physical algorithm (legacy/hash/radix/merge) per
/// join from the CostModel and the TableStats-based cardinality estimates.
///
/// Semantics are preserved exactly:
///  - only inner equi-joins and conjunctive column-equality filters are
///    rearranged; any other operator bounds the region and becomes a leaf
///    (recursively optimized on its own);
///  - a reordered region is capped with a Project restoring the original
///    column order, so every downstream index-bound expression sees the
///    schema it was compiled against;
///  - join-graph edges that the chosen tree does not consume as join keys
///    are re-applied as equality filters on top of the region;
///  - regions with cross products (disconnected join graphs), ambiguous
///    column names, or more than kMaxDpLeaves leaves are left untouched
///    (the rule-only shape is the fallback plan).
///
/// Determinism: enumeration visits subsets, splits, and algorithms in a
/// fixed order with strict-improvement tie-breaking, and every estimate is
/// a pure function of the statistics snapshot — the same database state
/// always yields the same plan, at any thread or shard count.
OptimizeResult Optimize(const db::PlanPtr& plan,
                        const db::Database& database);

/// As Optimize, with an explicit cost model (A11 uses this to study
/// calibrated vs default constants).
OptimizeResult OptimizeWith(const db::PlanPtr& plan,
                            const db::Database& database,
                            const CostModel& model);

/// DP size cap: regions with more leaves than this are left untouched
/// (TPC-H tops out at 8).
inline constexpr size_t kMaxDpLeaves = 12;

}  // namespace opt
}  // namespace perfeval

#endif  // PERFEVAL_OPT_OPTIMIZER_H_
