#ifndef PERFEVAL_OPT_ESTIMATOR_H_
#define PERFEVAL_OPT_ESTIMATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "db/plan.h"
#include "db/table_stats.h"
#include "opt/cost_model.h"

namespace perfeval {
namespace opt {

/// A consistent snapshot of every catalog table's statistics, indexed by
/// column name. Column names are globally unique across this engine's
/// workloads (TPC-H; the SQL planner preserves base names); a name that
/// does appear in two tables is treated as unknown rather than guessing.
class StatsCatalog {
 public:
  explicit StatsCatalog(const db::Database& database);

  /// Stats of the base column named `name`, or nullptr when unknown
  /// (derived/renamed columns, ambiguous names).
  const db::ColumnStats* Column(const std::string& name) const;

 private:
  std::vector<std::shared_ptr<const db::TableStats>> snapshots_;
  std::unordered_map<std::string, const db::ColumnStats*> by_column_;
};

/// One plan operator's estimate, emitted in the same post-order the
/// Profiler records OpTraces in, so estimated and actual rows/cost zip
/// positionally (every plan node traces).
struct NodeEstimate {
  db::PlanKind kind = db::PlanKind::kScan;
  std::string op;          ///< matches the trace name prefix ("HashJoin"...).
  double rows_out = 0.0;   ///< estimated output cardinality.
  double cost_ns = 0.0;    ///< estimated CPU cost of this node alone.
};

/// Cardinality and cost estimation over plan trees, from TableStats
/// (histograms, NDV, null fractions) and the CostModel. Pure functions of
/// the plan and the statistics snapshot — deterministic by construction.
class CardinalityEstimator {
 public:
  CardinalityEstimator(const StatsCatalog& stats, const CostModel& model,
                       const db::Database& database,
                       db::JoinAlgo default_algo = db::JoinAlgo::kRadix);

  /// Estimated output rows of the subtree rooted at `node`; fills
  /// `schema_out` with the subtree's output schema when non-null.
  double EstimateRows(const db::PlanNode& node,
                      db::Schema* schema_out = nullptr) const;

  /// Selectivity in [0, 1] of `predicate` over rows of `input` — the
  /// product over top-level conjuncts of per-conjunct estimates
  /// (histogram/NDV for simple predicates, NDV for column equalities,
  /// a quarter for anything opaque).
  double Selectivity(const db::ExprPtr& predicate,
                     const db::Schema& input) const;

  /// Selectivity of the equi-join edge `left_col = right_col`:
  /// 1 / max(ndv(left), ndv(right)), with each NDV clamped to its side's
  /// row count and falling back to the row count when unknown.
  double JoinSelectivity(const std::string& left_col, double left_rows,
                         const std::string& right_col,
                         double right_rows) const;

  /// NDV of base column `name` clamped to `rows`; `rows` when unknown.
  double ColumnNdv(const std::string& name, double rows) const;

  /// Appends one NodeEstimate per plan node in post-order (children
  /// first) — positionally aligned with Profiler::traces() of a run of
  /// the same plan.
  void EstimatePlan(const db::PlanNode& node,
                    std::vector<NodeEstimate>* out) const;

  const CostModel& model() const { return model_; }

 private:
  struct SubtreeInfo {
    db::Schema schema;
    double rows = 0.0;
  };
  SubtreeInfo Walk(const db::PlanNode& node,
                   std::vector<NodeEstimate>* out) const;

  const StatsCatalog& stats_;
  CostModel model_;
  const db::Database& database_;
  db::JoinAlgo default_algo_;
};

/// Output schema of a plan subtree, reconstructed from PlanSpec alone
/// (the same contract the reference interpreter runs on).
db::Schema OutputSchema(const db::PlanNode& node,
                        const db::Database& database);

}  // namespace opt
}  // namespace perfeval

#endif  // PERFEVAL_OPT_ESTIMATOR_H_
