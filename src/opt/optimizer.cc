#include "opt/optimizer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"

namespace perfeval {
namespace opt {

namespace {

using db::PlanKind;
using db::PlanPtr;

bool IsJoin(PlanKind kind) {
  return kind == PlanKind::kHashJoin || kind == PlanKind::kMergeJoin;
}

/// One equality between two columns: a candidate join edge.
struct KeyPair {
  std::string left;
  std::string right;
};

/// A join-graph edge between two region leaves. 1 key pair normally; 2
/// when it came from a composite-key join (HashJoin2), whose 31-bit key
/// packing the original plan already proved safe.
struct Edge {
  size_t a = 0;
  size_t b = 0;  ///< pairs[*].left lives in leaf a, .right in leaf b.
  std::vector<KeyPair> pairs;
};

/// A maximal region of equi-join operators: its leaf subtrees (anything
/// that is not a join or an absorbable column-equality filter) and the
/// raw key-name equalities connecting them.
struct Region {
  std::vector<PlanPtr> leaves;
  std::vector<std::vector<KeyPair>> raw_edges;  ///< unresolved, by name.
  bool ok = true;
};

/// An emitted (sub)plan plus its output schema.
struct Emitted {
  PlanPtr plan;
  db::Schema schema;
};

class Rewriter {
 public:
  Rewriter(const db::Database& database, const CostModel& model)
      : database_(database),
        stats_(database),
        estimator_(stats_, model, database,
                   database.options().join_algo),
        model_(model) {}

  PlanPtr Rewrite(const PlanPtr& node);

  int regions = 0;
  int reordered = 0;

 private:
  void Gather(const PlanPtr& node, Region* region);
  PlanPtr OptimizeRegion(const PlanPtr& root);

  const db::Database& database_;
  StatsCatalog stats_;
  CardinalityEstimator estimator_;
  CostModel model_;
};

/// Rebuilds a non-join node around new children via the public factories.
/// Safe because every rewritten child keeps its original output schema,
/// so the node's index-bound expressions still resolve.
PlanPtr RebuildNode(const PlanPtr& node, std::vector<PlanPtr> kids) {
  db::PlanSpec spec = node->Spec();
  switch (spec.kind) {
    case PlanKind::kScan:
    case PlanKind::kFilterScan:
      return node;
    case PlanKind::kFilter:
      return db::Filter(std::move(kids[0]), spec.predicate);
    case PlanKind::kProject:
      return db::Project(std::move(kids[0]), spec.exprs, spec.names);
    case PlanKind::kAggregate:
      return db::Aggregate(std::move(kids[0]), spec.group_by,
                           spec.aggregates);
    case PlanKind::kSort:
      return db::Sort(std::move(kids[0]), spec.sort_keys);
    case PlanKind::kLimit:
      return db::Limit(std::move(kids[0]), spec.limit);
    case PlanKind::kTopN:
      return db::TopN(std::move(kids[0]), spec.sort_keys, spec.limit);
    case PlanKind::kHashJoin:
    case PlanKind::kMergeJoin:
      PERFEVAL_CHECK(false) << "joins are handled by OptimizeRegion";
  }
  return node;
}

int PopCount(size_t mask) {
  int count = 0;
  while (mask != 0) {
    mask &= mask - 1;
    ++count;
  }
  return count;
}

}  // namespace

PlanPtr Rewriter::Rewrite(const PlanPtr& node) {
  if (IsJoin(node->Spec().kind)) {
    return OptimizeRegion(node);
  }
  std::vector<PlanPtr> kids = node->SharedChildren();
  bool kid_changed = false;
  for (PlanPtr& kid : kids) {
    PlanPtr rewritten = Rewrite(kid);
    kid_changed |= rewritten != kid;
    kid = std::move(rewritten);
  }
  if (!kid_changed) {
    return node;
  }
  return RebuildNode(node, std::move(kids));
}

void Rewriter::Gather(const PlanPtr& node, Region* region) {
  db::PlanSpec spec = node->Spec();
  if (IsJoin(spec.kind)) {
    std::vector<PlanPtr> kids = node->SharedChildren();
    Gather(kids[0], region);
    Gather(kids[1], region);
    std::vector<KeyPair> pairs;
    for (size_t k = 0; k < spec.left_keys.size(); ++k) {
      pairs.push_back({spec.left_keys[k], spec.right_keys[k]});
    }
    region->raw_edges.push_back(std::move(pairs));
    return;
  }
  if (spec.kind == PlanKind::kFilter && spec.predicate != nullptr) {
    // Absorb the filter when every conjunct is a column=column equality —
    // those are join edges written as filters (Q5's c_nationkey =
    // s_nationkey). Anything else bounds the region here: rebinding an
    // arbitrary predicate across a reorder is not safely possible, since
    // its expressions hold column indices of this exact subtree schema.
    std::vector<db::ExprPtr> conjuncts;
    spec.predicate->CollectConjuncts(&conjuncts, spec.predicate);
    std::vector<std::pair<size_t, size_t>> equalities;
    bool all_equalities = !conjuncts.empty();
    for (const db::ExprPtr& conjunct : conjuncts) {
      size_t left = 0;
      size_t right = 0;
      if (conjunct->AsColumnEquality(&left, &right)) {
        equalities.emplace_back(left, right);
      } else {
        all_equalities = false;
        break;
      }
    }
    if (all_equalities) {
      std::vector<PlanPtr> kids = node->SharedChildren();
      db::Schema child_schema = OutputSchema(*kids[0], database_);
      bool indices_ok = true;
      for (const auto& [left, right] : equalities) {
        indices_ok &= left < child_schema.num_columns() &&
                      right < child_schema.num_columns();
      }
      if (indices_ok) {
        Gather(kids[0], region);
        for (const auto& [left, right] : equalities) {
          region->raw_edges.push_back(
              {{child_schema.column(left).name,
                child_schema.column(right).name}});
        }
        return;
      }
    }
  }
  region->leaves.push_back(node);
}

PlanPtr Rewriter::OptimizeRegion(const PlanPtr& root) {
  ++regions;
  Region region;
  Gather(root, &region);
  size_t n = region.leaves.size();
  if (n < 2 || n > kMaxDpLeaves) {
    return root;
  }

  // Leaf schemas, estimates, and the column-name -> leaf map. Bail (keep
  // the rule-only shape) on any duplicate name across leaves: rebinding
  // by name would be ambiguous.
  std::vector<db::Schema> leaf_schemas(n);
  std::vector<double> leaf_rows(n);
  std::unordered_map<std::string, size_t> leaf_of;
  for (size_t i = 0; i < n; ++i) {
    leaf_schemas[i] = OutputSchema(*region.leaves[i], database_);
    leaf_rows[i] =
        std::max(estimator_.EstimateRows(*region.leaves[i]), 1.0);
    for (const db::ColumnSpec& spec : leaf_schemas[i].columns()) {
      auto [it, inserted] = leaf_of.try_emplace(spec.name, i);
      if (!inserted) {
        return root;
      }
    }
  }

  // Resolve raw edges to leaf pairs. A multi-pair (composite) edge stays
  // composite only when both pairs connect the same two leaves in the
  // same orientation; otherwise each pair becomes its own edge. A pair
  // whose two columns live in one leaf is a local predicate, re-applied
  // as a residual filter at the top of the region.
  std::vector<Edge> edges;
  std::vector<KeyPair> residual_pairs;
  for (const std::vector<KeyPair>& pairs : region.raw_edges) {
    std::vector<Edge> resolved;
    bool ok = true;
    for (const KeyPair& pair : pairs) {
      auto left_it = leaf_of.find(pair.left);
      auto right_it = leaf_of.find(pair.right);
      if (left_it == leaf_of.end() || right_it == leaf_of.end()) {
        ok = false;
        break;
      }
      if (left_it->second == right_it->second) {
        residual_pairs.push_back(pair);
        continue;
      }
      Edge edge;
      edge.a = left_it->second;
      edge.b = right_it->second;
      edge.pairs = {pair};
      resolved.push_back(std::move(edge));
    }
    if (!ok) {
      return root;
    }
    if (resolved.size() == 2 && resolved[0].a == resolved[1].a &&
        resolved[0].b == resolved[1].b) {
      resolved[0].pairs.push_back(resolved[1].pairs[0]);
      resolved.pop_back();
    }
    for (Edge& edge : resolved) {
      edges.push_back(std::move(edge));
    }
  }
  if (edges.empty()) {
    return root;
  }

  size_t full = (size_t{1} << n) - 1;

  // Connectivity of every leaf subset under the join graph.
  std::vector<char> connected(full + 1, 0);
  for (size_t mask = 1; mask <= full; ++mask) {
    size_t seed = mask & (~mask + 1);  // lowest set bit.
    size_t reach = seed;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const Edge& edge : edges) {
        size_t abit = size_t{1} << edge.a;
        size_t bbit = size_t{1} << edge.b;
        if ((mask & abit) == 0 || (mask & bbit) == 0) {
          continue;
        }
        if ((reach & abit) != 0 && (reach & bbit) == 0) {
          reach |= bbit;
          grew = true;
        } else if ((reach & bbit) != 0 && (reach & abit) == 0) {
          reach |= abit;
          grew = true;
        }
      }
    }
    connected[mask] = reach == mask ? 1 : 0;
  }
  if (!connected[full]) {
    // Cross product required: fall back to the written plan shape.
    return root;
  }

  // Estimated cardinality of every subset: the product of its leaf
  // cardinalities discounted by 1/max(ndv) once per internal edge pair.
  std::vector<double> card(full + 1, 1.0);
  for (size_t mask = 1; mask <= full; ++mask) {
    double rows = 1.0;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        rows *= leaf_rows[i];
      }
    }
    for (const Edge& edge : edges) {
      if (((mask >> edge.a) & 1) && ((mask >> edge.b) & 1)) {
        for (const KeyPair& pair : edge.pairs) {
          rows *= estimator_.JoinSelectivity(pair.left, leaf_rows[edge.a],
                                             pair.right,
                                             leaf_rows[edge.b]);
        }
      }
    }
    card[mask] = std::max(rows, 1.0);
  }

  // DP over connected subgraphs. For each subset: the cheapest split
  // into two connected halves bridged by at least one edge, trying every
  // join algorithm; the probe (outer) side is the left half. Fixed
  // enumeration order + strict improvement = deterministic plans.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const db::JoinAlgo kAlgos[] = {db::JoinAlgo::kLegacy, db::JoinAlgo::kHash,
                                 db::JoinAlgo::kRadix, db::JoinAlgo::kMerge};
  std::vector<double> best_cost(full + 1, kInf);
  std::vector<size_t> best_split(full + 1, 0);
  std::vector<int> best_edge(full + 1, -1);
  std::vector<db::JoinAlgo> best_algo(full + 1, db::JoinAlgo::kHash);
  for (size_t i = 0; i < n; ++i) {
    best_cost[size_t{1} << i] = 0.0;
  }
  for (size_t mask = 1; mask <= full; ++mask) {
    if (PopCount(mask) < 2 || !connected[mask]) {
      continue;
    }
    for (size_t left = (mask - 1) & mask; left != 0;
         left = (left - 1) & mask) {
      size_t right = mask ^ left;
      if (!connected[left] || !connected[right] ||
          best_cost[left] == kInf || best_cost[right] == kInf) {
        continue;
      }
      // First edge bridging the halves becomes the join key; the rest
      // are residual equality filters over the join output.
      int join_edge = -1;
      int extra_edges = 0;
      for (size_t e = 0; e < edges.size(); ++e) {
        size_t abit = size_t{1} << edges[e].a;
        size_t bbit = size_t{1} << edges[e].b;
        bool crosses = ((left & abit) != 0 && (right & bbit) != 0) ||
                       ((left & bbit) != 0 && (right & abit) != 0);
        if (!crosses) {
          continue;
        }
        if (join_edge < 0) {
          join_edge = static_cast<int>(e);
        } else {
          ++extra_edges;
        }
      }
      if (join_edge < 0) {
        continue;
      }
      double base = best_cost[left] + best_cost[right] +
                    static_cast<double>(extra_edges) * card[mask] *
                        model_.cpu_term_ns;
      for (db::JoinAlgo algo : kAlgos) {
        double cost = base + model_.JoinCost(algo, card[left], card[right],
                                             card[mask]);
        if (cost < best_cost[mask]) {
          best_cost[mask] = cost;
          best_split[mask] = left;
          best_edge[mask] = join_edge;
          best_algo[mask] = algo;
        }
      }
    }
  }
  if (best_cost[full] == kInf) {
    return root;
  }

  // Emit the chosen tree. Leaves are recursively rewritten (regions
  // below an aggregate or project boundary optimize independently).
  std::function<Emitted(size_t)> emit = [&](size_t mask) -> Emitted {
    if (PopCount(mask) == 1) {
      size_t i = 0;
      while (((mask >> i) & 1) == 0) {
        ++i;
      }
      return {Rewrite(region.leaves[i]), leaf_schemas[i]};
    }
    size_t left_mask = best_split[mask];
    size_t right_mask = mask ^ left_mask;
    Emitted left = emit(left_mask);
    Emitted right = emit(right_mask);
    db::Schema joined;
    {
      std::vector<db::ColumnSpec> specs = left.schema.columns();
      for (const db::ColumnSpec& spec : right.schema.columns()) {
        specs.push_back(spec);
      }
      joined = db::Schema(std::move(specs));
    }
    const Edge& edge = edges[static_cast<size_t>(best_edge[mask])];
    bool a_is_left = ((left_mask >> edge.a) & 1) != 0;
    std::vector<std::string> left_keys;
    std::vector<std::string> right_keys;
    for (const KeyPair& pair : edge.pairs) {
      left_keys.push_back(a_is_left ? pair.left : pair.right);
      right_keys.push_back(a_is_left ? pair.right : pair.left);
    }
    PlanPtr plan = db::HashJoinWith(left.plan, right.plan,
                                    std::move(left_keys),
                                    std::move(right_keys), best_algo[mask]);
    // Any other edge bridging the halves is applied as an equality
    // filter right here, so subset cardinalities stay consistent.
    for (size_t e = 0; e < edges.size(); ++e) {
      if (static_cast<int>(e) == best_edge[mask]) {
        continue;
      }
      size_t abit = size_t{1} << edges[e].a;
      size_t bbit = size_t{1} << edges[e].b;
      bool crosses =
          ((left_mask & abit) != 0 && (right_mask & bbit) != 0) ||
          ((left_mask & bbit) != 0 && (right_mask & abit) != 0);
      if (!crosses) {
        continue;
      }
      for (const KeyPair& pair : edges[e].pairs) {
        plan = db::Filter(plan, db::Eq(db::Col(joined, pair.left),
                                       db::Col(joined, pair.right)));
      }
    }
    return {std::move(plan), std::move(joined)};
  };
  Emitted emitted = emit(full);

  // Local (single-leaf) equalities absorbed from filters re-apply on top.
  for (const KeyPair& pair : residual_pairs) {
    emitted.plan =
        db::Filter(emitted.plan, db::Eq(db::Col(emitted.schema, pair.left),
                                        db::Col(emitted.schema, pair.right)));
  }

  // Restore the original column order when the reorder changed it, so
  // every downstream index-bound expression still resolves correctly.
  db::Schema original = OutputSchema(*root, database_);
  bool same_order =
      original.num_columns() == emitted.schema.num_columns();
  if (same_order) {
    for (size_t i = 0; i < original.num_columns(); ++i) {
      if (original.column(i).name != emitted.schema.column(i).name) {
        same_order = false;
        break;
      }
    }
  }
  if (!same_order) {
    ++reordered;
    std::vector<db::ExprPtr> exprs;
    std::vector<std::string> names;
    for (const db::ColumnSpec& spec : original.columns()) {
      exprs.push_back(db::Col(emitted.schema, spec.name));
      names.push_back(spec.name);
    }
    emitted.plan =
        db::Project(emitted.plan, std::move(exprs), std::move(names));
  }
  return emitted.plan;
}

OptimizeResult OptimizeWith(const PlanPtr& plan,
                            const db::Database& database,
                            const CostModel& model) {
  Rewriter rewriter(database, model);
  OptimizeResult result;
  result.plan = rewriter.Rewrite(plan);
  result.regions = rewriter.regions;
  result.reordered = rewriter.reordered;
  result.changed = result.plan != plan;
  return result;
}

OptimizeResult Optimize(const db::PlanPtr& plan,
                        const db::Database& database) {
  return OptimizeWith(plan, database, CostModel::Default());
}

}  // namespace opt
}  // namespace perfeval
