#ifndef PERFEVAL_STATS_OUTLIERS_H_
#define PERFEVAL_STATS_OUTLIERS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace perfeval {
namespace stats {

/// Tukey-fence outlier classification of a sample: values outside
/// [Q1 - k*IQR, Q3 + k*IQR] are outliers (k = 1.5 by convention, 3.0 for
/// "far out"). Measurement harnesses use this to flag runs perturbed by
/// background activity before aggregating — a concrete guard for the
/// paper's "variation due to experimental error" warning (slide 59).
struct OutlierReport {
  double q1 = 0.0;
  double q3 = 0.0;
  double lower_fence = 0.0;
  double upper_fence = 0.0;
  std::vector<size_t> outlier_indices;  ///< into the input sample.

  bool HasOutliers() const { return !outlier_indices.empty(); }
  std::string ToString() const;
};

/// Classifies `samples` (>= 4 values) with fence factor `k`.
OutlierReport DetectOutliers(const std::vector<double>& samples,
                             double k = 1.5);

/// Returns `samples` with outliers removed (k-fence). When everything
/// would be removed (degenerate), returns the input unchanged.
std::vector<double> RemoveOutliers(const std::vector<double>& samples,
                                   double k = 1.5);

}  // namespace stats
}  // namespace perfeval

#endif  // PERFEVAL_STATS_OUTLIERS_H_
