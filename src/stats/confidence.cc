#include "stats/confidence.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/string_util.h"
#include "stats/descriptive.h"
#include "stats/tdist.h"

namespace perfeval {
namespace stats {

std::string ConfidenceInterval::ToString() const {
  return StrFormat("%.6g [%.6g, %.6g] @ %.0f%%", mean, lower, upper,
                   confidence * 100.0);
}

ConfidenceInterval MeanConfidenceInterval(const std::vector<double>& samples,
                                          double confidence) {
  PERFEVAL_CHECK_GE(samples.size(), 1u)
      << "confidence interval needs >= 1 sample";
  PERFEVAL_CHECK_GT(confidence, 0.0);
  PERFEVAL_CHECK_LT(confidence, 1.0);
  if (samples.size() == 1) {
    // Zero degrees of freedom: the sample variance is undefined, so the
    // only defensible interval is unbounded — not a garbage finite one
    // computed from a 0/0 standard error.
    ConfidenceInterval ci;
    ci.mean = samples[0];
    ci.lower = -std::numeric_limits<double>::infinity();
    ci.upper = std::numeric_limits<double>::infinity();
    ci.confidence = confidence;
    return ci;
  }
  double mean = Mean(samples);
  double stderr_mean =
      StdDev(samples) / std::sqrt(static_cast<double>(samples.size()));
  double df = static_cast<double>(samples.size() - 1);
  double t = TwoSidedTCritical(confidence, df);
  ConfidenceInterval ci;
  ci.mean = mean;
  ci.lower = mean - t * stderr_mean;
  ci.upper = mean + t * stderr_mean;
  ci.confidence = confidence;
  return ci;
}

ConfidenceInterval ProportionConfidenceInterval(int64_t successes,
                                                int64_t trials,
                                                double confidence) {
  PERFEVAL_CHECK_GE(trials, 1);
  PERFEVAL_CHECK_GE(successes, 0);
  PERFEVAL_CHECK_LE(successes, trials);
  PERFEVAL_CHECK_GT(confidence, 0.0);
  PERFEVAL_CHECK_LT(confidence, 1.0);
  double p = static_cast<double>(successes) / static_cast<double>(trials);
  double z = NormalQuantile(1.0 - (1.0 - confidence) / 2.0);
  double half = z * std::sqrt(p * (1.0 - p) / static_cast<double>(trials));
  ConfidenceInterval ci;
  ci.mean = p;
  ci.lower = p - half < 0.0 ? 0.0 : p - half;
  ci.upper = p + half > 1.0 ? 1.0 : p + half;
  ci.confidence = confidence;
  return ci;
}

int64_t RequiredReplications(const std::vector<double>& pilot_samples,
                             double confidence, double relative_error) {
  PERFEVAL_CHECK_GE(pilot_samples.size(), 2u);
  PERFEVAL_CHECK_GT(relative_error, 0.0);
  double mean = Mean(pilot_samples);
  PERFEVAL_CHECK(mean != 0.0) << "relative error undefined for zero mean";
  double sd = StdDev(pilot_samples);
  double df = static_cast<double>(pilot_samples.size() - 1);
  double t = TwoSidedTCritical(confidence, df);
  double n = (t * sd / (relative_error * std::fabs(mean)));
  n = n * n;
  int64_t needed = static_cast<int64_t>(std::ceil(n));
  return needed < 2 ? 2 : needed;
}

}  // namespace stats
}  // namespace perfeval
