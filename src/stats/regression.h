#ifndef PERFEVAL_STATS_REGRESSION_H_
#define PERFEVAL_STATS_REGRESSION_H_

#include <string>
#include <vector>

#include "stats/confidence.h"

namespace perfeval {
namespace stats {

/// Ordinary-least-squares fit of y = intercept + slope * x.
///
/// Cost-model fitting is a recurring move in performance evaluation
/// (e.g. scan time = fixed + per-seek * seeks): the fit quantifies the
/// per-unit cost and r^2 says how much of the variation the model
/// explains — the regression-model view of slides 70-73 for a continuous
/// factor.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  double residual_stderr = 0.0;     ///< s of the residuals.
  ConfidenceInterval slope_ci;      ///< 95% CI of the slope.
  size_t n = 0;

  /// Predicted y at `x`.
  double Predict(double x) const { return intercept + slope * x; }

  /// "y = a + b x (r^2 = ...)".
  std::string ToString() const;
};

/// Fits by least squares. Requires >= 3 points and non-constant x.
LinearFit FitLinear(const std::vector<double>& x,
                    const std::vector<double>& y);

}  // namespace stats
}  // namespace perfeval

#endif  // PERFEVAL_STATS_REGRESSION_H_
