#ifndef PERFEVAL_STATS_HISTOGRAM_H_
#define PERFEVAL_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace perfeval {
namespace stats {

/// One histogram cell [lower, upper) — the last cell is closed on both ends.
struct HistogramCell {
  double lower = 0.0;
  double upper = 0.0;
  int64_t count = 0;

  /// "[lower,upper)".
  std::string Label() const;
};

/// Equal-width histogram over a fixed range.
///
/// The paper warns about manipulating cell size (slide 144) and gives the
/// rule of thumb that every cell should hold at least five points; this
/// class computes the counts and exposes the rule as a query so presentation
/// code (report::ChartLint) can flag violations.
class Histogram {
 public:
  /// Builds `num_cells` equal-width cells covering [lower, upper].
  /// Requires num_cells >= 1 and lower <= upper; a degenerate range
  /// (lower == upper, e.g. all-equal samples) is widened to
  /// [lower - 0.5, upper + 0.5] instead of producing zero-width cells.
  Histogram(double lower, double upper, int num_cells);

  /// Adds one observation. Values outside [lower, upper] are clamped into
  /// the first/last cell and counted in `out_of_range()`.
  void Add(double value);

  void AddAll(const std::vector<double>& values);

  const std::vector<HistogramCell>& cells() const { return cells_; }
  int64_t total_count() const { return total_count_; }
  int64_t out_of_range() const { return out_of_range_; }

  /// Paper rule of thumb: every non-empty histogram needs >= `min_points`
  /// observations per cell. Returns true when all cells satisfy it.
  bool EveryCellHasAtLeast(int64_t min_points) const;

  /// Smallest cell count (0 for an empty histogram).
  int64_t MinCellCount() const;

  /// Sturges' rule suggestion for the number of cells given a sample size.
  static int SuggestCellCount(size_t sample_size);

  /// Multi-line text rendering: one row per cell with count and a bar.
  std::string ToString() const;

 private:
  double lower_;
  double upper_;
  double width_;
  std::vector<HistogramCell> cells_;
  int64_t total_count_ = 0;
  int64_t out_of_range_ = 0;
};

}  // namespace stats
}  // namespace perfeval

#endif  // PERFEVAL_STATS_HISTOGRAM_H_
