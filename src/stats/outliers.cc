#include "stats/outliers.h"

#include "common/check.h"
#include "common/string_util.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace stats {

std::string OutlierReport::ToString() const {
  return StrFormat(
      "IQR fences [%.6g, %.6g] (Q1=%.6g, Q3=%.6g): %zu outlier(s)",
      lower_fence, upper_fence, q1, q3, outlier_indices.size());
}

OutlierReport DetectOutliers(const std::vector<double>& samples, double k) {
  PERFEVAL_CHECK_GE(samples.size(), 4u)
      << "outlier fences need >= 4 samples";
  PERFEVAL_CHECK_GT(k, 0.0);
  OutlierReport report;
  report.q1 = Percentile(samples, 25.0);
  report.q3 = Percentile(samples, 75.0);
  double iqr = report.q3 - report.q1;
  report.lower_fence = report.q1 - k * iqr;
  report.upper_fence = report.q3 + k * iqr;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (samples[i] < report.lower_fence ||
        samples[i] > report.upper_fence) {
      report.outlier_indices.push_back(i);
    }
  }
  return report;
}

std::vector<double> RemoveOutliers(const std::vector<double>& samples,
                                   double k) {
  OutlierReport report = DetectOutliers(samples, k);
  if (report.outlier_indices.size() >= samples.size()) {
    return samples;
  }
  std::vector<double> kept;
  size_t next_outlier = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (next_outlier < report.outlier_indices.size() &&
        report.outlier_indices[next_outlier] == i) {
      ++next_outlier;
      continue;
    }
    kept.push_back(samples[i]);
  }
  return kept;
}

}  // namespace stats
}  // namespace perfeval
