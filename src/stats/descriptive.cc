#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace perfeval {
namespace stats {

double Sum(const std::vector<double>& samples) {
  double total = 0.0;
  for (double x : samples) {
    total += x;
  }
  return total;
}

double Mean(const std::vector<double>& samples) {
  PERFEVAL_CHECK(!samples.empty()) << "Mean of empty sample";
  return Sum(samples) / static_cast<double>(samples.size());
}

double Variance(const std::vector<double>& samples) {
  PERFEVAL_CHECK_GE(samples.size(), 2u) << "Variance needs >= 2 samples";
  double mean = Mean(samples);
  double accum = 0.0;
  for (double x : samples) {
    double d = x - mean;
    accum += d * d;
  }
  return accum / static_cast<double>(samples.size() - 1);
}

double StdDev(const std::vector<double>& samples) {
  return std::sqrt(Variance(samples));
}

double CoefficientOfVariation(const std::vector<double>& samples) {
  double mean = Mean(samples);
  PERFEVAL_CHECK(mean != 0.0) << "CoV undefined for zero mean";
  return StdDev(samples) / mean;
}

double Min(const std::vector<double>& samples) {
  PERFEVAL_CHECK(!samples.empty());
  return *std::min_element(samples.begin(), samples.end());
}

double Max(const std::vector<double>& samples) {
  PERFEVAL_CHECK(!samples.empty());
  return *std::max_element(samples.begin(), samples.end());
}

double Median(const std::vector<double>& samples) {
  return Percentile(samples, 50.0);
}

double Percentile(const std::vector<double>& samples, double p) {
  PERFEVAL_CHECK(!samples.empty());
  PERFEVAL_CHECK_GE(p, 0.0);
  PERFEVAL_CHECK_LE(p, 100.0);
  for (double x : samples) {
    PERFEVAL_CHECK(!std::isnan(x)) << "Percentile over NaN is undefined";
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double GeometricMean(const std::vector<double>& samples) {
  PERFEVAL_CHECK(!samples.empty());
  double log_sum = 0.0;
  for (double x : samples) {
    PERFEVAL_CHECK_GT(x, 0.0) << "GeometricMean needs positive samples";
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

double HarmonicMean(const std::vector<double>& samples) {
  PERFEVAL_CHECK(!samples.empty());
  double reciprocal_sum = 0.0;
  for (double x : samples) {
    PERFEVAL_CHECK_GT(x, 0.0) << "HarmonicMean needs positive samples";
    reciprocal_sum += 1.0 / x;
  }
  return static_cast<double>(samples.size()) / reciprocal_sum;
}

std::string Summary::ToString() const {
  return StrFormat("n=%zu mean=%.6g stddev=%.6g min=%.6g median=%.6g max=%.6g",
                   count, mean, stddev, min, median, max);
}

Summary Summarize(const std::vector<double>& samples) {
  PERFEVAL_CHECK(!samples.empty());
  Summary s;
  s.count = samples.size();
  s.mean = Mean(samples);
  s.stddev = samples.size() >= 2 ? StdDev(samples) : 0.0;
  s.min = Min(samples);
  s.max = Max(samples);
  s.median = Median(samples);
  return s;
}

}  // namespace stats
}  // namespace perfeval
