#ifndef PERFEVAL_STATS_COMPARE_H_
#define PERFEVAL_STATS_COMPARE_H_

#include <string>
#include <vector>

#include "stats/confidence.h"

namespace perfeval {
namespace stats {

/// Outcome of comparing two alternatives A and B on a lower-is-better
/// response (e.g. execution time). Per the paper (slide 142): if the CI of
/// the difference contains zero, the alternatives are statistically
/// indifferent — "MINE is better than YOURS" is not a legitimate claim.
enum class Verdict {
  kAIsBetter,
  kBIsBetter,
  kIndifferent,
};

const char* VerdictName(Verdict verdict);

/// Result of a two-alternative comparison.
struct Comparison {
  ConfidenceInterval difference;  ///< CI of mean(A) - mean(B).
  Verdict verdict = Verdict::kIndifferent;
  double mean_a = 0.0;
  double mean_b = 0.0;

  std::string ToString() const;
};

/// Paired comparison: samples a[i] and b[i] come from the same experiment
/// unit (e.g. the same query run on both systems). Builds the CI of the
/// per-pair difference. Requires equal sizes >= 2.
Comparison ComparePaired(const std::vector<double>& a,
                         const std::vector<double>& b, double confidence);

/// Unpaired comparison with unequal variances (Welch's t interval).
/// Requires both samples to have >= 2 observations.
Comparison CompareUnpaired(const std::vector<double>& a,
                           const std::vector<double>& b, double confidence);

/// Speed-up of `after` relative to `before`: before/after for lower-is-better
/// metrics. > 1 means `after` is faster.
double Speedup(double before, double after);

/// Scale-up efficiency: (work_large/work_small) / (time_large/time_small).
/// 1.0 means perfect (linear) scale-up.
double ScaleupEfficiency(double work_small, double time_small,
                         double work_large, double time_large);

}  // namespace stats
}  // namespace perfeval

#endif  // PERFEVAL_STATS_COMPARE_H_
