#ifndef PERFEVAL_STATS_BOOTSTRAP_H_
#define PERFEVAL_STATS_BOOTSTRAP_H_

#include <cstdint>
#include <vector>

#include "stats/confidence.h"

namespace perfeval {
namespace stats {

/// Resamples drawn per bootstrap interval. Large enough that the
/// percentile endpoints are stable to well under the reporting precision.
constexpr int kBootstrapResamples = 10000;

/// Percentile-bootstrap confidence interval for the mean of `samples`:
/// draw `kBootstrapResamples` resamples with replacement, take the
/// empirical (alpha/2, 1-alpha/2) quantiles of the resampled means. Unlike
/// the Student-t interval it assumes nothing about the sample
/// distribution — benchmark timings are routinely skewed and multi-modal,
/// which is why Kalibera & Jones recommend bootstrap intervals for
/// reporting measured speedups. Deterministic: `seed` fully determines the
/// resampling. Requires >= 2 samples.
ConfidenceInterval BootstrapMeanCI(const std::vector<double>& samples,
                                   double confidence, uint64_t seed);

/// Percentile-bootstrap interval for the ratio mean(numerator) /
/// mean(denominator) — the shape of a reported speedup, where numerator
/// and denominator are independent per-repetition timings of the two
/// systems. Each resample draws both sides independently with
/// replacement. `mean` is the plug-in ratio of the full-sample means.
/// Requires >= 2 samples on each side and a strictly positive denominator
/// mean in every resample.
ConfidenceInterval BootstrapRatioCI(const std::vector<double>& numerator,
                                    const std::vector<double>& denominator,
                                    double confidence, uint64_t seed);

/// Percentile-bootstrap interval for the p-th percentile (p in [0, 100]) of
/// `samples` — the shape of a reported tail latency. Each resample draws n
/// values with replacement and takes its R-7 percentile; the interval is
/// the empirical (alpha/2, 1-alpha/2) band of those statistics. Tail
/// percentiles of small samples have wide, asymmetric intervals — which is
/// the point: a p99 reported from 200 requests should not look as certain
/// as one from 20000 (Kalibera & Jones; paper slides 140–143). `resamples`
/// can be lowered from the default when n is large and the caller computes
/// many intervals per run. Requires >= 2 samples, no NaNs.
ConfidenceInterval BootstrapPercentileCI(const std::vector<double>& samples,
                                         double percentile, double confidence,
                                         uint64_t seed,
                                         int resamples = kBootstrapResamples);

}  // namespace stats
}  // namespace perfeval

#endif  // PERFEVAL_STATS_BOOTSTRAP_H_
