#ifndef PERFEVAL_STATS_TDIST_H_
#define PERFEVAL_STATS_TDIST_H_

namespace perfeval {
namespace stats {

/// Cumulative distribution function of the standard normal.
double NormalCdf(double x);

/// Inverse standard-normal CDF (Acklam's rational approximation, refined by
/// one Halley step). `p` must be in (0, 1).
double NormalQuantile(double p);

/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// evaluation (Numerical Recipes style). x in [0, 1], a > 0, b > 0.
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Quantile of Student's t: the value t such that StudentTCdf(t, df) == p.
/// `p` must be in (0, 1), `df` >= 1.
double StudentTQuantile(double p, double df);

/// Two-sided critical value: t* with P(|T| <= t*) == confidence.
/// E.g. TwoSidedTCritical(0.95, 10) ≈ 2.228.
double TwoSidedTCritical(double confidence, double df);

}  // namespace stats
}  // namespace perfeval

#endif  // PERFEVAL_STATS_TDIST_H_
