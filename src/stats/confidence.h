#ifndef PERFEVAL_STATS_CONFIDENCE_H_
#define PERFEVAL_STATS_CONFIDENCE_H_

#include <string>
#include <vector>

namespace perfeval {
namespace stats {

/// A two-sided confidence interval around a point estimate.
///
/// The paper insists that random quantities be plotted *with* confidence
/// intervals (slide 142); every harness result in this library can carry one.
struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.0;  ///< e.g. 0.95

  double HalfWidth() const { return (upper - lower) / 2.0; }

  /// True when the two intervals share any point. Per the paper,
  /// overlapping intervals can mean the quantities are statistically
  /// indifferent.
  bool Overlaps(const ConfidenceInterval& other) const {
    return lower <= other.upper && other.lower <= upper;
  }

  bool Contains(double x) const { return lower <= x && x <= upper; }

  /// "mean [lower, upper] @ 95%".
  std::string ToString() const;
};

/// Student-t confidence interval for the mean of `samples`.
/// Requires >= 1 sample and confidence in (0, 1). With a single sample the
/// variance is undefined (zero degrees of freedom), so the interval is the
/// honest answer: mean = the sample, bounds = ±infinity. Earlier versions
/// aborted on n=1, which turned a legitimate pilot-run edge case into a
/// crash.
ConfidenceInterval MeanConfidenceInterval(const std::vector<double>& samples,
                                          double confidence);

/// Normal-approximation (Wald) interval for a proportion successes/trials.
/// Requires trials >= 1.
ConfidenceInterval ProportionConfidenceInterval(int64_t successes,
                                                int64_t trials,
                                                double confidence);

/// Number of replications needed so the half-width of the mean's CI is at
/// most `relative_error` * mean, given a pilot sample. (Jain, ch. 25 —
/// the paper's "replication" design parameter.) Returns at least 2.
int64_t RequiredReplications(const std::vector<double>& pilot_samples,
                             double confidence, double relative_error);

}  // namespace stats
}  // namespace perfeval

#endif  // PERFEVAL_STATS_CONFIDENCE_H_
