#include "stats/regression.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"
#include "stats/descriptive.h"
#include "stats/tdist.h"

namespace perfeval {
namespace stats {

std::string LinearFit::ToString() const {
  return StrFormat("y = %.6g + %.6g * x  (r^2 = %.4f, n = %zu)", intercept,
                   slope, r_squared, n);
}

LinearFit FitLinear(const std::vector<double>& x,
                    const std::vector<double>& y) {
  PERFEVAL_CHECK_EQ(x.size(), y.size());
  PERFEVAL_CHECK_GE(x.size(), 3u) << "linear fit needs >= 3 points";
  double x_mean = Mean(x);
  double y_mean = Mean(y);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - x_mean;
    double dy = y[i] - y_mean;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  PERFEVAL_CHECK_GT(sxx, 0.0) << "x values are constant";

  LinearFit fit;
  fit.n = x.size();
  fit.slope = sxy / sxx;
  fit.intercept = y_mean - fit.slope * x_mean;

  double ss_residual = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double r = y[i] - fit.Predict(x[i]);
    ss_residual += r * r;
  }
  fit.r_squared = syy > 0.0 ? 1.0 - ss_residual / syy : 1.0;
  double df = static_cast<double>(fit.n) - 2.0;
  fit.residual_stderr = std::sqrt(ss_residual / df);

  double slope_se = fit.residual_stderr / std::sqrt(sxx);
  double t = TwoSidedTCritical(0.95, df);
  fit.slope_ci.mean = fit.slope;
  fit.slope_ci.lower = fit.slope - t * slope_se;
  fit.slope_ci.upper = fit.slope + t * slope_se;
  fit.slope_ci.confidence = 0.95;
  return fit;
}

}  // namespace stats
}  // namespace perfeval
