#include "stats/compare.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"
#include "stats/descriptive.h"
#include "stats/tdist.h"

namespace perfeval {
namespace stats {
namespace {

Verdict VerdictFromDifferenceCi(const ConfidenceInterval& diff) {
  if (diff.Contains(0.0)) {
    return Verdict::kIndifferent;
  }
  // difference = mean(A) - mean(B), lower-is-better response:
  // strictly negative interval => A smaller => A better.
  return diff.upper < 0.0 ? Verdict::kAIsBetter : Verdict::kBIsBetter;
}

}  // namespace

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAIsBetter:
      return "A is better";
    case Verdict::kBIsBetter:
      return "B is better";
    case Verdict::kIndifferent:
      return "statistically indifferent";
  }
  return "unknown";
}

std::string Comparison::ToString() const {
  return StrFormat("mean(A)=%.6g mean(B)=%.6g diff CI %s => %s", mean_a,
                   mean_b, difference.ToString().c_str(),
                   VerdictName(verdict));
}

Comparison ComparePaired(const std::vector<double>& a,
                         const std::vector<double>& b, double confidence) {
  PERFEVAL_CHECK_EQ(a.size(), b.size());
  PERFEVAL_CHECK_GE(a.size(), 2u);
  std::vector<double> diffs(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    diffs[i] = a[i] - b[i];
  }
  Comparison cmp;
  cmp.mean_a = Mean(a);
  cmp.mean_b = Mean(b);
  cmp.difference = MeanConfidenceInterval(diffs, confidence);
  cmp.verdict = VerdictFromDifferenceCi(cmp.difference);
  return cmp;
}

Comparison CompareUnpaired(const std::vector<double>& a,
                           const std::vector<double>& b, double confidence) {
  PERFEVAL_CHECK_GE(a.size(), 2u);
  PERFEVAL_CHECK_GE(b.size(), 2u);
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  double va = Variance(a) / na;
  double vb = Variance(b) / nb;
  double se = std::sqrt(va + vb);
  // Welch–Satterthwaite degrees of freedom.
  double df;
  if (va + vb == 0.0) {
    df = na + nb - 2.0;
  } else {
    df = (va + vb) * (va + vb) /
         (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  }
  if (df < 1.0) {
    df = 1.0;
  }
  double t = TwoSidedTCritical(confidence, df);
  Comparison cmp;
  cmp.mean_a = Mean(a);
  cmp.mean_b = Mean(b);
  double d = cmp.mean_a - cmp.mean_b;
  cmp.difference.mean = d;
  cmp.difference.lower = d - t * se;
  cmp.difference.upper = d + t * se;
  cmp.difference.confidence = confidence;
  cmp.verdict = VerdictFromDifferenceCi(cmp.difference);
  return cmp;
}

double Speedup(double before, double after) {
  PERFEVAL_CHECK_GT(after, 0.0);
  return before / after;
}

double ScaleupEfficiency(double work_small, double time_small,
                         double work_large, double time_large) {
  PERFEVAL_CHECK_GT(work_small, 0.0);
  PERFEVAL_CHECK_GT(time_small, 0.0);
  PERFEVAL_CHECK_GT(time_large, 0.0);
  double work_ratio = work_large / work_small;
  double time_ratio = time_large / time_small;
  return work_ratio / time_ratio;
}

}  // namespace stats
}  // namespace perfeval
