#include "stats/anova.h"

#include "common/check.h"
#include "common/string_util.h"
#include "stats/descriptive.h"
#include "stats/tdist.h"

namespace perfeval {
namespace stats {

double FCdf(double f, double d1, double d2) {
  PERFEVAL_CHECK_GT(d1, 0.0);
  PERFEVAL_CHECK_GT(d2, 0.0);
  if (f <= 0.0) {
    return 0.0;
  }
  double x = d1 * f / (d1 * f + d2);
  return RegularizedIncompleteBeta(d1 / 2.0, d2 / 2.0, x);
}

const AnovaRow* AnovaTable::Find(const std::string& source) const {
  for (const AnovaRow& row : rows) {
    if (row.source == source) {
      return &row;
    }
  }
  return nullptr;
}

std::string AnovaTable::ToString() const {
  std::string out = StrFormat("%-16s %12s %6s %12s %10s %10s %5s\n",
                              "source", "SS", "df", "MS", "F", "p", "sig");
  for (const AnovaRow& row : rows) {
    if (row.f_statistic > 0.0) {
      out += StrFormat("%-16s %12.5g %6.0f %12.5g %10.3f %10.4g %5s\n",
                       row.source.c_str(), row.sum_of_squares,
                       row.degrees_of_freedom, row.mean_square,
                       row.f_statistic, row.p_value,
                       row.significant ? "*" : "");
    } else {
      out += StrFormat("%-16s %12.5g %6.0f %12.5g\n", row.source.c_str(),
                       row.sum_of_squares, row.degrees_of_freedom,
                       row.mean_square);
    }
  }
  return out;
}

AnovaTable OneWayAnova(const std::vector<std::vector<double>>& groups,
                       double alpha) {
  PERFEVAL_CHECK_GE(groups.size(), 2u);
  size_t total_n = 0;
  double grand_sum = 0.0;
  for (const std::vector<double>& group : groups) {
    PERFEVAL_CHECK_GE(group.size(), 2u)
        << "each group needs >= 2 observations";
    total_n += group.size();
    grand_sum += Sum(group);
  }
  double grand_mean = grand_sum / static_cast<double>(total_n);

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const std::vector<double>& group : groups) {
    double group_mean = Mean(group);
    double d = group_mean - grand_mean;
    ss_between += static_cast<double>(group.size()) * d * d;
    for (double x : group) {
      ss_within += (x - group_mean) * (x - group_mean);
    }
  }
  double df_between = static_cast<double>(groups.size()) - 1.0;
  double df_within =
      static_cast<double>(total_n) - static_cast<double>(groups.size());
  double ms_between = ss_between / df_between;
  double ms_within = df_within > 0 ? ss_within / df_within : 0.0;

  AnovaTable table;
  table.alpha = alpha;
  AnovaRow between;
  between.source = "between";
  between.sum_of_squares = ss_between;
  between.degrees_of_freedom = df_between;
  between.mean_square = ms_between;
  if (ms_within > 0.0) {
    between.f_statistic = ms_between / ms_within;
    between.p_value = 1.0 - FCdf(between.f_statistic, df_between, df_within);
  } else {
    // Zero within-group variance: any between-group difference is exact.
    between.f_statistic = ss_between > 0.0 ? 1e308 : 0.0;
    between.p_value = ss_between > 0.0 ? 0.0 : 1.0;
  }
  between.significant = between.p_value < alpha;
  table.rows.push_back(between);

  AnovaRow error;
  error.source = "error";
  error.sum_of_squares = ss_within;
  error.degrees_of_freedom = df_within;
  error.mean_square = ms_within;
  table.rows.push_back(error);

  AnovaRow total;
  total.source = "total";
  total.sum_of_squares = ss_between + ss_within;
  total.degrees_of_freedom = static_cast<double>(total_n) - 1.0;
  total.mean_square = 0.0;
  table.rows.push_back(total);
  return table;
}

}  // namespace stats
}  // namespace perfeval
