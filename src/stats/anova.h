#ifndef PERFEVAL_STATS_ANOVA_H_
#define PERFEVAL_STATS_ANOVA_H_

#include <string>
#include <vector>

namespace perfeval {
namespace stats {

/// CDF of the F distribution with (d1, d2) degrees of freedom.
double FCdf(double f, double d1, double d2);

/// One row of an ANOVA table.
struct AnovaRow {
  std::string source;         ///< effect name or "error"/"total".
  double sum_of_squares = 0;
  double degrees_of_freedom = 0;
  double mean_square = 0;
  double f_statistic = 0;     ///< 0 for error/total rows.
  double p_value = 1.0;
  bool significant = false;   ///< p < alpha.
};

/// A complete ANOVA decomposition.
struct AnovaTable {
  std::vector<AnovaRow> rows;  ///< effects, then error, then total.
  double alpha = 0.05;

  /// Row by source name (nullptr when absent).
  const AnovaRow* Find(const std::string& source) const;

  /// Aligned text rendering.
  std::string ToString() const;
};

/// One-way ANOVA over k independent groups: is at least one group mean
/// different? The paper's first "common mistake" (slide 59) is ignoring
/// experimental error; the F test is the standard guard against it.
/// Requires >= 2 groups, each with >= 2 observations.
AnovaTable OneWayAnova(const std::vector<std::vector<double>>& groups,
                       double alpha = 0.05);

}  // namespace stats
}  // namespace perfeval

#endif  // PERFEVAL_STATS_ANOVA_H_
