#include "stats/tdist.h"

#include <cmath>

#include "common/check.h"

namespace perfeval {
namespace stats {
namespace {

/// log Gamma via Lanczos approximation (g=7, n=9), accurate to ~1e-13.
double LogGamma(double x) {
  static const double kCoefficients[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(3.14159265358979323846 /
                    std::sin(3.14159265358979323846 * x)) -
           LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoefficients[0];
  double t = x + 7.5;
  for (int i = 1; i < 9; ++i) {
    a += kCoefficients[i] / (x + static_cast<double>(i));
  }
  return 0.5 * std::log(2.0 * 3.14159265358979323846) +
         (x + 0.5) * std::log(t) - t + std::log(a);
}

/// Continued fraction for the incomplete beta function (NR "betacf").
double BetaContinuedFraction(double a, double b, double x) {
  const int kMaxIterations = 300;
  const double kEpsilon = 3.0e-14;
  const double kFloor = 1.0e-30;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFloor) {
    d = kFloor;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFloor) {
      d = kFloor;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFloor) {
      c = kFloor;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFloor) {
      d = kFloor;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFloor) {
      c = kFloor;
    }
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) {
      break;
    }
  }
  return h;
}

}  // namespace

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double NormalQuantile(double p) {
  PERFEVAL_CHECK_GT(p, 0.0);
  PERFEVAL_CHECK_LT(p, 1.0);
  // Acklam's rational approximation.
  static const double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                              -2.759285104469687e+02, 1.383577518672690e+02,
                              -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                              -1.556989798598866e+02, 6.680131188771972e+01,
                              -1.328068155288572e+01};
  static const double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                              -2.400758277161838e+00, -2.549732539343734e+00,
                              4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                              2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double x = 0.0;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
             std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  PERFEVAL_CHECK_GT(a, 0.0);
  PERFEVAL_CHECK_GT(b, 0.0);
  PERFEVAL_CHECK_GE(x, 0.0);
  PERFEVAL_CHECK_LE(x, 1.0);
  if (x == 0.0) {
    return 0.0;
  }
  if (x == 1.0) {
    return 1.0;
  }
  double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                    a * std::log(x) + b * std::log(1.0 - x);
  double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  PERFEVAL_CHECK_GE(df, 1.0);
  double x = df / (df + t * t);
  double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double StudentTQuantile(double p, double df) {
  PERFEVAL_CHECK_GT(p, 0.0);
  PERFEVAL_CHECK_LT(p, 1.0);
  PERFEVAL_CHECK_GE(df, 1.0);
  if (p == 0.5) {
    return 0.0;
  }
  // Bracket around the normal quantile, then bisect (t CDF is monotone).
  double lo = -1.0;
  double hi = 1.0;
  double guess = NormalQuantile(p);
  lo = guess - 1.0;
  hi = guess + 1.0;
  while (StudentTCdf(lo, df) > p) {
    lo = lo * 2.0 - 1.0;
  }
  while (StudentTCdf(hi, df) < p) {
    hi = hi * 2.0 + 1.0;
  }
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) {
      break;
    }
  }
  return 0.5 * (lo + hi);
}

double TwoSidedTCritical(double confidence, double df) {
  PERFEVAL_CHECK_GT(confidence, 0.0);
  PERFEVAL_CHECK_LT(confidence, 1.0);
  double upper_tail_p = 1.0 - (1.0 - confidence) / 2.0;
  return StudentTQuantile(upper_tail_p, df);
}

}  // namespace stats
}  // namespace perfeval
