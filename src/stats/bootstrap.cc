#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace stats {
namespace {

double MeanOf(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) {
    sum += x;
  }
  return sum / static_cast<double>(v.size());
}

double ResampledMean(const std::vector<double>& samples, Pcg32* rng) {
  double sum = 0.0;
  uint32_t n = static_cast<uint32_t>(samples.size());
  for (uint32_t i = 0; i < n; ++i) {
    sum += samples[rng->NextBounded(n)];
  }
  return sum / static_cast<double>(n);
}

/// Empirical quantile by linear interpolation over the sorted resample
/// statistics.
double Quantile(const std::vector<double>& sorted, double q) {
  double position = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(position));
  size_t hi = static_cast<size_t>(std::ceil(position));
  double frac = position - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

ConfidenceInterval FromResamples(std::vector<double>* resamples, double mean,
                                 double confidence) {
  std::sort(resamples->begin(), resamples->end());
  double alpha = 1.0 - confidence;
  ConfidenceInterval ci;
  ci.mean = mean;
  ci.lower = Quantile(*resamples, alpha / 2.0);
  ci.upper = Quantile(*resamples, 1.0 - alpha / 2.0);
  ci.confidence = confidence;
  return ci;
}

}  // namespace

ConfidenceInterval BootstrapMeanCI(const std::vector<double>& samples,
                                   double confidence, uint64_t seed) {
  PERFEVAL_CHECK_GE(samples.size(), 2u);
  PERFEVAL_CHECK(confidence > 0.0 && confidence < 1.0);
  Pcg32 rng(SplitMix64(seed), SplitMix64(seed ^ 0x62e2ac0dULL));
  std::vector<double> resamples(kBootstrapResamples);
  for (double& stat : resamples) {
    stat = ResampledMean(samples, &rng);
  }
  return FromResamples(&resamples, MeanOf(samples), confidence);
}

ConfidenceInterval BootstrapRatioCI(const std::vector<double>& numerator,
                                    const std::vector<double>& denominator,
                                    double confidence, uint64_t seed) {
  PERFEVAL_CHECK_GE(numerator.size(), 2u);
  PERFEVAL_CHECK_GE(denominator.size(), 2u);
  PERFEVAL_CHECK(confidence > 0.0 && confidence < 1.0);
  Pcg32 rng(SplitMix64(seed), SplitMix64(seed ^ 0x3c6ef372ULL));
  std::vector<double> resamples(kBootstrapResamples);
  for (double& stat : resamples) {
    double num = ResampledMean(numerator, &rng);
    double den = ResampledMean(denominator, &rng);
    PERFEVAL_CHECK_GT(den, 0.0) << "ratio bootstrap needs positive samples";
    stat = num / den;
  }
  double den_mean = MeanOf(denominator);
  PERFEVAL_CHECK_GT(den_mean, 0.0);
  return FromResamples(&resamples, MeanOf(numerator) / den_mean, confidence);
}

ConfidenceInterval BootstrapPercentileCI(const std::vector<double>& samples,
                                         double percentile, double confidence,
                                         uint64_t seed, int resamples) {
  PERFEVAL_CHECK_GE(samples.size(), 2u);
  PERFEVAL_CHECK(confidence > 0.0 && confidence < 1.0);
  PERFEVAL_CHECK_GE(percentile, 0.0);
  PERFEVAL_CHECK_LE(percentile, 100.0);
  PERFEVAL_CHECK_GE(resamples, 100);
  Pcg32 rng(SplitMix64(seed), SplitMix64(seed ^ 0x7f4a7c15ULL));
  uint32_t n = static_cast<uint32_t>(samples.size());
  std::vector<double> resample(samples.size());
  std::vector<double> statistics(resamples);
  for (double& stat : statistics) {
    for (double& value : resample) {
      value = samples[rng.NextBounded(n)];
    }
    stat = Percentile(resample, percentile);
  }
  return FromResamples(&statistics, Percentile(samples, percentile),
                       confidence);
}

}  // namespace stats
}  // namespace perfeval
