#ifndef PERFEVAL_STATS_DESCRIPTIVE_H_
#define PERFEVAL_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace perfeval {
namespace stats {

/// Sum of all samples.
double Sum(const std::vector<double>& samples);

/// Arithmetic mean. Requires at least one sample.
double Mean(const std::vector<double>& samples);

/// Unbiased sample variance (divides by n-1). Requires >= 2 samples.
double Variance(const std::vector<double>& samples);

/// Square root of Variance().
double StdDev(const std::vector<double>& samples);

/// StdDev / Mean. Requires a non-zero mean.
double CoefficientOfVariation(const std::vector<double>& samples);

double Min(const std::vector<double>& samples);
double Max(const std::vector<double>& samples);

/// Median (average of the two middle values for even n).
double Median(const std::vector<double>& samples);

/// Linear-interpolation percentile (Hyndman–Fan R-7, the spreadsheet/NumPy
/// default), p in [0, 100]. p=50 matches Median(); n=1 returns the sample.
/// NaN samples are rejected — a NaN would silently poison std::sort's
/// ordering and make the reported quantile depend on input order.
double Percentile(const std::vector<double>& samples, double p);

/// Geometric mean; all samples must be positive. The correct mean for
/// normalized ratios such as the paper's DBG/OPT relative execution times.
double GeometricMean(const std::vector<double>& samples);

/// Harmonic mean; all samples must be positive. The correct mean for rates
/// (e.g. queries/second) over a fixed amount of work.
double HarmonicMean(const std::vector<double>& samples);

/// One-pass summary of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< 0 when count < 2.
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;

  std::string ToString() const;
};

/// Computes all Summary fields. Requires at least one sample.
Summary Summarize(const std::vector<double>& samples);

}  // namespace stats
}  // namespace perfeval

#endif  // PERFEVAL_STATS_DESCRIPTIVE_H_
