#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace perfeval {
namespace stats {

std::string HistogramCell::Label() const {
  return StrFormat("[%g,%g)", lower, upper);
}

Histogram::Histogram(double lower, double upper, int num_cells)
    : lower_(lower), upper_(upper) {
  PERFEVAL_CHECK_GE(num_cells, 1);
  PERFEVAL_CHECK_LE(lower, upper);
  if (lower == upper) {
    // Degenerate range (all-equal samples, the common "every run took the
    // same time" case): widen to a unit interval around the value instead
    // of building zero-width cells, where Add() would divide by zero.
    lower_ = lower - 0.5;
    upper_ = upper + 0.5;
  }
  width_ = (upper_ - lower_) / static_cast<double>(num_cells);
  cells_.resize(static_cast<size_t>(num_cells));
  for (int i = 0; i < num_cells; ++i) {
    cells_[static_cast<size_t>(i)].lower = lower_ + width_ * i;
    cells_[static_cast<size_t>(i)].upper = lower_ + width_ * (i + 1);
  }
  cells_.back().upper = upper_;  // avoid drift on the final edge.
}

void Histogram::Add(double value) {
  ++total_count_;
  double clamped = value;
  if (value < lower_ || value > upper_) {
    ++out_of_range_;
    clamped = std::clamp(value, lower_, upper_);
  }
  auto index = static_cast<size_t>((clamped - lower_) / width_);
  if (index >= cells_.size()) {
    index = cells_.size() - 1;  // upper boundary goes to the last cell.
  }
  // The division above can disagree with the stored cell edges by one ulp
  // (width_ is rounded, the edges are accumulated), so reconcile against
  // the bounds: cells are [lower, upper) except the last, which is closed.
  while (index + 1 < cells_.size() && clamped >= cells_[index].upper) {
    ++index;
  }
  while (index > 0 && clamped < cells_[index].lower) {
    --index;
  }
  ++cells_[index].count;
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) {
    Add(v);
  }
}

bool Histogram::EveryCellHasAtLeast(int64_t min_points) const {
  return MinCellCount() >= min_points;
}

int64_t Histogram::MinCellCount() const {
  if (cells_.empty()) {
    return 0;
  }
  int64_t min_count = cells_[0].count;
  for (const HistogramCell& cell : cells_) {
    min_count = std::min(min_count, cell.count);
  }
  return min_count;
}

int Histogram::SuggestCellCount(size_t sample_size) {
  if (sample_size <= 1) {
    return 1;
  }
  return static_cast<int>(
             std::ceil(std::log2(static_cast<double>(sample_size)))) +
         1;
}

std::string Histogram::ToString() const {
  int64_t max_count = 1;
  for (const HistogramCell& cell : cells_) {
    max_count = std::max(max_count, cell.count);
  }
  std::string out;
  for (const HistogramCell& cell : cells_) {
    int bar = static_cast<int>(50.0 * static_cast<double>(cell.count) /
                               static_cast<double>(max_count));
    out += PadRight(cell.Label(), 16);
    out += PadLeft(StrFormat("%lld", static_cast<long long>(cell.count)), 8);
    out += "  ";
    out += std::string(static_cast<size_t>(bar), '#');
    out += "\n";
  }
  return out;
}

}  // namespace stats
}  // namespace perfeval
