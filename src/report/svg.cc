#include "report/svg.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "common/string_util.h"
#include "report/csv.h"

namespace perfeval {
namespace report {
namespace {

/// A qualitative palette with enough contrast for the 6-curve limit.
const char* kColors[] = {"#1f77b4", "#d62728", "#2ca02c",
                         "#ff7f0e", "#9467bd", "#8c564b",
                         "#17becf", "#7f7f7f"};
constexpr size_t kNumColors = 8;

std::string EscapeXml(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// "Nice" tick step covering `span` with ~n ticks: 1/2/5 * 10^k.
double NiceStep(double span, int target_ticks) {
  double raw = span / std::max(target_ticks, 1);
  double magnitude = std::pow(10.0, std::floor(std::log10(raw)));
  double normalized = raw / magnitude;
  double nice = normalized <= 1.0   ? 1.0
                : normalized <= 2.0 ? 2.0
                : normalized <= 5.0 ? 5.0
                                    : 10.0;
  return nice * magnitude;
}

std::string FormatTick(double v) {
  if (v != 0.0 && (std::fabs(v) >= 100000.0 || std::fabs(v) < 0.01)) {
    return StrFormat("%.0e", v);
  }
  if (v == std::floor(v)) {
    return StrFormat("%.0f", v);
  }
  return StrFormat("%g", v);
}

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

/// Linear or log mapping from data to pixel coordinates.
class AxisScale {
 public:
  AxisScale(Range range, double px_lo, double px_hi, bool log)
      : range_(range), px_lo_(px_lo), px_hi_(px_hi), log_(log) {
    if (log_) {
      PERFEVAL_CHECK_GT(range_.lo, 0.0)
          << "log axis needs positive range";
    }
    if (range_.hi <= range_.lo) {
      range_.hi = range_.lo + 1.0;
    }
  }

  double ToPx(double v) const {
    double t;
    if (log_) {
      t = (std::log10(v) - std::log10(range_.lo)) /
          (std::log10(range_.hi) - std::log10(range_.lo));
    } else {
      t = (v - range_.lo) / (range_.hi - range_.lo);
    }
    return px_lo_ + t * (px_hi_ - px_lo_);
  }

  /// Tick positions: 1/2/5 steps for linear, decades for log.
  std::vector<double> Ticks() const {
    std::vector<double> ticks;
    if (log_) {
      double decade = std::pow(10.0, std::floor(std::log10(range_.lo)));
      for (; decade <= range_.hi * 1.0001; decade *= 10.0) {
        if (decade >= range_.lo * 0.9999) {
          ticks.push_back(decade);
        }
      }
      return ticks;
    }
    double step = NiceStep(range_.hi - range_.lo, 6);
    double first = std::ceil(range_.lo / step) * step;
    for (double v = first; v <= range_.hi * 1.0001; v += step) {
      ticks.push_back(std::fabs(v) < step * 1e-9 ? 0.0 : v);
    }
    return ticks;
  }

 private:
  Range range_;
  double px_lo_;
  double px_hi_;
  bool log_;
};

Range DataRange(const ChartSpec& spec, bool y_axis) {
  Range range{1e300, -1e300};
  for (const core::Series& series : spec.series) {
    const std::vector<double>& values = y_axis ? series.y : series.x;
    for (size_t i = 0; i < values.size(); ++i) {
      double v = values[i];
      double err = (y_axis && i < series.y_error.size())
                       ? series.y_error[i]
                       : 0.0;
      range.lo = std::min(range.lo, v - err);
      range.hi = std::max(range.hi, v + err);
    }
  }
  if (range.lo > range.hi) {
    range = {0.0, 1.0};
  }
  bool log_axis = y_axis ? spec.logscale_y : spec.logscale_x;
  if (y_axis && !spec.allow_nonzero_y_origin && !log_axis) {
    range.lo = std::min(range.lo, 0.0);
    range.hi = std::max(range.hi, 0.0);
  }
  // 5% headroom at the top for linear axes.
  if (!log_axis) {
    double pad = (range.hi - range.lo) * 0.05;
    range.hi += pad == 0.0 ? 1.0 : pad;
  }
  return range;
}

void AppendBarChart(const ChartSpec& spec, const AxisScale& y_scale,
                    double plot_left, double plot_right, double plot_bottom,
                    std::string* svg) {
  // One cluster (or stack) per x position; x values become category
  // labels.
  size_t positions = spec.series.empty() ? 0 : spec.series[0].size();
  if (positions == 0) {
    return;
  }
  double slot = (plot_right - plot_left) / static_cast<double>(positions);
  bool stacked = spec.style == ChartStyle::kStackedBars;
  double bar_width =
      stacked ? slot * 0.6
              : slot * 0.8 / static_cast<double>(spec.series.size());
  for (size_t p = 0; p < positions; ++p) {
    double slot_left = plot_left + slot * static_cast<double>(p);
    double stack_base = 0.0;
    for (size_t s = 0; s < spec.series.size(); ++s) {
      if (p >= spec.series[s].size()) {
        continue;
      }
      double value = spec.series[s].y[p];
      double x0;
      double y_top;
      double y_bottom;
      if (stacked) {
        x0 = slot_left + (slot - bar_width) / 2.0;
        y_top = y_scale.ToPx(stack_base + value);
        y_bottom = y_scale.ToPx(stack_base);
        stack_base += value;
      } else {
        x0 = slot_left + slot * 0.1 + bar_width * static_cast<double>(s);
        y_top = y_scale.ToPx(value);
        y_bottom = y_scale.ToPx(0.0);
      }
      *svg += StrFormat(
          "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
          "fill=\"%s\"/>\n",
          x0, std::min(y_top, y_bottom), bar_width,
          std::fabs(y_bottom - y_top), kColors[s % kNumColors]);
    }
    // Category label from the first series' x value.
    *svg += StrFormat(
        "  <text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
        "text-anchor=\"middle\">%s</text>\n",
        slot_left + slot / 2.0, plot_bottom + 16.0,
        EscapeXml(FormatTick(spec.series[0].x[p])).c_str());
  }
}

}  // namespace

std::string RenderSvg(const ChartSpec& spec, int width_px) {
  PERFEVAL_CHECK_GE(width_px, 200);
  // Slide-146 rule of thumb: height = 2/3 width.
  const double width = width_px;
  const double height = width * 2.0 / 3.0;
  const double margin_left = 70.0;
  const double margin_right = 20.0;
  const double margin_top = 34.0;
  const double legend_height = 18.0 * static_cast<double>(
                                   std::max<size_t>(spec.series.size(), 1));
  const double margin_bottom = 56.0;
  const double plot_left = margin_left;
  const double plot_right = width - margin_right;
  const double plot_top = margin_top;
  const double plot_bottom = height - margin_bottom;

  bool is_bar = spec.style == ChartStyle::kBars ||
                spec.style == ChartStyle::kStackedBars;

  Range y_range = DataRange(spec, /*y_axis=*/true);
  if (spec.style == ChartStyle::kStackedBars) {
    // The y range must cover the stack totals.
    size_t positions = spec.series.empty() ? 0 : spec.series[0].size();
    for (size_t p = 0; p < positions; ++p) {
      double total = 0.0;
      for (const core::Series& series : spec.series) {
        if (p < series.size()) {
          total += series.y[p];
        }
      }
      y_range.hi = std::max(y_range.hi, total * 1.05);
    }
  }
  AxisScale y_scale(y_range, plot_bottom, plot_top, spec.logscale_y);

  std::string svg = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
      "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" font-family=\"sans-serif\""
      ">\n",
      width, height, width, height);
  svg += "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg += StrFormat(
      "  <text x=\"%.1f\" y=\"20\" font-size=\"15\" text-anchor=\"middle\" "
      "font-weight=\"bold\">%s</text>\n",
      width / 2.0, EscapeXml(spec.title).c_str());

  // Axes frame.
  svg += StrFormat(
      "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
      "fill=\"none\" stroke=\"#333\"/>\n",
      plot_left, plot_top, plot_right - plot_left, plot_bottom - plot_top);

  // Y ticks + gridlines.
  for (double tick : y_scale.Ticks()) {
    double py = y_scale.ToPx(tick);
    svg += StrFormat(
        "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
        "stroke=\"#ddd\"/>\n",
        plot_left, py, plot_right, py);
    svg += StrFormat(
        "  <text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
        "text-anchor=\"end\">%s</text>\n",
        plot_left - 6.0, py + 4.0, EscapeXml(FormatTick(tick)).c_str());
  }

  if (is_bar) {
    AppendBarChart(spec, y_scale, plot_left, plot_right, plot_bottom,
                   &svg);
  } else {
    Range x_range = DataRange(spec, /*y_axis=*/false);
    AxisScale x_scale(x_range, plot_left, plot_right, spec.logscale_x);
    for (double tick : x_scale.Ticks()) {
      double px = x_scale.ToPx(tick);
      svg += StrFormat(
          "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
          "stroke=\"#ddd\"/>\n",
          px, plot_top, px, plot_bottom);
      svg += StrFormat(
          "  <text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
          "text-anchor=\"middle\">%s</text>\n",
          px, plot_bottom + 16.0, EscapeXml(FormatTick(tick)).c_str());
    }
    for (size_t s = 0; s < spec.series.size(); ++s) {
      const core::Series& series = spec.series[s];
      const char* color = kColors[s % kNumColors];
      std::string points;
      for (size_t i = 0; i < series.size(); ++i) {
        points += StrFormat("%.1f,%.1f ", x_scale.ToPx(series.x[i]),
                            y_scale.ToPx(series.y[i]));
      }
      svg += StrFormat(
          "  <polyline points=\"%s\" fill=\"none\" stroke=\"%s\" "
          "stroke-width=\"2\"/>\n",
          points.c_str(), color);
      for (size_t i = 0; i < series.size(); ++i) {
        double px = x_scale.ToPx(series.x[i]);
        double py = y_scale.ToPx(series.y[i]);
        svg += StrFormat(
            "  <circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n",
            px, py, color);
        if (spec.style == ChartStyle::kErrorBars &&
            i < series.y_error.size() && series.y_error[i] > 0.0) {
          double y_hi = y_scale.ToPx(series.y[i] + series.y_error[i]);
          double y_lo = y_scale.ToPx(series.y[i] - series.y_error[i]);
          svg += StrFormat(
              "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
              "stroke=\"%s\"/>\n",
              px, y_hi, px, y_lo, color);
          for (double y_end : {y_hi, y_lo}) {
            svg += StrFormat(
                "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                "stroke=\"%s\"/>\n",
                px - 4.0, y_end, px + 4.0, y_end, color);
          }
        }
      }
    }
  }

  // Axis labels.
  svg += StrFormat(
      "  <text x=\"%.1f\" y=\"%.1f\" font-size=\"12\" "
      "text-anchor=\"middle\">%s</text>\n",
      (plot_left + plot_right) / 2.0, height - 22.0,
      EscapeXml(spec.x_label).c_str());
  svg += StrFormat(
      "  <text x=\"14\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\" "
      "transform=\"rotate(-90 14 %.1f)\">%s</text>\n",
      (plot_top + plot_bottom) / 2.0, (plot_top + plot_bottom) / 2.0,
      EscapeXml(spec.y_label).c_str());

  // Legend: keywords, not symbols (slide 131).
  double legend_y = plot_top + 8.0;
  (void)legend_height;
  for (size_t s = 0; s < spec.series.size(); ++s) {
    const char* color = kColors[s % kNumColors];
    svg += StrFormat(
        "  <rect x=\"%.1f\" y=\"%.1f\" width=\"12\" height=\"12\" "
        "fill=\"%s\"/>\n",
        plot_left + 10.0, legend_y, color);
    svg += StrFormat(
        "  <text x=\"%.1f\" y=\"%.1f\" font-size=\"11\">%s</text>\n",
        plot_left + 26.0, legend_y + 10.0,
        EscapeXml(spec.series[s].name).c_str());
    legend_y += 16.0;
  }

  svg += "</svg>\n";
  return svg;
}

Status WriteSvgChart(const ChartSpec& spec, const std::string& stem) {
  PERFEVAL_RETURN_IF_ERROR(WriteSeriesCsv(spec.series, stem + ".csv"));
  std::string path = stem + ".svg";
  std::filesystem::path fs_path(path);
  std::error_code ec;
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    if (ec) {
      return Status::IoError("cannot create directory for " + path);
    }
  }
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open " + path);
  }
  file << RenderSvg(spec);
  if (!file) {
    return Status::IoError("write failed for " + path);
  }
  return Status::OK();
}

}  // namespace report
}  // namespace perfeval
