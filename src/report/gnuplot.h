#ifndef PERFEVAL_REPORT_GNUPLOT_H_
#define PERFEVAL_REPORT_GNUPLOT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/metrics.h"

namespace perfeval {
namespace report {

/// Chart styles supported by the script generator.
enum class ChartStyle {
  kLinesPoints,
  kBars,        ///< clustered histogram.
  kStackedBars,
  kErrorBars,   ///< linespoints with y error bars (confidence intervals).
};

/// A gnuplot chart specification, applying the paper's presentation
/// guidelines by construction (slides 118–148):
///  - informative axis labels with units (the builder warns without them
///    via report::LintChart);
///  - y axis starting at 0 unless explicitly overridden (slide 138's
///    "MINE is better than YOURS" trick needs an explicit opt-out);
///  - the 2:3 height:width aspect-ratio rule of slide 146
///    (`set size ratio` computed from width_fraction).
struct ChartSpec {
  std::string title;
  std::string x_label;   ///< include the unit: "Scale factor".
  std::string y_label;   ///< include the unit: "Execution time (ms)".
  ChartStyle style = ChartStyle::kLinesPoints;
  std::vector<core::Series> series;

  /// Fraction of \textwidth the plot will occupy in the paper; the script
  /// sets `set size ratio 0 <x*1.5>,<x>` per the slide-146 rule of thumb.
  double width_fraction = 0.5;

  /// By default the y axis starts at 0. Setting this true (for good
  /// reason) lets the data define the range.
  bool allow_nonzero_y_origin = false;

  bool logscale_x = false;
  bool logscale_y = false;
};

/// Renders the gnuplot command file. `data_csv_path` is the CSV the script
/// plots (written separately with WriteSeriesCsv); `output_eps_path` is the
/// figure the script produces.
std::string GnuplotScript(const ChartSpec& spec,
                          const std::string& data_csv_path,
                          const std::string& output_eps_path);

/// Writes data CSV + gnuplot script next to each other:
/// <stem>.csv and <stem>.gnu producing <stem>.eps.
Status WriteChart(const ChartSpec& spec, const std::string& stem);

}  // namespace report
}  // namespace perfeval

#endif  // PERFEVAL_REPORT_GNUPLOT_H_
