#include "report/csv.h"

#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "common/string_util.h"

namespace perfeval {
namespace report {
namespace {

std::string EscapeCsvField(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::filesystem::path fs_path(path);
  std::error_code ec;
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    if (ec) {
      return Status::IoError("cannot create directory for " + path + ": " +
                             ec.message());
    }
  }
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << content;
  if (!out) {
    return Status::IoError("write failed for " + path);
  }
  return Status::OK();
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  PERFEVAL_CHECK(!header_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  PERFEVAL_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void CsvWriter::AddNumericRow(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    cells.push_back(StrFormat("%.6g", v));
  }
  AddRow(std::move(cells));
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) {
      out += ',';
    }
    out += EscapeCsvField(header_[c]);
  }
  out += '\n';
  for (const std::vector<std::string>& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      out += EscapeCsvField(row[c]);
    }
    out += '\n';
  }
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  return WriteTextFile(path, ToString());
}

Status WriteSeriesCsv(const std::vector<core::Series>& series,
                      const std::string& path) {
  if (series.empty()) {
    return Status::InvalidArgument("no series to write");
  }
  for (const core::Series& s : series) {
    if (s.size() != series[0].size()) {
      return Status::InvalidArgument(
          "series have different lengths: " + s.name);
    }
  }
  std::vector<std::string> header = {"x"};
  for (const core::Series& s : series) {
    header.push_back(s.name);
  }
  CsvWriter writer(std::move(header));
  for (size_t i = 0; i < series[0].size(); ++i) {
    std::vector<std::string> row;
    row.push_back(StrFormat("%.6g", series[0].x[i]));
    for (const core::Series& s : series) {
      row.push_back(StrFormat("%.6g", s.y[i]));
    }
    writer.AddRow(std::move(row));
  }
  return writer.WriteToFile(path);
}

}  // namespace report
}  // namespace perfeval
