#include "report/chart_lint.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace perfeval {
namespace report {
namespace {

bool LabelHasUnit(const std::string& label) {
  // A unit is announced by parentheses ("time (ms)") or a slash
  // ("queries/second"), or the label is dimensionless by convention.
  if (label.find('(') != std::string::npos &&
      label.find(')') != std::string::npos) {
    return true;
  }
  if (label.find('/') != std::string::npos) {
    return true;
  }
  static const char* kDimensionless[] = {"ratio",  "fraction", "share",
                                         "factor", "count",    "speedup",
                                         "%",      "percent"};
  std::string lower = ToLower(label);
  for (const char* word : kDimensionless) {
    if (lower.find(word) != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool LooksSymbolic(const std::string& name) {
  if (name.empty()) {
    return true;
  }
  if (name.size() == 1 && !std::isdigit(static_cast<unsigned char>(name[0]))) {
    return true;
  }
  // Greek-letter style identifiers: "mu=1", "λ" etc.
  static const char* kSymbols[] = {"mu=", "lambda", "alpha", "beta", "μ",
                                   "λ",   "α",      "β"};
  std::string lower = ToLower(name);
  for (const char* symbol : kSymbols) {
    if (lower.find(symbol) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<LintFinding> LintChart(const ChartSpec& spec) {
  std::vector<LintFinding> findings;
  bool is_bar = spec.style == ChartStyle::kBars ||
                spec.style == ChartStyle::kStackedBars;

  if (!is_bar && spec.series.size() > 6) {
    findings.push_back(
        {"too-many-curves",
         StrFormat("line chart has %zu curves; the rule of thumb is at "
                   "most 6",
                   spec.series.size())});
  }
  if (is_bar) {
    size_t bars = spec.series.empty() ? 0 : spec.series[0].size();
    if (spec.style == ChartStyle::kBars) {
      bars *= spec.series.size();
    }
    if (bars > 10) {
      findings.push_back(
          {"too-many-bars",
           StrFormat("bar chart has %zu bars; the rule of thumb is at "
                     "most 10",
                     bars)});
    }
  }
  if (spec.x_label.empty()) {
    findings.push_back({"missing-axis-label", "x axis has no label"});
  }
  if (spec.y_label.empty()) {
    findings.push_back({"missing-axis-label", "y axis has no label"});
  }
  if (!spec.y_label.empty() && !LabelHasUnit(spec.y_label)) {
    findings.push_back(
        {"missing-unit", "y label \"" + spec.y_label +
                             "\" has no unit; prefer e.g. \"CPU time (ms)\""});
  }
  if (spec.allow_nonzero_y_origin && !spec.logscale_y) {
    findings.push_back(
        {"nonzero-y-origin",
         "y axis does not start at 0; differences will look exaggerated "
         "(only do this deliberately)"});
  }
  // Mixed result variables: several series whose magnitudes differ wildly.
  if (spec.series.size() >= 3) {
    double min_mag = 0.0;
    double max_mag = 0.0;
    bool first = true;
    for (const core::Series& s : spec.series) {
      for (double y : s.y) {
        double mag = std::fabs(y);
        if (mag == 0.0) {
          continue;
        }
        if (first) {
          min_mag = mag;
          max_mag = mag;
          first = false;
        } else {
          min_mag = std::min(min_mag, mag);
          max_mag = std::max(max_mag, mag);
        }
      }
    }
    if (!first && max_mag / min_mag > 100.0) {
      findings.push_back(
          {"mixed-y-axes",
           StrFormat("series magnitudes span a factor of %.0f; this looks "
                     "like several result variables on one chart",
                     max_mag / min_mag)});
    }
  }
  for (const core::Series& s : spec.series) {
    if (LooksSymbolic(s.name)) {
      findings.push_back(
          {"symbolic-legend",
           "series \"" + s.name +
               "\" uses a symbol instead of a keyword; the reader's brain "
               "is a poor join processor"});
    }
  }
  return findings;
}

std::vector<LintFinding> LintHistogram(const stats::Histogram& histogram,
                                       int64_t min_points) {
  std::vector<LintFinding> findings;
  if (!histogram.EveryCellHasAtLeast(min_points)) {
    findings.push_back(
        {"sparse-histogram-cell",
         StrFormat("smallest cell holds %lld points; the rule of thumb "
                   "requires at least %lld per cell",
                   static_cast<long long>(histogram.MinCellCount()),
                   static_cast<long long>(min_points))});
  }
  return findings;
}

std::string FindingsToString(const std::vector<LintFinding>& findings) {
  std::string out;
  for (const LintFinding& finding : findings) {
    out += "[" + finding.rule + "] " + finding.message + "\n";
  }
  return out;
}

}  // namespace report
}  // namespace perfeval
