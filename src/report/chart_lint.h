#ifndef PERFEVAL_REPORT_CHART_LINT_H_
#define PERFEVAL_REPORT_CHART_LINT_H_

#include <string>
#include <vector>

#include "report/gnuplot.h"
#include "stats/histogram.h"

namespace perfeval {
namespace report {

/// One chart-guideline violation.
struct LintFinding {
  std::string rule;     ///< short rule id, e.g. "too-many-curves".
  std::string message;  ///< human-readable explanation with the numbers.
};

/// Checks a chart against the paper's presentation guidelines
/// (slides 118–148). Rules:
///  - too-many-curves:    a line chart should be limited to 6 curves.
///  - too-many-bars:      a bar chart should be limited to 10 bars.
///  - missing-unit:       axis labels should include units, "CPU time (ms)"
///                        not "CPU time".
///  - missing-axis-label: both axes need informative labels.
///  - nonzero-y-origin:   axes usually begin at 0; an opt-out must be
///                        deliberate (the slide-138 pictorial game).
///  - mixed-y-axes:       more than 3 series with y ranges differing by
///                        over 100x suggests multiple result variables on
///                        one chart (slide 129).
///  - symbolic-legend:    single-character or symbol-only series names make
///                        the reader compute a mental join (slide 131).
std::vector<LintFinding> LintChart(const ChartSpec& spec);

/// Checks a histogram against the slide-144 rule: every cell should
/// contain at least `min_points` (default 5) observations.
std::vector<LintFinding> LintHistogram(const stats::Histogram& histogram,
                                       int64_t min_points = 5);

/// Renders findings one per line; empty string when clean.
std::string FindingsToString(const std::vector<LintFinding>& findings);

}  // namespace report
}  // namespace perfeval

#endif  // PERFEVAL_REPORT_CHART_LINT_H_
