#include "report/table_format.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace perfeval {
namespace report {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::SetAlignments(std::vector<Align> alignments) {
  alignments_ = std::move(alignments);
}

void TextTable::AddRow(std::vector<std::string> row) {
  PERFEVAL_CHECK_EQ(row.size(), header_.size())
      << "row width must match header";
  rows_.push_back({std::move(row), false});
}

void TextTable::AddSeparator() { rows_.push_back({{}, true}); }

std::string TextTable::ToString() const {
  PERFEVAL_CHECK(!header_.empty());
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  auto render_cell = [&](const std::string& text, size_t c) {
    Align align = c < alignments_.size() ? alignments_[c] : Align::kRight;
    return align == Align::kLeft ? PadRight(text, widths[c])
                                 : PadLeft(text, widths[c]);
  };
  std::string out;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) {
      out += "  ";
    }
    out += render_cell(header_[c], c);
  }
  out += "\n";
  size_t total_width = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total_width += widths[c] + (c > 0 ? 2 : 0);
  }
  out += std::string(total_width, '-');
  out += "\n";
  for (const Row& row : rows_) {
    if (row.separator) {
      out += std::string(total_width, '-');
      out += "\n";
      continue;
    }
    for (size_t c = 0; c < row.cells.size(); ++c) {
      if (c > 0) {
        out += "  ";
      }
      out += render_cell(row.cells[c], c);
    }
    out += "\n";
  }
  return out;
}

std::string TextTable::ToMarkdown() const {
  PERFEVAL_CHECK(!header_.empty());
  auto cell_align = [&](size_t c) {
    return c < alignments_.size() ? alignments_[c] : Align::kRight;
  };
  std::string out = "|";
  for (const std::string& h : header_) {
    out += " " + h + " |";
  }
  out += "\n|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out += cell_align(c) == Align::kLeft ? ":---" : "---:";
    out += "|";
  }
  out += "\n";
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;  // Markdown tables have no mid-table separators.
    }
    out += "|";
    for (const std::string& cell : row.cells) {
      out += " " + cell + " |";
    }
    out += "\n";
  }
  return out;
}

namespace {

std::string EscapeLatex(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '&':
      case '%':
      case '_':
      case '#':
      case '$':
        out += '\\';
        out += c;
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string TextTable::ToLatex() const {
  PERFEVAL_CHECK(!header_.empty());
  std::string out = "\\begin{tabular}{";
  for (size_t c = 0; c < header_.size(); ++c) {
    Align align = c < alignments_.size() ? alignments_[c] : Align::kRight;
    out += align == Align::kLeft ? 'l' : 'r';
  }
  out += "}\n\\hline\n";
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) {
      out += " & ";
    }
    out += EscapeLatex(header_[c]);
  }
  out += " \\\\\n\\hline\n";
  for (const Row& row : rows_) {
    if (row.separator) {
      out += "\\hline\n";
      continue;
    }
    for (size_t c = 0; c < row.cells.size(); ++c) {
      if (c > 0) {
        out += " & ";
      }
      out += EscapeLatex(row.cells[c]);
    }
    out += " \\\\\n";
  }
  out += "\\hline\n\\end{tabular}\n";
  return out;
}

}  // namespace report
}  // namespace perfeval
