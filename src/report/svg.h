#ifndef PERFEVAL_REPORT_SVG_H_
#define PERFEVAL_REPORT_SVG_H_

#include <string>

#include "common/status.h"
#include "report/gnuplot.h"

namespace perfeval {
namespace report {

/// Renders a ChartSpec as a self-contained SVG document — figures viewable
/// without gnuplot, applying the same presentation guidelines the gnuplot
/// emitter applies (slides 118–148): y axis anchored at 0 unless
/// explicitly opted out, keyword legend (no symbols), axis labels with
/// units, and the slide-146 3:2 aspect ratio.
///
/// Supported styles: kLinesPoints (polyline + point markers),
/// kErrorBars (plus vertical error whiskers from Series::y_error),
/// kBars (clustered) and kStackedBars. Logarithmic x/y supported for the
/// line styles.
std::string RenderSvg(const ChartSpec& spec, int width_px = 720);

/// Writes `<stem>.svg` (creating directories). Also writes the CSV next to
/// it so the numbers behind the picture stay machine-readable.
Status WriteSvgChart(const ChartSpec& spec, const std::string& stem);

}  // namespace report
}  // namespace perfeval

#endif  // PERFEVAL_REPORT_SVG_H_
