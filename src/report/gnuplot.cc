#include "report/gnuplot.h"

#include <filesystem>
#include <fstream>

#include "common/string_util.h"
#include "report/csv.h"
#include "report/svg.h"

namespace perfeval {
namespace report {
namespace {

const char* StyleClause(ChartStyle style) {
  switch (style) {
    case ChartStyle::kLinesPoints:
      return "linespoints";
    case ChartStyle::kBars:
    case ChartStyle::kStackedBars:
      return "histograms";
    case ChartStyle::kErrorBars:
      return "yerrorlines";
  }
  return "linespoints";
}

}  // namespace

std::string GnuplotScript(const ChartSpec& spec,
                          const std::string& data_csv_path,
                          const std::string& output_eps_path) {
  std::string out;
  out += "set terminal postscript eps color\n";
  out += StrFormat("set output \"%s\"\n", output_eps_path.c_str());
  out += StrFormat("set title \"%s\"\n", spec.title.c_str());
  out += StrFormat("set xlabel \"%s\"\n", spec.x_label.c_str());
  out += StrFormat("set ylabel \"%s\"\n", spec.y_label.c_str());
  out += "set datafile separator \",\"\n";
  out += "set key top left\n";
  // Slide 146 rule of thumb: width of plot = x*\textwidth =>
  // set size ratio 0 x*1.5,x.
  out += StrFormat("set size ratio 0 %.3f,%.3f\n",
                   spec.width_fraction * 1.5, spec.width_fraction);
  if (!spec.allow_nonzero_y_origin && !spec.logscale_y) {
    out += "set yrange [0:*]\n";
  }
  if (spec.logscale_x) {
    out += "set logscale x\n";
  }
  if (spec.logscale_y) {
    out += "set logscale y\n";
  }
  if (spec.style == ChartStyle::kBars ||
      spec.style == ChartStyle::kStackedBars) {
    out += "set style fill solid 0.8 border -1\n";
    out += spec.style == ChartStyle::kStackedBars
               ? "set style histogram rowstacked\n"
               : "set style histogram clustered\n";
    out += "set style data histograms\n";
  }
  out += "plot ";
  for (size_t i = 0; i < spec.series.size(); ++i) {
    if (i > 0) {
      out += ", \\\n     ";
    }
    if (spec.style == ChartStyle::kBars ||
        spec.style == ChartStyle::kStackedBars) {
      out += StrFormat("\"%s\" using %zu:xtic(1) title \"%s\"",
                       data_csv_path.c_str(), i + 2,
                       spec.series[i].name.c_str());
    } else {
      out += StrFormat("\"%s\" using 1:%zu with %s title \"%s\"",
                       data_csv_path.c_str(), i + 2,
                       StyleClause(spec.style), spec.series[i].name.c_str());
    }
  }
  out += "\n";
  return out;
}

Status WriteChart(const ChartSpec& spec, const std::string& stem) {
  std::string csv_path = stem + ".csv";
  std::string gnu_path = stem + ".gnu";
  std::string eps_path = stem + ".eps";
  PERFEVAL_RETURN_IF_ERROR(WriteSeriesCsv(spec.series, csv_path));
  std::filesystem::path fs_path(gnu_path);
  std::error_code ec;
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    if (ec) {
      return Status::IoError("cannot create directory for " + gnu_path);
    }
  }
  std::ofstream file(gnu_path);
  if (!file) {
    return Status::IoError("cannot open " + gnu_path);
  }
  file << GnuplotScript(spec, csv_path, eps_path);
  if (!file) {
    return Status::IoError("write failed for " + gnu_path);
  }
  // Also render a self-contained SVG so the figure is viewable without
  // running gnuplot.
  std::ofstream svg_file(stem + ".svg");
  if (!svg_file) {
    return Status::IoError("cannot open " + stem + ".svg");
  }
  svg_file << RenderSvg(spec);
  return Status::OK();
}

}  // namespace report
}  // namespace perfeval
