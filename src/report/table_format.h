#ifndef PERFEVAL_REPORT_TABLE_FORMAT_H_
#define PERFEVAL_REPORT_TABLE_FORMAT_H_

#include <string>
#include <vector>

namespace perfeval {
namespace report {

/// Column alignment.
enum class Align { kLeft, kRight };

/// A simple aligned text-table builder for bench/report output: header,
/// rows of strings, automatic column widths.
class TextTable {
 public:
  /// Sets the header; defines the column count.
  void SetHeader(std::vector<std::string> header);

  /// Per-column alignment (defaults to right for all columns).
  void SetAlignments(std::vector<Align> alignments);

  /// Adds a row; must match the header's column count.
  void AddRow(std::vector<std::string> row);

  /// Adds a horizontal separator line at this position.
  void AddSeparator();

  size_t num_rows() const { return rows_.size(); }

  std::string ToString() const;

  /// GitHub-flavored Markdown rendering (separators become plain rows of
  /// em-dashes; alignment markers follow SetAlignments).
  std::string ToMarkdown() const;

  /// LaTeX tabular rendering (booktabs-free, `\hline` separators), with
  /// the characters &, %, _, #, $ escaped — the paper's own medium.
  std::string ToLatex() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

}  // namespace report
}  // namespace perfeval

#endif  // PERFEVAL_REPORT_TABLE_FORMAT_H_
