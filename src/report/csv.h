#ifndef PERFEVAL_REPORT_CSV_H_
#define PERFEVAL_REPORT_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/metrics.h"

namespace perfeval {
namespace report {

/// CSV writer following the paper's repeatability workflow (slides
/// 198–205): every experiment deposits machine-readable result files under
/// a results directory, from which graphs are generated automatically —
/// never assembled by hand (the copy-paste horror story of slide 212).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Numeric convenience.
  void AddNumericRow(const std::vector<double>& row);

  /// RFC-4180-style rendering (quotes fields containing comma/quote/NL).
  std::string ToString() const;

  /// Writes to `path`, creating parent directories as needed.
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes one or more series as a CSV with columns x, <name1>, <name2>...
/// All series must share the same x values.
Status WriteSeriesCsv(const std::vector<core::Series>& series,
                      const std::string& path);

}  // namespace report
}  // namespace perfeval

#endif  // PERFEVAL_REPORT_CSV_H_
