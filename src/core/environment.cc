#include "core/environment.h"

#include <sys/utsname.h>
#include <unistd.h>

#include <fstream>

#include "common/string_util.h"

namespace perfeval {
namespace core {
namespace {

constexpr char kLibraryVersion[] = "perfeval 1.0.0";

std::string CompilerString() {
#if defined(__clang__)
  return StrFormat("clang %d.%d.%d", __clang_major__, __clang_minor__,
                   __clang_patchlevel__);
#elif defined(__GNUC__)
  return StrFormat("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                   __GNUC_PATCHLEVEL__);
#else
  return "unknown compiler";
#endif
}

std::string BuildTypeString() {
#ifdef NDEBUG
  return "optimized (NDEBUG)";
#else
  return "debug (assertions on)";
#endif
}

}  // namespace

bool EnvironmentSpec::IsPublishable() const {
  return !cpu_model.empty() && cpu_mhz > 0.0 && cache_kb > 0 && ram_mb > 0 &&
         !os.empty() && !compiler.empty();
}

std::string EnvironmentSpec::ToReportString() const {
  std::string out;
  out += StrFormat("CPU:      %s (%d logical CPUs, %.0f MHz, %lld KB cache)\n",
                   cpu_model.c_str(), num_cpus, cpu_mhz,
                   static_cast<long long>(cache_kb));
  out += StrFormat("Memory:   %lld MB RAM\n", static_cast<long long>(ram_mb));
  out += StrFormat("OS:       %s\n", os.c_str());
  out += StrFormat("Compiler: %s, %s\n", compiler.c_str(),
                   build_type.c_str());
  out += StrFormat("Software: %s\n", library_version.c_str());
  return out;
}

EnvironmentSpec CaptureEnvironment() {
  EnvironmentSpec spec;
  spec.compiler = CompilerString();
  spec.build_type = BuildTypeString();
  spec.library_version = kLibraryVersion;
  spec.num_cpus = static_cast<int>(sysconf(_SC_NPROCESSORS_ONLN));

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    std::vector<std::string> parts = Split(line, ':');
    if (parts.size() != 2) {
      continue;
    }
    std::string key = Trim(parts[0]);
    std::string value = Trim(parts[1]);
    if (key == "model name" && spec.cpu_model.empty()) {
      spec.cpu_model = value;
    } else if (key == "cpu MHz" && spec.cpu_mhz == 0.0) {
      spec.cpu_mhz = ParseDouble(value).value_or(0.0);
    } else if (key == "cache size" && spec.cache_kb == 0) {
      std::vector<std::string> cache_parts = Split(value, ' ');
      if (!cache_parts.empty()) {
        spec.cache_kb = ParseInt64(cache_parts[0]).value_or(0);
      }
    }
  }

  std::ifstream meminfo("/proc/meminfo");
  while (std::getline(meminfo, line)) {
    if (StartsWith(line, "MemTotal:")) {
      std::vector<std::string> parts = Split(line, ' ');
      for (const std::string& part : parts) {
        std::optional<int64_t> kb = ParseInt64(part);
        if (kb.has_value() && *kb > 0) {
          spec.ram_mb = *kb / 1024;
          break;
        }
      }
      break;
    }
  }

  utsname names{};
  if (uname(&names) == 0) {
    spec.os = StrFormat("%s %s (%s)", names.sysname, names.release,
                        names.machine);
  }
  return spec;
}

}  // namespace core
}  // namespace perfeval
