#include "core/noise.h"

#include <vector>

#include "common/check.h"
#include "common/string_util.h"
#include "core/timer.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace core {
namespace {

/// A fixed arithmetic kernel the compiler cannot elide.
double SpinKernel(int iterations) {
  volatile double sink = 1.0;
  for (int i = 0; i < iterations; ++i) {
    sink = sink + 1e-9 * i;
  }
  return sink;
}

}  // namespace

std::string NoiseReport::ToString() const {
  return StrFormat(
      "noise floor over %lld samples: median %.3f ms, p95 %.3f ms "
      "(%.2fx median), CoV %.2f%%, timer resolution %lld ns -> %s",
      static_cast<long long>(samples), median_ns / 1e6, p95_ns / 1e6,
      p95_over_median, coefficient_of_variation * 100.0,
      static_cast<long long>(timer_resolution_ns),
      IsQuiet() ? "quiet enough to measure" : "NOISY — results suspect");
}

NoiseReport MeasureNoiseFloor(int samples, int kernel_iterations) {
  PERFEVAL_CHECK_GE(samples, 5);
  PERFEVAL_CHECK_GE(kernel_iterations, 1000);
  // Warm up frequency scaling.
  (void)SpinKernel(kernel_iterations);
  std::vector<double> durations;
  durations.reserve(static_cast<size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    WallTimer timer;
    (void)SpinKernel(kernel_iterations);
    durations.push_back(static_cast<double>(timer.ElapsedNs()));
  }
  NoiseReport report;
  report.samples = samples;
  report.median_ns = stats::Median(durations);
  report.p95_ns = stats::Percentile(durations, 95.0);
  report.coefficient_of_variation =
      stats::StdDev(durations) / stats::Mean(durations);
  report.p95_over_median =
      report.median_ns > 0.0 ? report.p95_ns / report.median_ns : 1.0;
  report.timer_resolution_ns = MeasureTimerResolutionNs();
  return report;
}

}  // namespace core
}  // namespace perfeval
