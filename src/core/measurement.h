#ifndef PERFEVAL_CORE_MEASUREMENT_H_
#define PERFEVAL_CORE_MEASUREMENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "core/process_times.h"

namespace perfeval {
namespace core {

/// One timed run. In addition to the measured process times it carries
/// `simulated_stall_ns`, the I/O wait charged by simulated devices
/// (db::VirtualDisk): this library substitutes real disk stalls with a
/// deterministic cost model (DESIGN.md, substitutions), and "real" time as
/// the paper's tables report it is CPU time plus those stalls.
struct Measurement {
  int64_t real_ns = 0;             ///< measured wall-clock CPU-side time.
  int64_t user_ns = 0;             ///< user-mode CPU time.
  int64_t sys_ns = 0;              ///< kernel-mode CPU time.
  int64_t simulated_stall_ns = 0;  ///< simulated device wait time.

  /// The "real" time an observer with a physical disk would see:
  /// measured wall time plus simulated stalls.
  int64_t ObservedRealNs() const { return real_ns + simulated_stall_ns; }
  double ObservedRealMs() const { return ObservedRealNs() / 1e6; }
  double user_ms() const { return user_ns / 1e6; }

  Measurement operator+(const Measurement& other) const {
    return {real_ns + other.real_ns, user_ns + other.user_ns,
            sys_ns + other.sys_ns,
            simulated_stall_ns + other.simulated_stall_ns};
  }

  std::string ToString() const;
};

/// Times one invocation of `body`. Captures real/user/sys; the caller adds
/// simulated stalls if a simulated device was involved.
Measurement MeasureOnce(const std::function<void()>& body);

}  // namespace core
}  // namespace perfeval

#endif  // PERFEVAL_CORE_MEASUREMENT_H_
