#include "core/timer.h"

namespace perfeval {
namespace core {

int64_t MeasureTimerResolutionNs() {
  using Clock = std::chrono::steady_clock;
  int64_t smallest = INT64_MAX;
  for (int i = 0; i < 1000; ++i) {
    Clock::time_point a = Clock::now();
    Clock::time_point b = Clock::now();
    while (b == a) {
      b = Clock::now();
    }
    int64_t delta =
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
    if (delta > 0 && delta < smallest) {
      smallest = delta;
    }
  }
  return smallest;
}

double MeasureTimerOverheadNs() {
  using Clock = std::chrono::steady_clock;
  constexpr int kReadings = 100000;
  Clock::time_point start = Clock::now();
  for (int i = 0; i < kReadings; ++i) {
    Clock::time_point t = Clock::now();
    (void)t;
  }
  Clock::time_point end = Clock::now();
  int64_t total =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  return static_cast<double>(total) / kReadings;
}

}  // namespace core
}  // namespace perfeval
