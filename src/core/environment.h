#ifndef PERFEVAL_CORE_ENVIRONMENT_H_
#define PERFEVAL_CORE_ENVIRONMENT_H_

#include <cstdint>
#include <string>

namespace perfeval {
namespace core {

/// Hardware/software environment at the paper's recommended granularity
/// (slides 149–156): "3.4 GHz" alone is under-specified, a full lspci dump
/// is over-specified. The right spec is: CPU vendor/model/clock/cache,
/// memory size, disk, and exact software versions.
struct EnvironmentSpec {
  // Hardware.
  std::string cpu_model;   ///< e.g. "Intel(R) Pentium(R) M processor 1.50GHz"
  double cpu_mhz = 0.0;
  int64_t cache_kb = 0;    ///< last-level cache size.
  int num_cpus = 0;
  int64_t ram_mb = 0;

  // Software.
  std::string os;          ///< uname sysname + release.
  std::string compiler;    ///< compiler id + version used for this build.
  std::string build_type;  ///< e.g. "Release (-O2)" or "Debug (-O0)".
  std::string library_version;  ///< perfeval version string.

  /// True when the mandatory fields for a publishable spec are present
  /// (cpu model, clock, cache, RAM, OS, compiler) — the under-specification
  /// check from slide 149.
  bool IsPublishable() const;

  /// Multi-line report block suitable for inclusion in a paper's
  /// experimental-setup section.
  std::string ToReportString() const;
};

/// Captures the current machine's spec from /proc/cpuinfo, /proc/meminfo
/// and uname, plus compile-time compiler/build information.
EnvironmentSpec CaptureEnvironment();

}  // namespace core
}  // namespace perfeval

#endif  // PERFEVAL_CORE_ENVIRONMENT_H_
