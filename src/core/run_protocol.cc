#include "core/run_protocol.h"

#include "common/check.h"
#include "common/string_util.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace core {

const char* ThermalStateName(ThermalState state) {
  switch (state) {
    case ThermalState::kCold:
      return "cold";
    case ThermalState::kHot:
      return "hot";
  }
  return "unknown";
}

const char* AggregationName(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kLast:
      return "last";
    case Aggregation::kMin:
      return "min";
    case Aggregation::kMean:
      return "mean";
    case Aggregation::kMedian:
      return "median";
  }
  return "unknown";
}

std::string RunProtocol::Describe() const {
  if (thermal == ThermalState::kCold) {
    return StrFormat(
        "cold runs: caches flushed before each of %d measured runs; "
        "reported value is the %s",
        measured_runs, AggregationName(aggregation));
  }
  return StrFormat(
      "hot runs: %d un-measured warm-up run(s), then %d measured runs; "
      "reported value is the %s",
      warmup_runs, measured_runs, AggregationName(aggregation));
}

double Aggregate(Aggregation aggregation,
                 const std::vector<double>& samples) {
  PERFEVAL_CHECK(!samples.empty());
  switch (aggregation) {
    case Aggregation::kLast:
      return samples.back();
    case Aggregation::kMin:
      return stats::Min(samples);
    case Aggregation::kMean:
      return stats::Mean(samples);
    case Aggregation::kMedian:
      return stats::Median(samples);
  }
  return samples.back();
}

}  // namespace core
}  // namespace perfeval
