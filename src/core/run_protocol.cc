#include "core/run_protocol.h"

#include "common/check.h"
#include "common/string_util.h"
#include "stats/descriptive.h"

namespace perfeval {
namespace core {

const char* ThermalStateName(ThermalState state) {
  switch (state) {
    case ThermalState::kCold:
      return "cold";
    case ThermalState::kHot:
      return "hot";
  }
  return "unknown";
}

const char* AggregationName(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kLast:
      return "last";
    case Aggregation::kMin:
      return "min";
    case Aggregation::kMean:
      return "mean";
    case Aggregation::kMedian:
      return "median";
  }
  return "unknown";
}

const char* RunOrderName(RunOrder order) {
  switch (order) {
    case RunOrder::kDesignOrder:
      return "design";
    case RunOrder::kRandomized:
      return "randomized";
    case RunOrder::kInterleaved:
      return "interleaved";
  }
  return "unknown";
}

const char* IsolationPolicyName(IsolationPolicy policy) {
  switch (policy) {
    case IsolationPolicy::kConcurrent:
      return "concurrent";
    case IsolationPolicy::kExclusive:
      return "exclusive";
  }
  return "unknown";
}

std::string ScheduleSpec::Describe() const {
  std::string out = StrFormat("%d job(s), %s order", jobs, RunOrderName(order));
  if (order == RunOrder::kRandomized) {
    out += StrFormat(" (seed %llu)", static_cast<unsigned long long>(seed));
  }
  out += StrFormat(", %s trials", IsolationPolicyName(isolation));
  return out;
}

std::string RunProtocol::Describe() const {
  std::string base;
  if (thermal == ThermalState::kCold) {
    base = StrFormat(
        "cold runs: caches flushed before each of %d measured runs; "
        "reported value is the %s",
        measured_runs, AggregationName(aggregation));
  } else {
    base = StrFormat(
        "hot runs: %d un-measured warm-up run(s), then %d measured runs; "
        "reported value is the %s",
        warmup_runs, measured_runs, AggregationName(aggregation));
  }
  // Slide 32: every report documents its full protocol — including how
  // trials were scheduled (jobs, order, isolation).
  return base + "; schedule: " + schedule.Describe();
}

double Aggregate(Aggregation aggregation,
                 const std::vector<double>& samples) {
  PERFEVAL_CHECK(!samples.empty());
  switch (aggregation) {
    case Aggregation::kLast:
      return samples.back();
    case Aggregation::kMin:
      return stats::Min(samples);
    case Aggregation::kMean:
      return stats::Mean(samples);
    case Aggregation::kMedian:
      return stats::Median(samples);
  }
  return samples.back();
}

}  // namespace core
}  // namespace perfeval
