#ifndef PERFEVAL_CORE_TIMER_H_
#define PERFEVAL_CORE_TIMER_H_

#include <chrono>
#include <cstdint>

namespace perfeval {
namespace core {

/// Monotonic wall-clock ("real" time) stopwatch.
///
/// "Which tools, functions and/or system calls to use for measuring time?"
/// (paper, slide 27). This is the gettimeofday()-class tool: an in-process
/// timestamp source, here with nanosecond granularity.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Nanoseconds since construction or the last Restart().
  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double ElapsedMs() const { return ElapsedNs() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNs() / 1e9; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Measured granularity of the wall clock: the smallest positive difference
/// observed between consecutive readings, in nanoseconds. The paper warns
/// that timer resolution can be as coarse as 10 ms (timeGetTime on Windows,
/// slide 27); a harness should know — and report — what it is measuring with.
int64_t MeasureTimerResolutionNs();

/// Mean cost of a single timer reading in nanoseconds, so callers can judge
/// whether the measured quantity is large enough relative to the
/// measurement overhead.
double MeasureTimerOverheadNs();

}  // namespace core
}  // namespace perfeval

#endif  // PERFEVAL_CORE_TIMER_H_
