#ifndef PERFEVAL_CORE_PROCESS_TIMES_H_
#define PERFEVAL_CORE_PROCESS_TIMES_H_

#include <cstdint>
#include <string>

namespace perfeval {
namespace core {

/// A snapshot of the three times the paper distinguishes (slide 22):
/// wall-clock ("real"), CPU in user mode ("user") and CPU in the kernel
/// ("system" — a proxy for I/O work). Obtain snapshots with Now() and
/// subtract them to time an interval, /usr/bin/time style but in-process.
struct ProcessTimes {
  int64_t real_ns = 0;
  int64_t user_ns = 0;
  int64_t sys_ns = 0;

  /// Current process totals (user/sys via getrusage, real via the
  /// monotonic clock).
  static ProcessTimes Now();

  ProcessTimes operator-(const ProcessTimes& earlier) const {
    return {real_ns - earlier.real_ns, user_ns - earlier.user_ns,
            sys_ns - earlier.sys_ns};
  }
  ProcessTimes operator+(const ProcessTimes& other) const {
    return {real_ns + other.real_ns, user_ns + other.user_ns,
            sys_ns + other.sys_ns};
  }

  double real_ms() const { return real_ns / 1e6; }
  double user_ms() const { return user_ns / 1e6; }
  double sys_ms() const { return sys_ns / 1e6; }

  /// "real=12.3ms user=11.0ms sys=0.4ms".
  std::string ToString() const;
};

}  // namespace core
}  // namespace perfeval

#endif  // PERFEVAL_CORE_PROCESS_TIMES_H_
