#ifndef PERFEVAL_CORE_METRICS_H_
#define PERFEVAL_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace perfeval {
namespace core {

/// Throughput in operations per second from a count and an elapsed time.
double ThroughputPerSecond(int64_t operations, int64_t elapsed_ns);

/// Queries per hour from a count and an elapsed wall time in milliseconds —
/// the TPC-H-style reporting unit used by the workload driver and the
/// serving benches. Zero (not a division trap) when elapsed_ms <= 0, so a
/// timer-resolution zero in a smoke run degrades to "no rate" instead of
/// aborting the bench.
double QueriesPerHour(double queries, double elapsed_ms);

/// Memory footprint description used in hardware/software specs.
std::string FormatBytes(int64_t bytes);

/// Milliseconds with adaptive precision ("3534 ms", "0.273 ms").
std::string FormatMs(double ms);

/// A named series of (x, y) points — the universal exchange format between
/// experiments and the presentation layer (report::Gnuplot, report::Csv).
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  /// Optional per-point CI half-widths (empty when not applicable). The
  /// presentation layer draws error bars from these.
  std::vector<double> y_error;

  void Append(double x_value, double y_value) {
    x.push_back(x_value);
    y.push_back(y_value);
  }
  void AppendWithError(double x_value, double y_value, double error) {
    Append(x_value, y_value);
    y_error.push_back(error);
  }
  size_t size() const { return x.size(); }
};

}  // namespace core
}  // namespace perfeval

#endif  // PERFEVAL_CORE_METRICS_H_
