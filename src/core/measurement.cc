#include "core/measurement.h"

#include "common/string_util.h"

namespace perfeval {
namespace core {

std::string Measurement::ToString() const {
  return StrFormat("real=%.3fms (observed %.3fms) user=%.3fms sys=%.3fms",
                   real_ns / 1e6, ObservedRealMs(), user_ns / 1e6,
                   sys_ns / 1e6);
}

Measurement MeasureOnce(const std::function<void()>& body) {
  ProcessTimes before = ProcessTimes::Now();
  body();
  ProcessTimes delta = ProcessTimes::Now() - before;
  Measurement m;
  m.real_ns = delta.real_ns;
  m.user_ns = delta.user_ns;
  m.sys_ns = delta.sys_ns;
  return m;
}

}  // namespace core
}  // namespace perfeval
