#ifndef PERFEVAL_CORE_RUN_PROTOCOL_H_
#define PERFEVAL_CORE_RUN_PROTOCOL_H_

#include <string>
#include <vector>

namespace perfeval {
namespace core {

/// Thermal state of a run (paper, slide 32). The definitions are quoted from
/// the paper and implemented by the database substrate:
///  - Cold: right after system start, no benchmark-relevant data cached
///    anywhere (buffer pool and simulated OS cache flushed).
///  - Hot: as much query-relevant data as close to the CPU as possible,
///    achieved by running the query at least once before measuring.
enum class ThermalState {
  kCold,
  kHot,
};

const char* ThermalStateName(ThermalState state);

/// How to reduce several measured runs to one reported number.
enum class Aggregation {
  kLast,    ///< "measured last of three consecutive runs" (paper, slide 23).
  kMin,     ///< least-noise estimate for CPU-bound micro-benchmarks.
  kMean,    ///< with a confidence interval; the default for random responses.
  kMedian,  ///< robust to stragglers.
};

const char* AggregationName(Aggregation aggregation);

/// A fully documented run protocol. The paper's core demand is "be aware
/// and document what you do / choose" (slide 32) — Describe() emits the
/// protocol in prose so reports can embed it.
struct RunProtocol {
  ThermalState thermal = ThermalState::kHot;
  int warmup_runs = 1;    ///< un-measured runs before measuring (hot only).
  int measured_runs = 3;  ///< replication degree.
  Aggregation aggregation = Aggregation::kLast;

  /// The paper's own protocol for its TPC-H tables: hot, last of three
  /// consecutive runs.
  static RunProtocol PaperDefault() { return RunProtocol{}; }

  /// Cold protocol: no warmups, every measured run preceded by a cache
  /// flush (the runner invokes the experiment's flush hook).
  static RunProtocol Cold(int measured_runs) {
    return RunProtocol{ThermalState::kCold, 0, measured_runs,
                       Aggregation::kMean};
  }

  /// One-sentence documentation of the protocol.
  std::string Describe() const;
};

/// Applies `aggregation` to `samples` (non-empty).
double Aggregate(Aggregation aggregation, const std::vector<double>& samples);

}  // namespace core
}  // namespace perfeval

#endif  // PERFEVAL_CORE_RUN_PROTOCOL_H_
