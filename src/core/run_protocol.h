#ifndef PERFEVAL_CORE_RUN_PROTOCOL_H_
#define PERFEVAL_CORE_RUN_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace perfeval {
namespace core {

/// Thermal state of a run (paper, slide 32). The definitions are quoted from
/// the paper and implemented by the database substrate:
///  - Cold: right after system start, no benchmark-relevant data cached
///    anywhere (buffer pool and simulated OS cache flushed).
///  - Hot: as much query-relevant data as close to the CPU as possible,
///    achieved by running the query at least once before measuring.
enum class ThermalState {
  kCold,
  kHot,
};

const char* ThermalStateName(ThermalState state);

/// How to reduce several measured runs to one reported number.
enum class Aggregation {
  kLast,    ///< "measured last of three consecutive runs" (paper, slide 23).
  kMin,     ///< least-noise estimate for CPU-bound micro-benchmarks.
  kMean,    ///< with a confidence interval; the default for random responses.
  kMedian,  ///< robust to stragglers.
};

const char* AggregationName(Aggregation aggregation);

/// Order in which the scheduler executes the (design point, replication)
/// trials of an experiment. The order never changes the reported results
/// (trials are reassembled into design order and carry their own RNG
/// streams); it changes only how trials correlate with time-varying system
/// state — Kalibera & Jones's assignment-procedure concern.
enum class RunOrder {
  kDesignOrder,  ///< trials in design order, replications consecutive.
  kRandomized,   ///< seeded shuffle of all (point, replication) pairs.
  kInterleaved,  ///< round-robin over points: rep 0 of every point, then
                 ///< rep 1, ... so one point's replications spread in time.
};

const char* RunOrderName(RunOrder order);

/// Whether trials of an experiment may share the machine.
enum class IsolationPolicy {
  kConcurrent,  ///< trials fan out over all workers — safe for virtual-time
                ///< (simulated) responses, which cannot perturb each other.
  kExclusive,   ///< trials serialize on a single slot — required for
                ///< timing-sensitive (real-time) responses.
};

const char* IsolationPolicyName(IsolationPolicy policy);

/// The scheduling part of a run protocol: how many workers, in what order,
/// and whether trials may overlap. Part of RunProtocol so that Describe()
/// documents it with everything else (slide 32: "document what you do").
struct ScheduleSpec {
  int jobs = 1;  ///< worker threads; 1 = serial.
  RunOrder order = RunOrder::kDesignOrder;
  IsolationPolicy isolation = IsolationPolicy::kExclusive;
  uint64_t seed = 0;  ///< shuffle seed for RunOrder::kRandomized.

  /// Phrase for Describe(), e.g. "4 jobs, randomized order, concurrent".
  std::string Describe() const;
};

/// A fully documented run protocol. The paper's core demand is "be aware
/// and document what you do / choose" (slide 32) — Describe() emits the
/// protocol in prose so reports can embed it.
struct RunProtocol {
  ThermalState thermal = ThermalState::kHot;
  int warmup_runs = 1;    ///< un-measured runs before measuring (hot only).
  int measured_runs = 3;  ///< replication degree.
  Aggregation aggregation = Aggregation::kLast;
  ScheduleSpec schedule;  ///< how trials are ordered and parallelized.

  /// The paper's own protocol for its TPC-H tables: hot, last of three
  /// consecutive runs.
  static RunProtocol PaperDefault() { return RunProtocol{}; }

  /// Cold protocol: no warmups, every measured run preceded by a cache
  /// flush (the runner invokes the experiment's flush hook).
  static RunProtocol Cold(int measured_runs) {
    RunProtocol protocol;
    protocol.thermal = ThermalState::kCold;
    protocol.warmup_runs = 0;
    protocol.measured_runs = measured_runs;
    protocol.aggregation = Aggregation::kMean;
    return protocol;
  }

  /// One-sentence documentation of the protocol.
  std::string Describe() const;
};

/// Applies `aggregation` to `samples` (non-empty).
double Aggregate(Aggregation aggregation, const std::vector<double>& samples);

}  // namespace core
}  // namespace perfeval

#endif  // PERFEVAL_CORE_RUN_PROTOCOL_H_
