#include "core/process_times.h"

#include <sys/resource.h>

#include <chrono>

#include "common/string_util.h"

namespace perfeval {
namespace core {
namespace {

int64_t TimevalToNs(const timeval& tv) {
  return static_cast<int64_t>(tv.tv_sec) * 1000000000 +
         static_cast<int64_t>(tv.tv_usec) * 1000;
}

}  // namespace

ProcessTimes ProcessTimes::Now() {
  ProcessTimes times;
  times.real_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    times.user_ns = TimevalToNs(usage.ru_utime);
    times.sys_ns = TimevalToNs(usage.ru_stime);
  }
  return times;
}

std::string ProcessTimes::ToString() const {
  return StrFormat("real=%.3fms user=%.3fms sys=%.3fms", real_ms(), user_ms(),
                   sys_ms());
}

}  // namespace core
}  // namespace perfeval
