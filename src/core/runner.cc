#include "core/runner.h"

#include "common/check.h"
#include "common/string_util.h"

namespace perfeval {
namespace core {

const char* ResponseMetricName(ResponseMetric metric) {
  switch (metric) {
    case ResponseMetric::kObservedRealMs:
      return "observed real time (ms)";
    case ResponseMetric::kRealMs:
      return "real time (ms)";
    case ResponseMetric::kUserMs:
      return "user CPU time (ms)";
  }
  return "unknown";
}

double ExtractResponse(ResponseMetric metric, const Measurement& m) {
  switch (metric) {
    case ResponseMetric::kObservedRealMs:
      return m.ObservedRealMs();
    case ResponseMetric::kRealMs:
      return m.real_ns / 1e6;
    case ResponseMetric::kUserMs:
      return m.user_ms();
  }
  return m.ObservedRealMs();
}

std::vector<double> ExperimentResult::AggregatedResponses() const {
  std::vector<double> out;
  out.reserve(runs.size());
  for (const RunResult& run : runs) {
    out.push_back(run.aggregated);
  }
  return out;
}

std::vector<std::vector<double>> ExperimentResult::ReplicatedResponses()
    const {
  std::vector<std::vector<double>> out;
  out.reserve(runs.size());
  for (const RunResult& run : runs) {
    out.push_back(run.responses);
  }
  return out;
}

std::string ExperimentResult::ToTable(const doe::Design& design) const {
  PERFEVAL_CHECK_EQ(runs.size(), design.num_runs());
  std::string out = "protocol: " + protocol_description + "\n";
  out += PadLeft("run", 4);
  for (const doe::Factor& factor : design.factors()) {
    out += "  " + PadRight(factor.name(), 12);
  }
  out += "  " + PadLeft("response", 12) + "  " + PadLeft("ci95 +/-", 10);
  out += "\n";
  for (size_t r = 0; r < runs.size(); ++r) {
    out += PadLeft(StrFormat("%zu", r + 1), 4);
    for (size_t f = 0; f < design.num_factors(); ++f) {
      out += "  " + PadRight(design.LevelNameAt(r, f), 12);
    }
    out += "  " + PadLeft(StrFormat("%.3f", runs[r].aggregated), 12);
    if (runs[r].confidence.has_value()) {
      out += "  " +
             PadLeft(StrFormat("%.3f", runs[r].confidence->HalfWidth()), 10);
    } else {
      out += "  " + PadLeft("-", 10);
    }
    out += "\n";
  }
  return out;
}

ExperimentResult ExperimentRunner::Run(const doe::Design& design,
                                       const RunFunction& run) const {
  ExperimentResult result;
  result.protocol_description = protocol_.Describe();
  result.runs.reserve(design.num_runs());
  for (const doe::DesignPoint& point : design.points()) {
    RunResult run_result;
    run_result.point = point;
    if (protocol_.thermal == ThermalState::kHot) {
      for (int i = 0; i < protocol_.warmup_runs; ++i) {
        (void)run(point);
      }
    }
    for (int i = 0; i < protocol_.measured_runs; ++i) {
      if (protocol_.thermal == ThermalState::kCold && flush_) {
        flush_();
      }
      Measurement m = run(point);
      run_result.measurements.push_back(m);
      run_result.responses.push_back(ExtractResponse(metric_, m));
    }
    run_result.aggregated =
        Aggregate(protocol_.aggregation, run_result.responses);
    if (run_result.responses.size() >= 2) {
      run_result.confidence =
          stats::MeanConfidenceInterval(run_result.responses, 0.95);
    }
    if (run_result.responses.size() >= 4) {
      run_result.outlier_runs =
          stats::DetectOutliers(run_result.responses).outlier_indices;
    }
    result.runs.push_back(std::move(run_result));
  }
  return result;
}

RunResult ExperimentRunner::MeasureSingle(
    const std::function<Measurement()>& run) const {
  RunResult run_result;
  if (protocol_.thermal == ThermalState::kHot) {
    for (int i = 0; i < protocol_.warmup_runs; ++i) {
      (void)run();
    }
  }
  for (int i = 0; i < protocol_.measured_runs; ++i) {
    if (protocol_.thermal == ThermalState::kCold && flush_) {
      flush_();
    }
    Measurement m = run();
    run_result.measurements.push_back(m);
    run_result.responses.push_back(ExtractResponse(metric_, m));
  }
  run_result.aggregated =
      Aggregate(protocol_.aggregation, run_result.responses);
  if (run_result.responses.size() >= 2) {
    run_result.confidence =
        stats::MeanConfidenceInterval(run_result.responses, 0.95);
  }
  if (run_result.responses.size() >= 4) {
    run_result.outlier_runs =
        stats::DetectOutliers(run_result.responses).outlier_indices;
  }
  return run_result;
}

}  // namespace core
}  // namespace perfeval
