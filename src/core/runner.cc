#include "core/runner.h"

#include "common/check.h"
#include "common/random.h"
#include "common/string_util.h"

namespace perfeval {
namespace core {

const char* ResponseMetricName(ResponseMetric metric) {
  switch (metric) {
    case ResponseMetric::kObservedRealMs:
      return "observed real time (ms)";
    case ResponseMetric::kRealMs:
      return "real time (ms)";
    case ResponseMetric::kUserMs:
      return "user CPU time (ms)";
  }
  return "unknown";
}

double ExtractResponse(ResponseMetric metric, const Measurement& m) {
  switch (metric) {
    case ResponseMetric::kObservedRealMs:
      return m.ObservedRealMs();
    case ResponseMetric::kRealMs:
      return m.real_ns / 1e6;
    case ResponseMetric::kUserMs:
      return m.user_ms();
  }
  return m.ObservedRealMs();
}

std::vector<double> ExperimentResult::AggregatedResponses() const {
  std::vector<double> out;
  out.reserve(runs.size());
  for (const RunResult& run : runs) {
    out.push_back(run.aggregated);
  }
  return out;
}

std::vector<std::vector<double>> ExperimentResult::ReplicatedResponses()
    const {
  std::vector<std::vector<double>> out;
  out.reserve(runs.size());
  for (const RunResult& run : runs) {
    out.push_back(run.responses);
  }
  return out;
}

std::string ExperimentResult::ToTable(const doe::Design& design) const {
  PERFEVAL_CHECK_EQ(runs.size(), design.num_runs());
  std::string out = "protocol: " + protocol_description + "\n";
  out += PadLeft("run", 4);
  for (const doe::Factor& factor : design.factors()) {
    out += "  " + PadRight(factor.name(), 12);
  }
  out += "  " + PadLeft("response", 12) + "  " + PadLeft("ci95 +/-", 10);
  out += "\n";
  for (size_t r = 0; r < runs.size(); ++r) {
    out += PadLeft(StrFormat("%zu", r + 1), 4);
    for (size_t f = 0; f < design.num_factors(); ++f) {
      out += "  " + PadRight(design.LevelNameAt(r, f), 12);
    }
    out += "  " + PadLeft(StrFormat("%.3f", runs[r].aggregated), 12);
    if (runs[r].confidence.has_value()) {
      out += "  " +
             PadLeft(StrFormat("%.3f", runs[r].confidence->HalfWidth()), 10);
    } else {
      out += "  " + PadLeft("-", 10);
    }
    out += "\n";
  }
  return out;
}

RunResult AssembleRunResult(const RunProtocol& protocol, ResponseMetric metric,
                            doe::DesignPoint point,
                            std::vector<Measurement> measurements) {
  RunResult run_result;
  run_result.point = std::move(point);
  run_result.measurements = std::move(measurements);
  run_result.responses.reserve(run_result.measurements.size());
  for (const Measurement& m : run_result.measurements) {
    run_result.responses.push_back(ExtractResponse(metric, m));
  }
  run_result.aggregated =
      Aggregate(protocol.aggregation, run_result.responses);
  if (run_result.responses.size() >= 2) {
    run_result.confidence =
        stats::MeanConfidenceInterval(run_result.responses, 0.95);
  }
  if (run_result.responses.size() >= 4) {
    run_result.outlier_runs =
        stats::DetectOutliers(run_result.responses).outlier_indices;
  }
  return run_result;
}

ExperimentResult ExperimentRunner::Run(const doe::Design& design,
                                       const RunFunction& run) const {
  ExperimentResult result;
  result.protocol_description = protocol_.Describe();
  result.runs.reserve(design.num_runs());
  for (const doe::DesignPoint& point : design.points()) {
    if (protocol_.thermal == ThermalState::kHot) {
      for (int i = 0; i < protocol_.warmup_runs; ++i) {
        (void)run(point);
      }
    }
    std::vector<Measurement> measurements;
    measurements.reserve(protocol_.measured_runs);
    for (int i = 0; i < protocol_.measured_runs; ++i) {
      if (protocol_.thermal == ThermalState::kCold && flush_) {
        flush_();
      }
      measurements.push_back(run(point));
    }
    result.runs.push_back(AssembleRunResult(protocol_, metric_, point,
                                            std::move(measurements)));
  }
  return result;
}

Result<ExperimentResult> ExperimentRunner::Run(const doe::Design& design,
                                               const TrialFunction& run,
                                               TrialExecutor& executor) const {
  PERFEVAL_CHECK_GT(protocol_.measured_runs, 0);
  const size_t num_points = design.num_runs();
  const size_t reps = static_cast<size_t>(protocol_.measured_runs);
  std::vector<TrialSpec> trials;
  trials.reserve(num_points * reps);
  for (size_t p = 0; p < num_points; ++p) {
    for (size_t r = 0; r < reps; ++r) {
      TrialSpec spec;
      spec.point_index = p;
      spec.replication = static_cast<int>(r);
      spec.seed = MixSeed(trial_seed_base_, p, r);
      trials.push_back(spec);
    }
  }
  // One slot per trial; `record` writes distinct slots, so concurrent
  // executors need no lock here, and the executor's completion provides the
  // happens-before edge for the reassembly below.
  std::vector<Measurement> slots(trials.size());
  auto run_trial = [&](const TrialSpec& spec) -> Measurement {
    const doe::DesignPoint& point = design.points()[spec.point_index];
    if (protocol_.thermal == ThermalState::kHot) {
      TrialSpec warmup = spec;
      warmup.warmup = true;
      for (int i = 0; i < protocol_.warmup_runs; ++i) {
        (void)run(point, warmup);
      }
    } else if (flush_) {
      flush_();
    }
    return run(point, spec);
  };
  auto record = [&](const TrialSpec& spec, const Measurement& m) {
    slots[spec.point_index * reps + static_cast<size_t>(spec.replication)] =
        m;
  };
  PERFEVAL_RETURN_IF_ERROR(executor.ExecuteTrials(trials, run_trial, record));
  // Reassemble into design order: result bookkeeping is independent of the
  // order trials completed in.
  ExperimentResult result;
  result.protocol_description = protocol_.Describe();
  result.runs.reserve(num_points);
  for (size_t p = 0; p < num_points; ++p) {
    std::vector<Measurement> measurements(
        slots.begin() + static_cast<ptrdiff_t>(p * reps),
        slots.begin() + static_cast<ptrdiff_t>((p + 1) * reps));
    result.runs.push_back(AssembleRunResult(
        protocol_, metric_, design.points()[p], std::move(measurements)));
  }
  return result;
}

Result<ExperimentResult> ExperimentRunner::Run(const doe::Design& design,
                                               const RunFunction& run,
                                               TrialExecutor& executor) const {
  return Run(
      design,
      [&run](const doe::DesignPoint& point, const TrialSpec&) {
        return run(point);
      },
      executor);
}

RunResult ExperimentRunner::MeasureSingle(
    const std::function<Measurement()>& run) const {
  if (protocol_.thermal == ThermalState::kHot) {
    for (int i = 0; i < protocol_.warmup_runs; ++i) {
      (void)run();
    }
  }
  std::vector<Measurement> measurements;
  measurements.reserve(protocol_.measured_runs);
  for (int i = 0; i < protocol_.measured_runs; ++i) {
    if (protocol_.thermal == ThermalState::kCold && flush_) {
      flush_();
    }
    measurements.push_back(run());
  }
  return AssembleRunResult(protocol_, metric_, doe::DesignPoint{},
                           std::move(measurements));
}

}  // namespace core
}  // namespace perfeval
