#ifndef PERFEVAL_CORE_RUNNER_H_
#define PERFEVAL_CORE_RUNNER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/measurement.h"
#include "core/run_protocol.h"
#include "doe/design.h"
#include "stats/confidence.h"
#include "stats/outliers.h"

namespace perfeval {
namespace core {

/// Which component of a Measurement is the experiment's response variable.
enum class ResponseMetric {
  kObservedRealMs,  ///< wall time including simulated device stalls.
  kRealMs,          ///< measured wall time only.
  kUserMs,          ///< user CPU time.
};

const char* ResponseMetricName(ResponseMetric metric);

/// Extracts the chosen response from a measurement, in milliseconds.
double ExtractResponse(ResponseMetric metric, const Measurement& m);

/// All measurements and derived responses for one design point.
struct RunResult {
  doe::DesignPoint point;
  std::vector<Measurement> measurements;  ///< one per measured run.
  std::vector<double> responses;          ///< extracted metric per run.
  double aggregated = 0.0;                ///< per the protocol's aggregation.
  /// Present when >= 2 measured runs: 95% CI of the mean response, so every
  /// reported random quantity can be plotted with its interval (slide 142).
  std::optional<stats::ConfidenceInterval> confidence;
  /// Indices of measured runs outside the Tukey 1.5*IQR fences (computed
  /// when >= 4 measured runs): likely perturbed by background activity.
  std::vector<size_t> outlier_runs;
};

/// A completed experiment: the design plus one RunResult per design point.
struct ExperimentResult {
  std::string protocol_description;
  std::vector<RunResult> runs;

  /// Aggregated response per run, in design order — the `y` vector for
  /// doe::EstimateEffects / doe::AllocateVariation.
  std::vector<double> AggregatedResponses() const;

  /// Raw replicated responses per run — input for
  /// doe::AllocateVariationReplicated.
  std::vector<std::vector<double>> ReplicatedResponses() const;

  /// Text table: factor levels, aggregated response, CI half-width.
  std::string ToTable(const doe::Design& design) const;
};

/// Measures one configured run; receives the design point to configure the
/// system under test. Returns the run's Measurement.
using RunFunction = std::function<Measurement(const doe::DesignPoint&)>;

/// Invoked before each cold measured run to flush caches / restart state.
using FlushFunction = std::function<void()>;

/// Executes a Design under a RunProtocol: per design point, cold protocols
/// flush-then-measure `measured_runs` times; hot protocols run `warmup_runs`
/// un-measured warm-ups first. Deterministic run order (design order).
class ExperimentRunner {
 public:
  ExperimentRunner(RunProtocol protocol, ResponseMetric metric)
      : protocol_(protocol), metric_(metric) {}

  /// Hook for cold runs. Without one, cold protocols behave like hot
  /// protocols with zero warm-ups (and the report says so).
  void set_flush_hook(FlushFunction flush) { flush_ = std::move(flush); }

  ExperimentResult Run(const doe::Design& design,
                       const RunFunction& run) const;

  /// Convenience: measure a single configuration (no design) under the
  /// protocol and return its RunResult.
  RunResult MeasureSingle(const std::function<Measurement()>& run) const;

 private:
  RunProtocol protocol_;
  ResponseMetric metric_;
  FlushFunction flush_;
};

}  // namespace core
}  // namespace perfeval

#endif  // PERFEVAL_CORE_RUNNER_H_
