#ifndef PERFEVAL_CORE_RUNNER_H_
#define PERFEVAL_CORE_RUNNER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/measurement.h"
#include "core/run_protocol.h"
#include "doe/design.h"
#include "stats/confidence.h"
#include "stats/outliers.h"

namespace perfeval {
namespace core {

/// Which component of a Measurement is the experiment's response variable.
enum class ResponseMetric {
  kObservedRealMs,  ///< wall time including simulated device stalls.
  kRealMs,          ///< measured wall time only.
  kUserMs,          ///< user CPU time.
};

const char* ResponseMetricName(ResponseMetric metric);

/// Extracts the chosen response from a measurement, in milliseconds.
double ExtractResponse(ResponseMetric metric, const Measurement& m);

/// All measurements and derived responses for one design point.
struct RunResult {
  doe::DesignPoint point;
  std::vector<Measurement> measurements;  ///< one per measured run.
  std::vector<double> responses;          ///< extracted metric per run.
  double aggregated = 0.0;                ///< per the protocol's aggregation.
  /// Present when >= 2 measured runs: 95% CI of the mean response, so every
  /// reported random quantity can be plotted with its interval (slide 142).
  std::optional<stats::ConfidenceInterval> confidence;
  /// Indices of measured runs outside the Tukey 1.5*IQR fences (computed
  /// when >= 4 measured runs): likely perturbed by background activity.
  std::vector<size_t> outlier_runs;
};

/// A completed experiment: the design plus one RunResult per design point.
struct ExperimentResult {
  std::string protocol_description;
  std::vector<RunResult> runs;

  /// Aggregated response per run, in design order — the `y` vector for
  /// doe::EstimateEffects / doe::AllocateVariation.
  std::vector<double> AggregatedResponses() const;

  /// Raw replicated responses per run — input for
  /// doe::AllocateVariationReplicated.
  std::vector<std::vector<double>> ReplicatedResponses() const;

  /// Text table: factor levels, aggregated response, CI half-width.
  std::string ToTable(const doe::Design& design) const;
};

/// Measures one configured run; receives the design point to configure the
/// system under test. Returns the run's Measurement.
using RunFunction = std::function<Measurement(const doe::DesignPoint&)>;

/// Invoked before each cold measured run to flush caches / restart state.
using FlushFunction = std::function<void()>;

/// One scheduled trial: design point `point_index`, replication
/// `replication`, and the deterministic RNG seed derived from
/// (experiment, point, replication) — the same trial always gets the same
/// stream, whatever worker runs it and in whatever order.
struct TrialSpec {
  size_t point_index = 0;
  int replication = 0;
  uint64_t seed = 0;
  bool warmup = false;  ///< true for the un-measured warm-up invocations.
};

/// Trial-aware run function: like RunFunction but also receives the trial's
/// identity and seed, so randomized workloads can draw from the trial's own
/// stream and stay bit-identical under any schedule.
using TrialFunction =
    std::function<Measurement(const doe::DesignPoint&, const TrialSpec&)>;

/// Executes a batch of measured trials — possibly out of order, possibly
/// concurrently. Implementations must invoke `run_trial` exactly once per
/// spec and pass its result to `record` (specs map to distinct result
/// slots, so `record` needs no external synchronization). A trial failure
/// becomes a non-OK return value, but the remaining trials must still run.
class TrialExecutor {
 public:
  virtual ~TrialExecutor() = default;
  virtual Status ExecuteTrials(
      const std::vector<TrialSpec>& trials,
      const std::function<Measurement(const TrialSpec&)>& run_trial,
      const std::function<void(const TrialSpec&, const Measurement&)>&
          record) = 0;
};

/// Builds one design point's RunResult from its measurements (in
/// replication order). Aggregation, the confidence interval, and the
/// outlier fences are all pure functions of the response vector — never of
/// the order trials happened to finish in — so a parallel schedule and the
/// serial loop produce identical bookkeeping.
RunResult AssembleRunResult(const RunProtocol& protocol, ResponseMetric metric,
                            doe::DesignPoint point,
                            std::vector<Measurement> measurements);

/// Executes a Design under a RunProtocol: per design point, cold protocols
/// flush-then-measure `measured_runs` times; hot protocols run `warmup_runs`
/// un-measured warm-ups first. Deterministic run order (design order).
class ExperimentRunner {
 public:
  ExperimentRunner(RunProtocol protocol, ResponseMetric metric)
      : protocol_(protocol), metric_(metric) {}

  /// Hook for cold runs. Without one, cold protocols behave like hot
  /// protocols with zero warm-ups (and the report says so).
  void set_flush_hook(FlushFunction flush) { flush_ = std::move(flush); }

  /// Base value mixed into every trial's seed (typically a hash of the
  /// experiment id — see sched::HashExperimentId).
  void set_trial_seed_base(uint64_t base) { trial_seed_base_ = base; }

  const RunProtocol& protocol() const { return protocol_; }
  ResponseMetric metric() const { return metric_; }

  ExperimentResult Run(const doe::Design& design,
                       const RunFunction& run) const;

  /// Scheduler-backed path: every (point, replication) pair becomes an
  /// independent trial handed to `executor` (e.g. sched::Scheduler), then
  /// results are reassembled into design order. Each trial is
  /// self-contained: hot protocols re-run their warm-ups per trial and cold
  /// protocols flush per trial, so trials can execute on any worker in any
  /// order. Under a concurrent executor, `run` and the flush hook must be
  /// thread-safe (typically by building per-trial state from the trial's
  /// seed).
  Result<ExperimentResult> Run(const doe::Design& design,
                               const TrialFunction& run,
                               TrialExecutor& executor) const;

  /// RunFunction adaptor for the scheduler-backed path.
  Result<ExperimentResult> Run(const doe::Design& design,
                               const RunFunction& run,
                               TrialExecutor& executor) const;

  /// Convenience: measure a single configuration (no design) under the
  /// protocol and return its RunResult.
  RunResult MeasureSingle(const std::function<Measurement()>& run) const;

 private:
  RunProtocol protocol_;
  ResponseMetric metric_;
  FlushFunction flush_;
  uint64_t trial_seed_base_ = 0;
};

}  // namespace core
}  // namespace perfeval

#endif  // PERFEVAL_CORE_RUNNER_H_
