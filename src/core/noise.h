#ifndef PERFEVAL_CORE_NOISE_H_
#define PERFEVAL_CORE_NOISE_H_

#include <cstdint>
#include <string>

namespace perfeval {
namespace core {

/// The measured noise floor of this machine right now: how repeatable a
/// fixed CPU-bound kernel's timing is. Run it before a measurement session
/// — if the coefficient of variation is high, the machine is too busy to
/// produce numbers worth reporting (the paper's common mistake #2:
/// "important parameters are not controlled", slide 59).
struct NoiseReport {
  int64_t samples = 0;
  double median_ns = 0.0;
  double p95_ns = 0.0;
  double coefficient_of_variation = 0.0;  ///< stddev / mean.
  double p95_over_median = 1.0;           ///< tail inflation.
  int64_t timer_resolution_ns = 0;

  /// True when CoV is at or below `max_cov` (default 5%).
  bool IsQuiet(double max_cov = 0.05) const {
    return coefficient_of_variation <= max_cov;
  }

  std::string ToString() const;
};

/// Times `samples` repetitions of a fixed arithmetic kernel of roughly
/// `kernel_iterations` operations each and summarizes the variation.
NoiseReport MeasureNoiseFloor(int samples = 50,
                              int kernel_iterations = 2'000'000);

}  // namespace core
}  // namespace perfeval

#endif  // PERFEVAL_CORE_NOISE_H_
