#include "core/metrics.h"

#include "common/check.h"
#include "common/string_util.h"

namespace perfeval {
namespace core {

double ThroughputPerSecond(int64_t operations, int64_t elapsed_ns) {
  PERFEVAL_CHECK_GT(elapsed_ns, 0);
  return static_cast<double>(operations) * 1e9 /
         static_cast<double>(elapsed_ns);
}

double QueriesPerHour(double queries, double elapsed_ms) {
  if (elapsed_ms <= 0.0) {
    return 0.0;
  }
  return queries * 3600'000.0 / elapsed_ms;
}

std::string FormatBytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) {
    return StrFormat("%lldB", static_cast<long long>(bytes));
  }
  return StrFormat("%.1f%s", value, units[unit]);
}

std::string FormatMs(double ms) {
  if (ms >= 100.0) {
    return StrFormat("%.0f ms", ms);
  }
  if (ms >= 1.0) {
    return StrFormat("%.1f ms", ms);
  }
  return StrFormat("%.3f ms", ms);
}

}  // namespace core
}  // namespace perfeval
