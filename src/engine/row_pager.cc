#include "engine/row_pager.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"

namespace perfeval {
namespace engine {
namespace {

uint64_t PageKey(uint32_t table_id, uint32_t page) {
  return (static_cast<uint64_t>(table_id) << 32) | page;
}

}  // namespace

RowPager::RowPager(db::DiskModel disk, size_t buffer_pool_pages,
                   size_t rows_per_page)
    : disk_(disk),
      buffer_pool_pages_(buffer_pool_pages),
      rows_per_page_(rows_per_page) {
  PERFEVAL_CHECK_GT(buffer_pool_pages_, 0u);
  PERFEVAL_CHECK_GT(rows_per_page_, 0u);
}

void RowPager::RegisterTable(uint32_t table_id, const RowBlock& block) {
  PERFEVAL_CHECK(tables_.find(table_id) == tables_.end())
      << "table id registered twice";
  TableMeta meta;
  size_t n = block.num_rows();
  size_t num_pages = (n + rows_per_page_ - 1) / rows_per_page_;
  meta.page_bytes.resize(num_pages, 0);
  const auto& string_cols = [&] {
    std::vector<size_t> cols;
    for (size_t c = 0; c < block.schema().num_columns(); ++c) {
      if (block.schema().column(c).type == db::DataType::kString) {
        cols.push_back(c);
      }
    }
    return cols;
  }();
  for (size_t p = 0; p < num_pages; ++p) {
    size_t begin = p * rows_per_page_;
    size_t end = std::min(n, begin + rows_per_page_);
    size_t bytes = (end - begin) * block.layout().stride();
    for (size_t r = begin; r < end; ++r) {
      for (size_t c : string_cols) {
        if (!block.IsNull(r, c)) {
          bytes += StringHeap::SlotLength(block.RawSlotAt(r, c));
        }
      }
    }
    meta.page_bytes[p] = bytes;
  }
  tables_[table_id] = std::move(meta);
}

void RowPager::ReplaceTable(uint32_t table_id, const RowBlock& block) {
  std::lock_guard<std::mutex> lock(mu_);
  PERFEVAL_CHECK(tables_.find(table_id) != tables_.end())
      << "ReplaceTable on unregistered table id";
  tables_.erase(table_id);
  // Evict the stale pages and drop the stream head: the new version's
  // pages are cold, exactly as a freshly written file would be.
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (static_cast<uint32_t>(*it >> 32) == table_id) {
      resident_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  stream_heads_.erase(table_id);

  // Recompute page sizes (RegisterTable body, sans the duplicate check).
  TableMeta meta;
  size_t n = block.num_rows();
  size_t num_pages = (n + rows_per_page_ - 1) / rows_per_page_;
  meta.page_bytes.resize(num_pages, 0);
  std::vector<size_t> string_cols;
  for (size_t c = 0; c < block.schema().num_columns(); ++c) {
    if (block.schema().column(c).type == db::DataType::kString) {
      string_cols.push_back(c);
    }
  }
  for (size_t p = 0; p < num_pages; ++p) {
    size_t begin = p * rows_per_page_;
    size_t end = std::min(n, begin + rows_per_page_);
    size_t bytes = (end - begin) * block.layout().stride();
    for (size_t r = begin; r < end; ++r) {
      for (size_t c : string_cols) {
        if (!block.IsNull(r, c)) {
          bytes += StringHeap::SlotLength(block.RawSlotAt(r, c));
        }
      }
    }
    meta.page_bytes[p] = bytes;
  }
  tables_[table_id] = std::move(meta);
}

size_t RowPager::NumPages(uint32_t table_id) const {
  auto it = tables_.find(table_id);
  PERFEVAL_CHECK(it != tables_.end()) << "unregistered table id";
  return it->second.page_bytes.size();
}

db::StorageStats RowPager::TouchRows(uint32_t table_id, size_t row_begin,
                                     size_t row_end) {
  if (row_begin >= row_end) {
    return {};
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto meta_it = tables_.find(table_id);
  PERFEVAL_CHECK(meta_it != tables_.end()) << "unregistered table id";
  const TableMeta& meta = meta_it->second;
  db::StorageStats before = stats_;
  uint32_t first = static_cast<uint32_t>(row_begin / rows_per_page_);
  uint32_t last = static_cast<uint32_t>((row_end - 1) / rows_per_page_);
  for (uint32_t p = first; p <= last; ++p) {
    uint64_t key = PageKey(table_id, p);
    auto it = resident_.find(key);
    if (it != resident_.end()) {
      // Hit: MRU bump; the stream head advances so a warm page mid-scan
      // never makes the next miss pay a spurious seek (mirrors
      // StorageManager::TouchPageLocked).
      lru_.splice(lru_.begin(), lru_, it->second);
      stream_heads_[table_id] = p;
      ++stats_.page_hits;
      continue;
    }
    PERFEVAL_CHECK_LT(p, meta.page_bytes.size());
    size_t bytes = meta.page_bytes[p];
    auto head = stream_heads_.find(table_id);
    bool sequential = head != stream_heads_.end() && p == head->second + 1;
    int64_t stall = static_cast<int64_t>(bytes * disk_.ns_per_byte);
    if (!sequential) {
      stall += disk_.seek_ns;
    }
    stream_heads_[table_id] = p;
    ++stats_.page_misses;
    stats_.bytes_read += static_cast<int64_t>(bytes);
    stats_.stall_ns += stall;
    lru_.push_front(key);
    resident_[key] = lru_.begin();
    while (resident_.size() > buffer_pool_pages_) {
      uint64_t victim = lru_.back();
      lru_.pop_back();
      resident_.erase(victim);
    }
  }
  db::StorageStats delta = stats_;
  delta.page_hits -= before.page_hits;
  delta.page_misses -= before.page_misses;
  delta.bytes_read -= before.bytes_read;
  delta.stall_ns -= before.stall_ns;
  delta.bytes_written -= before.bytes_written;
  delta.fsyncs -= before.fsyncs;
  delta.write_stall_ns -= before.write_stall_ns;
  return delta;
}

void RowPager::FlushCaches() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  resident_.clear();
  stream_heads_.clear();
}

db::StorageStats RowPager::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RowPager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = db::StorageStats();
}

}  // namespace engine
}  // namespace perfeval
