#ifndef PERFEVAL_ENGINE_ROW_LAYOUT_H_
#define PERFEVAL_ENGINE_ROW_LAYOUT_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "db/table.h"
#include "db/value.h"

namespace perfeval {
namespace engine {

/// Append-only byte arena holding the string payloads of a RowBlock.
/// String-typed row slots store a (offset, length) pair into one heap, so
/// copying a tuple is a fixed-stride memcpy with no per-string allocation
/// — the row store's core bet against the columnar engine's std::string
/// gathers. Heaps are shared down operator chains (filter/sort/limit
/// outputs point into their input's heap); only the operator that created
/// a heap may append to it, which keeps parallel tuple copies write-free.
class StringHeap {
 public:
  /// Appends `s` and returns its packed slot (offset low 32, length high
  /// 32). Aborts past 4 GiB — far beyond any test-scale heap.
  uint64_t Append(std::string_view s) {
    PERFEVAL_CHECK_LE(bytes_.size() + s.size(),
                      static_cast<size_t>(UINT32_MAX));
    uint64_t slot = PackSlot(static_cast<uint32_t>(bytes_.size()),
                             static_cast<uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
    return slot;
  }

  /// Appends every byte of `other`, returning the offset delta to add to
  /// slots that referenced it (the join heap-concatenation step).
  uint32_t AppendHeap(const StringHeap& other) {
    PERFEVAL_CHECK_LE(bytes_.size() + other.bytes_.size(),
                      static_cast<size_t>(UINT32_MAX));
    uint32_t delta = static_cast<uint32_t>(bytes_.size());
    bytes_.insert(bytes_.end(), other.bytes_.begin(), other.bytes_.end());
    return delta;
  }

  std::string_view At(uint64_t slot) const {
    uint32_t offset = static_cast<uint32_t>(slot & 0xffffffffu);
    uint32_t length = static_cast<uint32_t>(slot >> 32);
    PERFEVAL_CHECK_LE(static_cast<size_t>(offset) + length, bytes_.size());
    return std::string_view(bytes_.data() + offset, length);
  }

  static uint64_t PackSlot(uint32_t offset, uint32_t length) {
    return static_cast<uint64_t>(length) << 32 | offset;
  }
  /// Rewrites a slot to point `delta` bytes later (after AppendHeap).
  static uint64_t ShiftSlot(uint64_t slot, uint32_t delta) {
    return PackSlot(static_cast<uint32_t>(slot & 0xffffffffu) + delta,
                    static_cast<uint32_t>(slot >> 32));
  }
  /// Byte length encoded in a slot — what a serialized row-major page
  /// would carry inline for this cell (RowPager charges it per occurrence).
  static uint32_t SlotLength(uint64_t slot) {
    return static_cast<uint32_t>(slot >> 32);
  }

  size_t size_bytes() const { return bytes_.size(); }

 private:
  std::vector<char> bytes_;
};

/// The physical shape of one packed row: a null bitmap (one bit per
/// column, padded to 8 bytes) followed by one 8-byte slot per column.
/// int64/date/double slots hold the value natively; string slots hold a
/// StringHeap (offset, length) pair; NULL slots hold zero with the null
/// bit set. Every row of a table has the same stride, so row r lives at
/// byte r * stride — the row store's O(1) tuple addressing.
class RowLayout {
 public:
  RowLayout() = default;

  static RowLayout For(const db::Schema& schema) {
    RowLayout layout;
    layout.schema_ = schema;
    size_t null_bytes = (schema.num_columns() + 7) / 8;
    layout.slot_base_ = (null_bytes + 7) & ~size_t{7};
    layout.stride_ = layout.slot_base_ + 8 * schema.num_columns();
    return layout;
  }

  const db::Schema& schema() const { return schema_; }
  size_t num_columns() const { return schema_.num_columns(); }
  /// Bytes per packed row (excluding string payload, which lives in the
  /// heap but is charged per row by the pager).
  size_t stride() const { return stride_; }
  size_t SlotOffset(size_t col) const { return slot_base_ + 8 * col; }

  static size_t NullByte(size_t col) { return col >> 3; }
  static uint8_t NullBit(size_t col) {
    return static_cast<uint8_t>(1u << (col & 7));
  }

 private:
  db::Schema schema_;
  size_t slot_base_ = 8;
  size_t stride_ = 8;
};

/// A run of packed rows sharing one layout and one string heap — the unit
/// of exchange between the row-store backend's operators (the role
/// db::Table plays for the columnar engine). Immutable once built;
/// operators build a fresh block and hand out shared_ptr<const RowBlock>.
class RowBlock {
 public:
  explicit RowBlock(RowLayout layout,
                    std::shared_ptr<StringHeap> heap =
                        std::make_shared<StringHeap>())
      : layout_(std::move(layout)), heap_(std::move(heap)) {}

  const RowLayout& layout() const { return layout_; }
  const db::Schema& schema() const { return layout_.schema(); }
  size_t num_rows() const { return num_rows_; }

  void ReserveRows(size_t n) { bytes_.reserve(n * layout_.stride()); }
  /// Presizes to `n` zeroed rows for disjoint-range parallel fills
  /// (workers write non-overlapping rows via MutableRowPtr).
  void ResizeRows(size_t n) {
    bytes_.assign(n * layout_.stride(), 0);
    num_rows_ = n;
  }

  const uint8_t* RowPtr(size_t r) const {
    return bytes_.data() + r * layout_.stride();
  }
  uint8_t* MutableRowPtr(size_t r) {
    return bytes_.data() + r * layout_.stride();
  }

  /// Appends one zeroed row and returns its mutable bytes.
  uint8_t* AppendRow() {
    bytes_.resize(bytes_.size() + layout_.stride(), 0);
    ++num_rows_;
    return bytes_.data() + (num_rows_ - 1) * layout_.stride();
  }

  /// Appends row `r` of `src` verbatim — valid only when layouts match
  /// and the heap is shared (string slots stay meaningful).
  void AppendRowCopy(const RowBlock& src, size_t r) {
    const uint8_t* from = src.RowPtr(r);
    bytes_.insert(bytes_.end(), from, from + layout_.stride());
    ++num_rows_;
  }

  // ---- Cell readers (row-major access paths of the executor) ----

  bool IsNull(size_t r, size_t c) const {
    return (RowPtr(r)[RowLayout::NullByte(c)] & RowLayout::NullBit(c)) != 0;
  }
  int64_t Int64At(size_t r, size_t c) const {
    int64_t v;
    std::memcpy(&v, RowPtr(r) + layout_.SlotOffset(c), 8);
    return v;
  }
  double DoubleAt(size_t r, size_t c) const {
    double v;
    std::memcpy(&v, RowPtr(r) + layout_.SlotOffset(c), 8);
    return v;
  }
  uint64_t RawSlotAt(size_t r, size_t c) const {
    uint64_t v;
    std::memcpy(&v, RowPtr(r) + layout_.SlotOffset(c), 8);
    return v;
  }
  std::string_view StringAt(size_t r, size_t c) const {
    return heap_->At(RawSlotAt(r, c));
  }
  /// NULL-aware typed read (API-boundary path; hot loops read slots).
  db::Value ValueAt(size_t r, size_t c) const;

  // ---- Cell writers (builders only; `row` from AppendRow/MutableRowPtr) ----

  void SetNull(uint8_t* row, size_t c) const {
    row[RowLayout::NullByte(c)] |= RowLayout::NullBit(c);
  }
  void SetInt64(uint8_t* row, size_t c, int64_t v) const {
    std::memcpy(row + layout_.SlotOffset(c), &v, 8);
  }
  void SetDouble(uint8_t* row, size_t c, double v) const {
    std::memcpy(row + layout_.SlotOffset(c), &v, 8);
  }
  void SetRawSlot(uint8_t* row, size_t c, uint64_t v) const {
    std::memcpy(row + layout_.SlotOffset(c), &v, 8);
  }
  /// Interns `s` into this block's heap — only for blocks that own their
  /// heap (see StringHeap).
  void SetString(uint8_t* row, size_t c, std::string_view s) {
    SetRawSlot(row, c, heap_->Append(s));
  }
  void SetValue(uint8_t* row, size_t c, const db::Value& v);

  const std::shared_ptr<StringHeap>& heap() const { return heap_; }
  StringHeap& mutable_heap() { return *heap_; }

  /// Packed-row bytes plus the heap footprint (approximate block size).
  size_t ByteSize() const { return bytes_.size() + heap_->size_bytes(); }

 private:
  RowLayout layout_;
  std::vector<uint8_t> bytes_;
  size_t num_rows_ = 0;
  std::shared_ptr<StringHeap> heap_;
};

using RowBlockPtr = std::shared_ptr<const RowBlock>;

/// Packs a columnar table into a fresh RowBlock (fresh heap). The packed
/// form round-trips exactly: UnpackToTable(PackTable(t)) equals t cell for
/// cell, including NULL masks.
RowBlock PackTable(const db::Table& table);

/// Appends rows [begin, end) of `block` to `out` (schema must match) —
/// the executor's batch-unpack step feeding db::Expr evaluation.
void UnpackRows(const RowBlock& block, size_t begin, size_t end,
                db::Table* out);

/// Materializes the whole block as a columnar table (the backend-neutral
/// result format every backend's output is diffed in).
std::shared_ptr<db::Table> UnpackToTable(const RowBlock& block);

}  // namespace engine
}  // namespace perfeval

#endif  // PERFEVAL_ENGINE_ROW_LAYOUT_H_
