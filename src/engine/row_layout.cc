#include "engine/row_layout.h"

#include <string>
#include <utility>

namespace perfeval {
namespace engine {

db::Value RowBlock::ValueAt(size_t r, size_t c) const {
  db::DataType type = schema().column(c).type;
  if (IsNull(r, c)) {
    return db::Value::Null(type);
  }
  switch (type) {
    case db::DataType::kInt64:
      return db::Value::Int64(Int64At(r, c));
    case db::DataType::kDouble:
      return db::Value::Double(DoubleAt(r, c));
    case db::DataType::kDate:
      return db::Value::Date(static_cast<int32_t>(Int64At(r, c)));
    case db::DataType::kString:
      return db::Value::String(std::string(StringAt(r, c)));
  }
  return db::Value::Null(type);
}

void RowBlock::SetValue(uint8_t* row, size_t c, const db::Value& v) {
  if (v.is_null()) {
    SetNull(row, c);
    return;
  }
  switch (v.type()) {
    case db::DataType::kInt64:
      SetInt64(row, c, v.AsInt64());
      return;
    case db::DataType::kDouble:
      SetDouble(row, c, v.AsDouble());
      return;
    case db::DataType::kDate:
      SetInt64(row, c, static_cast<int64_t>(v.AsDate()));
      return;
    case db::DataType::kString:
      SetString(row, c, v.AsString());
      return;
  }
}

RowBlock PackTable(const db::Table& table) {
  RowBlock block(RowLayout::For(table.schema()));
  block.ReserveRows(table.num_rows());
  size_t ncols = table.num_columns();
  for (size_t r = 0; r < table.num_rows(); ++r) {
    uint8_t* row = block.AppendRow();
    for (size_t c = 0; c < ncols; ++c) {
      const db::Column& src = table.column(c);
      if (src.IsNull(r)) {
        block.SetNull(row, c);
        continue;
      }
      switch (src.type()) {
        case db::DataType::kInt64:
        case db::DataType::kDate:
          block.SetInt64(row, c, src.GetInt64(r));
          break;
        case db::DataType::kDouble:
          block.SetDouble(row, c, src.GetDouble(r));
          break;
        case db::DataType::kString: {
          // SetString may reallocate the heap; re-derive `row` afterwards
          // is unnecessary because the heap and row bytes are distinct
          // vectors — only heap bytes move.
          block.SetString(row, c, src.GetString(r));
          break;
        }
      }
    }
  }
  return block;
}

void UnpackRows(const RowBlock& block, size_t begin, size_t end,
                db::Table* out) {
  size_t ncols = block.schema().num_columns();
  for (size_t c = 0; c < ncols; ++c) {
    db::Column& dst = out->column(c);
    db::DataType type = block.schema().column(c).type;
    for (size_t r = begin; r < end; ++r) {
      if (block.IsNull(r, c)) {
        dst.AppendNull();
        continue;
      }
      switch (type) {
        case db::DataType::kInt64:
          dst.AppendInt64(block.Int64At(r, c));
          break;
        case db::DataType::kDate:
          dst.AppendDate(static_cast<int32_t>(block.Int64At(r, c)));
          break;
        case db::DataType::kDouble:
          dst.AppendDouble(block.DoubleAt(r, c));
          break;
        case db::DataType::kString:
          dst.AppendString(std::string(block.StringAt(r, c)));
          break;
      }
    }
  }
  out->FinishBulkLoad();
}

std::shared_ptr<db::Table> UnpackToTable(const RowBlock& block) {
  auto out = std::make_shared<db::Table>(block.schema());
  out->ReserveRows(block.num_rows());
  UnpackRows(block, 0, block.num_rows(), out.get());
  return out;
}

}  // namespace engine
}  // namespace perfeval
