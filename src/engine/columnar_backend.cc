#include "engine/columnar_backend.h"

#include <utility>

#include "common/check.h"

namespace perfeval {
namespace engine {

void ColumnarBackend::SyncFrom(db::Database* database) {
  PERFEVAL_CHECK(database == database_)
      << "ColumnarBackend adapts one database";
  // The database *is* this backend's catalog; folding committed deltas in
  // is all a sync means here.
  database_->Refresh();
}

BackendResult ColumnarBackend::Execute(const db::PlanPtr& plan,
                                       const ExecOptions& options) {
  // Apply the protocol knobs for this execution, restoring the database's
  // own settings afterwards so a shared database is left as found.
  int saved_threads = database_->threads();
  bool saved_check = database_->check();
  database_->set_threads(options.threads);
  database_->set_check(options.check);
  db::QueryResult run;
  try {
    run = database_->Run(plan, options.mode);
  } catch (...) {
    database_->set_threads(saved_threads);
    database_->set_check(saved_check);
    throw;
  }
  database_->set_threads(saved_threads);
  database_->set_check(saved_check);

  BackendResult result;
  result.table = run.table;
  result.profile = std::move(run.profile);
  result.storage = run.storage;
  result.server_wall_ns = run.server.real_ns;
  result.stall_ns = run.server.simulated_stall_ns;
  result.finish_ns = 0;  // The native result already is a columnar table.
  return result;
}

}  // namespace engine
}  // namespace perfeval
