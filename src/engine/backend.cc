#include "engine/backend.h"

#include <memory>

#include "common/check.h"
#include "engine/columnar_backend.h"
#include "engine/row_backend.h"

namespace perfeval {
namespace engine {

std::unique_ptr<Backend> CreateBackend(db::BackendKind kind,
                                       db::Database* database) {
  PERFEVAL_CHECK(database != nullptr);
  switch (kind) {
    case db::BackendKind::kColumnar:
      return std::make_unique<ColumnarBackend>(database);
    case db::BackendKind::kRowStore:
      return RowStoreBackend::Over(database);
  }
  PERFEVAL_CHECK(false) << "unknown backend kind";
  return nullptr;
}

}  // namespace engine
}  // namespace perfeval
